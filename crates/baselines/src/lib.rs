//! # htsp-baselines
//!
//! The non-partitioned baselines of the paper's evaluation (§VII-A), behind
//! the read/write index API ([`QueryView`] snapshots published by an
//! [`IndexMaintainer`]) so the throughput harness and the concurrent
//! `QueryEngine` can drive every algorithm identically:
//!
//! * [`BiDijkstraBaseline`] — index-free bidirectional Dijkstra; zero update
//!   cost, slow queries.
//! * [`DchBaseline`] — Dynamic Contraction Hierarchies \[32\]: fast shortcut
//!   repair, CH-speed queries.
//! * [`Dh2hBaseline`] — Dynamic H2H \[33\]: fastest queries, slow label repair.
//! * [`ToainBaseline`] — a simplified TOAIN/SCOB \[37\]: a throughput-adaptive
//!   CH whose *level cap* trades query speed against the cost of refreshing
//!   the index on every batch (the paper adapts TOAIN to dynamic networks by
//!   rebuilding its shortcuts per batch; we reproduce that behaviour).
//!
//! The partitioned baselines N-CH-P and P-TD-P live in `htsp-psp`.

#![warn(missing_docs)]

use htsp_ch::{ChQuery, ChQuerySession, ContractionHierarchy, OrderingStrategy, ShortcutMode};
use htsp_graph::{
    ByteReader, ByteWriter, Dist, FallbackSession, Graph, IndexMaintainer, QuerySession, QueryView,
    ScratchPool, SnapshotError, SnapshotPublisher, UpdateBatch, UpdateTimeline, VertexId,
    WorkerPool,
};
use htsp_search::{BiDijkstra, BiDijkstraSession};
use htsp_td::H2HIndex;
use std::sync::Arc;
use std::time::Instant;

/// Snapshot answering with bidirectional Dijkstra on a frozen graph.
pub struct BiDijkstraView {
    graph: Arc<Graph>,
    scratch: Arc<ScratchPool<BiDijkstra>>,
}

impl BiDijkstraView {
    /// Creates a view over `graph`, sharing `scratch` searchers.
    pub fn new(graph: Arc<Graph>, scratch: Arc<ScratchPool<BiDijkstra>>) -> Self {
        BiDijkstraView { graph, scratch }
    }
}

impl QueryView for BiDijkstraView {
    fn algorithm(&self) -> &'static str {
        "BiDijkstra"
    }

    fn stage(&self) -> usize {
        0
    }

    fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        self.scratch.with(|b| b.distance(&self.graph, s, t))
    }

    fn session(&self) -> Box<dyn QuerySession + '_> {
        Box::new(BiDijkstraSession::new(&self.graph, self.scratch.checkout()))
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }
}

/// Creates a scratch pool of [`BiDijkstra`] searchers for `n`-vertex graphs.
pub fn bidijkstra_pool(n: usize) -> Arc<ScratchPool<BiDijkstra>> {
    Arc::new(ScratchPool::new(move || BiDijkstra::new(n)))
}

/// Index-free baseline: bidirectional Dijkstra on the live graph.
pub struct BiDijkstraBaseline {
    graph: Arc<Graph>,
    scratch: Arc<ScratchPool<BiDijkstra>>,
}

impl BiDijkstraBaseline {
    /// Creates the baseline over `graph`.
    pub fn new(graph: &Graph) -> Self {
        BiDijkstraBaseline {
            graph: Arc::new(graph.clone()),
            scratch: bidijkstra_pool(graph.num_vertices()),
        }
    }
}

impl IndexMaintainer for BiDijkstraBaseline {
    fn name(&self) -> &'static str {
        "BiDijkstra"
    }

    fn apply_batch(
        &mut self,
        _graph: &Graph,
        batch: &UpdateBatch,
        publisher: &SnapshotPublisher,
    ) -> UpdateTimeline {
        // U-Stage 1 is the whole maintenance: install the new weights and
        // republish; there is no index to repair.
        let t = Instant::now();
        Arc::make_mut(&mut self.graph).apply_batch(batch);
        publisher.publish(self.current_view());
        UpdateTimeline::single("U1: on-spot edge update", t.elapsed())
    }

    fn current_view(&self) -> Arc<dyn QueryView> {
        Arc::new(BiDijkstraView::new(
            Arc::clone(&self.graph),
            Arc::clone(&self.scratch),
        ))
    }
}

/// Snapshot answering with a bidirectional upward search over a frozen
/// contraction hierarchy. Shared by DCH and TOAIN.
pub struct ChView {
    name: &'static str,
    graph: Arc<Graph>,
    ch: Arc<ContractionHierarchy>,
    scratch: Arc<ScratchPool<ChQuery>>,
}

impl QueryView for ChView {
    fn algorithm(&self) -> &'static str {
        self.name
    }

    fn stage(&self) -> usize {
        0
    }

    fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        self.scratch.with(|q| q.distance(&self.ch, s, t))
    }

    fn session(&self) -> Box<dyn QuerySession + '_> {
        Box::new(ChQuerySession::new(&self.ch, self.scratch.checkout()))
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn index_size_bytes(&self) -> usize {
        self.ch.index_size_bytes()
    }
}

/// Creates a scratch pool of [`ChQuery`] states for `n`-vertex hierarchies.
pub fn ch_query_pool(n: usize) -> Arc<ScratchPool<ChQuery>> {
    Arc::new(ScratchPool::new(move || ChQuery::new(n)))
}

/// Dynamic Contraction Hierarchies (DCH) baseline.
pub struct DchBaseline {
    graph: Arc<Graph>,
    ch: Arc<ContractionHierarchy>,
    scratch: Arc<ScratchPool<ChQuery>>,
}

impl DchBaseline {
    /// Builds the CH index over `graph`.
    pub fn build(graph: &Graph) -> Self {
        Self::build_pooled(graph, &WorkerPool::sequential())
    }

    /// Builds the CH index with contraction windows computed on `pool`.
    /// The result is bit-identical to [`DchBaseline::build`] at any thread
    /// count.
    pub fn build_pooled(graph: &Graph, pool: &WorkerPool) -> Self {
        let ch = ContractionHierarchy::build_pooled(
            graph,
            OrderingStrategy::MinDegree,
            ShortcutMode::AllPairs,
            pool,
        );
        DchBaseline {
            graph: Arc::new(graph.clone()),
            ch: Arc::new(ch),
            scratch: ch_query_pool(graph.num_vertices()),
        }
    }

    /// Warm restart: reassembles the baseline from `graph` and a hierarchy
    /// section previously produced by `snapshot_state`, skipping contraction.
    pub fn from_state(graph: &Graph, state: &[u8]) -> Result<Self, SnapshotError> {
        let ch = ContractionHierarchy::from_snapshot_bytes(state)?;
        check_vertex_count(ch.num_vertices(), graph)?;
        Ok(DchBaseline {
            graph: Arc::new(graph.clone()),
            ch: Arc::new(ch),
            scratch: ch_query_pool(graph.num_vertices()),
        })
    }
}

/// Rejects an index state whose vertex count disagrees with the graph it is
/// being restored against.
fn check_vertex_count(index_n: usize, graph: &Graph) -> Result<(), SnapshotError> {
    if index_n != graph.num_vertices() {
        return Err(SnapshotError::Malformed(format!(
            "index state covers {index_n} vertices but the graph has {}",
            graph.num_vertices()
        )));
    }
    Ok(())
}

impl IndexMaintainer for DchBaseline {
    fn name(&self) -> &'static str {
        "DCH"
    }

    fn apply_batch(
        &mut self,
        _graph: &Graph,
        batch: &UpdateBatch,
        publisher: &SnapshotPublisher,
    ) -> UpdateTimeline {
        let t = Instant::now();
        let graph = Arc::make_mut(&mut self.graph);
        graph.apply_batch(batch);
        Arc::make_mut(&mut self.ch).apply_batch(graph, batch.as_slice());
        publisher.publish(self.current_view());
        UpdateTimeline::single("U2: shortcut update", t.elapsed())
    }

    fn current_view(&self) -> Arc<dyn QueryView> {
        Arc::new(ChView {
            name: "DCH",
            graph: Arc::clone(&self.graph),
            ch: Arc::clone(&self.ch),
            scratch: Arc::clone(&self.scratch),
        })
    }

    fn index_size_bytes(&self) -> usize {
        self.ch.index_size_bytes()
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(self.ch.to_snapshot_bytes())
    }

    fn storage_bytes(&self) -> Vec<(&'static str, usize)> {
        vec![("ch_shortcuts", self.ch.heap_bytes())]
    }
}

/// Snapshot answering with H2H label lookups on a frozen index.
pub struct H2hView {
    graph: Arc<Graph>,
    h2h: Arc<H2HIndex>,
}

impl QueryView for H2hView {
    fn algorithm(&self) -> &'static str {
        "DH2H"
    }

    fn stage(&self) -> usize {
        0
    }

    fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        self.h2h.distance(s, t)
    }

    fn session(&self) -> Box<dyn QuerySession + '_> {
        // A label lookup needs no scratch; the per-target loop is already
        // the optimal one-to-many algorithm for a 2-hop labeling.
        Box::new(FallbackSession::new(self))
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn index_size_bytes(&self) -> usize {
        self.h2h.index_size_bytes()
    }
}

/// Dynamic H2H (DH2H) baseline.
pub struct Dh2hBaseline {
    graph: Arc<Graph>,
    h2h: Arc<H2HIndex>,
}

impl Dh2hBaseline {
    /// Builds the H2H index over `graph`.
    pub fn build(graph: &Graph) -> Self {
        Self::build_pooled(graph, &WorkerPool::sequential())
    }

    /// Builds the H2H index with contraction windows and per-level label
    /// fills computed on `pool`. The result is bit-identical to
    /// [`Dh2hBaseline::build`] at any thread count.
    pub fn build_pooled(graph: &Graph, pool: &WorkerPool) -> Self {
        Dh2hBaseline {
            graph: Arc::new(graph.clone()),
            h2h: Arc::new(H2HIndex::build_pooled(graph, pool)),
        }
    }

    /// Warm restart: reassembles the baseline from `graph` and an H2H
    /// section previously produced by `snapshot_state`, skipping both
    /// contraction and label construction.
    pub fn from_state(graph: &Graph, state: &[u8]) -> Result<Self, SnapshotError> {
        let h2h = H2HIndex::from_snapshot_bytes(state)?;
        check_vertex_count(h2h.decomposition().num_vertices(), graph)?;
        Ok(Dh2hBaseline {
            graph: Arc::new(graph.clone()),
            h2h: Arc::new(h2h),
        })
    }
}

impl IndexMaintainer for Dh2hBaseline {
    fn name(&self) -> &'static str {
        "DH2H"
    }

    fn apply_batch(
        &mut self,
        _graph: &Graph,
        batch: &UpdateBatch,
        publisher: &SnapshotPublisher,
    ) -> UpdateTimeline {
        let graph = Arc::make_mut(&mut self.graph);
        graph.apply_batch(batch);
        let report = Arc::make_mut(&mut self.h2h).apply_batch(graph, batch.as_slice());
        let mut timeline = UpdateTimeline::default();
        timeline.push("U2: bottom-up shortcut update", report.shortcut_time);
        timeline.push("U3: top-down label update", report.label_time);
        // DH2H has a single query stage: the snapshot only becomes available
        // once the labels are fully repaired (the Figure 1 pain point).
        publisher.publish(self.current_view());
        timeline
    }

    fn current_view(&self) -> Arc<dyn QueryView> {
        Arc::new(H2hView {
            graph: Arc::clone(&self.graph),
            h2h: Arc::clone(&self.h2h),
        })
    }

    fn index_size_bytes(&self) -> usize {
        self.h2h.index_size_bytes()
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(self.h2h.to_snapshot_bytes())
    }

    fn storage_bytes(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("h2h_labels", self.h2h.label_heap_bytes()),
            (
                "ch_shortcuts",
                self.h2h.decomposition().hierarchy().heap_bytes(),
            ),
        ]
    }
}

/// Simplified TOAIN baseline: a CH whose shortcut set is truncated at a level
/// cap (the SCOB "saturation" knob) and fully refreshed on every batch.
///
/// Queries run the CH bidirectional search but fall back to local Dijkstra
/// below the cap, so a small cap means cheaper refreshes and slower queries —
/// the adaptive trade-off TOAIN tunes for throughput. The refresh-per-batch
/// behaviour mirrors how the paper adapts TOAIN (designed for static networks)
/// to the dynamic setting (§VII-A).
pub struct ToainBaseline {
    graph: Arc<Graph>,
    ch: Arc<ContractionHierarchy>,
    scratch: Arc<ScratchPool<ChQuery>>,
    /// Number of contraction levels kept (cap on index size / refresh cost).
    pub level_cap: usize,
}

impl ToainBaseline {
    /// Builds the index; `level_cap` bounds how many vertices are contracted
    /// with shortcut insertion (the remainder keeps only original edges).
    pub fn build(graph: &Graph, level_cap: usize) -> Self {
        Self::build_pooled(graph, level_cap, &WorkerPool::sequential())
    }

    /// Builds the index with contraction windows computed on `pool`. The
    /// result is deterministic at any thread count.
    pub fn build_pooled(graph: &Graph, level_cap: usize, pool: &WorkerPool) -> Self {
        let ch = Self::build_capped(graph, level_cap, pool);
        ToainBaseline {
            graph: Arc::new(graph.clone()),
            ch: Arc::new(ch),
            scratch: ch_query_pool(graph.num_vertices()),
            level_cap,
        }
    }

    fn build_capped(graph: &Graph, level_cap: usize, pool: &WorkerPool) -> ContractionHierarchy {
        // A full hierarchy with witness pruning bounded by the cap: a small
        // cap prunes aggressively (cheap, weaker index), a large cap
        // approaches the exact CH.
        ContractionHierarchy::build_pooled(
            graph,
            OrderingStrategy::MinDegree,
            ShortcutMode::WitnessPruned {
                hop_limit: level_cap.max(1),
            },
            pool,
        )
    }

    /// Warm restart: reassembles the baseline from `graph` and a state blob
    /// previously produced by `snapshot_state` (level cap + hierarchy).
    pub fn from_state(graph: &Graph, state: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = ByteReader::new(state);
        let level_cap = r.get_u64("toain level cap")? as usize;
        let ch = ContractionHierarchy::decode_from(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes after toain state",
                r.remaining()
            )));
        }
        check_vertex_count(ch.num_vertices(), graph)?;
        Ok(ToainBaseline {
            graph: Arc::new(graph.clone()),
            ch: Arc::new(ch),
            scratch: ch_query_pool(graph.num_vertices()),
            level_cap,
        })
    }

    /// Approximate index size in bytes.
    pub fn index_size_bytes(&self) -> usize {
        self.ch.index_size_bytes()
    }
}

impl IndexMaintainer for ToainBaseline {
    fn name(&self) -> &'static str {
        "TOAIN"
    }

    fn apply_batch(
        &mut self,
        _graph: &Graph,
        batch: &UpdateBatch,
        publisher: &SnapshotPublisher,
    ) -> UpdateTimeline {
        // TOAIN is a static index: adapt it to dynamic networks by refreshing
        // its shortcuts against the updated graph.
        let t = Instant::now();
        let graph = Arc::make_mut(&mut self.graph);
        graph.apply_batch(batch);
        self.ch = Arc::new(Self::build_capped(
            graph,
            self.level_cap,
            &WorkerPool::sequential(),
        ));
        publisher.publish(self.current_view());
        UpdateTimeline::single("refresh shortcuts", t.elapsed())
    }

    fn current_view(&self) -> Arc<dyn QueryView> {
        Arc::new(ChView {
            name: "TOAIN",
            graph: Arc::clone(&self.graph),
            ch: Arc::clone(&self.ch),
            scratch: Arc::clone(&self.scratch),
        })
    }

    fn index_size_bytes(&self) -> usize {
        self.ch.index_size_bytes()
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        let mut w = ByteWriter::new();
        w.put_u64(self.level_cap as u64);
        self.ch.encode_into(&mut w);
        Some(w.into_bytes())
    }

    fn storage_bytes(&self) -> Vec<(&'static str, usize)> {
        vec![("ch_shortcuts", self.ch.heap_bytes())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::{QuerySet, UpdateGenerator};
    use htsp_search::dijkstra_distance;

    fn exercise(idx: &mut dyn IndexMaintainer, g: &mut Graph, seed: u64) {
        let mut gen = UpdateGenerator::new(seed);
        for round in 0..2 {
            let qs = QuerySet::random(g, 60, seed + 100 + round);
            let view = idx.current_view();
            for q in &qs {
                assert_eq!(
                    view.distance(q.source, q.target),
                    dijkstra_distance(g, q.source, q.target),
                    "{} mismatch for {:?}",
                    idx.name(),
                    q
                );
            }
            let batch = gen.generate(g, 15);
            g.apply_batch(&batch);
            let publisher = SnapshotPublisher::new(idx.current_view());
            let timeline = idx.apply_batch(g, &batch, &publisher);
            assert!(!timeline.stages.is_empty());
            assert!(publisher.version() >= 1, "no snapshot published");
        }
    }

    #[test]
    fn bidijkstra_baseline_is_exact() {
        let mut g = grid(8, 8, WeightRange::new(1, 20), 1);
        let mut idx = BiDijkstraBaseline::new(&g);
        exercise(&mut idx, &mut g, 11);
        assert_eq!(IndexMaintainer::index_size_bytes(&idx), 0);
    }

    #[test]
    fn dch_baseline_is_exact() {
        let mut g = grid(8, 8, WeightRange::new(1, 20), 2);
        let mut idx = DchBaseline::build(&g);
        exercise(&mut idx, &mut g, 12);
        assert!(IndexMaintainer::index_size_bytes(&idx) > 0);
    }

    #[test]
    fn dh2h_baseline_is_exact() {
        let mut g = grid(8, 8, WeightRange::new(1, 20), 3);
        let mut idx = Dh2hBaseline::build(&g);
        exercise(&mut idx, &mut g, 13);
        assert!(IndexMaintainer::index_size_bytes(&idx) > 0);
    }

    #[test]
    fn toain_baseline_is_exact() {
        let mut g = grid(8, 8, WeightRange::new(1, 20), 4);
        let mut idx = ToainBaseline::build(&g, 64);
        exercise(&mut idx, &mut g, 14);
    }

    #[test]
    fn toain_cap_trades_witness_effort_for_index_size() {
        // A small cap bounds the witness searches, so contraction keeps more
        // (conservative) shortcuts; a large cap prunes harder and yields a
        // smaller index at higher refresh cost.
        let g = grid(10, 10, WeightRange::new(1, 20), 5);
        let small = ToainBaseline::build(&g, 2);
        let large = ToainBaseline::build(&g, 256);
        assert!(small.index_size_bytes() >= large.index_size_bytes());
    }

    #[test]
    fn warm_restart_round_trip_matches_cold_build() {
        let g = grid(8, 8, WeightRange::new(1, 20), 8);
        let qs = QuerySet::random(&g, 60, 44);
        let check = |idx: &dyn IndexMaintainer| {
            let view = idx.current_view();
            for q in &qs {
                assert_eq!(
                    view.distance(q.source, q.target),
                    dijkstra_distance(&g, q.source, q.target),
                    "{} warm restart mismatch for {q:?}",
                    idx.name()
                );
            }
        };
        let dch = DchBaseline::build(&g);
        let state = IndexMaintainer::snapshot_state(&dch).expect("dch state");
        check(&DchBaseline::from_state(&g, &state).expect("dch restore"));

        let dh2h = Dh2hBaseline::build(&g);
        let state = IndexMaintainer::snapshot_state(&dh2h).expect("dh2h state");
        check(&Dh2hBaseline::from_state(&g, &state).expect("dh2h restore"));

        let toain = ToainBaseline::build(&g, 64);
        let state = IndexMaintainer::snapshot_state(&toain).expect("toain state");
        let restored = ToainBaseline::from_state(&g, &state).expect("toain restore");
        assert_eq!(restored.level_cap, 64);
        check(&restored);

        // A state for the wrong graph is rejected, not applied.
        let other = grid(5, 5, WeightRange::new(1, 9), 1);
        let state = IndexMaintainer::snapshot_state(&dch).unwrap();
        assert!(matches!(
            DchBaseline::from_state(&other, &state),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn storage_bytes_reports_components() {
        let g = grid(6, 6, WeightRange::new(1, 9), 2);
        let dch = DchBaseline::build(&g);
        let parts = IndexMaintainer::storage_bytes(&dch);
        assert_eq!(parts[0].0, "ch_shortcuts");
        assert!(parts[0].1 > 0);
        let dh2h = Dh2hBaseline::build(&g);
        let parts = IndexMaintainer::storage_bytes(&dh2h);
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|&(_, b)| b > 0));
        // BiDijkstra keeps no index state to snapshot.
        let bidij = BiDijkstraBaseline::new(&g);
        assert!(IndexMaintainer::snapshot_state(&bidij).is_none());
    }

    #[test]
    fn published_snapshots_stay_frozen_while_maintainer_moves_on() {
        // Copy-on-write contract: a snapshot taken before a batch keeps
        // answering on the old weights even after the maintainer repairs.
        let mut g = grid(8, 8, WeightRange::new(5, 15), 6);
        let mut idx = DchBaseline::build(&g);
        let old_view = idx.current_view();
        let old_graph = g.clone();

        let mut gen = UpdateGenerator::new(21);
        let batch = gen.generate(&g, 20);
        g.apply_batch(&batch);
        let publisher = SnapshotPublisher::new(idx.current_view());
        idx.apply_batch(&g, &batch, &publisher);

        let new_view = publisher.snapshot();
        let qs = QuerySet::random(&g, 40, 9);
        for q in &qs {
            assert_eq!(
                old_view.distance(q.source, q.target),
                dijkstra_distance(&old_graph, q.source, q.target),
                "stale view drifted for {q:?}"
            );
            assert_eq!(
                new_view.distance(q.source, q.target),
                dijkstra_distance(&g, q.source, q.target),
                "fresh view wrong for {q:?}"
            );
        }
    }
}
