//! # htsp-baselines
//!
//! The non-partitioned baselines of the paper's evaluation (§VII-A), wrapped
//! behind the common [`DynamicSpIndex`] interface so the throughput harness
//! can drive every algorithm identically:
//!
//! * [`BiDijkstraBaseline`] — index-free bidirectional Dijkstra; zero update
//!   cost, slow queries.
//! * [`DchBaseline`] — Dynamic Contraction Hierarchies [32]: fast shortcut
//!   repair, CH-speed queries.
//! * [`Dh2hBaseline`] — Dynamic H2H [33]: fastest queries, slow label repair.
//! * [`ToainBaseline`] — a simplified TOAIN/SCOB [37]: a throughput-adaptive
//!   CH whose *level cap* trades query speed against the cost of refreshing
//!   the index on every batch (the paper adapts TOAIN to dynamic networks by
//!   rebuilding its shortcuts per batch; we reproduce that behaviour).
//!
//! The partitioned baselines N-CH-P and P-TD-P live in `htsp-psp`.

#![warn(missing_docs)]

use htsp_ch::{ChQuery, ContractionHierarchy, OrderingStrategy, ShortcutMode};
use htsp_graph::{
    Dist, DynamicSpIndex, Graph, UpdateBatch, UpdateTimeline, VertexId,
};
use htsp_search::BiDijkstra;
use htsp_td::H2HIndex;
use std::time::Instant;

/// Index-free baseline: bidirectional Dijkstra on the live graph.
pub struct BiDijkstraBaseline {
    searcher: BiDijkstra,
}

impl BiDijkstraBaseline {
    /// Creates the baseline for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        BiDijkstraBaseline {
            searcher: BiDijkstra::new(n),
        }
    }
}

impl DynamicSpIndex for BiDijkstraBaseline {
    fn name(&self) -> &'static str {
        "BiDijkstra"
    }

    fn apply_batch(&mut self, _graph: &Graph, _batch: &UpdateBatch) -> UpdateTimeline {
        // Index-free: nothing to repair.
        UpdateTimeline::single("U1: on-spot edge update", std::time::Duration::ZERO)
    }

    fn distance(&mut self, graph: &Graph, s: VertexId, t: VertexId) -> Dist {
        self.searcher.distance(graph, s, t)
    }
}

/// Dynamic Contraction Hierarchies (DCH) baseline.
pub struct DchBaseline {
    ch: ContractionHierarchy,
    query: ChQuery,
}

impl DchBaseline {
    /// Builds the CH index over `graph`.
    pub fn build(graph: &Graph) -> Self {
        let ch =
            ContractionHierarchy::build(graph, OrderingStrategy::MinDegree, ShortcutMode::AllPairs);
        let n = graph.num_vertices();
        DchBaseline {
            ch,
            query: ChQuery::new(n),
        }
    }
}

impl DynamicSpIndex for DchBaseline {
    fn name(&self) -> &'static str {
        "DCH"
    }

    fn apply_batch(&mut self, graph: &Graph, batch: &UpdateBatch) -> UpdateTimeline {
        let t = Instant::now();
        self.ch.apply_batch(graph, batch.as_slice());
        UpdateTimeline::single("U2: shortcut update", t.elapsed())
    }

    fn distance(&mut self, _graph: &Graph, s: VertexId, t: VertexId) -> Dist {
        self.query.distance(&self.ch, s, t)
    }

    fn index_size_bytes(&self) -> usize {
        self.ch.index_size_bytes()
    }
}

/// Dynamic H2H (DH2H) baseline.
pub struct Dh2hBaseline {
    h2h: H2HIndex,
}

impl Dh2hBaseline {
    /// Builds the H2H index over `graph`.
    pub fn build(graph: &Graph) -> Self {
        Dh2hBaseline {
            h2h: H2HIndex::build(graph),
        }
    }
}

impl DynamicSpIndex for Dh2hBaseline {
    fn name(&self) -> &'static str {
        "DH2H"
    }

    fn apply_batch(&mut self, graph: &Graph, batch: &UpdateBatch) -> UpdateTimeline {
        let t0 = Instant::now();
        let report = self.h2h.apply_batch(graph, batch.as_slice());
        let mut timeline = UpdateTimeline::default();
        timeline.push("U2: bottom-up shortcut update", report.shortcut_time);
        timeline.push("U3: top-down label update", report.label_time);
        let _ = t0;
        timeline
    }

    fn distance(&mut self, _graph: &Graph, s: VertexId, t: VertexId) -> Dist {
        self.h2h.distance(s, t)
    }

    fn index_size_bytes(&self) -> usize {
        self.h2h.index_size_bytes()
    }
}

/// Simplified TOAIN baseline: a CH whose shortcut set is truncated at a level
/// cap (the SCOB "saturation" knob) and fully refreshed on every batch.
///
/// Queries run the CH bidirectional search but fall back to local Dijkstra
/// below the cap, so a small cap means cheaper refreshes and slower queries —
/// the adaptive trade-off TOAIN tunes for throughput. The refresh-per-batch
/// behaviour mirrors how the paper adapts TOAIN (designed for static networks)
/// to the dynamic setting (§VII-A).
pub struct ToainBaseline {
    ch: ContractionHierarchy,
    query: ChQuery,
    /// Number of contraction levels kept (cap on index size / refresh cost).
    pub level_cap: usize,
}

impl ToainBaseline {
    /// Builds the index; `level_cap` bounds how many vertices are contracted
    /// with shortcut insertion (the remainder keeps only original edges).
    pub fn build(graph: &Graph, level_cap: usize) -> Self {
        let ch = Self::build_capped(graph, level_cap);
        let n = graph.num_vertices();
        ToainBaseline {
            ch,
            query: ChQuery::new(n),
            level_cap,
        }
    }

    fn build_capped(graph: &Graph, level_cap: usize) -> ContractionHierarchy {
        // A full hierarchy with witness pruning bounded by the cap: a small
        // cap prunes aggressively (cheap, weaker index), a large cap
        // approaches the exact CH.
        ContractionHierarchy::build(
            graph,
            OrderingStrategy::MinDegree,
            ShortcutMode::WitnessPruned {
                hop_limit: level_cap.max(1),
            },
        )
    }
}

impl DynamicSpIndex for ToainBaseline {
    fn name(&self) -> &'static str {
        "TOAIN"
    }

    fn apply_batch(&mut self, graph: &Graph, _batch: &UpdateBatch) -> UpdateTimeline {
        // TOAIN is a static index: adapt it to dynamic networks by refreshing
        // its shortcuts against the updated graph.
        let t = Instant::now();
        self.ch = Self::build_capped(graph, self.level_cap);
        UpdateTimeline::single("refresh shortcuts", t.elapsed())
    }

    fn distance(&mut self, _graph: &Graph, s: VertexId, t: VertexId) -> Dist {
        self.query.distance(&self.ch, s, t)
    }

    fn index_size_bytes(&self) -> usize {
        self.ch.index_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::{QuerySet, UpdateGenerator};
    use htsp_search::dijkstra_distance;

    fn exercise(idx: &mut dyn DynamicSpIndex, g: &mut Graph, seed: u64) {
        let mut gen = UpdateGenerator::new(seed);
        for round in 0..2 {
            let qs = QuerySet::random(g, 60, seed + 100 + round);
            for q in &qs {
                assert_eq!(
                    idx.distance(g, q.source, q.target),
                    dijkstra_distance(g, q.source, q.target),
                    "{} mismatch for {:?}",
                    idx.name(),
                    q
                );
            }
            let batch = gen.generate(g, 15);
            g.apply_batch(&batch);
            let timeline = idx.apply_batch(g, &batch);
            assert!(!timeline.stages.is_empty());
        }
    }

    #[test]
    fn bidijkstra_baseline_is_exact() {
        let mut g = grid(8, 8, WeightRange::new(1, 20), 1);
        let mut idx = BiDijkstraBaseline::new(g.num_vertices());
        exercise(&mut idx, &mut g, 11);
        assert_eq!(idx.index_size_bytes(), 0);
    }

    #[test]
    fn dch_baseline_is_exact() {
        let mut g = grid(8, 8, WeightRange::new(1, 20), 2);
        let mut idx = DchBaseline::build(&g);
        exercise(&mut idx, &mut g, 12);
        assert!(idx.index_size_bytes() > 0);
    }

    #[test]
    fn dh2h_baseline_is_exact() {
        let mut g = grid(8, 8, WeightRange::new(1, 20), 3);
        let mut idx = Dh2hBaseline::build(&g);
        exercise(&mut idx, &mut g, 13);
        assert!(idx.index_size_bytes() > 0);
    }

    #[test]
    fn toain_baseline_is_exact() {
        let mut g = grid(8, 8, WeightRange::new(1, 20), 4);
        let mut idx = ToainBaseline::build(&g, 64);
        exercise(&mut idx, &mut g, 14);
    }

    #[test]
    fn toain_cap_trades_witness_effort_for_index_size() {
        // A small cap bounds the witness searches, so contraction keeps more
        // (conservative) shortcuts; a large cap prunes harder and yields a
        // smaller index at higher refresh cost.
        let g = grid(10, 10, WeightRange::new(1, 20), 5);
        let small = ToainBaseline::build(&g, 2);
        let large = ToainBaseline::build(&g, 256);
        assert!(small.index_size_bytes() >= large.index_size_bytes());
    }
}
