//! # htsp-ch
//!
//! Contraction Hierarchies (CH) and their dynamic maintenance (DCH).
//!
//! The CH index (§III-A of the paper) contracts vertices in ascending order of
//! importance; contracting `v` inserts shortcuts between the still-uncontracted
//! neighbors of `v` so that shortest distances are preserved. Queries run a
//! bidirectional *upward* search on the shortcut graph.
//!
//! Two construction modes are offered:
//!
//! * **All-pairs shortcuts** ([`ShortcutMode::AllPairs`]) — every pair of
//!   higher-ranked neighbors receives a shortcut, exactly the shortcut set
//!   produced by MDE tree decomposition. This is the mode used throughout the
//!   paper (Lemma 4: "DH2H can generate equivalent shortcuts required by DCH"),
//!   and the only mode that supports dynamic maintenance.
//! * **Witness-pruned** ([`ShortcutMode::WitnessPruned`]) — the classic CH
//!   optimization that skips a shortcut when a witness path not through `v` is
//!   at most as short; produces a smaller static index for baseline
//!   comparisons.
//!
//! Dynamic maintenance ([`ContractionHierarchy::apply_batch`]) implements the
//! *bottom-up shortcut update* shared by DCH and the first phase of DH2H
//! (§III, §V-D U-Stage 2): affected shortcut pairs are re-derived in ascending
//! rank order from the invariant
//!
//! ```text
//! sc(v, u) = min( |e(v, u)|,  min over x with {v,u} ⊆ N_up(x) of sc(x, v) + sc(x, u) )
//! ```

#![warn(missing_docs)]

pub mod dch;
pub mod flat;
pub mod hierarchy;
pub mod ordering;
pub mod persist;
pub mod query;

pub use dch::ShortcutChange;
pub use flat::{FlatHierarchy, UpwardArcs};
pub use hierarchy::{ContractionHierarchy, ShortcutMode};
pub use ordering::{boundary_first_order, mde_order, OrderingStrategy, VertexOrder};
pub use query::{ChQuery, ChQuerySession};
