//! Vertex ordering for contraction.
//!
//! The paper uses Minimum Degree Elimination (MDE, §II) to produce both the
//! CH contraction order and the tree decomposition, so the two indexes share
//! shortcuts (Lemma 4). The PSP indexes additionally need a *boundary-first*
//! order (§IV-B), which is supplied as an explicit rank vector.

use htsp_graph::{Graph, VertexId};
use rustc_hash::FxHashSet;
use std::collections::BinaryHeap;

/// A total order over vertices: `rank[v]` is the contraction position of `v`
/// (0 = contracted first = least important).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexOrder {
    rank: Vec<u32>,
    by_rank: Vec<VertexId>,
}

impl VertexOrder {
    /// Builds an order from a rank vector (must be a permutation of `0..n`).
    pub fn from_ranks(rank: Vec<u32>) -> Self {
        let n = rank.len();
        let mut by_rank = vec![VertexId(0); n];
        let mut seen = vec![false; n];
        for (v, &r) in rank.iter().enumerate() {
            assert!((r as usize) < n, "rank {r} out of range");
            assert!(!seen[r as usize], "duplicate rank {r}");
            seen[r as usize] = true;
            by_rank[r as usize] = VertexId::from_index(v);
        }
        VertexOrder { rank, by_rank }
    }

    /// Builds an order from the contraction sequence (first element is
    /// contracted first).
    pub fn from_sequence(seq: Vec<VertexId>) -> Self {
        let n = seq.len();
        let mut rank = vec![u32::MAX; n];
        for (r, &v) in seq.iter().enumerate() {
            assert!(v.index() < n, "vertex {v} out of range");
            assert_eq!(rank[v.index()], u32::MAX, "vertex {v} appears twice");
            rank[v.index()] = r as u32;
        }
        VertexOrder { rank, by_rank: seq }
    }

    /// Number of vertices covered by the order.
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    /// Returns `true` if the order covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }

    /// Rank of `v` (higher = more important = contracted later).
    #[inline]
    pub fn rank(&self, v: VertexId) -> u32 {
        self.rank[v.index()]
    }

    /// The vertex with rank `r`.
    #[inline]
    pub fn vertex_at(&self, r: u32) -> VertexId {
        self.by_rank[r as usize]
    }

    /// Returns `true` if `u` is ranked higher (more important) than `v`.
    #[inline]
    pub fn higher(&self, u: VertexId, v: VertexId) -> bool {
        self.rank(u) > self.rank(v)
    }

    /// Contraction sequence, least important first.
    pub fn sequence(&self) -> &[VertexId] {
        &self.by_rank
    }

    /// Raw rank vector.
    pub fn ranks(&self) -> &[u32] {
        &self.rank
    }
}

/// How to obtain the contraction order.
#[derive(Clone, Debug)]
pub enum OrderingStrategy {
    /// Minimum Degree Elimination on the contraction graph (the paper's
    /// default, §II).
    MinDegree,
    /// A caller-supplied order (used for boundary-first PSP orders, §IV-B).
    Given(VertexOrder),
}

/// Computes an MDE order: repeatedly contracts a vertex of minimum current
/// degree in the contraction graph (where contraction connects all remaining
/// neighbors of the removed vertex into a clique).
///
/// Ties are broken by vertex id for determinism. The degree bookkeeping uses a
/// lazy priority queue: stale entries are skipped when popped.
pub fn mde_order(graph: &Graph) -> VertexOrder {
    let n = graph.num_vertices();
    // Contraction adjacency as hash sets (weights do not matter for ordering).
    let mut adj: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
    for (_, u, v, _) in graph.edges() {
        adj[u.index()].insert(v.0);
        adj[v.index()].insert(u.0);
    }
    // Max-heap of Reverse((degree, vertex)) == min-heap.
    let mut heap: BinaryHeap<std::cmp::Reverse<(usize, u32)>> = BinaryHeap::with_capacity(n);
    for (v, a) in adj.iter().enumerate() {
        heap.push(std::cmp::Reverse((a.len(), v as u32)));
    }
    let mut contracted = vec![false; n];
    let mut seq = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse((deg, v))) = heap.pop() {
        let vi = v as usize;
        if contracted[vi] {
            continue;
        }
        if adj[vi].len() != deg {
            // Stale entry; reinsert with the current degree.
            heap.push(std::cmp::Reverse((adj[vi].len(), v)));
            continue;
        }
        contracted[vi] = true;
        seq.push(VertexId(v));
        // Connect remaining neighbors into a clique.
        let nbrs: Vec<u32> = adj[vi]
            .iter()
            .copied()
            .filter(|&u| !contracted[u as usize])
            .collect();
        for (i, &a) in nbrs.iter().enumerate() {
            let ai = a as usize;
            adj[ai].remove(&v);
            for &b in &nbrs[i + 1..] {
                let bi = b as usize;
                if adj[ai].insert(b) {
                    adj[bi].insert(a);
                }
            }
        }
        for &a in &nbrs {
            heap.push(std::cmp::Reverse((adj[a as usize].len(), a)));
        }
        adj[vi].clear();
    }
    VertexOrder::from_sequence(seq)
}

/// Computes a *boundary-first* MDE order: all vertices in `boundary` receive
/// higher ranks than every non-boundary vertex, and within each class the
/// relative order follows MDE on the full graph.
///
/// This is the ordering required by the PSP indexes (§IV-B, Boundary-first
/// Property) and used by PMHL construction (Algorithm 3, line 2).
pub fn boundary_first_order(graph: &Graph, boundary: &FxHashSet<VertexId>) -> VertexOrder {
    let base = mde_order(graph);
    let mut non_boundary: Vec<VertexId> = Vec::new();
    let mut bound: Vec<VertexId> = Vec::new();
    for &v in base.sequence() {
        if boundary.contains(&v) {
            bound.push(v);
        } else {
            non_boundary.push(v);
        }
    }
    non_boundary.extend(bound);
    VertexOrder::from_sequence(non_boundary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::GraphBuilder;

    #[test]
    fn from_ranks_roundtrip() {
        let order = VertexOrder::from_ranks(vec![2, 0, 1]);
        assert_eq!(order.rank(VertexId(0)), 2);
        assert_eq!(order.vertex_at(2), VertexId(0));
        assert_eq!(order.vertex_at(0), VertexId(1));
        assert!(order.higher(VertexId(0), VertexId(1)));
    }

    #[test]
    #[should_panic(expected = "duplicate rank")]
    fn duplicate_rank_rejected() {
        let _ = VertexOrder::from_ranks(vec![0, 0, 1]);
    }

    #[test]
    fn from_sequence_matches_from_ranks() {
        let a = VertexOrder::from_sequence(vec![VertexId(1), VertexId(2), VertexId(0)]);
        let b = VertexOrder::from_ranks(vec![2, 0, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn mde_order_is_a_permutation() {
        let g = grid(8, 8, WeightRange::default(), 3);
        let order = mde_order(&g);
        assert_eq!(order.len(), g.num_vertices());
        let mut ranks: Vec<u32> = order.ranks().to_vec();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..g.num_vertices() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn mde_contracts_low_degree_first() {
        // A star: the leaves (degree 1) must all be contracted before the hub.
        let mut b = GraphBuilder::new(6);
        for i in 1..6 {
            b.add_edge(VertexId(0), VertexId(i), 1);
        }
        let g = b.build();
        let order = mde_order(&g);
        // The hub can only become minimum-degree once most leaves are gone.
        assert!(
            order.rank(VertexId(0)) >= 4,
            "hub must be contracted after most leaves (rank {})",
            order.rank(VertexId(0))
        );
    }

    #[test]
    fn mde_is_deterministic() {
        let g = grid(10, 10, WeightRange::default(), 3);
        assert_eq!(mde_order(&g), mde_order(&g));
    }

    #[test]
    fn boundary_first_order_puts_boundary_on_top() {
        let g = grid(6, 6, WeightRange::default(), 3);
        let boundary: FxHashSet<VertexId> = [VertexId(0), VertexId(17), VertexId(35)]
            .into_iter()
            .collect();
        let order = boundary_first_order(&g, &boundary);
        let n = g.num_vertices() as u32;
        for v in g.vertices() {
            if boundary.contains(&v) {
                assert!(order.rank(v) >= n - 3, "boundary vertex {v} ranked too low");
            } else {
                assert!(order.rank(v) < n - 3, "interior vertex {v} ranked too high");
            }
        }
    }
}
