//! Dynamic CH maintenance (DCH): the bottom-up shortcut update.
//!
//! When a batch of edge-weight changes arrives, the shortcut weights of the
//! hierarchy must be repaired so that the invariant
//!
//! ```text
//! sc(v, u) = min( |e(v, u)|, min over x with {v, u} ⊆ N_up(x) of sc(x, v) + sc(x, u) )
//! ```
//!
//! holds again for every upward arc. The repair processes vertices in
//! ascending rank order ("bottom-up"): whenever a shortcut of a lower-ranked
//! vertex changes, it invalidates every pair of its upward neighbors, which
//! are re-derived when their own (higher) rank is reached. This is the
//! shortcut-centric paradigm of DCH \[32\], which is also the first phase of
//! DH2H maintenance \[33\] (Lemma 4), and runs identically for weight increases
//! and decreases because each affected shortcut is recomputed from all of its
//! supports.

use crate::hierarchy::{ContractionHierarchy, ShortcutMode};
use htsp_graph::{EdgeUpdate, Graph, VertexId, Weight, INF};
use rustc_hash::FxHashSet;

/// A shortcut whose weight changed during maintenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShortcutChange {
    /// Lower-ranked endpoint (the vertex that stores the shortcut).
    pub from: VertexId,
    /// Higher-ranked endpoint.
    pub to: VertexId,
    /// Weight before the repair.
    pub old: Weight,
    /// Weight after the repair.
    pub new: Weight,
}

impl ContractionHierarchy {
    /// Repairs the shortcut weights after the edge updates in `batch` have
    /// already been applied to `graph` (U-Stage 1). Returns every shortcut
    /// whose weight actually changed, which downstream consumers (DH2H label
    /// update, PSP overlay update) use to locate affected index regions.
    ///
    /// # Panics
    /// Panics if the hierarchy was built with [`ShortcutMode::WitnessPruned`];
    /// dynamic maintenance requires the all-pairs shortcut set.
    pub fn apply_batch(&mut self, graph: &Graph, batch: &[EdgeUpdate]) -> Vec<ShortcutChange> {
        assert!(
            matches!(self.mode(), ShortcutMode::AllPairs),
            "dynamic maintenance requires ShortcutMode::AllPairs"
        );
        let n = self.num_vertices();
        // affected[v] = set of upward partners whose shortcut must be
        // re-derived when v's rank is reached.
        let mut affected: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
        let mut min_rank = u32::MAX;
        for upd in batch {
            let (a, b) = graph.edge_endpoints(upd.edge);
            let (lo, hi) = if self.order().higher(a, b) {
                (b, a)
            } else {
                (a, b)
            };
            affected[lo.index()].insert(hi.0);
            min_rank = min_rank.min(self.order().rank(lo));
        }
        if min_rank == u32::MAX {
            return Vec::new();
        }
        let mut changes = Vec::new();
        for r in min_rank..n as u32 {
            let v = self.order().vertex_at(r);
            if affected[v.index()].is_empty() {
                continue;
            }
            let partners: Vec<u32> = affected[v.index()].iter().copied().collect();
            affected[v.index()].clear();
            for u_raw in partners {
                let u = VertexId(u_raw);
                let old = match self.shortcut_weight(v, u) {
                    Some(w) => w,
                    None => continue, // not an upward arc (can happen for pruned graphs)
                };
                let new = self.recompute_shortcut(graph, v, u);
                if new != old {
                    // Write the new weight.
                    for arc in self.up_arcs_mut(v).iter_mut() {
                        if arc.0 == u {
                            arc.1 = new;
                            break;
                        }
                    }
                    changes.push(ShortcutChange {
                        from: v,
                        to: u,
                        old,
                        new,
                    });
                    // Every pair of v's upward neighbors containing u is
                    // supported by this shortcut: invalidate them.
                    let ups: Vec<VertexId> = self.up_arcs(v).iter().map(|&(w, _)| w).collect();
                    for &w in &ups {
                        if w == u {
                            continue;
                        }
                        let (lo, hi) = if self.order().higher(w, u) {
                            (u, w)
                        } else {
                            (w, u)
                        };
                        affected[lo.index()].insert(hi.0);
                    }
                }
            }
        }
        changes
    }

    /// Re-derives `sc(v, u)` from the original edge (if any) and all
    /// supporting lower-ranked vertices.
    fn recompute_shortcut(&self, graph: &Graph, v: VertexId, u: VertexId) -> Weight {
        let mut best: u64 = match graph.find_edge(v, u) {
            Some((_, w)) => w as u64,
            None => INF.0 as u64,
        };
        for &x in self.down_neighbors(v) {
            // x has v among its upward neighbors; check it also has u.
            let mut w_xv = None;
            let mut w_xu = None;
            for &(y, w) in self.up_arcs(x) {
                if y == v {
                    w_xv = Some(w);
                } else if y == u {
                    w_xu = Some(w);
                }
            }
            if let (Some(a), Some(b)) = (w_xv, w_xu) {
                let cand = a as u64 + b as u64;
                if cand < best {
                    best = cand;
                }
            }
        }
        best.min(INF.0 as u64) as Weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::OrderingStrategy;
    use crate::query::ChQuery;
    use htsp_graph::gen::{grid, grid_with_diagonals, WeightRange};
    use htsp_graph::{QuerySet, UpdateGenerator};
    use htsp_search::dijkstra_distance;

    fn check_queries(g: &Graph, ch: &ContractionHierarchy, count: usize, seed: u64) {
        let qs = QuerySet::random(g, count, seed);
        let mut q = ChQuery::new(g.num_vertices());
        for query in &qs {
            assert_eq!(
                q.distance(ch, query.source, query.target),
                dijkstra_distance(g, query.source, query.target),
                "mismatch for {:?}",
                query
            );
        }
    }

    #[test]
    fn decrease_updates_keep_ch_exact() {
        let mut g = grid(8, 8, WeightRange::new(10, 40), 7);
        let mut ch =
            ContractionHierarchy::build(&g, OrderingStrategy::MinDegree, ShortcutMode::AllPairs);
        let mut gen = UpdateGenerator::new(3);
        gen.decrease_fraction = 1.0; // decreases only
        let batch = gen.generate(&g, 20);
        g.apply_batch(&batch);
        let changes = ch.apply_batch(&g, batch.as_slice());
        assert!(
            !changes.is_empty(),
            "weight decreases should change shortcuts"
        );
        check_queries(&g, &ch, 120, 5);
    }

    #[test]
    fn increase_updates_keep_ch_exact() {
        let mut g = grid(8, 8, WeightRange::new(10, 40), 9);
        let mut ch =
            ContractionHierarchy::build(&g, OrderingStrategy::MinDegree, ShortcutMode::AllPairs);
        let mut gen = UpdateGenerator::new(4);
        gen.decrease_fraction = 0.0; // increases only
        let batch = gen.generate(&g, 20);
        g.apply_batch(&batch);
        ch.apply_batch(&g, batch.as_slice());
        check_queries(&g, &ch, 120, 6);
    }

    #[test]
    fn mixed_update_batches_over_multiple_rounds() {
        let mut g = grid_with_diagonals(7, 7, WeightRange::new(5, 50), 0.15, 2);
        let mut ch =
            ContractionHierarchy::build(&g, OrderingStrategy::MinDegree, ShortcutMode::AllPairs);
        let mut gen = UpdateGenerator::new(11);
        for round in 0..4 {
            let batch = gen.generate(&g, 15);
            g.apply_batch(&batch);
            ch.apply_batch(&g, batch.as_slice());
            check_queries(&g, &ch, 80, 100 + round);
        }
    }

    #[test]
    fn updated_ch_matches_freshly_built_ch() {
        let mut g = grid(6, 6, WeightRange::new(5, 25), 13);
        let order = crate::ordering::mde_order(&g);
        let mut ch =
            ContractionHierarchy::build_with_order(&g, order.clone(), ShortcutMode::AllPairs);
        let mut gen = UpdateGenerator::new(8);
        let batch = gen.generate(&g, 12);
        g.apply_batch(&batch);
        ch.apply_batch(&g, batch.as_slice());
        // Rebuild from scratch with the same order: shortcut weights must agree.
        let fresh = ContractionHierarchy::build_with_order(&g, order, ShortcutMode::AllPairs);
        for v in g.vertices() {
            let mut a: Vec<_> = ch.up_arcs(v).to_vec();
            let mut b: Vec<_> = fresh.up_arcs(v).to_vec();
            a.sort_by_key(|&(u, _)| u.0);
            b.sort_by_key(|&(u, _)| u.0);
            assert_eq!(a, b, "shortcut arrays of {v} diverge after update");
        }
    }

    #[test]
    fn empty_batch_changes_nothing() {
        let g = grid(5, 5, WeightRange::new(1, 9), 1);
        let mut ch =
            ContractionHierarchy::build(&g, OrderingStrategy::MinDegree, ShortcutMode::AllPairs);
        let changes = ch.apply_batch(&g, &[]);
        assert!(changes.is_empty());
    }

    #[test]
    fn noop_update_reports_no_changes() {
        let g = grid(5, 5, WeightRange::new(4, 4), 1);
        let mut ch =
            ContractionHierarchy::build(&g, OrderingStrategy::MinDegree, ShortcutMode::AllPairs);
        // An "update" that sets the same weight.
        let (e, _, _, w) = g.edges().next().unwrap();
        let upd = EdgeUpdate::new(e, w, w);
        let changes = ch.apply_batch(&g, &[upd]);
        assert!(changes.is_empty());
    }

    #[test]
    #[should_panic(expected = "requires ShortcutMode::AllPairs")]
    fn witness_pruned_mode_rejects_updates() {
        let g = grid(4, 4, WeightRange::new(1, 9), 1);
        let mut ch = ContractionHierarchy::build(
            &g,
            OrderingStrategy::MinDegree,
            ShortcutMode::WitnessPruned { hop_limit: 16 },
        );
        let (e, _, _, w) = g.edges().next().unwrap();
        let _ = ch.apply_batch(&g, &[EdgeUpdate::new(e, w, w + 1)]);
    }

    #[test]
    fn shortcut_change_records_old_and_new() {
        let mut g = grid(5, 5, WeightRange::new(10, 10), 1);
        let mut ch =
            ContractionHierarchy::build(&g, OrderingStrategy::MinDegree, ShortcutMode::AllPairs);
        let (e, a, b, w) = g.edges().next().unwrap();
        g.set_edge_weight(e, 3);
        let changes = ch.apply_batch(&g, &[EdgeUpdate::new(e, w, 3)]);
        let direct = changes
            .iter()
            .find(|c| (c.from == a || c.from == b) && (c.to == a || c.to == b))
            .expect("the updated edge's own shortcut must change");
        assert_eq!(direct.old, 10);
        assert_eq!(direct.new, 3);
    }
}
