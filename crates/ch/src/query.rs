//! CH query processing: bidirectional upward search on the shortcut graph.
//!
//! The search only follows arcs from lower-ranked to higher-ranked vertices
//! (§III-A). On an undirected graph both directions use the same upward arcs.
//! A direction stops expanding once its frontier minimum can no longer improve
//! the best meeting distance; the query finishes when both directions stop.

use crate::flat::UpwardArcs;
use crate::hierarchy::ContractionHierarchy;
use htsp_graph::{Dist, QuerySession, ScratchGuard, VertexId, INF};
use htsp_search::MinHeap;

/// Reusable CH query state (buffers survive across queries).
#[derive(Clone, Debug)]
pub struct ChQuery {
    dist_f: Vec<Dist>,
    dist_b: Vec<Dist>,
    touched_f: Vec<VertexId>,
    touched_b: Vec<VertexId>,
    heap_f: MinHeap,
    heap_b: MinHeap,
}

impl ChQuery {
    /// Creates query state for hierarchies over `n` vertices.
    pub fn new(n: usize) -> Self {
        ChQuery {
            dist_f: vec![INF; n],
            dist_b: vec![INF; n],
            touched_f: Vec::new(),
            touched_b: Vec::new(),
            heap_f: MinHeap::new(),
            heap_b: MinHeap::new(),
        }
    }

    fn reset(&mut self, n: usize) {
        if self.dist_f.len() < n {
            self.dist_f.resize(n, INF);
            self.dist_b.resize(n, INF);
        }
        for v in self.touched_f.drain(..) {
            self.dist_f[v.index()] = INF;
        }
        self.heap_f.clear();
        self.reset_backward();
    }

    /// Clears only the backward half — the one-to-many path resets this
    /// between targets while keeping the forward search intact.
    fn reset_backward(&mut self) {
        for v in self.touched_b.drain(..) {
            self.dist_b[v.index()] = INF;
        }
        self.heap_b.clear();
    }

    /// Shortest distance between `s` and `t` on the hierarchy `ch` (any
    /// [`UpwardArcs`] representation — copy-on-write or flat CSR).
    pub fn distance<H: UpwardArcs + ?Sized>(&mut self, ch: &H, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return Dist::ZERO;
        }
        let n = ch.num_vertices();
        self.reset(n);
        self.dist_f[s.index()] = Dist::ZERO;
        self.dist_b[t.index()] = Dist::ZERO;
        self.touched_f.push(s);
        self.touched_b.push(t);
        self.heap_f.push(Dist::ZERO, s);
        self.heap_b.push(Dist::ZERO, t);
        let mut best = INF;

        loop {
            let top_f = self.heap_f.peek().map(|(d, _)| d).unwrap_or(INF);
            let top_b = self.heap_b.peek().map(|(d, _)| d).unwrap_or(INF);
            let forward_active = top_f < best;
            let backward_active = top_b < best;
            if !forward_active && !backward_active {
                break;
            }
            // Expand the direction with the smaller frontier minimum among the
            // still-active ones.
            let forward = if forward_active && backward_active {
                top_f <= top_b
            } else {
                forward_active
            };
            let (heap, dist_this, touched_this, dist_other) = if forward {
                (
                    &mut self.heap_f,
                    &mut self.dist_f,
                    &mut self.touched_f,
                    &self.dist_b,
                )
            } else {
                (
                    &mut self.heap_b,
                    &mut self.dist_b,
                    &mut self.touched_b,
                    &self.dist_f,
                )
            };
            let (d, v) = match heap.pop() {
                Some(x) => x,
                None => break,
            };
            if d > dist_this[v.index()] {
                continue; // stale
            }
            // Meeting point check.
            let other = dist_other[v.index()];
            if other.is_finite() {
                let cand = d.saturating_add(other);
                if cand < best {
                    best = cand;
                }
            }
            for &(u, w) in ch.up_arcs(v) {
                let nd = d.saturating_add_weight(w);
                if nd < dist_this[u.index()] {
                    if dist_this[u.index()].is_inf() {
                        touched_this.push(u);
                    }
                    dist_this[u.index()] = nd;
                    heap.push(nd, u);
                }
            }
        }
        best
    }

    /// One-to-many on the hierarchy: the *complete* forward upward search
    /// from `s` runs once (settling the exact upward distance of every
    /// upward-reachable vertex), then each target runs only its backward
    /// upward search against the cached forward ball — `1 + |targets|`
    /// half-searches instead of `2·|targets|`, with the expensive forward
    /// half amortized across the whole target set.
    pub fn one_to_many<H: UpwardArcs + ?Sized>(
        &mut self,
        ch: &H,
        s: VertexId,
        targets: &[VertexId],
    ) -> Vec<Dist> {
        if targets.is_empty() {
            // Skip the full forward search when there is nothing to answer.
            return Vec::new();
        }
        let n = ch.num_vertices();
        self.reset(n);
        // Full forward upward search (no pruning: every settled distance is
        // the exact upward distance from s).
        self.dist_f[s.index()] = Dist::ZERO;
        self.touched_f.push(s);
        self.heap_f.push(Dist::ZERO, s);
        while let Some((d, v)) = self.heap_f.pop() {
            if d > self.dist_f[v.index()] {
                continue; // stale
            }
            for &(u, w) in ch.up_arcs(v) {
                let nd = d.saturating_add_weight(w);
                if nd < self.dist_f[u.index()] {
                    if self.dist_f[u.index()].is_inf() {
                        self.touched_f.push(u);
                    }
                    self.dist_f[u.index()] = nd;
                    self.heap_f.push(nd, u);
                }
            }
        }
        targets
            .iter()
            .map(|&t| {
                if t == s {
                    return Dist::ZERO;
                }
                self.reset_backward();
                self.dist_b[t.index()] = Dist::ZERO;
                self.touched_b.push(t);
                self.heap_b.push(Dist::ZERO, t);
                let mut best = INF;
                while let Some((d, v)) = self.heap_b.pop() {
                    if d >= best {
                        break; // no remaining meeting can improve
                    }
                    if d > self.dist_b[v.index()] {
                        continue; // stale
                    }
                    let df = self.dist_f[v.index()];
                    if df.is_finite() {
                        let cand = d.saturating_add(df);
                        if cand < best {
                            best = cand;
                        }
                    }
                    for &(u, w) in ch.up_arcs(v) {
                        let nd = d.saturating_add_weight(w);
                        if nd < self.dist_b[u.index()] {
                            if self.dist_b[u.index()].is_inf() {
                                self.touched_b.push(u);
                            }
                            self.dist_b[u.index()] = nd;
                            self.heap_b.push(nd, u);
                        }
                    }
                }
                best
            })
            .collect()
    }
}

/// A [`QuerySession`] over one frozen [`ContractionHierarchy`].
///
/// Owns one pooled [`ChQuery`] for its whole lifetime and overrides
/// `one_to_many` with the shared-forward-search algorithm
/// ([`ChQuery::one_to_many`]). Used by the DCH/TOAIN views and by the CH
/// query stages of MHL and PostMHL.
pub struct ChQuerySession<'a> {
    ch: &'a ContractionHierarchy,
    scratch: ScratchGuard<'a, ChQuery>,
}

impl<'a> ChQuerySession<'a> {
    /// Opens a session over `ch` holding `scratch` until dropped.
    pub fn new(ch: &'a ContractionHierarchy, scratch: ScratchGuard<'a, ChQuery>) -> Self {
        ChQuerySession { ch, scratch }
    }
}

impl QuerySession for ChQuerySession<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Dist {
        self.scratch.distance(self.ch, s, t)
    }

    fn one_to_many(&mut self, source: VertexId, targets: &[VertexId]) -> Vec<Dist> {
        self.scratch.one_to_many(self.ch, source, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::ShortcutMode;
    use crate::ordering::OrderingStrategy;
    use htsp_graph::gen::{grid_with_diagonals, WeightRange};
    use htsp_graph::{GraphBuilder, QuerySet};
    use htsp_search::dijkstra_distance;

    #[test]
    fn query_reuse_is_consistent() {
        let g = grid_with_diagonals(7, 7, WeightRange::new(1, 15), 0.2, 4);
        let ch = crate::ContractionHierarchy::build(
            &g,
            OrderingStrategy::MinDegree,
            ShortcutMode::AllPairs,
        );
        let qs = QuerySet::random(&g, 120, 3);
        let mut q = ChQuery::new(g.num_vertices());
        for query in &qs {
            assert_eq!(
                q.distance(&ch, query.source, query.target),
                dijkstra_distance(&g, query.source, query.target)
            );
        }
    }

    #[test]
    fn one_to_many_matches_pairwise_queries() {
        let g = grid_with_diagonals(8, 8, WeightRange::new(1, 12), 0.25, 7);
        let ch = crate::ContractionHierarchy::build(
            &g,
            OrderingStrategy::MinDegree,
            ShortcutMode::AllPairs,
        );
        let mut q = ChQuery::new(g.num_vertices());
        assert!(q.one_to_many(&ch, VertexId(0), &[]).is_empty());
        let targets: Vec<VertexId> = (0..g.num_vertices() as u32)
            .step_by(3)
            .map(VertexId)
            .collect();
        for s in [VertexId(0), VertexId(20), VertexId(63)] {
            let batch = q.one_to_many(&ch, s, &targets);
            for (i, &t) in targets.iter().enumerate() {
                assert_eq!(
                    batch[i],
                    dijkstra_distance(&g, s, t),
                    "one_to_many({s}, {t}) diverged"
                );
            }
            // Interleaved point-to-point queries stay exact.
            assert_eq!(
                q.distance(&ch, s, VertexId(33)),
                dijkstra_distance(&g, s, VertexId(33))
            );
        }
    }

    #[test]
    fn session_checks_out_scratch_once() {
        use htsp_graph::{QuerySession, ScratchPool};
        let g = grid_with_diagonals(6, 6, WeightRange::new(1, 9), 0.2, 9);
        let ch = crate::ContractionHierarchy::build(
            &g,
            OrderingStrategy::MinDegree,
            ShortcutMode::AllPairs,
        );
        let n = g.num_vertices();
        let pool = ScratchPool::new(move || ChQuery::new(n));
        {
            let mut session = ChQuerySession::new(&ch, pool.checkout());
            assert_eq!(pool.idle(), 0);
            let m = session.matrix(&[VertexId(0), VertexId(35)], &[VertexId(5), VertexId(30)]);
            for (i, &s) in [VertexId(0), VertexId(35)].iter().enumerate() {
                for (j, &t) in [VertexId(5), VertexId(30)].iter().enumerate() {
                    assert_eq!(m[i][j], dijkstra_distance(&g, s, t));
                }
            }
        }
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn disconnected_pair_is_inf() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 2);
        b.add_edge(VertexId(2), VertexId(3), 2);
        let g = b.build();
        let ch = crate::ContractionHierarchy::build(
            &g,
            OrderingStrategy::MinDegree,
            ShortcutMode::AllPairs,
        );
        let mut q = ChQuery::new(4);
        assert_eq!(q.distance(&ch, VertexId(0), VertexId(3)), INF);
        assert_eq!(q.distance(&ch, VertexId(0), VertexId(1)), Dist(2));
    }

    #[test]
    fn same_vertex_is_zero() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(VertexId(0), VertexId(1), 2);
        let g = b.build();
        let ch = crate::ContractionHierarchy::build(
            &g,
            OrderingStrategy::MinDegree,
            ShortcutMode::AllPairs,
        );
        let mut q = ChQuery::new(2);
        assert_eq!(q.distance(&ch, VertexId(1), VertexId(1)), Dist(0));
    }
}
