//! CH query processing: bidirectional upward search on the shortcut graph.
//!
//! The search only follows arcs from lower-ranked to higher-ranked vertices
//! (§III-A). On an undirected graph both directions use the same upward arcs.
//! A direction stops expanding once its frontier minimum can no longer improve
//! the best meeting distance; the query finishes when both directions stop.

use crate::hierarchy::ContractionHierarchy;
use htsp_graph::{Dist, VertexId, INF};
use htsp_search::MinHeap;

/// Reusable CH query state (buffers survive across queries).
#[derive(Clone, Debug)]
pub struct ChQuery {
    dist_f: Vec<Dist>,
    dist_b: Vec<Dist>,
    touched: Vec<VertexId>,
    heap_f: MinHeap,
    heap_b: MinHeap,
}

impl ChQuery {
    /// Creates query state for hierarchies over `n` vertices.
    pub fn new(n: usize) -> Self {
        ChQuery {
            dist_f: vec![INF; n],
            dist_b: vec![INF; n],
            touched: Vec::new(),
            heap_f: MinHeap::new(),
            heap_b: MinHeap::new(),
        }
    }

    fn reset(&mut self, n: usize) {
        if self.dist_f.len() < n {
            self.dist_f.resize(n, INF);
            self.dist_b.resize(n, INF);
        }
        for v in self.touched.drain(..) {
            self.dist_f[v.index()] = INF;
            self.dist_b[v.index()] = INF;
        }
        self.heap_f.clear();
        self.heap_b.clear();
    }

    /// Shortest distance between `s` and `t` on the hierarchy `ch`.
    pub fn distance(&mut self, ch: &ContractionHierarchy, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return Dist::ZERO;
        }
        let n = ch.num_vertices();
        self.reset(n);
        self.dist_f[s.index()] = Dist::ZERO;
        self.dist_b[t.index()] = Dist::ZERO;
        self.touched.push(s);
        self.touched.push(t);
        self.heap_f.push(Dist::ZERO, s);
        self.heap_b.push(Dist::ZERO, t);
        let mut best = INF;

        loop {
            let top_f = self.heap_f.peek().map(|(d, _)| d).unwrap_or(INF);
            let top_b = self.heap_b.peek().map(|(d, _)| d).unwrap_or(INF);
            let forward_active = top_f < best;
            let backward_active = top_b < best;
            if !forward_active && !backward_active {
                break;
            }
            // Expand the direction with the smaller frontier minimum among the
            // still-active ones.
            let forward = if forward_active && backward_active {
                top_f <= top_b
            } else {
                forward_active
            };
            let (heap, dist_this, dist_other) = if forward {
                (&mut self.heap_f, &mut self.dist_f, &self.dist_b)
            } else {
                (&mut self.heap_b, &mut self.dist_b, &self.dist_f)
            };
            let (d, v) = match heap.pop() {
                Some(x) => x,
                None => break,
            };
            if d > dist_this[v.index()] {
                continue; // stale
            }
            // Meeting point check.
            let other = dist_other[v.index()];
            if other.is_finite() {
                let cand = d.saturating_add(other);
                if cand < best {
                    best = cand;
                }
            }
            for &(u, w) in ch.up_arcs(v) {
                let nd = d.saturating_add_weight(w);
                if nd < dist_this[u.index()] {
                    if dist_this[u.index()].is_inf() {
                        self.touched.push(u);
                    }
                    dist_this[u.index()] = nd;
                    heap.push(nd, u);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::ShortcutMode;
    use crate::ordering::OrderingStrategy;
    use htsp_graph::gen::{grid_with_diagonals, WeightRange};
    use htsp_graph::{GraphBuilder, QuerySet};
    use htsp_search::dijkstra_distance;

    #[test]
    fn query_reuse_is_consistent() {
        let g = grid_with_diagonals(7, 7, WeightRange::new(1, 15), 0.2, 4);
        let ch = crate::ContractionHierarchy::build(
            &g,
            OrderingStrategy::MinDegree,
            ShortcutMode::AllPairs,
        );
        let qs = QuerySet::random(&g, 120, 3);
        let mut q = ChQuery::new(g.num_vertices());
        for query in &qs {
            assert_eq!(
                q.distance(&ch, query.source, query.target),
                dijkstra_distance(&g, query.source, query.target)
            );
        }
    }

    #[test]
    fn disconnected_pair_is_inf() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 2);
        b.add_edge(VertexId(2), VertexId(3), 2);
        let g = b.build();
        let ch = crate::ContractionHierarchy::build(
            &g,
            OrderingStrategy::MinDegree,
            ShortcutMode::AllPairs,
        );
        let mut q = ChQuery::new(4);
        assert_eq!(q.distance(&ch, VertexId(0), VertexId(3)), INF);
        assert_eq!(q.distance(&ch, VertexId(0), VertexId(1)), Dist(2));
    }

    #[test]
    fn same_vertex_is_zero() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(VertexId(0), VertexId(1), 2);
        let g = b.build();
        let ch = crate::ContractionHierarchy::build(
            &g,
            OrderingStrategy::MinDegree,
            ShortcutMode::AllPairs,
        );
        let mut q = ChQuery::new(2);
        assert_eq!(q.distance(&ch, VertexId(1), VertexId(1)), Dist(0));
    }
}
