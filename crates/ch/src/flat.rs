//! Flat CSR-backed read path for the upward shortcut graph.
//!
//! The chunked copy-on-write table behind [`ContractionHierarchy`] is ideal
//! for snapshot publication but pays one pointer chase per row. On large
//! static deployments (e.g. a freshly warm-restarted index that will only be
//! queried) the upward arcs can be packed once into a single offsets + arcs
//! pair — the same struct-of-arrays layout `htsp_graph::storage::CsrGraph`
//! uses for the base graph. [`UpwardArcs`] abstracts over both
//! representations so [`crate::ChQuery`] runs unchanged on either.

use crate::hierarchy::ContractionHierarchy;
use htsp_graph::{VertexId, Weight};

/// Read access to the upward shortcut graph of a contraction hierarchy.
///
/// Implemented by [`ContractionHierarchy`] (chunked copy-on-write rows) and
/// [`FlatHierarchy`] (packed CSR). Query code is generic over this trait, so
/// the hot bidirectional upward search never commits to one storage layout.
pub trait UpwardArcs {
    /// Number of vertices covered by the hierarchy.
    fn num_vertices(&self) -> usize;

    /// Upward arcs of `v`: higher-ranked neighbors and shortcut weights,
    /// sorted by rank ascending.
    fn up_arcs(&self, v: VertexId) -> &[(VertexId, Weight)];
}

impl UpwardArcs for ContractionHierarchy {
    #[inline]
    fn num_vertices(&self) -> usize {
        ContractionHierarchy::num_vertices(self)
    }

    #[inline]
    fn up_arcs(&self, v: VertexId) -> &[(VertexId, Weight)] {
        ContractionHierarchy::up_arcs(self, v)
    }
}

impl<H: UpwardArcs + ?Sized> UpwardArcs for std::sync::Arc<H> {
    #[inline]
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    #[inline]
    fn up_arcs(&self, v: VertexId) -> &[(VertexId, Weight)] {
        (**self).up_arcs(v)
    }
}

/// A frozen, flat copy of a hierarchy's upward arcs in CSR layout.
///
/// `offsets[v]..offsets[v + 1]` indexes `arcs`; rows keep the rank-ascending
/// order of the source hierarchy. Immutable by construction — dynamic
/// maintenance stays on the copy-on-write representation and re-flattens
/// when a static serving copy is wanted.
#[derive(Clone, Debug)]
pub struct FlatHierarchy {
    offsets: Vec<u32>,
    arcs: Vec<(VertexId, Weight)>,
}

impl FlatHierarchy {
    /// Packs the upward arcs of `ch` into CSR form.
    pub fn from_hierarchy(ch: &ContractionHierarchy) -> Self {
        let n = ch.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut arcs = Vec::with_capacity(ch.num_arcs());
        offsets.push(0u32);
        for v in 0..n {
            arcs.extend_from_slice(ch.up_arcs(VertexId::from_index(v)));
            offsets.push(arcs.len() as u32);
        }
        FlatHierarchy { offsets, arcs }
    }

    /// Total number of upward arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Measured heap footprint of the packed arrays.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.arcs.capacity() * std::mem::size_of::<(VertexId, Weight)>()
    }
}

impl UpwardArcs for FlatHierarchy {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    #[inline]
    fn up_arcs(&self, v: VertexId) -> &[(VertexId, Weight)] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.arcs[lo..hi]
    }
}

impl ContractionHierarchy {
    /// Packs this hierarchy's upward arcs into a [`FlatHierarchy`].
    pub fn flatten(&self) -> FlatHierarchy {
        FlatHierarchy::from_hierarchy(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::ShortcutMode;
    use crate::ordering::OrderingStrategy;
    use crate::query::ChQuery;
    use htsp_graph::gen::{grid_with_diagonals, WeightRange};
    use htsp_graph::QuerySet;
    use htsp_search::dijkstra_distance;

    #[test]
    fn flat_hierarchy_answers_match_cow_hierarchy() {
        let g = grid_with_diagonals(9, 9, WeightRange::new(1, 17), 0.2, 21);
        let ch =
            ContractionHierarchy::build(&g, OrderingStrategy::MinDegree, ShortcutMode::AllPairs);
        let flat = ch.flatten();
        assert_eq!(flat.num_arcs(), ch.num_arcs());
        assert_eq!(UpwardArcs::num_vertices(&flat), ch.num_vertices());
        let mut q = ChQuery::new(g.num_vertices());
        for query in &QuerySet::random(&g, 120, 31) {
            let expect = dijkstra_distance(&g, query.source, query.target);
            assert_eq!(q.distance(&ch, query.source, query.target), expect);
            assert_eq!(q.distance(&flat, query.source, query.target), expect);
        }
        // One-to-many over the flat layout too.
        let targets: Vec<VertexId> = (0..g.num_vertices() as u32)
            .step_by(5)
            .map(VertexId)
            .collect();
        assert_eq!(
            q.one_to_many(&flat, VertexId(3), &targets),
            q.one_to_many(&ch, VertexId(3), &targets)
        );
    }

    #[test]
    fn flat_rows_are_byte_identical_to_source_rows() {
        let g = grid_with_diagonals(6, 6, WeightRange::new(1, 9), 0.3, 2);
        let ch = ContractionHierarchy::build(
            &g,
            OrderingStrategy::MinDegree,
            ShortcutMode::WitnessPruned {
                hop_limit: usize::MAX,
            },
        );
        let flat = ch.flatten();
        for v in g.vertices() {
            assert_eq!(UpwardArcs::up_arcs(&flat, v), ch.up_arcs(v));
        }
        assert!(flat.heap_bytes() > 0);
    }
}
