//! CH snapshot codec: serialize a [`ContractionHierarchy`] for warm restart.
//!
//! The encoding rides inside the payload of an
//! [`htsp_graph::IndexSnapshot`] (which supplies magic, versioning, and the
//! checksum); this module only defines the hierarchy *section*:
//!
//! ```text
//! n: u32
//! rank[v]: u32 × n              (permutation of 0..n)
//! mode: u8                      (0 = AllPairs, 1 = WitnessPruned)
//! hop_limit: u64                (only when mode == 1)
//! extra_shortcuts: u64
//! per vertex v in id order:
//!   arc_count: u32
//!   (target: u32, weight: u32) × arc_count   (rank-ascending)
//! ```
//!
//! Decoding never panics on corrupt bytes: the rank vector is validated as a
//! permutation and every arc target is bounds-checked *before* any
//! constructor with assertions runs, so malformed input surfaces as
//! [`SnapshotError::Malformed`] (or `Truncated` when bytes run out).

use crate::hierarchy::{ContractionHierarchy, ShortcutMode};
use crate::ordering::VertexOrder;
use htsp_graph::{ByteReader, ByteWriter, SnapshotError, VertexId, Weight};

const MODE_ALL_PAIRS: u8 = 0;
const MODE_WITNESS_PRUNED: u8 = 1;

impl ContractionHierarchy {
    /// Appends this hierarchy's snapshot section to `w`.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        let n = self.num_vertices();
        w.put_u32(n as u32);
        for &r in self.order().ranks() {
            w.put_u32(r);
        }
        match self.mode() {
            ShortcutMode::AllPairs => w.put_u8(MODE_ALL_PAIRS),
            ShortcutMode::WitnessPruned { hop_limit } => {
                w.put_u8(MODE_WITNESS_PRUNED);
                w.put_u64(hop_limit as u64);
            }
        }
        w.put_u64(self.num_extra_shortcuts() as u64);
        for v in 0..n {
            let arcs = self.up_arcs(VertexId::from_index(v));
            w.put_u32(arcs.len() as u32);
            for &(u, weight) in arcs {
                w.put_u32(u.0);
                w.put_u32(weight);
            }
        }
    }

    /// Serializes the hierarchy section to a standalone byte vector.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Reads a hierarchy section from `r`, validating every structural
    /// invariant before reassembly.
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.get_u32("hierarchy vertex count")? as usize;
        // Each vertex still owes ≥ 4 bytes of rank; reject lying headers
        // before reserving memory for them.
        if r.remaining() < n.saturating_mul(4) {
            return Err(SnapshotError::Truncated {
                context: "hierarchy rank vector",
            });
        }
        let mut ranks = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for v in 0..n {
            let rank = r.get_u32("hierarchy rank")?;
            if rank as usize >= n {
                return Err(SnapshotError::Malformed(format!(
                    "rank {rank} of vertex {v} out of range for {n} vertices"
                )));
            }
            if seen[rank as usize] {
                return Err(SnapshotError::Malformed(format!(
                    "duplicate rank {rank} (vertex {v}); ranks must be a permutation"
                )));
            }
            seen[rank as usize] = true;
            ranks.push(rank);
        }
        let mode = match r.get_u8("hierarchy shortcut mode")? {
            MODE_ALL_PAIRS => ShortcutMode::AllPairs,
            MODE_WITNESS_PRUNED => ShortcutMode::WitnessPruned {
                hop_limit: r.get_u64("hierarchy hop limit")? as usize,
            },
            tag => {
                return Err(SnapshotError::Malformed(format!(
                    "unknown shortcut mode tag {tag}"
                )))
            }
        };
        let extra_shortcuts = r.get_u64("hierarchy extra shortcuts")? as usize;
        let order = VertexOrder::from_ranks(ranks);
        let mut up: Vec<Vec<(VertexId, Weight)>> = Vec::with_capacity(n);
        for v in 0..n {
            let count = r.get_u32("hierarchy arc count")? as usize;
            if r.remaining() < count.saturating_mul(8) {
                return Err(SnapshotError::Truncated {
                    context: "hierarchy arc list",
                });
            }
            let mut arcs = Vec::with_capacity(count);
            let mut prev_rank: Option<u32> = None;
            for _ in 0..count {
                let target = r.get_u32("hierarchy arc target")?;
                let weight = r.get_u32("hierarchy arc weight")?;
                if target as usize >= n {
                    return Err(SnapshotError::Malformed(format!(
                        "arc target {target} of vertex {v} out of range for {n} vertices"
                    )));
                }
                let tr = order.rank(VertexId(target));
                if tr <= order.rank(VertexId::from_index(v)) {
                    return Err(SnapshotError::Malformed(format!(
                        "upward arc {v} -> {target} does not point to a higher rank"
                    )));
                }
                if prev_rank.is_some_and(|p| tr <= p) {
                    return Err(SnapshotError::Malformed(format!(
                        "upward arcs of vertex {v} are not sorted by rank"
                    )));
                }
                prev_rank = Some(tr);
                arcs.push((VertexId(target), weight));
            }
            up.push(arcs);
        }
        Ok(ContractionHierarchy::from_parts(
            order,
            up,
            mode,
            extra_shortcuts,
        ))
    }

    /// Deserializes a hierarchy section produced by
    /// [`Self::to_snapshot_bytes`].
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        let ch = Self::decode_from(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes after hierarchy section",
                r.remaining()
            )));
        }
        Ok(ch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::OrderingStrategy;
    use crate::query::ChQuery;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::QuerySet;
    use htsp_search::dijkstra_distance;

    fn build(side: usize, mode: ShortcutMode) -> (htsp_graph::Graph, ContractionHierarchy) {
        let g = grid(side, side, WeightRange::new(1, 25), 77);
        let ch = ContractionHierarchy::build(&g, OrderingStrategy::MinDegree, mode);
        (g, ch)
    }

    #[test]
    fn round_trip_preserves_structure_and_answers() {
        for mode in [
            ShortcutMode::AllPairs,
            ShortcutMode::WitnessPruned { hop_limit: 64 },
        ] {
            let (g, ch) = build(8, mode);
            let bytes = ch.to_snapshot_bytes();
            let back = ContractionHierarchy::from_snapshot_bytes(&bytes).expect("round trip");
            assert_eq!(back.mode(), ch.mode());
            assert_eq!(back.num_arcs(), ch.num_arcs());
            assert_eq!(back.num_extra_shortcuts(), ch.num_extra_shortcuts());
            assert_eq!(back.order(), ch.order());
            for v in g.vertices() {
                assert_eq!(back.up_arcs(v), ch.up_arcs(v));
                assert_eq!(back.down_neighbors(v), ch.down_neighbors(v));
            }
            let mut q = ChQuery::new(g.num_vertices());
            for query in &QuerySet::random(&g, 80, 5) {
                assert_eq!(
                    q.distance(&back, query.source, query.target),
                    dijkstra_distance(&g, query.source, query.target)
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let (_, ch) = build(5, ShortcutMode::AllPairs);
        let bytes = ch.to_snapshot_bytes();
        for cut in 0..bytes.len() {
            let err = ContractionHierarchy::from_snapshot_bytes(&bytes[..cut])
                .expect_err("strict prefix must fail");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::Malformed(_)
                ),
                "prefix of {cut} bytes gave unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn corrupted_ranks_and_arcs_are_malformed_not_panics() {
        let (_, ch) = build(5, ShortcutMode::AllPairs);
        let clean = ch.to_snapshot_bytes();
        let n = ch.num_vertices() as u32;

        // Rank out of range.
        let mut bad = clean.clone();
        bad[4..8].copy_from_slice(&(n + 7).to_le_bytes());
        assert!(matches!(
            ContractionHierarchy::from_snapshot_bytes(&bad),
            Err(SnapshotError::Malformed(_))
        ));

        // Duplicate rank: copy vertex 0's rank over vertex 1's.
        let mut bad = clean.clone();
        let r0: [u8; 4] = bad[4..8].try_into().unwrap();
        bad[8..12].copy_from_slice(&r0);
        assert!(matches!(
            ContractionHierarchy::from_snapshot_bytes(&bad),
            Err(SnapshotError::Malformed(_))
        ));

        // Unknown mode tag.
        let mode_at = 4 + 4 * ch.num_vertices();
        let mut bad = clean.clone();
        bad[mode_at] = 0xEE;
        assert!(matches!(
            ContractionHierarchy::from_snapshot_bytes(&bad),
            Err(SnapshotError::Malformed(_))
        ));

        // Arc target out of range: first arc target sits right after the
        // first nonzero arc count.
        let mut pos = mode_at + 1 + 8; // mode byte + extra_shortcuts
        let mut bad = clean.clone();
        loop {
            let count = u32::from_le_bytes(bad[pos..pos + 4].try_into().unwrap());
            pos += 4;
            if count > 0 {
                bad[pos..pos + 4].copy_from_slice(&(n + 1).to_le_bytes());
                break;
            }
        }
        assert!(matches!(
            ContractionHierarchy::from_snapshot_bytes(&bad),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (_, ch) = build(4, ShortcutMode::AllPairs);
        let mut bytes = ch.to_snapshot_bytes();
        bytes.extend_from_slice(&[0xAB, 0xCD]);
        assert!(matches!(
            ContractionHierarchy::from_snapshot_bytes(&bytes),
            Err(SnapshotError::Malformed(_))
        ));
    }
}
