//! CH construction: vertex contraction and the upward shortcut graph.

use crate::ordering::{mde_order, OrderingStrategy, VertexOrder};
use htsp_graph::cow::{CowStats, CowTable, DEFAULT_CHUNK};
use htsp_graph::par::{chunk_bounds, chunk_of, WorkerPool};
use htsp_graph::{Dist, Graph, VertexId, Weight, INF};
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// Controls which shortcuts are materialized during contraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShortcutMode {
    /// Insert a shortcut for every pair of higher-ranked neighbors (MDE-style;
    /// required for dynamic maintenance and shared with the tree
    /// decomposition — Lemma 4).
    AllPairs,
    /// Classic CH witness pruning: skip the shortcut if a path avoiding the
    /// contracted vertex is at most as short. `hop_limit` bounds the witness
    /// search (number of settled vertices); use `usize::MAX` for exact.
    WitnessPruned {
        /// Maximum settled vertices per witness search.
        hop_limit: usize,
    },
}

/// A contraction hierarchy: for every vertex, its *upward* neighbors (all
/// ranked higher) and the shortcut weight to each.
///
/// With [`ShortcutMode::AllPairs`] the upward neighbor set of `v` is exactly
/// the tree-decomposition neighbor set `X(v).N` of the paper, and the shortcut
/// weights are the `X(v).sc` array (Fig. 8).
///
/// Only the shortcut *weights* ever change after construction (weight-only
/// update batches preserve the arc topology), so the mutable `up` table uses
/// chunked copy-on-write storage while the order and the downward adjacency
/// are plain shared `Arc`s: cloning a hierarchy — which every snapshot
/// publication does transitively — costs chunk-pointer copies, and a repair
/// that rewrites `k` shortcut arrays clones `O(k / chunk)` chunks rather than
/// the whole table.
#[derive(Clone, Debug)]
pub struct ContractionHierarchy {
    order: Arc<VertexOrder>,
    /// `up[v]` = (higher-ranked neighbor, shortcut weight), sorted by rank
    /// ascending. Chunk-granular copy-on-write (the only mutable component).
    up: CowTable<(VertexId, Weight)>,
    /// `down[v]` = vertices that list `v` among their upward neighbors.
    /// Immutable after construction.
    down: Arc<Vec<Vec<VertexId>>>,
    mode: ShortcutMode,
    /// Number of shortcuts that do not correspond to an original edge.
    extra_shortcuts: usize,
}

impl AsRef<ContractionHierarchy> for ContractionHierarchy {
    fn as_ref(&self) -> &ContractionHierarchy {
        self
    }
}

impl ContractionHierarchy {
    /// Builds a CH over `graph` using the given ordering strategy and shortcut
    /// mode.
    pub fn build(graph: &Graph, strategy: OrderingStrategy, mode: ShortcutMode) -> Self {
        Self::build_pooled(graph, strategy, mode, &WorkerPool::sequential())
    }

    /// Builds a CH with construction parallelized over `pool`.
    ///
    /// The result is bit-identical for every pool size (see
    /// [`Self::build_with_order_pooled`] for the contract).
    pub fn build_pooled(
        graph: &Graph,
        strategy: OrderingStrategy,
        mode: ShortcutMode,
        pool: &WorkerPool,
    ) -> Self {
        let order = match strategy {
            OrderingStrategy::MinDegree => mde_order(graph),
            OrderingStrategy::Given(o) => {
                assert_eq!(
                    o.len(),
                    graph.num_vertices(),
                    "given order does not cover the graph"
                );
                o
            }
        };
        Self::build_with_order_pooled(graph, order, mode, pool)
    }

    /// Builds a CH with an explicit [`VertexOrder`].
    pub fn build_with_order(graph: &Graph, order: VertexOrder, mode: ShortcutMode) -> Self {
        Self::build_with_order_pooled(graph, order, mode, &WorkerPool::sequential())
    }

    /// Builds a CH with an explicit [`VertexOrder`], parallelized over `pool`.
    ///
    /// Contraction proceeds in *windows*: each window eliminates every
    /// current **local minimum** — an uncontracted vertex all of whose
    /// current neighbors rank higher. Local minima are mutually non-adjacent
    /// (of two adjacent vertices, the higher-ranked one has a lower-ranked
    /// neighbor), so their neighborhoods cannot interfere and the window's
    /// shortcut ops can be *computed* read-only against window-start state in
    /// parallel, then *applied* shard-parallel over disjoint adjacency
    /// ranges, in rank order within each shard.
    ///
    /// Determinism contract: the window decomposition is a pure function of
    /// the graph and the order (never the pool size), so any two pool sizes
    /// produce bit-identical hierarchies. For [`ShortcutMode::AllPairs`] the
    /// result moreover equals the classic one-vertex-at-a-time rank-order
    /// contraction exactly (min-plus elimination of an independent set of
    /// rank-local minima commutes with rank order), including the
    /// `extra_shortcuts` count. For [`ShortcutMode::WitnessPruned`] witness
    /// searches run against window-start state, which is deterministic but
    /// conservative: a witness missed because a concurrent elimination would
    /// have improved a path only means an extra (still correct) shortcut is
    /// kept.
    pub fn build_with_order_pooled(
        graph: &Graph,
        order: VertexOrder,
        mode: ShortcutMode,
        pool: &WorkerPool,
    ) -> Self {
        let n = graph.num_vertices();
        assert_eq!(order.len(), n);
        // Contraction graph: adjacency maps restricted to uncontracted
        // vertices, with current (possibly shortcut) weights.
        let mut adj: Vec<FxHashMap<u32, Weight>> = vec![FxHashMap::default(); n];
        for (_, u, v, w) in graph.edges() {
            insert_min(&mut adj[u.index()], v.0, w);
            insert_min(&mut adj[v.index()], u.0, w);
        }
        let mut up: Vec<Vec<(VertexId, Weight)>> = vec![Vec::new(); n];
        let mut extra_shortcuts = 0usize;
        let mut contracted = vec![false; n];
        // Vertices whose neighborhood changed since their last local-minimum
        // test: everything initially, then the neighbors of each window's
        // eliminated set. Kept sorted by rank so windows come out rank-sorted.
        let mut candidates: Vec<u32> = (0..n as u32).collect();
        candidates.sort_unstable_by_key(|&v| order.rank(VertexId(v)));
        let mut queued = vec![true; n];
        let mut remaining = n;

        while remaining > 0 {
            // Selection: the current local minima among the candidates. A
            // vertex that was not a local minimum stays one until a neighbor
            // is eliminated, and the lowest-ranked uncontracted vertex is
            // always a local minimum, so the window is never empty.
            let mut window: Vec<u32> = Vec::new();
            for &vi in &candidates {
                queued[vi as usize] = false;
                if contracted[vi as usize] {
                    continue;
                }
                let rv = order.rank(VertexId(vi));
                if adj[vi as usize]
                    .keys()
                    .all(|&u| order.rank(VertexId(u)) > rv)
                {
                    window.push(vi);
                }
            }
            debug_assert!(!window.is_empty(), "stalled with {remaining} uncontracted");

            // Compute phase (read-only, parallel): each eliminated vertex's
            // rank-sorted upward row and its kept shortcut pairs.
            let computed: Vec<ContractionResult> = pool.run("ch_contract", window.len(), |i| {
                let v = VertexId(window[i]);
                let mut nbrs: Vec<(VertexId, Weight)> = adj[v.index()]
                    .iter()
                    .map(|(&u, &w)| (VertexId(u), w))
                    .collect();
                nbrs.sort_by_key(|&(u, _)| order.rank(u));
                let mut pairs: Vec<(u32, u32, Weight)> = Vec::new();
                for i in 0..nbrs.len() {
                    let (a, wa) = nbrs[i];
                    for &(b, wb) in &nbrs[i + 1..] {
                        let via = (wa as u64 + wb as u64).min(u32::MAX as u64 - 1) as Weight;
                        let keep = match mode {
                            ShortcutMode::AllPairs => true,
                            ShortcutMode::WitnessPruned { hop_limit } => {
                                // A shortcut is needed unless a path that
                                // avoids v is at most as short. The search
                                // runs on the window-start contraction
                                // graph restricted to uncontracted
                                // vertices; searching the original graph
                                // is also correct but slower.
                                !has_witness(&adj, &order, v, a, b, Dist(via), hop_limit)
                            }
                        };
                        if keep {
                            pairs.push((a.0, b.0, via));
                        }
                    }
                }
                (nbrs, pairs)
            });

            // Bucket the window's ops per adjacency shard, iterating the
            // eliminated vertices in rank order so every target map sees its
            // ops in the same sequence a sequential contraction would emit.
            let bounds = chunk_bounds(n, pool.threads());
            let mut ops: Vec<Vec<ApplyOp>> = vec![Vec::new(); bounds.len()];
            let mut next_candidates: Vec<u32> = Vec::new();
            for (&v, (row, pairs)) in window.iter().zip(computed) {
                for &(a, b, via) in &pairs {
                    ops[chunk_of(&bounds, a as usize)].push(ApplyOp::Insert {
                        target: a,
                        other: b,
                        via,
                        count: true,
                    });
                    ops[chunk_of(&bounds, b as usize)].push(ApplyOp::Insert {
                        target: b,
                        other: a,
                        via,
                        count: false,
                    });
                }
                for &(u, _) in &row {
                    ops[chunk_of(&bounds, u.index())].push(ApplyOp::Remove {
                        target: u.0,
                        other: v,
                    });
                    if !queued[u.index()] {
                        queued[u.index()] = true;
                        next_candidates.push(u.0);
                    }
                }
                ops[chunk_of(&bounds, v as usize)].push(ApplyOp::Clear { target: v });
                up[v as usize] = row;
                contracted[v as usize] = true;
                remaining -= 1;
            }

            // Apply phase (shard-parallel): each worker owns a contiguous
            // adjacency range and applies exactly the ops targeting it, in
            // emission order, counting freshly created shortcut pairs.
            let created = pool.run_chunks("ch_apply", &mut adj, |ci, offset, chunk| {
                let mut local = 0usize;
                for op in &ops[ci] {
                    match *op {
                        ApplyOp::Insert {
                            target,
                            other,
                            via,
                            count,
                        } => {
                            let map = &mut chunk[target as usize - offset];
                            if count {
                                let existed = map.contains_key(&other);
                                if insert_min(map, other, via) && !existed {
                                    local += 1;
                                }
                            } else {
                                insert_min(map, other, via);
                            }
                        }
                        ApplyOp::Remove { target, other } => {
                            chunk[target as usize - offset].remove(&other);
                        }
                        ApplyOp::Clear { target } => {
                            let map = &mut chunk[target as usize - offset];
                            map.clear();
                            map.shrink_to_fit();
                        }
                    }
                }
                local
            });
            extra_shortcuts += created.iter().sum::<usize>();
            next_candidates.sort_unstable_by_key(|&v| order.rank(VertexId(v)));
            candidates = next_candidates;
        }
        let mut down: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for (v, ups) in up.iter().enumerate() {
            for &(u, _) in ups {
                down[u.index()].push(VertexId::from_index(v));
            }
        }
        ContractionHierarchy {
            order: Arc::new(order),
            up: CowTable::from_rows(up, DEFAULT_CHUNK),
            down: Arc::new(down),
            mode,
            extra_shortcuts,
        }
    }

    /// Reassembles a hierarchy from its constituent parts without contracting
    /// anything — the warm-restart path used by the snapshot decoder
    /// ([`crate::persist`]). `up[v]` must contain only higher-ranked
    /// neighbors sorted by rank ascending (exactly what [`Self::up_arcs`]
    /// yields); the downward adjacency is rebuilt by inversion, so a
    /// round-tripped hierarchy is structurally identical to a freshly built
    /// one.
    pub fn from_parts(
        order: VertexOrder,
        up: Vec<Vec<(VertexId, Weight)>>,
        mode: ShortcutMode,
        extra_shortcuts: usize,
    ) -> Self {
        let n = order.len();
        assert_eq!(up.len(), n, "up table does not cover the order");
        let mut down: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for (v, ups) in up.iter().enumerate() {
            for &(u, _) in ups {
                down[u.index()].push(VertexId::from_index(v));
            }
        }
        ContractionHierarchy {
            order: Arc::new(order),
            up: CowTable::from_rows(up, DEFAULT_CHUNK),
            down: Arc::new(down),
            mode,
            extra_shortcuts,
        }
    }

    /// The contraction order.
    pub fn order(&self) -> &VertexOrder {
        &self.order
    }

    /// Cumulative copy-on-write clone effort of the shortcut arrays (shared
    /// across all clones of this hierarchy's lineage).
    pub fn cow_stats(&self) -> CowStats {
        self.up.stats()
    }

    /// The shortcut mode used at construction time.
    pub fn mode(&self) -> ShortcutMode {
        self.mode
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.up.len()
    }

    /// Upward arcs of `v`: higher-ranked neighbors and shortcut weights,
    /// sorted by rank ascending. This is the `X(v).N` / `X(v).sc` pair of the
    /// tree decomposition when built with [`ShortcutMode::AllPairs`].
    #[inline]
    pub fn up_arcs(&self, v: VertexId) -> &[(VertexId, Weight)] {
        self.up.row(v.index())
    }

    /// Vertices whose upward arcs include `v` (the "supporters" used by the
    /// bottom-up shortcut update).
    #[inline]
    pub fn down_neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.down[v.index()]
    }

    /// Current weight of the upward shortcut from `v` to `u`, if present.
    pub fn shortcut_weight(&self, v: VertexId, u: VertexId) -> Option<Weight> {
        self.up[v.index()]
            .iter()
            .find(|&&(x, _)| x == u)
            .map(|&(_, w)| w)
    }

    /// Mutable access used by the dynamic-update module (chunk-granular
    /// copy-on-write: clones `v`'s chunk if a snapshot still shares it).
    pub(crate) fn up_arcs_mut(&mut self, v: VertexId) -> &mut Vec<(VertexId, Weight)> {
        self.up.make_mut(v.index())
    }

    /// Total number of upward arcs (original edges + shortcuts).
    pub fn num_arcs(&self) -> usize {
        self.up.num_entries()
    }

    /// Number of shortcut arcs that are not original edges (approximate for
    /// witness-pruned mode).
    pub fn num_extra_shortcuts(&self) -> usize {
        self.extra_shortcuts
    }

    /// Approximate index size in bytes (arcs dominate).
    pub fn index_size_bytes(&self) -> usize {
        self.num_arcs() * std::mem::size_of::<(VertexId, Weight)>()
            + self.num_vertices() * std::mem::size_of::<u32>()
    }

    /// Measured heap footprint: shortcut-table chunks, downward adjacency,
    /// and both rank arrays of the order.
    pub fn heap_bytes(&self) -> usize {
        let down_bytes = self.down.capacity() * std::mem::size_of::<Vec<VertexId>>()
            + self
                .down
                .iter()
                .map(|d| d.capacity() * std::mem::size_of::<VertexId>())
                .sum::<usize>();
        self.up.heap_bytes()
            + down_bytes
            + self.order.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<VertexId>())
    }

    /// Computes the shortest distance between `s` and `t` with a bidirectional
    /// upward search. Convenience wrapper around [`crate::query::ChQuery`].
    pub fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        crate::query::ChQuery::new(self.num_vertices()).distance(self, s, t)
    }
}

/// What the compute phase produces for one eliminated vertex: its
/// rank-sorted upward row and the kept shortcut pairs `(a, b, via)`.
type ContractionResult = (Vec<(VertexId, Weight)>, Vec<(u32, u32, Weight)>);

/// One targeted mutation of the contraction graph, bucketed per adjacency
/// shard by the window apply phase. `target` names the adjacency map the op
/// touches, so disjoint shards apply their buckets without synchronization.
#[derive(Clone, Copy, Debug)]
enum ApplyOp {
    /// Min-insert the shortcut `target — other`; `count` marks the forward
    /// direction of a pair, which counts toward `extra_shortcuts` when it
    /// creates a previously absent arc.
    Insert {
        target: u32,
        other: u32,
        via: Weight,
        count: bool,
    },
    /// Remove the arc `target — other` (other was eliminated).
    Remove { target: u32, other: u32 },
    /// Drop the eliminated vertex's own adjacency.
    Clear { target: u32 },
}

/// Inserts `key -> w` keeping the minimum; returns `true` if the map changed.
#[inline]
fn insert_min(map: &mut FxHashMap<u32, Weight>, key: u32, w: Weight) -> bool {
    match map.get_mut(&key) {
        Some(cur) => {
            if w < *cur {
                *cur = w;
                true
            } else {
                false
            }
        }
        None => {
            map.insert(key, w);
            true
        }
    }
}

/// Bounded Dijkstra on the live contraction graph, avoiding `skip`, to decide
/// whether the shortcut `a — b` (length `limit`) is redundant.
fn has_witness(
    adj: &[FxHashMap<u32, Weight>],
    order: &VertexOrder,
    skip: VertexId,
    a: VertexId,
    b: VertexId,
    limit: Dist,
    hop_limit: usize,
) -> bool {
    let _ = order;
    let mut dist: FxHashMap<u32, Dist> = FxHashMap::default();
    let mut heap = std::collections::BinaryHeap::new();
    dist.insert(a.0, Dist::ZERO);
    heap.push(std::cmp::Reverse((Dist::ZERO, a.0)));
    let mut settled = 0usize;
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if d > *dist.get(&v).unwrap_or(&INF) {
            continue;
        }
        if d > limit {
            break;
        }
        if v == b.0 {
            // Found a path at most as long as the candidate shortcut; note the
            // comparison is <= because ties make the shortcut redundant.
            return d <= limit;
        }
        settled += 1;
        if settled >= hop_limit {
            break;
        }
        for (&u, &w) in &adj[v as usize] {
            if u == skip.0 {
                continue;
            }
            let nd = d.saturating_add_weight(w);
            if nd <= limit && nd < *dist.get(&u).unwrap_or(&INF) {
                dist.insert(u, nd);
                heap.push(std::cmp::Reverse((nd, u)));
            }
        }
    }
    dist.get(&b.0).is_some_and(|&d| d <= limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, random_geometric, WeightRange};
    use htsp_graph::QuerySet;
    use htsp_search::dijkstra_distance;

    fn check_all_queries(g: &Graph, ch: &ContractionHierarchy, n_queries: usize, seed: u64) {
        let qs = QuerySet::random(g, n_queries, seed);
        let mut query = crate::query::ChQuery::new(g.num_vertices());
        for q in &qs {
            let expect = dijkstra_distance(g, q.source, q.target);
            let got = query.distance(ch, q.source, q.target);
            assert_eq!(got, expect, "CH distance mismatch for {:?}", q);
        }
    }

    #[test]
    fn all_pairs_ch_exact_on_grid() {
        let g = grid(8, 8, WeightRange::new(1, 20), 5);
        let ch =
            ContractionHierarchy::build(&g, OrderingStrategy::MinDegree, ShortcutMode::AllPairs);
        check_all_queries(&g, &ch, 150, 11);
    }

    #[test]
    fn witness_pruned_ch_exact_on_grid() {
        let g = grid(8, 8, WeightRange::new(1, 20), 5);
        let ch = ContractionHierarchy::build(
            &g,
            OrderingStrategy::MinDegree,
            ShortcutMode::WitnessPruned {
                hop_limit: usize::MAX,
            },
        );
        check_all_queries(&g, &ch, 150, 12);
    }

    #[test]
    fn witness_pruning_never_adds_more_arcs() {
        let g = grid(10, 10, WeightRange::new(1, 9), 3);
        let all =
            ContractionHierarchy::build(&g, OrderingStrategy::MinDegree, ShortcutMode::AllPairs);
        let pruned = ContractionHierarchy::build(
            &g,
            OrderingStrategy::MinDegree,
            ShortcutMode::WitnessPruned {
                hop_limit: usize::MAX,
            },
        );
        assert!(pruned.num_arcs() <= all.num_arcs());
    }

    #[test]
    fn all_pairs_ch_exact_on_geometric() {
        let g = random_geometric(220, 3, WeightRange::new(1, 50), 19);
        let ch =
            ContractionHierarchy::build(&g, OrderingStrategy::MinDegree, ShortcutMode::AllPairs);
        check_all_queries(&g, &ch, 100, 23);
    }

    #[test]
    fn up_arcs_point_to_higher_ranks() {
        let g = grid(6, 6, WeightRange::new(1, 7), 2);
        let ch =
            ContractionHierarchy::build(&g, OrderingStrategy::MinDegree, ShortcutMode::AllPairs);
        for v in g.vertices() {
            for &(u, _) in ch.up_arcs(v) {
                assert!(ch.order().higher(u, v), "{u} should outrank {v}");
            }
            // Sorted ascending by rank.
            let ranks: Vec<u32> = ch
                .up_arcs(v)
                .iter()
                .map(|&(u, _)| ch.order().rank(u))
                .collect();
            let mut sorted = ranks.clone();
            sorted.sort_unstable();
            assert_eq!(ranks, sorted);
        }
    }

    #[test]
    fn down_neighbors_are_inverse_of_up() {
        let g = grid(5, 5, WeightRange::new(1, 7), 2);
        let ch =
            ContractionHierarchy::build(&g, OrderingStrategy::MinDegree, ShortcutMode::AllPairs);
        for v in g.vertices() {
            for &(u, _) in ch.up_arcs(v) {
                assert!(ch.down_neighbors(u).contains(&v));
            }
        }
    }

    #[test]
    fn given_order_is_respected() {
        let g = grid(4, 4, WeightRange::new(1, 9), 2);
        // Reverse-id order.
        let n = g.num_vertices();
        let ranks: Vec<u32> = (0..n).map(|v| (n - 1 - v) as u32).collect();
        let order = VertexOrder::from_ranks(ranks);
        let ch = ContractionHierarchy::build(
            &g,
            OrderingStrategy::Given(order.clone()),
            ShortcutMode::AllPairs,
        );
        assert_eq!(ch.order(), &order);
        check_all_queries(&g, &ch, 60, 9);
    }

    #[test]
    fn shortcut_weight_lookup() {
        let g = grid(4, 4, WeightRange::new(2, 2), 2);
        let ch =
            ContractionHierarchy::build(&g, OrderingStrategy::MinDegree, ShortcutMode::AllPairs);
        // Every original edge (u, v) must appear as an upward arc of the
        // lower-ranked endpoint with weight <= original.
        for (_, u, v, w) in g.edges() {
            let (lo, hi) = if ch.order().higher(u, v) {
                (v, u)
            } else {
                (u, v)
            };
            let sc = ch
                .shortcut_weight(lo, hi)
                .expect("edge must be an upward arc");
            assert!(sc <= w);
        }
    }

    #[test]
    fn pooled_builds_are_bit_identical_across_thread_counts() {
        let g = random_geometric(300, 3, WeightRange::new(1, 60), 77);
        for mode in [
            ShortcutMode::AllPairs,
            ShortcutMode::WitnessPruned { hop_limit: 32 },
        ] {
            let base = ContractionHierarchy::build_pooled(
                &g,
                OrderingStrategy::MinDegree,
                mode,
                &WorkerPool::sequential(),
            );
            for threads in [2usize, 3, 8] {
                let ch = ContractionHierarchy::build_pooled(
                    &g,
                    OrderingStrategy::MinDegree,
                    mode,
                    &WorkerPool::new(threads),
                );
                assert_eq!(ch.order(), base.order());
                assert_eq!(ch.num_extra_shortcuts(), base.num_extra_shortcuts());
                for v in g.vertices() {
                    assert_eq!(ch.up_arcs(v), base.up_arcs(v), "{mode:?} row of {v}");
                    assert_eq!(ch.down_neighbors(v), base.down_neighbors(v));
                }
            }
        }
    }

    #[test]
    fn pooled_all_pairs_build_is_exact() {
        let g = grid(9, 9, WeightRange::new(1, 30), 21);
        let ch = ContractionHierarchy::build_pooled(
            &g,
            OrderingStrategy::MinDegree,
            ShortcutMode::AllPairs,
            &WorkerPool::new(4),
        );
        check_all_queries(&g, &ch, 150, 33);
    }

    #[test]
    fn index_size_is_positive() {
        let g = grid(5, 5, WeightRange::new(1, 9), 2);
        let ch =
            ContractionHierarchy::build(&g, OrderingStrategy::MinDegree, ShortcutMode::AllPairs);
        assert!(ch.index_size_bytes() > 0);
        assert!(ch.num_arcs() >= g.num_edges());
    }
}
