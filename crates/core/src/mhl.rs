//! MHL: Multi-stage Hierarchical 2-hop Labeling (§V-A).
//!
//! Lemma 4 observes that DH2H's bottom-up shortcut update produces exactly the
//! shortcuts DCH needs, so the CH-style query can be released as soon as the
//! shortcut phase finishes, long before the label phase completes. MHL
//! packages that observation for a non-partitioned index: it is an H2H index
//! whose maintenance is split into the two phases, tracking which query
//! machinery (BiDijkstra → CH → H2H) is currently consistent with the latest
//! batch.

use htsp_ch::ChQuery;
use htsp_graph::{
    Dist, DynamicSpIndex, Graph, UpdateBatch, UpdateTimeline, VertexId,
};
use htsp_search::BiDijkstra;
use htsp_td::H2HIndex;
use std::time::Instant;

/// The query stages of MHL, fastest-available last.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MhlStage {
    /// Only the graph has the new weights; queries fall back to BiDijkstra.
    BiDijkstra,
    /// Shortcut arrays repaired; CH queries are correct.
    Ch,
    /// Labels repaired; full H2H query speed.
    H2h,
}

/// The multi-stage (non-partitioned) hub labeling index.
pub struct Mhl {
    h2h: H2HIndex,
    ch_query: ChQuery,
    bidij: BiDijkstra,
    stage: MhlStage,
}

impl Mhl {
    /// Builds the index from scratch.
    pub fn build(graph: &Graph) -> Self {
        let h2h = H2HIndex::build(graph);
        let n = graph.num_vertices();
        Mhl {
            h2h,
            ch_query: ChQuery::new(n),
            bidij: BiDijkstra::new(n),
            stage: MhlStage::H2h,
        }
    }

    /// The stage whose query machinery is currently consistent.
    pub fn stage(&self) -> MhlStage {
        self.stage
    }

    /// The underlying H2H index.
    pub fn h2h(&self) -> &H2HIndex {
        &self.h2h
    }

    /// Answers a query with the machinery of a specific stage (used by the
    /// QPS-evolution experiment to measure each stage's query time).
    pub fn distance_with(&mut self, graph: &Graph, stage: MhlStage, s: VertexId, t: VertexId) -> Dist {
        match stage {
            MhlStage::BiDijkstra => self.bidij.distance(graph, s, t),
            MhlStage::Ch => self
                .ch_query
                .distance(self.h2h.decomposition().hierarchy(), s, t),
            MhlStage::H2h => self.h2h.distance(s, t),
        }
    }
}

impl DynamicSpIndex for Mhl {
    fn name(&self) -> &'static str {
        "MHL"
    }

    fn num_query_stages(&self) -> usize {
        3
    }

    fn apply_batch(&mut self, graph: &Graph, batch: &UpdateBatch) -> UpdateTimeline {
        let mut timeline = UpdateTimeline::default();
        // U-Stage 1: the caller already refreshed the graph; BiDijkstra is
        // immediately available.
        self.stage = MhlStage::BiDijkstra;
        timeline.push("U1: on-spot edge update", std::time::Duration::ZERO);

        // U-Stage 2: bottom-up shortcut update → CH query available.
        let t = Instant::now();
        let changes = self.h2h.update_shortcuts(graph, batch.as_slice());
        self.stage = MhlStage::Ch;
        timeline.push("U2: shortcut update", t.elapsed());

        // U-Stage 3: top-down label update → H2H query available.
        let t = Instant::now();
        let changed: Vec<VertexId> = changes.iter().map(|c| c.from).collect();
        self.h2h.update_labels_for(&changed);
        self.stage = MhlStage::H2h;
        timeline.push("U3: label update", t.elapsed());
        timeline
    }

    fn distance(&mut self, graph: &Graph, s: VertexId, t: VertexId) -> Dist {
        let stage = self.stage;
        self.distance_with(graph, stage, s, t)
    }

    fn distance_at_stage(&mut self, graph: &Graph, stage: usize, s: VertexId, t: VertexId) -> Dist {
        let stage = match stage {
            0 => MhlStage::BiDijkstra,
            1 => MhlStage::Ch,
            _ => MhlStage::H2h,
        };
        self.distance_with(graph, stage, s, t)
    }

    fn index_size_bytes(&self) -> usize {
        self.h2h.index_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::{QuerySet, UpdateGenerator};
    use htsp_search::dijkstra_distance;

    #[test]
    fn all_stages_answer_exactly_after_updates() {
        let mut g = grid(8, 8, WeightRange::new(5, 40), 3);
        let mut mhl = Mhl::build(&g);
        let mut gen = UpdateGenerator::new(7);
        for round in 0..2 {
            let batch = gen.generate(&g, 20);
            g.apply_batch(&batch);
            let timeline = mhl.apply_batch(&g, &batch);
            assert_eq!(timeline.stages.len(), 3);
            assert_eq!(mhl.stage(), MhlStage::H2h);
            let qs = QuerySet::random(&g, 60, 11 + round);
            for q in &qs {
                let expect = dijkstra_distance(&g, q.source, q.target);
                for stage in 0..3 {
                    assert_eq!(
                        mhl.distance_at_stage(&g, stage, q.source, q.target),
                        expect,
                        "stage {stage} mismatch for {:?}",
                        q
                    );
                }
            }
        }
    }

    #[test]
    fn final_stage_is_h2h_and_size_reported() {
        let g = grid(6, 6, WeightRange::new(1, 9), 5);
        let mut mhl = Mhl::build(&g);
        assert_eq!(mhl.num_query_stages(), 3);
        assert!(mhl.index_size_bytes() > 0);
        assert_eq!(
            mhl.distance(&g, VertexId(0), VertexId(35)),
            dijkstra_distance(&g, VertexId(0), VertexId(35))
        );
    }
}
