//! MHL: Multi-stage Hierarchical 2-hop Labeling (§V-A).
//!
//! Lemma 4 observes that DH2H's bottom-up shortcut update produces exactly the
//! shortcuts DCH needs, so the CH-style query can be released as soon as the
//! shortcut phase finishes, long before the label phase completes. MHL
//! packages that observation for a non-partitioned index: it is an H2H index
//! whose maintenance is split into the two phases, publishing the query
//! machinery (BiDijkstra → CH → H2H) that is currently consistent with the
//! latest batch as an immutable snapshot after each phase.

use htsp_ch::{ChQuery, ChQuerySession};
use htsp_graph::{
    Dist, FallbackSession, Graph, IndexMaintainer, QuerySession, QueryView, ScratchPool,
    SnapshotError, SnapshotPublisher, UpdateBatch, UpdateTimeline, VertexId,
};
use htsp_search::{BiDijkstra, BiDijkstraSession};
use htsp_td::H2HIndex;
use std::sync::Arc;
use std::time::Instant;

/// The query stages of MHL, fastest-available last.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MhlStage {
    /// Only the graph has the new weights; queries fall back to BiDijkstra.
    BiDijkstra,
    /// Shortcut arrays repaired; CH queries are correct.
    Ch,
    /// Labels repaired; full H2H query speed.
    H2h,
}

impl MhlStage {
    fn index(self) -> usize {
        match self {
            MhlStage::BiDijkstra => 0,
            MhlStage::Ch => 1,
            MhlStage::H2h => 2,
        }
    }

    fn from_index(i: usize) -> Self {
        match i {
            0 => MhlStage::BiDijkstra,
            1 => MhlStage::Ch,
            _ => MhlStage::H2h,
        }
    }
}

/// Immutable MHL snapshot: one graph version, one query stage.
pub struct MhlView {
    graph: Arc<Graph>,
    stage: MhlStage,
    /// Only the components this view's stage actually reads are pinned —
    /// anything else would force the maintainer's next `Arc::make_mut` into
    /// a needless deep clone while this snapshot is current.
    parts: StageParts,
}

/// The per-stage component set of an [`MhlView`].
enum StageParts {
    BiDijkstra {
        bidij: Arc<ScratchPool<BiDijkstra>>,
    },
    Ch {
        h2h: Arc<H2HIndex>,
        ch: Arc<ScratchPool<ChQuery>>,
    },
    H2h {
        h2h: Arc<H2HIndex>,
    },
}

impl QueryView for MhlView {
    fn algorithm(&self) -> &'static str {
        "MHL"
    }

    fn stage(&self) -> usize {
        self.stage.index()
    }

    fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return Dist::ZERO;
        }
        match &self.parts {
            StageParts::BiDijkstra { bidij } => bidij.with(|b| b.distance(&self.graph, s, t)),
            StageParts::Ch { h2h, ch } => {
                ch.with(|q| q.distance(h2h.decomposition().hierarchy(), s, t))
            }
            StageParts::H2h { h2h } => h2h.distance(s, t),
        }
    }

    fn session(&self) -> Box<dyn QuerySession + '_> {
        match &self.parts {
            StageParts::BiDijkstra { bidij } => {
                Box::new(BiDijkstraSession::new(&self.graph, bidij.checkout()))
            }
            StageParts::Ch { h2h, ch } => Box::new(ChQuerySession::new(
                h2h.decomposition().hierarchy(),
                ch.checkout(),
            )),
            // Label lookups: the per-target loop is already optimal.
            StageParts::H2h { .. } => Box::new(FallbackSession::new(self)),
        }
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn index_size_bytes(&self) -> usize {
        match &self.parts {
            StageParts::BiDijkstra { .. } => 0,
            StageParts::Ch { h2h, .. } | StageParts::H2h { h2h } => h2h.index_size_bytes(),
        }
    }
}

/// The multi-stage (non-partitioned) hub labeling index.
pub struct Mhl {
    graph: Arc<Graph>,
    h2h: Arc<H2HIndex>,
    bidij: Arc<ScratchPool<BiDijkstra>>,
    ch: Arc<ScratchPool<ChQuery>>,
    stage: MhlStage,
}

impl Mhl {
    /// Builds the index from scratch.
    pub fn build(graph: &Graph) -> Self {
        Self::build_pooled(graph, &htsp_graph::WorkerPool::sequential())
    }

    /// Builds the index with contraction windows and per-level label fills
    /// computed on `pool`. Bit-identical to [`Mhl::build`] at any thread
    /// count.
    pub fn build_pooled(graph: &Graph, pool: &htsp_graph::WorkerPool) -> Self {
        let h2h = H2HIndex::build_pooled(graph, pool);
        let n = graph.num_vertices();
        Mhl {
            graph: Arc::new(graph.clone()),
            h2h: Arc::new(h2h),
            bidij: Arc::new(ScratchPool::new(move || BiDijkstra::new(n))),
            ch: Arc::new(ScratchPool::new(move || ChQuery::new(n))),
            stage: MhlStage::H2h,
        }
    }

    /// Warm restart: reassembles the index from `graph` and an H2H section
    /// previously produced by `snapshot_state`, skipping both contraction and
    /// label construction. The restored index starts at the H2H stage.
    pub fn from_state(graph: &Graph, state: &[u8]) -> Result<Self, SnapshotError> {
        let h2h = H2HIndex::from_snapshot_bytes(state)?;
        if h2h.decomposition().num_vertices() != graph.num_vertices() {
            return Err(SnapshotError::Malformed(format!(
                "index state covers {} vertices but the graph has {}",
                h2h.decomposition().num_vertices(),
                graph.num_vertices()
            )));
        }
        let n = graph.num_vertices();
        Ok(Mhl {
            graph: Arc::new(graph.clone()),
            h2h: Arc::new(h2h),
            bidij: Arc::new(ScratchPool::new(move || BiDijkstra::new(n))),
            ch: Arc::new(ScratchPool::new(move || ChQuery::new(n))),
            stage: MhlStage::H2h,
        })
    }

    /// The stage whose query machinery is currently consistent.
    pub fn stage(&self) -> MhlStage {
        self.stage
    }

    /// The underlying H2H index.
    pub fn h2h(&self) -> &H2HIndex {
        &self.h2h
    }

    fn view_with(&self, stage: MhlStage) -> Arc<dyn QueryView> {
        let parts = match stage {
            MhlStage::BiDijkstra => StageParts::BiDijkstra {
                bidij: Arc::clone(&self.bidij),
            },
            MhlStage::Ch => StageParts::Ch {
                h2h: Arc::clone(&self.h2h),
                ch: Arc::clone(&self.ch),
            },
            MhlStage::H2h => StageParts::H2h {
                h2h: Arc::clone(&self.h2h),
            },
        };
        Arc::new(MhlView {
            graph: Arc::clone(&self.graph),
            stage,
            parts,
        })
    }
}

impl IndexMaintainer for Mhl {
    fn name(&self) -> &'static str {
        "MHL"
    }

    fn num_query_stages(&self) -> usize {
        3
    }

    fn apply_batch(
        &mut self,
        _graph: &Graph,
        batch: &UpdateBatch,
        publisher: &SnapshotPublisher,
    ) -> UpdateTimeline {
        let mut timeline = UpdateTimeline::default();
        // U-Stage 1: install the new weights; BiDijkstra on the fresh graph
        // is immediately available.
        let t = Instant::now();
        Arc::make_mut(&mut self.graph).apply_batch(batch);
        self.stage = MhlStage::BiDijkstra;
        publisher.publish(self.view_with(MhlStage::BiDijkstra));
        timeline.push("U1: on-spot edge update", t.elapsed());

        // U-Stage 2: bottom-up shortcut update → CH query available.
        let t = Instant::now();
        let changes = Arc::make_mut(&mut self.h2h).update_shortcuts(&self.graph, batch.as_slice());
        self.stage = MhlStage::Ch;
        publisher.publish(self.view_with(MhlStage::Ch));
        timeline.push("U2: shortcut update", t.elapsed());

        // U-Stage 3: top-down label update → H2H query available.
        let t = Instant::now();
        let changed: Vec<VertexId> = changes.iter().map(|c| c.from).collect();
        Arc::make_mut(&mut self.h2h).update_labels_for(&changed);
        self.stage = MhlStage::H2h;
        publisher.publish(self.view_with(MhlStage::H2h));
        timeline.push("U3: label update", t.elapsed());
        timeline
    }

    fn current_view(&self) -> Arc<dyn QueryView> {
        self.view_with(self.stage)
    }

    fn view_at_stage(&self, stage: usize) -> Arc<dyn QueryView> {
        self.view_with(MhlStage::from_index(stage))
    }

    fn index_size_bytes(&self) -> usize {
        self.h2h.index_size_bytes()
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(self.h2h.to_snapshot_bytes())
    }

    fn storage_bytes(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("h2h_labels", self.h2h.label_heap_bytes()),
            (
                "ch_shortcuts",
                self.h2h.decomposition().hierarchy().heap_bytes(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::{QuerySet, UpdateGenerator};
    use htsp_search::dijkstra_distance;

    #[test]
    fn all_stages_answer_exactly_after_updates() {
        let mut g = grid(8, 8, WeightRange::new(5, 40), 3);
        let mut mhl = Mhl::build(&g);
        let mut gen = UpdateGenerator::new(7);
        for round in 0..2 {
            let batch = gen.generate(&g, 20);
            g.apply_batch(&batch);
            let publisher = SnapshotPublisher::new(mhl.current_view());
            let timeline = mhl.apply_batch(&g, &batch, &publisher);
            assert_eq!(timeline.stages.len(), 3);
            assert_eq!(mhl.stage(), MhlStage::H2h);
            // One snapshot per stage was published.
            assert_eq!(publisher.take_log().len(), 3);
            let qs = QuerySet::random(&g, 60, 11 + round);
            for q in &qs {
                let expect = dijkstra_distance(&g, q.source, q.target);
                for stage in 0..3 {
                    assert_eq!(
                        mhl.view_at_stage(stage).distance(q.source, q.target),
                        expect,
                        "stage {stage} mismatch for {:?}",
                        q
                    );
                }
            }
        }
    }

    #[test]
    fn final_stage_is_h2h_and_size_reported() {
        let g = grid(6, 6, WeightRange::new(1, 9), 5);
        let mhl = Mhl::build(&g);
        assert_eq!(mhl.num_query_stages(), 3);
        assert!(IndexMaintainer::index_size_bytes(&mhl) > 0);
        let view = mhl.current_view();
        assert_eq!(view.stage(), 2);
        assert_eq!(
            view.distance(VertexId(0), VertexId(35)),
            dijkstra_distance(&g, VertexId(0), VertexId(35))
        );
    }
}
