//! PostMHL: Post-partitioned Multi-stage Hub Labeling (§VI).
//!
//! PostMHL starts from a *global* MDE tree decomposition (so the final query
//! stage reaches the H2H-equivalent optimum promised by Theorem 1) and derives
//! the partition structure from it with TD-partitioning (Algorithm 2). One
//! tree holds all three index components of Figure 8:
//!
//! * the **overlay index** — the distance arrays of the overlay vertices
//!   (every vertex that is not inside a chosen partition subtree);
//! * the **post-boundary index** — for every in-partition vertex, the distance
//!   array entries towards its in-partition ancestors plus the boundary array
//!   `disB` towards its partition's boundary vertices;
//! * the **cross-boundary index** — the distance array entries towards the
//!   overlay ancestors.
//!
//! Maintenance (Figure 9) is staged: on-spot edge update → shortcut-array
//! update → overlay label update → post-boundary update (per partition, in
//! parallel) → cross-boundary update (per partition, in parallel). Each stage
//! that releases faster query machinery publishes an immutable snapshot:
//! BiDijkstra → PCH → post-boundary → cross-boundary (plain H2H query).

use htsp_ch::{ChQuery, ChQuerySession};
use htsp_graph::cow::{CowStats, CowTable, DEFAULT_CHUNK};
use htsp_graph::{
    Dist, FallbackSession, Graph, IndexMaintainer, QuerySession, QueryView, ScratchPool,
    SnapshotPublisher, UpdateBatch, UpdateTimeline, VertexId, INF,
};
use htsp_partition::{td_partition, TdPartition, TdPartitionConfig};
use htsp_search::{BiDijkstra, BiDijkstraSession};
use htsp_td::{H2HIndex, TreeDecomposition};
use rustc_hash::FxHashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// PostMHL construction parameters (the `τ`, `k_e`, `β_l`, `β_u` of
/// Algorithm 2 plus the maintenance thread count).
#[derive(Clone, Copy, Debug)]
pub struct PostMhlConfig {
    /// TD-partitioning parameters.
    pub partitioning: TdPartitionConfig,
    /// Number of worker threads for the partition-parallel label stages.
    pub num_threads: usize,
}

impl Default for PostMhlConfig {
    fn default() -> Self {
        PostMhlConfig {
            partitioning: TdPartitionConfig::default(),
            num_threads: 4,
        }
    }
}

/// The currently available query stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PostMhlStage {
    /// Q-Stage 1: index-free BiDijkstra.
    BiDijkstra,
    /// Q-Stage 2: partitioned CH search on the shared shortcut arrays.
    Pch,
    /// Q-Stage 3: post-boundary query (`disB` + in-partition labels + overlay).
    PostBoundary,
    /// Q-Stage 4: cross-boundary query (full H2H, the Theorem 1 optimum).
    CrossBoundary,
}

impl PostMhlStage {
    fn index(self) -> usize {
        match self {
            PostMhlStage::BiDijkstra => 0,
            PostMhlStage::Pch => 1,
            PostMhlStage::PostBoundary => 2,
            PostMhlStage::CrossBoundary => 3,
        }
    }

    fn from_index(i: usize) -> Self {
        match i {
            0 => PostMhlStage::BiDijkstra,
            1 => PostMhlStage::Pch,
            2 => PostMhlStage::PostBoundary,
            _ => PostMhlStage::CrossBoundary,
        }
    }
}

/// Full H2H distance query over the global labels (the cross-boundary /
/// final stage; identical machinery to DH2H, per Remark 2).
fn h2h_distance(td: &TreeDecomposition, dis: &CowTable<Dist>, s: VertexId, t: VertexId) -> Dist {
    if s == t {
        return Dist::ZERO;
    }
    let x = match td.lca(s, t) {
        Some(x) => x,
        None => return INF,
    };
    if x == s {
        return dis.row(t.index())[td.depth(s) as usize];
    }
    if x == t {
        return dis.row(s.index())[td.depth(t) as usize];
    }
    let ds = dis.row(s.index());
    let dt = dis.row(t.index());
    let mut best = INF;
    let xd = td.depth(x) as usize;
    let cand = ds[xd].saturating_add(dt[xd]);
    if cand < best {
        best = cand;
    }
    for &(u, _) in td.bag(x) {
        let i = td.depth(u) as usize;
        let cand = ds[i].saturating_add(dt[i]);
        if cand < best {
            best = cand;
        }
    }
    best
}

/// Post-boundary query (Q-Stage 3): same-partition pairs use the
/// in-partition labels plus `disB`; all other pairs concatenate `disB`
/// arrays through the overlay.
fn post_boundary_distance(
    td: &TreeDecomposition,
    dis: &CowTable<Dist>,
    disb: &CowTable<Dist>,
    tdp: &TdPartition,
    s: VertexId,
    t: VertexId,
) -> Dist {
    if s == t {
        return Dist::ZERO;
    }
    let ps = tdp.partition_of(s);
    let pt = tdp.partition_of(t);
    match (ps, pt) {
        (Some(pi), Some(pj)) if pi == pj => {
            let mut best = INF;
            // Route through any boundary vertex of the shared partition
            // (the disB rows are ordered like `tdp.boundary(pi)`).
            for (ds, dt) in disb.row(s.index()).iter().zip(disb.row(t.index())) {
                let cand = ds.saturating_add(*dt);
                if cand < best {
                    best = cand;
                }
            }
            // Route through the in-partition separator (the LCA's bag
            // members inside the partition; their label entries belong to
            // the post-boundary index and are already repaired).
            if let Some(x) = td.lca(s, t) {
                if tdp.partition_of(x) == Some(pi) {
                    let xd = td.depth(x) as usize;
                    let cand = dis.row(s.index())[xd].saturating_add(dis.row(t.index())[xd]);
                    if cand < best {
                        best = cand;
                    }
                    for &(u, _) in td.bag(x) {
                        if tdp.partition_of(u) != Some(pi) {
                            continue;
                        }
                        let i = td.depth(u) as usize;
                        let cand = dis.row(s.index())[i].saturating_add(dis.row(t.index())[i]);
                        if cand < best {
                            best = cand;
                        }
                    }
                }
            }
            best
        }
        _ => {
            // Cross-partition (or overlay endpoints): concatenate through
            // the boundary vertices using disB and the overlay labels.
            let sides = |v: VertexId| -> Vec<(VertexId, Dist)> {
                match tdp.partition_of(v) {
                    None => vec![(v, Dist::ZERO)],
                    Some(pi) => tdp
                        .boundary(pi)
                        .iter()
                        .enumerate()
                        .map(|(j, &b)| (b, disb.row(v.index())[j]))
                        .collect(),
                }
            };
            let from_s = sides(s);
            let from_t = sides(t);
            let mut best = INF;
            for &(bp, dp) in &from_s {
                if dp.is_inf() {
                    continue;
                }
                for &(bq, dq) in &from_t {
                    if dq.is_inf() {
                        continue;
                    }
                    let mid = if bp == bq {
                        Dist::ZERO
                    } else {
                        // Overlay distance: a plain H2H query, valid as soon
                        // as the overlay labels are updated (the overlay set
                        // is upward-closed).
                        h2h_distance(td, dis, bp, bq)
                    };
                    let cand = dp.saturating_add(mid).saturating_add(dq);
                    if cand < best {
                        best = cand;
                    }
                }
            }
            best
        }
    }
}

/// Immutable PostMHL snapshot: one graph version, one query stage.
pub struct PostMhlView {
    graph: Arc<Graph>,
    stage: PostMhlStage,
    /// Only the components this view's stage actually reads are pinned —
    /// anything else would force the maintainer's next `Arc::make_mut` into
    /// a needless deep clone while this snapshot is current.
    parts: StageParts,
}

/// The per-stage component set of a [`PostMhlView`].
enum StageParts {
    BiDijkstra {
        bidij: Arc<ScratchPool<BiDijkstra>>,
    },
    Pch {
        td: Arc<TreeDecomposition>,
        ch: Arc<ScratchPool<ChQuery>>,
    },
    PostBoundary {
        td: Arc<TreeDecomposition>,
        dis: CowTable<Dist>,
        disb: CowTable<Dist>,
        tdp: Arc<TdPartition>,
    },
    CrossBoundary {
        td: Arc<TreeDecomposition>,
        dis: CowTable<Dist>,
    },
}

impl QueryView for PostMhlView {
    fn algorithm(&self) -> &'static str {
        "PostMHL"
    }

    fn stage(&self) -> usize {
        self.stage.index()
    }

    fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return Dist::ZERO;
        }
        match &self.parts {
            StageParts::BiDijkstra { bidij } => bidij.with(|b| b.distance(&self.graph, s, t)),
            StageParts::Pch { td, ch } => ch.with(|q| q.distance(td.hierarchy(), s, t)),
            StageParts::PostBoundary { td, dis, disb, tdp } => {
                post_boundary_distance(td, dis, disb, tdp, s, t)
            }
            StageParts::CrossBoundary { td, dis } => h2h_distance(td, dis, s, t),
        }
    }

    fn session(&self) -> Box<dyn QuerySession + '_> {
        match &self.parts {
            StageParts::BiDijkstra { bidij } => {
                Box::new(BiDijkstraSession::new(&self.graph, bidij.checkout()))
            }
            // Q-Stage 2 runs on the shared shortcut arrays, which form a full
            // contraction hierarchy — the CH session's shared-forward-search
            // one-to-many applies as-is.
            StageParts::Pch { td, ch } => {
                Box::new(ChQuerySession::new(td.hierarchy(), ch.checkout()))
            }
            // Label stages: per-target lookups are the batch algorithm.
            StageParts::PostBoundary { .. } | StageParts::CrossBoundary { .. } => {
                Box::new(FallbackSession::new(self))
            }
        }
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn index_size_bytes(&self) -> usize {
        match &self.parts {
            StageParts::BiDijkstra { .. } => 0,
            StageParts::Pch { td, .. } => td.hierarchy().index_size_bytes(),
            StageParts::PostBoundary { td, dis, disb, .. } => {
                let labels = dis.num_entries() + disb.num_entries();
                labels * std::mem::size_of::<Dist>() + td.hierarchy().index_size_bytes()
            }
            StageParts::CrossBoundary { td, dis } => {
                dis.num_entries() * std::mem::size_of::<Dist>() + td.hierarchy().index_size_bytes()
            }
        }
    }
}

/// The Post-partitioned Multi-stage Hub Labeling index (write half).
pub struct PostMhl {
    config: PostMhlConfig,
    /// Own copy of the graph (kept in sync with update batches).
    graph: Arc<Graph>,
    /// The global MDE tree decomposition (shared shortcut arrays; the
    /// mutable arc weights are chunked copy-on-write inside the hierarchy).
    td: Arc<TreeDecomposition>,
    /// Full distance arrays (`X(v).dis`), indexed by vertex then ancestor
    /// depth. Chunk-granular copy-on-write: publishing a snapshot copies the
    /// chunk spine; a stage that repairs `k` rows clones `O(k / chunk)`
    /// chunks, not the table.
    dis: CowTable<Dist>,
    /// Boundary arrays (`X(v).disB`): for in-partition vertices only, the
    /// global distance to each boundary vertex of its partition (in the order
    /// of [`TdPartition::boundary`]). Chunked copy-on-write like `dis`.
    disb: CowTable<Dist>,
    /// The TD-partitioning result.
    tdp: Arc<TdPartition>,
    bidij: Arc<ScratchPool<BiDijkstra>>,
    ch: Arc<ScratchPool<ChQuery>>,
    stage: PostMhlStage,
}

impl PostMhl {
    /// Builds PostMHL (Algorithm 4): MDE tree decomposition, TD-partitioning,
    /// overlay / post-boundary / cross-boundary indexes.
    pub fn build(graph: &Graph, config: PostMhlConfig) -> Self {
        Self::build_pooled(graph, config, &htsp_graph::WorkerPool::sequential())
    }

    /// Builds the index with the dominant H2H construction and the boundary
    /// array fill computed on `pool`. Bit-identical to [`PostMhl::build`] at
    /// any thread count.
    pub fn build_pooled(
        graph: &Graph,
        config: PostMhlConfig,
        pool: &htsp_graph::WorkerPool,
    ) -> Self {
        let h2h = H2HIndex::build_pooled(graph, pool);
        let (td, dis) = h2h.into_parts();
        let tdp = td_partition(&td, &config.partitioning);
        // At build time every dis entry is a correct global distance, so the
        // boundary arrays are plain copies of the corresponding entries; each
        // partition fills a disjoint vertex set, so partitions are parallel
        // tasks whose rows are scattered into place in partition order.
        let n = graph.num_vertices();
        let mut disb = vec![Vec::new(); n];
        let per_part = pool.run("postmhl_disb", tdp.num_partitions(), |pi| {
            let boundary = tdp.boundary(pi);
            tdp.vertices(pi)
                .iter()
                .map(|&v| {
                    boundary
                        .iter()
                        .map(|&b| dis.row(v.index())[td.depth(b) as usize])
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        });
        for (pi, rows) in per_part.into_iter().enumerate() {
            for (&v, row) in tdp.vertices(pi).iter().zip(rows) {
                disb[v.index()] = row;
            }
        }
        PostMhl {
            config,
            graph: Arc::new(graph.clone()),
            bidij: Arc::new(ScratchPool::new(move || BiDijkstra::new(n))),
            ch: Arc::new(ScratchPool::new(move || ChQuery::new(n))),
            td: Arc::new(td),
            dis,
            disb: CowTable::from_rows(disb, DEFAULT_CHUNK),
            tdp: Arc::new(tdp),
            stage: PostMhlStage::CrossBoundary,
        }
    }

    /// Cumulative copy-on-write clone effort across the index's mutable
    /// components (distance tables, boundary arrays, shortcut arrays).
    /// Per-stage deltas of this figure are published with every snapshot.
    pub fn cow_stats(&self) -> CowStats {
        self.dis
            .stats()
            .plus(self.disb.stats())
            .plus(self.td.cow_stats())
    }

    /// The currently available query stage.
    pub fn stage(&self) -> PostMhlStage {
        self.stage
    }

    /// Number of partitions produced by TD-partitioning.
    pub fn num_partitions(&self) -> usize {
        self.tdp.num_partitions()
    }

    /// Number of overlay vertices (Exp. 8 reports this against `τ`).
    pub fn num_overlay_vertices(&self) -> usize {
        self.tdp.overlay_vertices().len()
    }

    /// The TD-partitioning result.
    pub fn partitioning(&self) -> &TdPartition {
        &self.tdp
    }

    fn view_with(&self, stage: PostMhlStage) -> Arc<dyn QueryView> {
        let parts = match stage {
            PostMhlStage::BiDijkstra => StageParts::BiDijkstra {
                bidij: Arc::clone(&self.bidij),
            },
            PostMhlStage::Pch => StageParts::Pch {
                td: Arc::clone(&self.td),
                ch: Arc::clone(&self.ch),
            },
            PostMhlStage::PostBoundary => StageParts::PostBoundary {
                td: Arc::clone(&self.td),
                dis: self.dis.clone(),
                disb: self.disb.clone(),
                tdp: Arc::clone(&self.tdp),
            },
            PostMhlStage::CrossBoundary => StageParts::CrossBoundary {
                td: Arc::clone(&self.td),
                dis: self.dis.clone(),
            },
        };
        Arc::new(PostMhlView {
            graph: Arc::clone(&self.graph),
            stage,
            parts,
        })
    }

    /// Overlay distance between two overlay vertices (valid as soon as the
    /// overlay labels are updated).
    fn overlay_distance(&self, a: VertexId, b: VertexId) -> Dist {
        h2h_distance(&self.td, &self.dis, a, b)
    }

    /// Recomputes the labels of the overlay vertices affected by the shortcut
    /// changes (U-Stage 3). Returns a flag per vertex telling whether any
    /// ancestor's label (or its own) changed — consumed by the partition
    /// stages to decide which partitions to repair.
    fn update_overlay_labels(&mut self, sc_changed: &[bool]) -> Vec<bool> {
        let n = self.td.num_vertices();
        // anc_or_self_changed[v] = some label on the root path down to and
        // including v changed in this round.
        let mut anc_or_self_changed = vec![false; n];
        let topdown: Vec<VertexId> = self.td.topdown_order().to_vec();
        let mut path_cache: Vec<VertexId> = Vec::new();
        let td = Arc::clone(&self.td);
        let tdp = Arc::clone(&self.tdp);
        for v in topdown {
            if tdp.partition_of(v).is_some() {
                continue; // partition subtrees are handled in U-Stages 4-5
            }
            let parent_changed = td
                .parent(v)
                .map(|p| anc_or_self_changed[p.index()])
                .unwrap_or(false);
            let need = parent_changed || sc_changed[v.index()];
            let mut self_changed = false;
            if need {
                path_cache.clear();
                path_cache.extend(td.ancestors(v));
                let new_label = compute_full_label(&td, &self.dis, v, &path_cache);
                if new_label[..] != *self.dis.row(v.index()) {
                    // Chunk-granular write: clones at most v's chunk.
                    *self.dis.make_mut(v.index()) = new_label;
                    self_changed = true;
                }
            }
            anc_or_self_changed[v.index()] = parent_changed || self_changed;
        }
        anc_or_self_changed
    }
}

/// Recomputes the full distance array of `v` from its bag and the labels of
/// its ancestors (identical to the H2H minimum-distance recurrence).
fn compute_full_label(
    td: &TreeDecomposition,
    dis: &CowTable<Dist>,
    v: VertexId,
    path: &[VertexId],
) -> Vec<Dist> {
    let depth_v = td.depth(v) as usize;
    let mut label = vec![INF; depth_v + 1];
    label[depth_v] = Dist::ZERO;
    for (d, &a) in path.iter().enumerate() {
        let mut best = INF;
        for &(u, w) in td.bag(v) {
            let du = td.depth(u) as usize;
            let rest = if du == d {
                Dist::ZERO
            } else if d < du {
                dis.row(u.index())[d]
            } else {
                dis.row(a.index())[du]
            };
            let cand = rest.saturating_add_weight(w);
            if cand < best {
                best = cand;
            }
        }
        label[d] = best;
    }
    label
}

/// Output of one partition's post-boundary pass: the new `disB` rows and the
/// new in-partition segments (depth ≥ root depth) of the `dis` rows.
struct PostPassResult {
    partition: usize,
    /// `(vertex, new disB row, new in-partition dis segment)`.
    rows: Vec<(VertexId, Vec<Dist>, Vec<Dist>)>,
}

/// Output of one partition's cross-boundary pass: the new overlay segments
/// (depth < root depth) of the `dis` rows.
struct CrossPassResult {
    rows: Vec<(VertexId, Vec<Dist>)>,
}

impl IndexMaintainer for PostMhl {
    fn name(&self) -> &'static str {
        "PostMHL"
    }

    fn num_query_stages(&self) -> usize {
        4
    }

    fn apply_batch(
        &mut self,
        _graph: &Graph,
        batch: &UpdateBatch,
        publisher: &SnapshotPublisher,
    ) -> UpdateTimeline {
        let threads = self.config.num_threads.max(1);
        let mut timeline = UpdateTimeline::default();
        // Per-stage clone telemetry: every publication carries the chunks /
        // bytes the stage actually copy-on-wrote (the `since` delta of the
        // shared component counters).
        let mut cow_mark = self.cow_stats();
        let mut publish = |this: &PostMhl, stage: PostMhlStage, publisher: &SnapshotPublisher| {
            let now = this.cow_stats();
            publisher.publish_with_cow(this.view_with(stage), now.since(cow_mark));
            cow_mark = now;
        };

        // U-Stage 1: on-spot edge update of the internal graph copy.
        let t0 = Instant::now();
        Arc::make_mut(&mut self.graph).apply_batch(batch);
        self.stage = PostMhlStage::BiDijkstra;
        publish(self, PostMhlStage::BiDijkstra, publisher);
        timeline.push("U1: on-spot edge update", t0.elapsed());

        // U-Stage 2: shortcut-array update (shared by every component). The
        // decomposition's tree shape is behind a shared `Arc` and the arc
        // weights are chunked COW, so this `make_mut` is a spine copy, not a
        // deep clone of the decomposition.
        let t1 = Instant::now();
        let changes = Arc::make_mut(&mut self.td)
            .hierarchy_mut()
            .apply_batch(&self.graph, batch.as_slice());
        self.stage = PostMhlStage::Pch;
        publish(self, PostMhlStage::Pch, publisher);
        timeline.push("U2: shortcut array update", t1.elapsed());

        let n = self.td.num_vertices();
        let mut sc_changed = vec![false; n];
        for c in &changes {
            sc_changed[c.from.index()] = true;
        }

        // U-Stage 3: overlay label update. (No new query stage: the overlay
        // labels alone cannot answer arbitrary queries, so nothing is
        // published until the post-boundary stage completes.)
        let t2 = Instant::now();
        let anc_changed = self.update_overlay_labels(&sc_changed);
        timeline.push("U3: overlay index update", t2.elapsed());

        // Determine the affected partitions: a partition must be repaired if
        // any of its members' shortcuts changed, or if any ancestor of its
        // root (all overlay vertices, including its boundary set) changed.
        let mut affected: Vec<usize> = Vec::new();
        for pi in 0..self.tdp.num_partitions() {
            let root = self.tdp.roots()[pi];
            let root_parent_changed = self
                .td
                .parent(root)
                .map(|p| anc_changed[p.index()])
                .unwrap_or(false);
            let member_sc_changed = self.tdp.vertices(pi).iter().any(|&v| sc_changed[v.index()]);
            if root_parent_changed || member_sc_changed {
                affected.push(pi);
            }
        }

        // U-Stage 4: post-boundary update (disB + in-partition label entries),
        // one thread per affected partition.
        let t3 = Instant::now();
        let post_results: Mutex<Vec<PostPassResult>> = Mutex::new(Vec::new());
        {
            let this = &*self;
            let post_results_ref = &post_results;
            let chunk = affected.len().div_ceil(threads).max(1);
            std::thread::scope(|scope| {
                for chunk_parts in affected.chunks(chunk) {
                    scope.spawn(move || {
                        for &pi in chunk_parts {
                            let res = this.post_boundary_pass(pi);
                            post_results_ref.lock().unwrap().push(res);
                        }
                    });
                }
            });
        }
        {
            let td = Arc::clone(&self.td);
            let tdp = Arc::clone(&self.tdp);
            for res in post_results.into_inner().unwrap() {
                let root_depth = td.depth(tdp.roots()[res.partition]) as usize;
                for (v, new_disb, new_seg) in res.rows {
                    // Write only rows whose values actually moved, so the
                    // copy-on-write clone volume tracks the *changed* label
                    // set, not the recomputed one.
                    if *self.disb.row(v.index()) != new_disb[..] {
                        *self.disb.make_mut(v.index()) = new_disb;
                    }
                    if self.dis.row(v.index())[root_depth..] != new_seg[..] {
                        let row = self.dis.make_mut(v.index());
                        row[root_depth..].copy_from_slice(&new_seg);
                    }
                }
            }
        }
        self.stage = PostMhlStage::PostBoundary;
        publish(self, PostMhlStage::PostBoundary, publisher);
        timeline.push("U4: post-boundary index update", t3.elapsed());

        // U-Stage 5: cross-boundary update (overlay-ancestor label entries),
        // one thread per affected partition.
        let t4 = Instant::now();
        let cross_results: Mutex<Vec<CrossPassResult>> = Mutex::new(Vec::new());
        {
            let this = &*self;
            let cross_results_ref = &cross_results;
            let chunk = affected.len().div_ceil(threads).max(1);
            std::thread::scope(|scope| {
                for chunk_parts in affected.chunks(chunk) {
                    scope.spawn(move || {
                        for &pi in chunk_parts {
                            let res = this.cross_boundary_pass(pi);
                            cross_results_ref.lock().unwrap().push(res);
                        }
                    });
                }
            });
        }
        for res in cross_results.into_inner().unwrap() {
            for (v, new_seg) in res.rows {
                // Same changed-rows-only policy as the post-boundary merge.
                if self.dis.row(v.index())[..new_seg.len()] != new_seg[..] {
                    let row = self.dis.make_mut(v.index());
                    row[..new_seg.len()].copy_from_slice(&new_seg);
                }
            }
        }
        self.stage = PostMhlStage::CrossBoundary;
        publish(self, PostMhlStage::CrossBoundary, publisher);
        timeline.push("U5: cross-boundary index update", t4.elapsed());
        timeline
    }

    fn current_view(&self) -> Arc<dyn QueryView> {
        self.view_with(self.stage)
    }

    fn view_at_stage(&self, stage: usize) -> Arc<dyn QueryView> {
        self.view_with(PostMhlStage::from_index(stage))
    }

    fn index_size_bytes(&self) -> usize {
        let labels = self.dis.num_entries() + self.disb.num_entries();
        labels * std::mem::size_of::<Dist>() + self.td.hierarchy().index_size_bytes()
    }
}

impl PostMhl {
    /// Post-boundary pass over one partition subtree (Algorithm 4 lines
    /// 13-31, restricted to `disB` and the in-partition ancestor entries).
    /// Reads the *current* overlay labels and the rows it has itself produced;
    /// never reads another partition's rows.
    fn post_boundary_pass(&self, pi: usize) -> PostPassResult {
        let root = self.tdp.roots()[pi];
        let root_depth = self.td.depth(root) as usize;
        let boundary = self.tdp.boundary(pi);
        let nb = boundary.len();
        // D: all-pair boundary distances from the (already updated) overlay.
        let mut d_matrix = vec![vec![Dist::ZERO; nb]; nb];
        for i in 0..nb {
            for j in (i + 1)..nb {
                let d = self.overlay_distance(boundary[i], boundary[j]);
                d_matrix[i][j] = d;
                d_matrix[j][i] = d;
            }
        }
        let b_pos: FxHashMap<VertexId, usize> =
            boundary.iter().enumerate().map(|(j, &b)| (b, j)).collect();

        // Subtree members in top-down order (parents before children).
        let members = self.subtree_topdown(root);
        let mut new_disb: FxHashMap<u32, Vec<Dist>> = FxHashMap::default();
        let mut new_seg: FxHashMap<u32, Vec<Dist>> = FxHashMap::default();
        let mut rows = Vec::with_capacity(members.len());
        for &v in &members {
            let depth_v = self.td.depth(v) as usize;
            let bag = self.td.bag(v);
            // Boundary array.
            let mut disb_row = vec![INF; nb];
            for (j, row) in disb_row.iter_mut().enumerate() {
                let mut best = INF;
                for &(u, w) in bag {
                    let rest = match b_pos.get(&u) {
                        Some(&k) => d_matrix[k][j],
                        None => {
                            if self.tdp.partition_of(u) == Some(pi) {
                                // In-partition ancestor: read its new disB row.
                                match new_disb.get(&u.0) {
                                    Some(r) => r[j],
                                    None => self.disb.row(u.index())[j],
                                }
                            } else {
                                // Overlay ancestor outside B_i: go through the
                                // overlay (its distance to the boundary vertex).
                                self.overlay_distance(u, boundary[j])
                            }
                        }
                    };
                    let cand = rest.saturating_add_weight(w);
                    if cand < best {
                        best = cand;
                    }
                }
                *row = best;
            }
            // In-partition ancestor entries (depths root_depth .. depth_v).
            let anc = self.td.ancestors(v);
            let mut seg = vec![INF; depth_v + 1 - root_depth];
            *seg.last_mut().unwrap() = Dist::ZERO; // d(v, v)
            for d in root_depth..depth_v {
                let a = anc[d];
                let mut best = INF;
                for &(u, w) in bag {
                    let du = self.td.depth(u) as usize;
                    let rest = if let Some(&k) = b_pos.get(&u) {
                        // Overlay neighbor: distance from the in-partition
                        // ancestor `a` to that boundary vertex, via disB.
                        match new_disb.get(&a.0) {
                            Some(r) => r[k],
                            None => self.disb.row(a.index())[k],
                        }
                    } else if self.tdp.partition_of(u) != Some(pi) {
                        self.overlay_distance(u, a)
                    } else if du == d {
                        Dist::ZERO
                    } else if d < du {
                        // `a` is an ancestor of `u`: u's in-partition entry.
                        match new_seg.get(&u.0) {
                            Some(r) => r[d - root_depth],
                            None => self.dis.row(u.index())[d],
                        }
                    } else {
                        // `u` is an ancestor of `a`: a's in-partition entry.
                        match new_seg.get(&a.0) {
                            Some(r) => r[du - root_depth],
                            None => self.dis.row(a.index())[du],
                        }
                    };
                    let cand = rest.saturating_add_weight(w);
                    if cand < best {
                        best = cand;
                    }
                }
                seg[d - root_depth] = best;
            }
            new_disb.insert(v.0, disb_row.clone());
            new_seg.insert(v.0, seg.clone());
            rows.push((v, disb_row, seg));
        }
        PostPassResult {
            partition: pi,
            rows,
        }
    }

    /// Cross-boundary pass over one partition subtree: recomputes the label
    /// entries towards the overlay ancestors (depths `0 .. root_depth`).
    fn cross_boundary_pass(&self, pi: usize) -> CrossPassResult {
        let root = self.tdp.roots()[pi];
        let root_depth = self.td.depth(root) as usize;
        let members = self.subtree_topdown(root);
        let mut new_prefix: FxHashMap<u32, Vec<Dist>> = FxHashMap::default();
        let mut rows = Vec::with_capacity(members.len());
        for &v in &members {
            let bag = self.td.bag(v);
            let anc = self.td.ancestors(v);
            let mut prefix = vec![INF; root_depth];
            for (d, slot) in prefix.iter_mut().enumerate() {
                let a = anc[d];
                let mut best = INF;
                for &(u, w) in bag {
                    let du = self.td.depth(u) as usize;
                    let rest = if self.tdp.partition_of(u) == Some(pi) {
                        // In-partition neighbor: its (new) cross entry at depth d.
                        match new_prefix.get(&u.0) {
                            Some(r) => r[d],
                            None => self.dis.row(u.index())[d],
                        }
                    } else if du == d {
                        Dist::ZERO
                    } else if d < du {
                        self.dis.row(u.index())[d]
                    } else {
                        self.dis.row(a.index())[du]
                    };
                    let cand = rest.saturating_add_weight(w);
                    if cand < best {
                        best = cand;
                    }
                }
                *slot = best;
            }
            new_prefix.insert(v.0, prefix.clone());
            rows.push((v, prefix));
        }
        CrossPassResult { rows }
    }

    /// The vertices of `root`'s subtree in an order where parents precede
    /// children.
    fn subtree_topdown(&self, root: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            out.push(v);
            for &c in self.td.children(v) {
                queue.push_back(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::{QuerySet, UpdateGenerator};
    use htsp_search::dijkstra_distance;

    fn config(ke: usize, tau: usize, threads: usize) -> PostMhlConfig {
        PostMhlConfig {
            partitioning: TdPartitionConfig {
                bandwidth: tau,
                expected_partitions: ke,
                beta_lower: 0.1,
                beta_upper: 2.0,
            },
            num_threads: threads,
        }
    }

    fn check_all_stages(idx: &PostMhl, g: &Graph, count: usize, seed: u64) {
        let qs = QuerySet::random(g, count, seed);
        for q in &qs {
            let expect = dijkstra_distance(g, q.source, q.target);
            for stage in 0..4 {
                assert_eq!(
                    idx.view_at_stage(stage).distance(q.source, q.target),
                    expect,
                    "PostMHL stage {stage} mismatch for {:?}",
                    q
                );
            }
        }
    }

    #[test]
    fn freshly_built_postmhl_is_exact_at_every_stage() {
        let g = grid(10, 10, WeightRange::new(1, 20), 51);
        let idx = PostMhl::build(&g, config(8, 12, 2));
        assert!(idx.num_partitions() >= 2);
        assert!(idx.num_overlay_vertices() > 0);
        assert_eq!(idx.num_query_stages(), 4);
        assert!(IndexMaintainer::index_size_bytes(&idx) > 0);
        check_all_stages(&idx, &g, 80, 3);
    }

    #[test]
    fn postmhl_stays_exact_across_update_batches() {
        let mut g = grid(10, 10, WeightRange::new(5, 40), 53);
        let mut idx = PostMhl::build(&g, config(8, 12, 2));
        let mut gen = UpdateGenerator::new(29);
        for round in 0..3 {
            let batch = gen.generate(&g, 25);
            g.apply_batch(&batch);
            let publisher = SnapshotPublisher::new(idx.current_view());
            let timeline = idx.apply_batch(&g, &batch, &publisher);
            assert_eq!(timeline.stages.len(), 5);
            assert_eq!(idx.stage(), PostMhlStage::CrossBoundary);
            // Four query stages published (U3 releases no new machinery).
            let log = publisher.take_log();
            assert_eq!(log.len(), 4);
            assert_eq!(log.last().unwrap().stage, 3);
            check_all_stages(&idx, &g, 50, 200 + round);
        }
    }

    #[test]
    fn thread_count_does_not_change_answers() {
        let mut g1 = grid(9, 9, WeightRange::new(5, 30), 57);
        let mut g2 = g1.clone();
        let mut a = PostMhl::build(&g1, config(8, 12, 1));
        let mut b = PostMhl::build(&g2, config(8, 12, 4));
        let mut gen1 = UpdateGenerator::new(31);
        let mut gen2 = UpdateGenerator::new(31);
        let batch1 = gen1.generate(&g1, 20);
        let batch2 = gen2.generate(&g2, 20);
        g1.apply_batch(&batch1);
        g2.apply_batch(&batch2);
        let pub_a = SnapshotPublisher::new(a.current_view());
        let pub_b = SnapshotPublisher::new(b.current_view());
        a.apply_batch(&g1, &batch1, &pub_a);
        b.apply_batch(&g2, &batch2, &pub_b);
        let va = a.current_view();
        let vb = b.current_view();
        let qs = QuerySet::random(&g1, 60, 17);
        for q in &qs {
            assert_eq!(
                va.distance(q.source, q.target),
                vb.distance(q.source, q.target)
            );
        }
    }

    #[test]
    fn larger_bandwidth_means_smaller_overlay() {
        let g = grid(12, 12, WeightRange::new(1, 20), 59);
        let small = PostMhl::build(&g, config(16, 6, 1));
        let large = PostMhl::build(&g, config(16, 24, 1));
        assert!(large.num_overlay_vertices() <= small.num_overlay_vertices());
    }
}
