//! # htsp-core
//!
//! The paper's primary contribution: multi-stage partitioned hub-labeling
//! indexes for high-throughput shortest-distance queries on large dynamic road
//! networks.
//!
//! * [`Mhl`] — Multi-stage Hierarchical 2-hop Labeling (§V-A): a single H2H
//!   index extended with its shortcut arrays so that, while the labels are
//!   being repaired after an update batch, queries can already be served by
//!   BiDijkstra (stage 1) and by a CH search on the repaired shortcut arrays
//!   (stage 2), before the full H2H query speed returns (stage 3).
//! * [`Pmhl`] — Partitioned MHL (§V): one MHL per partition plus an overlay
//!   MHL, maintained in parallel across partitions, with no-boundary,
//!   post-boundary and cross-boundary indexes released stage by stage
//!   (Figure 7: five update stages, five query stages).
//! * [`PostMhl`] — Post-partitioned MHL (§VI): a single MDE tree decomposition
//!   partitioned by TD-partitioning (Algorithm 2), holding the overlay,
//!   post-boundary (`dis` to in-partition ancestors + `disB` boundary arrays)
//!   and cross-boundary (`dis` to overlay ancestors) indexes in one structure
//!   (Figure 8), with H2H-equivalent final query speed (Theorem 1) and
//!   partition-parallel maintenance.
//!
//! All three implement [`htsp_graph::IndexMaintainer`] and publish
//! [`htsp_graph::QueryView`] snapshots (with per-thread
//! [`htsp_graph::QuerySession`]s for batched workloads), so the throughput
//! harness, the concurrent engine, and the distance service treat them
//! uniformly with the baselines.

#![warn(missing_docs)]

pub mod mhl;
pub mod pmhl;
pub mod postmhl;

pub use mhl::Mhl;
pub use pmhl::{Pmhl, PmhlConfig};
pub use postmhl::{PostMhl, PostMhlConfig};
// The construction worker pool, re-exported so index consumers can drive any
// `build_pooled` entry point without depending on `htsp-graph` directly.
pub use htsp_graph::{available_parallelism, StageStats, WorkerPool};
