//! PMHL: Partitioned Multi-stage Hub Labeling (§V).
//!
//! PMHL maintains, over a planar partition of the road network:
//!
//! * the **no-boundary** indexes `{L_i}` (one MHL per partition, boundary-first
//!   local order) and the overlay MHL `L̃`;
//! * the **post-boundary** indexes `{L'_i}` over the extended partitions;
//! * the **cross-boundary** index `L*`.
//!
//! After every update batch the five update stages of Figure 7 run in order,
//! each publishing a faster query-stage snapshot: BiDijkstra → partitioned CH
//! → no-boundary → post-boundary → cross-boundary. Per-partition work inside
//! U-Stages 2 and 3 runs on a configurable number of threads, which is the
//! lever behind the thread-scaling experiment (Fig. 15).

use htsp_ch::{ContractionHierarchy, ShortcutChange};
use htsp_graph::cow::{CowStats, CowVec};
use htsp_graph::{
    Dist, FallbackSession, Graph, IndexMaintainer, QuerySession, QueryView, ScratchGuard,
    ScratchPool, SnapshotPublisher, UpdateBatch, UpdateTimeline, VertexId, INF,
};
use htsp_partition::partition_region_growing;
use htsp_psp::{
    no_boundary::no_boundary_distance, CrossBoundaryIndex, OverlayGraph, PartitionIndex,
    Partitioned, PchSearcher, PostBoundaryIndexes,
};
use htsp_search::{BiDijkstra, BiDijkstraSession};
use htsp_td::{H2HIndex, TreeDecomposition};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// PMHL construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct PmhlConfig {
    /// Number of partitions `k` (Exp. 1 sweeps this).
    pub num_partitions: usize,
    /// Number of worker threads for partition-parallel maintenance.
    pub num_threads: usize,
    /// Partitioner seed.
    pub seed: u64,
}

impl Default for PmhlConfig {
    fn default() -> Self {
        PmhlConfig {
            num_partitions: 8,
            num_threads: 4,
            seed: 1,
        }
    }
}

/// The query stage currently available (fastest machinery consistent with the
/// latest batch).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PmhlStage {
    /// Q-Stage 1: index-free BiDijkstra.
    BiDijkstra,
    /// Q-Stage 2: partitioned CH search on the union shortcut arrays.
    Pch,
    /// Q-Stage 3: no-boundary query (concatenation).
    NoBoundary,
    /// Q-Stage 4: post-boundary query (same-partition via `L'_i`).
    PostBoundary,
    /// Q-Stage 5: cross-boundary query (2-hop, no concatenation).
    CrossBoundary,
}

impl PmhlStage {
    fn index(self) -> usize {
        match self {
            PmhlStage::BiDijkstra => 0,
            PmhlStage::Pch => 1,
            PmhlStage::NoBoundary => 2,
            PmhlStage::PostBoundary => 3,
            PmhlStage::CrossBoundary => 4,
        }
    }

    fn from_index(i: usize) -> Self {
        match i {
            0 => PmhlStage::BiDijkstra,
            1 => PmhlStage::Pch,
            2 => PmhlStage::NoBoundary,
            3 => PmhlStage::PostBoundary,
            _ => PmhlStage::CrossBoundary,
        }
    }
}

/// Immutable PMHL snapshot: the index components frozen at one graph version,
/// answering with the machinery of one query stage.
pub struct PmhlView {
    partitioned: Arc<Partitioned>,
    stage: PmhlStage,
    /// Only the components this view's stage actually reads are pinned —
    /// anything else would force the maintainer's next `Arc::make_mut` into
    /// a needless deep clone while this snapshot is current.
    parts: StageParts,
}

/// The per-stage component set of a [`PmhlView`].
enum StageParts {
    BiDijkstra {
        bidij: Arc<ScratchPool<BiDijkstra>>,
    },
    Pch {
        partition_indexes: CowVec<PartitionIndex>,
        overlay: Arc<OverlayGraph>,
        overlay_index: Arc<H2HIndex>,
        pch: Arc<ScratchPool<PchSearcher>>,
    },
    NoBoundary {
        partition_indexes: CowVec<PartitionIndex>,
        overlay: Arc<OverlayGraph>,
        overlay_index: Arc<H2HIndex>,
    },
    PostBoundary {
        post: Arc<PostBoundaryIndexes>,
        overlay: Arc<OverlayGraph>,
        overlay_index: Arc<H2HIndex>,
    },
    CrossBoundary {
        post: Arc<PostBoundaryIndexes>,
        cross: Arc<CrossBoundaryIndex>,
    },
}

/// The source-side boundary labels `L'_i(v)`: distance from `v` to each
/// boundary vertex of its partition (global ids). A session computes this
/// once per source and reuses it across a whole target set.
fn boundary_labels(
    partitioned: &Partitioned,
    post: &PostBoundaryIndexes,
    v: VertexId,
) -> Vec<(VertexId, Dist)> {
    if partitioned.partition.is_boundary(v) {
        return vec![(v, Dist::ZERO)];
    }
    let pi = partitioned.partition.partition_of(v);
    let sub = &partitioned.subgraphs[pi];
    let lv = sub.to_local(v).expect("vertex in its partition");
    sub.boundary_local
        .iter()
        .map(|&lb| (sub.to_global(lb), post.distance_to_boundary(pi, lv, lb)))
        .collect()
}

/// Cross-partition query by `L'_i`/`L\u0303`/`L'_j` concatenation (the
/// post-boundary cross-partition path, Q-Stage 4), with the source side
/// (`from_s`) precomputed by [`boundary_labels`].
fn cross_by_concatenation(
    partitioned: &Partitioned,
    post: &PostBoundaryIndexes,
    overlay: &OverlayGraph,
    overlay_index: &H2HIndex,
    from_s: &[(VertexId, Dist)],
    t: VertexId,
) -> Dist {
    let from_t = boundary_labels(partitioned, post, t);
    let mut best = INF;
    for &(bp, dp) in from_s {
        if dp.is_inf() {
            continue;
        }
        let lbp = match overlay.to_local(bp) {
            Some(l) => l,
            None => continue,
        };
        for &(bq, dq) in &from_t {
            if dq.is_inf() {
                continue;
            }
            let mid = if bp == bq {
                Dist::ZERO
            } else {
                match overlay.to_local(bq) {
                    Some(lbq) => overlay_index.distance(lbp, lbq),
                    None => INF,
                }
            };
            let cand = dp.saturating_add(mid).saturating_add(dq);
            if cand < best {
                best = cand;
            }
        }
    }
    best
}

impl QueryView for PmhlView {
    fn algorithm(&self) -> &'static str {
        "PMHL"
    }

    fn stage(&self) -> usize {
        self.stage.index()
    }

    fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return Dist::ZERO;
        }
        match &self.parts {
            StageParts::BiDijkstra { bidij } => {
                bidij.with(|b| b.distance(&self.partitioned.graph, s, t))
            }
            StageParts::Pch {
                partition_indexes,
                overlay,
                overlay_index,
                pch,
            } => {
                let overlay_h = overlay_index.decomposition().hierarchy();
                pch.with(|p| {
                    p.distance(
                        &self.partitioned,
                        partition_indexes,
                        overlay,
                        overlay_h,
                        s,
                        t,
                    )
                })
            }
            StageParts::NoBoundary {
                partition_indexes,
                overlay,
                overlay_index,
            } => no_boundary_distance(
                &self.partitioned,
                partition_indexes,
                overlay,
                overlay_index,
                s,
                t,
            ),
            StageParts::PostBoundary {
                post,
                overlay,
                overlay_index,
            } => {
                if self.partitioned.partition.same_partition(s, t) {
                    let pi = self.partitioned.partition.partition_of(s);
                    post.same_partition_distance(&self.partitioned, pi, s, t)
                } else {
                    let from_s = boundary_labels(&self.partitioned, post, s);
                    cross_by_concatenation(
                        &self.partitioned,
                        post,
                        overlay,
                        overlay_index,
                        &from_s,
                        t,
                    )
                }
            }
            StageParts::CrossBoundary { post, cross } => {
                if self.partitioned.partition.same_partition(s, t) {
                    let pi = self.partitioned.partition.partition_of(s);
                    post.same_partition_distance(&self.partitioned, pi, s, t)
                } else {
                    cross.cross_distance(s, t)
                }
            }
        }
    }

    fn session(&self) -> Box<dyn QuerySession + '_> {
        match &self.parts {
            StageParts::BiDijkstra { bidij } => Box::new(BiDijkstraSession::new(
                &self.partitioned.graph,
                bidij.checkout(),
            )),
            StageParts::Pch {
                partition_indexes,
                overlay,
                overlay_index,
                pch,
            } => Box::new(PmhlPchSession {
                partitioned: &self.partitioned,
                partition_indexes,
                overlay,
                overlay_h: overlay_index.decomposition().hierarchy(),
                scratch: pch.checkout(),
            }),
            // Post-/cross-boundary stages answer from shared references
            // without scratch, but their sessions cache the source-side
            // work (partition lookup, `L'_i(s)` boundary labels) across a
            // one-to-many target set.
            StageParts::PostBoundary { .. } | StageParts::CrossBoundary { .. } => {
                Box::new(PmhlLabelSession {
                    view: self,
                    source: None,
                })
            }
            // The no-boundary stage is a pure concatenation lookup with no
            // hoistable source side.
            StageParts::NoBoundary { .. } => Box::new(FallbackSession::new(self)),
        }
    }

    fn graph(&self) -> &Graph {
        &self.partitioned.graph
    }

    fn index_size_bytes(&self) -> usize {
        // Footprint of the components this stage's machinery reads.
        match &self.parts {
            StageParts::BiDijkstra { .. } => 0,
            StageParts::Pch {
                partition_indexes,
                overlay_index,
                ..
            }
            | StageParts::NoBoundary {
                partition_indexes,
                overlay_index,
                ..
            } => {
                partition_indexes
                    .iter()
                    .map(|p| p.index_size_bytes())
                    .sum::<usize>()
                    + overlay_index.index_size_bytes()
            }
            StageParts::PostBoundary {
                post,
                overlay_index,
                ..
            } => post.index_size_bytes() + overlay_index.index_size_bytes(),
            StageParts::CrossBoundary { post, cross } => {
                post.index_size_bytes() + cross.index_size_bytes()
            }
        }
    }
}

/// Per-thread Q-Stage-2 (partitioned CH) session: owns one pooled
/// [`PchSearcher`] for its lifetime.
struct PmhlPchSession<'a> {
    partitioned: &'a Partitioned,
    partition_indexes: &'a CowVec<PartitionIndex>,
    overlay: &'a OverlayGraph,
    overlay_h: &'a ContractionHierarchy,
    scratch: ScratchGuard<'a, PchSearcher>,
}

impl QuerySession for PmhlPchSession<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Dist {
        self.scratch.distance(
            self.partitioned,
            self.partition_indexes,
            self.overlay,
            self.overlay_h,
            s,
            t,
        )
    }
}

/// Cached source-side state of a [`PmhlLabelSession`]: the source vertex,
/// its partition, and (computed lazily — only cross-partition targets need
/// them) its `L'_i(source)` boundary labels.
struct SourceState {
    source: VertexId,
    partition: usize,
    labels: Option<Vec<(VertexId, Dist)>>,
}

/// Per-thread session for the post-/cross-boundary label stages: caches the
/// source's partition id and (for the post-boundary concatenation path) its
/// `L'_i(s)` boundary labels, so a one-to-many or matrix row pays the
/// source-side work once instead of once per target.
struct PmhlLabelSession<'a> {
    view: &'a PmhlView,
    /// State of the most recent source, reused while the source repeats.
    source: Option<SourceState>,
}

impl PmhlLabelSession<'_> {
    fn source_state(&mut self, s: VertexId) -> &mut SourceState {
        if self.source.as_ref().map(|st| st.source) != Some(s) {
            self.source = Some(SourceState {
                source: s,
                partition: self.view.partitioned.partition.partition_of(s),
                labels: None,
            });
        }
        self.source.as_mut().expect("just set")
    }
}

impl QuerySession for PmhlLabelSession<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return Dist::ZERO;
        }
        let view = self.view;
        let state = self.source_state(s);
        if view.partitioned.partition.partition_of(t) == state.partition {
            return match &view.parts {
                StageParts::PostBoundary { post, .. } | StageParts::CrossBoundary { post, .. } => {
                    post.same_partition_distance(&view.partitioned, state.partition, s, t)
                }
                _ => unreachable!("label session only wraps label stages"),
            };
        }
        match &view.parts {
            StageParts::PostBoundary {
                post,
                overlay,
                overlay_index,
            } => {
                let labels = state
                    .labels
                    .get_or_insert_with(|| boundary_labels(&view.partitioned, post, s));
                cross_by_concatenation(&view.partitioned, post, overlay, overlay_index, labels, t)
            }
            StageParts::CrossBoundary { cross, .. } => cross.cross_distance(s, t),
            _ => unreachable!("label session only wraps label stages"),
        }
    }
}

/// The Partitioned Multi-stage Hub Labeling index (write half).
pub struct Pmhl {
    config: PmhlConfig,
    partitioned: Arc<Partitioned>,
    /// One chunk per partition: snapshots share untouched partitions, and a
    /// maintenance round clones only the partitions its batch actually
    /// routes updates into (each clone itself shallow — the partition's
    /// label/shortcut tables are chunked copy-on-write inside `H2HIndex`).
    partition_indexes: CowVec<PartitionIndex>,
    overlay: Arc<OverlayGraph>,
    overlay_index: Arc<H2HIndex>,
    post: Arc<PostBoundaryIndexes>,
    cross: Arc<CrossBoundaryIndex>,
    bidij: Arc<ScratchPool<BiDijkstra>>,
    pch: Arc<ScratchPool<PchSearcher>>,
    stage: PmhlStage,
}

impl Pmhl {
    /// Builds PMHL over `graph` (Algorithm 3: partition, boundary-first order,
    /// no-boundary → post-boundary → cross-boundary construction).
    pub fn build(graph: &Graph, config: PmhlConfig) -> Self {
        Self::build_pooled(graph, config, &htsp_graph::WorkerPool::sequential())
    }

    /// Builds the index with the per-partition and post-boundary stages
    /// fanned out over `pool`. Identical result at any thread count.
    pub fn build_pooled(graph: &Graph, config: PmhlConfig, pool: &htsp_graph::WorkerPool) -> Self {
        let pr = partition_region_growing(graph, config.num_partitions, config.seed);
        let partitioned = Partitioned::build(graph.clone(), pr);
        // Steps 1-3: no-boundary index {L_i} and overlay index L̃. Each L_i
        // depends only on its own subgraph, so partitions build concurrently.
        let partition_indexes: Vec<PartitionIndex> =
            pool.run("pmhl_partition_index", partitioned.subgraphs.len(), |i| {
                PartitionIndex::build(&partitioned.subgraphs[i])
            });
        let chs: Vec<&ContractionHierarchy> =
            partition_indexes.iter().map(|p| p.hierarchy()).collect();
        let overlay = OverlayGraph::build(&partitioned, &chs);
        let overlay_index = H2HIndex::from_decomposition_pooled(
            TreeDecomposition::build_pooled(&overlay.graph, pool),
            pool,
        );
        // Steps 4-5: post-boundary indexes {L'_i}.
        let post = PostBoundaryIndexes::build_pooled(&partitioned, &overlay, &overlay_index, pool);
        // Step 6: cross-boundary index L*.
        let cross = CrossBoundaryIndex::build(&partitioned, &overlay, &overlay_index, &post);
        let n = graph.num_vertices();
        Pmhl {
            config,
            partitioned: Arc::new(partitioned),
            partition_indexes: CowVec::from_vec(partition_indexes, 1),
            overlay: Arc::new(overlay),
            overlay_index: Arc::new(overlay_index),
            post: Arc::new(post),
            cross: Arc::new(cross),
            bidij: Arc::new(ScratchPool::new(move || BiDijkstra::new(n))),
            pch: Arc::new(ScratchPool::new(move || PchSearcher::new(n))),
            stage: PmhlStage::CrossBoundary,
        }
    }

    /// The currently available query stage.
    pub fn stage(&self) -> PmhlStage {
        self.stage
    }

    /// Number of boundary vertices `|B|` (reported by Exp. 1).
    pub fn num_boundary(&self) -> usize {
        self.partitioned.partition.num_boundary()
    }

    /// The partition layout.
    pub fn partitioned(&self) -> &Partitioned {
        &self.partitioned
    }

    /// Cumulative copy-on-write clone effort across every mutable component
    /// (partition indexes and their tables, overlay labels, post-boundary
    /// partitions, cross-boundary labels). Per-stage deltas of this figure
    /// are published with every snapshot.
    pub fn cow_stats(&self) -> CowStats {
        let per_partition = self
            .partition_indexes
            .iter()
            .fold(self.partition_indexes.stats(), |acc, p| {
                acc.plus(p.cow_stats())
            });
        per_partition
            .plus(self.overlay_index.cow_stats())
            .plus(self.post.cow_stats())
            .plus(self.cross.cow_stats())
    }

    fn view_with(&self, stage: PmhlStage) -> Arc<dyn QueryView> {
        let parts = match stage {
            PmhlStage::BiDijkstra => StageParts::BiDijkstra {
                bidij: Arc::clone(&self.bidij),
            },
            PmhlStage::Pch => StageParts::Pch {
                partition_indexes: self.partition_indexes.clone(),
                overlay: Arc::clone(&self.overlay),
                overlay_index: Arc::clone(&self.overlay_index),
                pch: Arc::clone(&self.pch),
            },
            PmhlStage::NoBoundary => StageParts::NoBoundary {
                partition_indexes: self.partition_indexes.clone(),
                overlay: Arc::clone(&self.overlay),
                overlay_index: Arc::clone(&self.overlay_index),
            },
            PmhlStage::PostBoundary => StageParts::PostBoundary {
                post: Arc::clone(&self.post),
                overlay: Arc::clone(&self.overlay),
                overlay_index: Arc::clone(&self.overlay_index),
            },
            PmhlStage::CrossBoundary => StageParts::CrossBoundary {
                post: Arc::clone(&self.post),
                cross: Arc::clone(&self.cross),
            },
        };
        Arc::new(PmhlView {
            partitioned: Arc::clone(&self.partitioned),
            stage,
            parts,
        })
    }
}

impl IndexMaintainer for Pmhl {
    fn name(&self) -> &'static str {
        "PMHL"
    }

    fn num_query_stages(&self) -> usize {
        5
    }

    fn apply_batch(
        &mut self,
        _graph: &Graph,
        batch: &UpdateBatch,
        publisher: &SnapshotPublisher,
    ) -> UpdateTimeline {
        let threads = self.config.num_threads.max(1);
        let mut timeline = UpdateTimeline::default();
        // Per-stage clone telemetry: every publication carries the chunks /
        // bytes this stage actually copy-on-wrote.
        let mut cow_mark = self.cow_stats();
        let mut publish = |this: &Pmhl, stage: PmhlStage, publisher: &SnapshotPublisher| {
            let now = this.cow_stats();
            publisher.publish_with_cow(this.view_with(stage), now.since(cow_mark));
            cow_mark = now;
        };

        // U-Stage 1: on-spot edge update of the global graph and the
        // per-partition copies.
        let t0 = Instant::now();
        let routed = Arc::make_mut(&mut self.partitioned).apply_batch(batch);
        self.stage = PmhlStage::BiDijkstra;
        publish(self, PmhlStage::BiDijkstra, publisher);
        timeline.push("U1: on-spot edge update", t0.elapsed());

        // U-Stage 2: no-boundary shortcut update — each affected partition on
        // its own thread, then the overlay shortcut arrays. Only the affected
        // partitions are cloned out from under the outstanding snapshots
        // (`make_mut_where`, one chunk per partition); the rest stay shared.
        let t1 = Instant::now();
        let per_part: Mutex<Vec<(usize, Vec<ShortcutChange>)>> = Mutex::new(Vec::new());
        {
            let partitioned = Arc::clone(&self.partitioned);
            let routed_ref = &routed;
            let per_part_ref = &per_part;
            let mut jobs: Vec<(usize, &mut PartitionIndex)> = self
                .partition_indexes
                .make_mut_where(|i| !routed_ref.intra[i].is_empty());
            let chunk = jobs.len().div_ceil(threads).max(1);
            let partitioned = &partitioned;
            std::thread::scope(|scope| {
                for chunk_jobs in jobs.chunks_mut(chunk) {
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        for (i, idx) in chunk_jobs.iter_mut() {
                            let changes = idx.h2h.update_shortcuts(
                                &partitioned.subgraphs[*i].graph,
                                routed_ref.intra[*i].as_slice(),
                            );
                            local.push((*i, changes));
                        }
                        per_part_ref.lock().unwrap().extend(local);
                    });
                }
            });
        }
        let per_part = per_part.into_inner().unwrap();
        let overlay_batch = Arc::make_mut(&mut self.overlay).apply_changes(
            &self.partitioned,
            &routed.inter,
            &per_part,
        );
        let overlay_sc_changes = Arc::make_mut(&mut self.overlay_index)
            .update_shortcuts(&self.overlay.graph, overlay_batch.as_slice());
        self.stage = PmhlStage::Pch;
        publish(self, PmhlStage::Pch, publisher);
        timeline.push("U2: no-boundary shortcut update", t1.elapsed());

        // U-Stage 3: no-boundary label update — partitions in parallel, then
        // the overlay labels. Again only partitions with shortcut changes are
        // cloned (the U2 snapshot re-shared every chunk it pinned).
        let t2 = Instant::now();
        {
            let mut changed_by_partition: rustc_hash::FxHashMap<usize, Vec<VertexId>> =
                rustc_hash::FxHashMap::default();
            for (i, changes) in &per_part {
                let changed: Vec<VertexId> = changes.iter().map(|c| c.from).collect();
                if !changed.is_empty() {
                    changed_by_partition.insert(*i, changed);
                }
            }
            let mut jobs: Vec<(&mut PartitionIndex, Vec<VertexId>)> = self
                .partition_indexes
                .make_mut_where(|i| changed_by_partition.contains_key(&i))
                .into_iter()
                .filter_map(|(i, idx)| changed_by_partition.remove(&i).map(|c| (idx, c)))
                .collect();
            let chunk = jobs.len().div_ceil(threads).max(1);
            std::thread::scope(|scope| {
                for chunk_jobs in jobs.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for (idx, changed) in chunk_jobs.iter_mut() {
                            idx.h2h.update_labels_for(changed);
                        }
                    });
                }
            });
        }
        let overlay_changed_sc: Vec<VertexId> = overlay_sc_changes.iter().map(|c| c.from).collect();
        let (overlay_label_changed, _) =
            Arc::make_mut(&mut self.overlay_index).update_labels_for(&overlay_changed_sc);
        self.stage = PmhlStage::NoBoundary;
        publish(self, PmhlStage::NoBoundary, publisher);
        timeline.push("U3: no-boundary label update", t2.elapsed());

        // U-Stage 4: post-boundary index update.
        let t3 = Instant::now();
        let (post_changed, _) = Arc::make_mut(&mut self.post).update(
            &self.partitioned,
            &self.overlay,
            &self.overlay_index,
            &routed.intra,
        );
        self.stage = PmhlStage::PostBoundary;
        publish(self, PmhlStage::PostBoundary, publisher);
        timeline.push("U4: post-boundary index update", t3.elapsed());

        // U-Stage 5: cross-boundary index update.
        let t4 = Instant::now();
        Arc::make_mut(&mut self.cross).update(
            &self.partitioned,
            &self.overlay,
            &self.overlay_index,
            &self.post,
            &overlay_label_changed,
            &post_changed,
        );
        self.stage = PmhlStage::CrossBoundary;
        publish(self, PmhlStage::CrossBoundary, publisher);
        timeline.push("U5: cross-boundary index update", t4.elapsed());
        timeline
    }

    fn current_view(&self) -> Arc<dyn QueryView> {
        self.view_with(self.stage)
    }

    fn view_at_stage(&self, stage: usize) -> Arc<dyn QueryView> {
        self.view_with(PmhlStage::from_index(stage))
    }

    fn index_size_bytes(&self) -> usize {
        self.partition_indexes
            .iter()
            .map(|p| p.index_size_bytes())
            .sum::<usize>()
            + self.overlay_index.index_size_bytes()
            + self.post.index_size_bytes()
            + self.cross.index_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::{QuerySet, UpdateGenerator};
    use htsp_search::dijkstra_distance;

    fn check_all_stages(pmhl: &Pmhl, g: &Graph, count: usize, seed: u64) {
        let qs = QuerySet::random(g, count, seed);
        for q in &qs {
            let expect = dijkstra_distance(g, q.source, q.target);
            for stage in 0..5 {
                assert_eq!(
                    pmhl.view_at_stage(stage).distance(q.source, q.target),
                    expect,
                    "PMHL stage {stage} mismatch for {:?}",
                    q
                );
            }
        }
    }

    #[test]
    fn freshly_built_pmhl_is_exact_at_every_stage() {
        let g = grid(9, 9, WeightRange::new(1, 20), 41);
        let pmhl = Pmhl::build(
            &g,
            PmhlConfig {
                num_partitions: 4,
                num_threads: 2,
                seed: 3,
            },
        );
        assert_eq!(pmhl.stage(), PmhlStage::CrossBoundary);
        assert_eq!(pmhl.num_query_stages(), 5);
        assert!(IndexMaintainer::index_size_bytes(&pmhl) > 0);
        assert!(pmhl.num_boundary() > 0);
        check_all_stages(&pmhl, &g, 60, 5);
    }

    #[test]
    fn pmhl_stays_exact_across_update_batches() {
        let mut g = grid(9, 9, WeightRange::new(5, 40), 43);
        let mut pmhl = Pmhl::build(
            &g,
            PmhlConfig {
                num_partitions: 4,
                num_threads: 2,
                seed: 7,
            },
        );
        let mut gen = UpdateGenerator::new(11);
        for round in 0..3 {
            let batch = gen.generate(&g, 20);
            g.apply_batch(&batch);
            let publisher = SnapshotPublisher::new(pmhl.current_view());
            let timeline = pmhl.apply_batch(&g, &batch, &publisher);
            assert_eq!(timeline.stages.len(), 5, "five update stages expected");
            assert_eq!(pmhl.stage(), PmhlStage::CrossBoundary);
            // Each of the five stages published its snapshot.
            let log = publisher.take_log();
            assert_eq!(log.len(), 5);
            assert_eq!(log.last().unwrap().stage, 4);
            check_all_stages(&pmhl, &g, 40, 100 + round);
        }
    }

    #[test]
    fn single_threaded_and_multi_threaded_agree() {
        let mut g1 = grid(8, 8, WeightRange::new(5, 30), 47);
        let mut g2 = g1.clone();
        let mut a = Pmhl::build(
            &g1,
            PmhlConfig {
                num_partitions: 4,
                num_threads: 1,
                seed: 5,
            },
        );
        let mut b = Pmhl::build(
            &g2,
            PmhlConfig {
                num_partitions: 4,
                num_threads: 4,
                seed: 5,
            },
        );
        let mut gen1 = UpdateGenerator::new(13);
        let mut gen2 = UpdateGenerator::new(13);
        let batch1 = gen1.generate(&g1, 15);
        let batch2 = gen2.generate(&g2, 15);
        g1.apply_batch(&batch1);
        g2.apply_batch(&batch2);
        let pub_a = SnapshotPublisher::new(a.current_view());
        let pub_b = SnapshotPublisher::new(b.current_view());
        a.apply_batch(&g1, &batch1, &pub_a);
        b.apply_batch(&g2, &batch2, &pub_b);
        let va = a.current_view();
        let vb = b.current_view();
        let qs = QuerySet::random(&g1, 50, 9);
        for q in &qs {
            assert_eq!(
                va.distance(q.source, q.target),
                vb.distance(q.source, q.target)
            );
        }
    }
}
