//! Lowest Common Ancestor queries via Euler tour + sparse-table RMQ.
//!
//! H2H answers a query through the LCA of the two endpoint tree nodes
//! (§III-B, \[55\]); the sparse table gives O(1) LCA after O(n log n)
//! preprocessing, negligible next to the label arrays.

use htsp_graph::VertexId;

/// Constant-time LCA structure over a rooted forest.
#[derive(Clone, Debug)]
pub struct LcaIndex {
    /// First occurrence of each vertex in the Euler tour (`usize::MAX` if the
    /// vertex is not part of the forest).
    first: Vec<usize>,
    /// Euler tour of vertices.
    tour: Vec<VertexId>,
    /// Depth of each tour entry.
    tour_depth: Vec<u32>,
    /// Sparse table: `table[k][i]` = index (into `tour`) of the minimum-depth
    /// entry in `tour[i .. i + 2^k]`.
    table: Vec<Vec<u32>>,
    /// Component id of each vertex (vertices in different trees have no LCA).
    component: Vec<u32>,
}

impl LcaIndex {
    /// Builds the LCA index from parent/children arrays.
    ///
    /// `roots` lists the roots of the forest; `children[v]` lists the children
    /// of `v`; `depth[v]` is the depth of `v` (roots have depth 0).
    pub fn build(n: usize, roots: &[VertexId], children: &[Vec<VertexId>], depth: &[u32]) -> Self {
        let mut first = vec![usize::MAX; n];
        let mut tour = Vec::with_capacity(2 * n);
        let mut tour_depth = Vec::with_capacity(2 * n);
        let mut component = vec![u32::MAX; n];

        for (comp, &root) in roots.iter().enumerate() {
            // Iterative Euler tour: (vertex, next-child-index).
            let mut stack: Vec<(VertexId, usize)> = vec![(root, 0)];
            component[root.index()] = comp as u32;
            first[root.index()] = tour.len();
            tour.push(root);
            tour_depth.push(depth[root.index()]);
            while let Some((v, ci)) = stack.pop() {
                if ci < children[v.index()].len() {
                    stack.push((v, ci + 1));
                    let c = children[v.index()][ci];
                    component[c.index()] = comp as u32;
                    first[c.index()] = tour.len();
                    tour.push(c);
                    tour_depth.push(depth[c.index()]);
                    stack.push((c, 0));
                } else if let Some(&(parent, _)) = stack.last() {
                    // Returning to the parent: record it again.
                    tour.push(parent);
                    tour_depth.push(depth[parent.index()]);
                }
            }
        }

        // Sparse table over tour_depth.
        let m = tour.len();
        let levels = if m <= 1 {
            1
        } else {
            (usize::BITS - (m - 1).leading_zeros()) as usize + 1
        };
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
        table.push((0..m as u32).collect());
        let mut k = 1;
        while (1usize << k) <= m {
            let half = 1usize << (k - 1);
            let prev = &table[k - 1];
            let mut row = Vec::with_capacity(m - (1 << k) + 1);
            for i in 0..=(m - (1 << k)) {
                let a = prev[i];
                let b = prev[i + half];
                row.push(if tour_depth[a as usize] <= tour_depth[b as usize] {
                    a
                } else {
                    b
                });
            }
            table.push(row);
            k += 1;
        }

        LcaIndex {
            first,
            tour,
            tour_depth,
            table,
            component,
        }
    }

    /// Returns the LCA of `u` and `v`, or `None` if they lie in different
    /// trees of the forest.
    pub fn lca(&self, u: VertexId, v: VertexId) -> Option<VertexId> {
        if self.component[u.index()] != self.component[v.index()]
            || self.component[u.index()] == u32::MAX
        {
            return None;
        }
        if u == v {
            return Some(u);
        }
        let (mut a, mut b) = (self.first[u.index()], self.first[v.index()]);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let len = b - a + 1;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize;
        let x = self.table[k][a];
        let y = self.table[k][b + 1 - (1 << k)];
        let best = if self.tour_depth[x as usize] <= self.tour_depth[y as usize] {
            x
        } else {
            y
        };
        Some(self.tour[best as usize])
    }

    /// Returns `true` if `anc` is an ancestor of `v` (or equal to it).
    pub fn is_ancestor(&self, anc: VertexId, v: VertexId) -> bool {
        self.lca(anc, v) == Some(anc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a small hand-rolled tree:
    /// ```text
    ///        0
    ///      /   \
    ///     1     2
    ///    / \     \
    ///   3   4     5
    ///       |
    ///       6
    /// ```
    fn sample() -> LcaIndex {
        let children = vec![
            vec![VertexId(1), VertexId(2)],
            vec![VertexId(3), VertexId(4)],
            vec![VertexId(5)],
            vec![],
            vec![VertexId(6)],
            vec![],
            vec![],
        ];
        let depth = vec![0, 1, 1, 2, 2, 2, 3];
        LcaIndex::build(7, &[VertexId(0)], &children, &depth)
    }

    #[test]
    fn basic_lca_queries() {
        let lca = sample();
        assert_eq!(lca.lca(VertexId(3), VertexId(4)), Some(VertexId(1)));
        assert_eq!(lca.lca(VertexId(3), VertexId(6)), Some(VertexId(1)));
        assert_eq!(lca.lca(VertexId(3), VertexId(5)), Some(VertexId(0)));
        assert_eq!(lca.lca(VertexId(6), VertexId(5)), Some(VertexId(0)));
        assert_eq!(lca.lca(VertexId(1), VertexId(6)), Some(VertexId(1)));
        assert_eq!(lca.lca(VertexId(0), VertexId(6)), Some(VertexId(0)));
        assert_eq!(lca.lca(VertexId(2), VertexId(2)), Some(VertexId(2)));
    }

    #[test]
    fn ancestor_checks() {
        let lca = sample();
        assert!(lca.is_ancestor(VertexId(0), VertexId(6)));
        assert!(lca.is_ancestor(VertexId(4), VertexId(6)));
        assert!(lca.is_ancestor(VertexId(4), VertexId(4)));
        assert!(!lca.is_ancestor(VertexId(6), VertexId(4)));
        assert!(!lca.is_ancestor(VertexId(2), VertexId(3)));
    }

    #[test]
    fn forest_components_have_no_cross_lca() {
        let children = vec![vec![VertexId(1)], vec![], vec![VertexId(3)], vec![]];
        let depth = vec![0, 1, 0, 1];
        let lca = LcaIndex::build(4, &[VertexId(0), VertexId(2)], &children, &depth);
        assert_eq!(lca.lca(VertexId(1), VertexId(3)), None);
        assert_eq!(lca.lca(VertexId(0), VertexId(1)), Some(VertexId(0)));
        assert_eq!(lca.lca(VertexId(2), VertexId(3)), Some(VertexId(2)));
    }

    #[test]
    fn single_vertex_tree() {
        let lca = LcaIndex::build(1, &[VertexId(0)], &[vec![]], &[0]);
        assert_eq!(lca.lca(VertexId(0), VertexId(0)), Some(VertexId(0)));
    }

    #[test]
    fn brute_force_agreement_on_random_tree() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let n = 200usize;
        let mut parent = vec![None::<VertexId>; n];
        let mut children = vec![Vec::new(); n];
        let mut depth = vec![0u32; n];
        for v in 1..n {
            let p = rng.gen_range(0..v);
            parent[v] = Some(VertexId::from_index(p));
            children[p].push(VertexId::from_index(v));
            depth[v] = depth[p] + 1;
        }
        let lca = LcaIndex::build(n, &[VertexId(0)], &children, &depth);
        let brute = |mut a: usize, mut b: usize| -> usize {
            while depth[a] > depth[b] {
                a = parent[a].unwrap().index();
            }
            while depth[b] > depth[a] {
                b = parent[b].unwrap().index();
            }
            while a != b {
                a = parent[a].unwrap().index();
                b = parent[b].unwrap().index();
            }
            a
        };
        for _ in 0..500 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            assert_eq!(
                lca.lca(VertexId::from_index(a), VertexId::from_index(b)),
                Some(VertexId::from_index(brute(a, b)))
            );
        }
    }
}
