//! MDE tree decomposition built on top of the CH contraction.

use crate::lca::LcaIndex;
use htsp_ch::{ContractionHierarchy, OrderingStrategy, ShortcutMode, VertexOrder};
use htsp_graph::cow::CowStats;
use htsp_graph::{Graph, VertexId, Weight};
use std::sync::Arc;

/// The immutable tree shape of a decomposition: parents, children, depths,
/// orders and the LCA structure. Weight-only update batches never change the
/// shape (the bags are the CH's fixed arc sets; only shortcut *weights*
/// move), so all clones of a decomposition share one copy behind an `Arc`.
#[derive(Debug)]
struct TreeShape {
    parent: Vec<Option<VertexId>>,
    children: Vec<Vec<VertexId>>,
    depth: Vec<u32>,
    roots: Vec<VertexId>,
    /// Vertices in a top-down order (every parent precedes its children).
    topdown: Vec<VertexId>,
    lca: LcaIndex,
}

/// A tree decomposition of a road network obtained by Minimum Degree
/// Elimination (Definition 1 of the paper).
///
/// Node `X(v)` corresponds to vertex `v`; its bag is `{v} ∪ X(v).N`, where
/// `X(v).N` — the neighbors of `v` in the contraction graph when `v` was
/// removed — is exactly the upward-arc set of the underlying
/// [`ContractionHierarchy`] (Lemma 4). The parent of `X(v)` is the
/// lowest-ranked vertex of `X(v).N`.
///
/// Cloning a decomposition is cheap: the tree shape is shared behind an
/// `Arc`, and the hierarchy's mutable shortcut table is chunked
/// copy-on-write — see [`ContractionHierarchy`].
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    ch: ContractionHierarchy,
    shape: Arc<TreeShape>,
}

impl TreeDecomposition {
    /// Builds the decomposition with the default MDE ordering.
    pub fn build(graph: &Graph) -> Self {
        Self::build_pooled(graph, &htsp_graph::WorkerPool::sequential())
    }

    /// Builds the decomposition with the contraction windows parallelized
    /// over `pool`; bit-identical for every pool size (see
    /// [`ContractionHierarchy::build_with_order_pooled`]).
    pub fn build_pooled(graph: &Graph, pool: &htsp_graph::WorkerPool) -> Self {
        let ch = ContractionHierarchy::build_pooled(
            graph,
            OrderingStrategy::MinDegree,
            ShortcutMode::AllPairs,
            pool,
        );
        Self::from_hierarchy(ch)
    }

    /// Builds the decomposition with an explicit vertex order (used for the
    /// boundary-first orders of the PSP indexes, §IV-B).
    pub fn build_with_order(graph: &Graph, order: VertexOrder) -> Self {
        Self::build_with_order_pooled(graph, order, &htsp_graph::WorkerPool::sequential())
    }

    /// [`Self::build_with_order`] with pooled contraction windows.
    pub fn build_with_order_pooled(
        graph: &Graph,
        order: VertexOrder,
        pool: &htsp_graph::WorkerPool,
    ) -> Self {
        let ch = ContractionHierarchy::build_with_order_pooled(
            graph,
            order,
            ShortcutMode::AllPairs,
            pool,
        );
        Self::from_hierarchy(ch)
    }

    /// Wraps an existing all-pairs contraction hierarchy.
    ///
    /// # Panics
    /// Panics if the hierarchy was built with witness pruning, since its
    /// upward arcs would not form valid tree-decomposition bags.
    pub fn from_hierarchy(ch: ContractionHierarchy) -> Self {
        assert!(
            matches!(ch.mode(), ShortcutMode::AllPairs),
            "tree decomposition requires all-pairs shortcuts"
        );
        let n = ch.num_vertices();
        let mut parent = vec![None; n];
        let mut children: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut roots = Vec::new();
        for (v, slot) in parent.iter_mut().enumerate() {
            let vid = VertexId::from_index(v);
            // Parent = lowest-ranked upward neighbor (arcs are sorted by rank).
            match ch.up_arcs(vid).first() {
                Some(&(p, _)) => {
                    *slot = Some(p);
                    children[p.index()].push(vid);
                }
                None => roots.push(vid),
            }
        }
        // Depths and a top-down order via BFS from the roots.
        let mut depth = vec![0u32; n];
        let mut topdown = Vec::with_capacity(n);
        let mut queue: std::collections::VecDeque<VertexId> = roots.iter().copied().collect();
        while let Some(v) = queue.pop_front() {
            topdown.push(v);
            for &c in &children[v.index()] {
                depth[c.index()] = depth[v.index()] + 1;
                queue.push_back(c);
            }
        }
        assert_eq!(
            topdown.len(),
            n,
            "tree decomposition must cover all vertices"
        );
        let lca = LcaIndex::build(n, &roots, &children, &depth);
        TreeDecomposition {
            ch,
            shape: Arc::new(TreeShape {
                parent,
                children,
                depth,
                roots,
                topdown,
                lca,
            }),
        }
    }

    /// The underlying contraction hierarchy (shortcut arrays `X(v).sc`).
    pub fn hierarchy(&self) -> &ContractionHierarchy {
        &self.ch
    }

    /// Mutable access to the hierarchy, used by DH2H's shortcut-update phase.
    pub fn hierarchy_mut(&mut self) -> &mut ContractionHierarchy {
        &mut self.ch
    }

    /// The contraction order shared by CH and the decomposition.
    pub fn order(&self) -> &VertexOrder {
        self.ch.order()
    }

    /// Cumulative copy-on-write clone effort of the mutable shortcut arrays
    /// (the tree shape is immutable and never cloned).
    pub fn cow_stats(&self) -> CowStats {
        self.ch.cow_stats()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.shape.parent.len()
    }

    /// The neighbor set `X(v).N` with shortcut weights `X(v).sc`.
    #[inline]
    pub fn bag(&self, v: VertexId) -> &[(VertexId, Weight)] {
        self.ch.up_arcs(v)
    }

    /// Parent node, `None` for roots.
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        self.shape.parent[v.index()]
    }

    /// Children of `v`.
    #[inline]
    pub fn children(&self, v: VertexId) -> &[VertexId] {
        &self.shape.children[v.index()]
    }

    /// Depth of `v` (roots have depth 0); equals the number of ancestors.
    #[inline]
    pub fn depth(&self, v: VertexId) -> u32 {
        self.shape.depth[v.index()]
    }

    /// Roots of the forest (one per connected component).
    pub fn roots(&self) -> &[VertexId] {
        &self.shape.roots
    }

    /// Vertices in an order where every parent precedes its children.
    pub fn topdown_order(&self) -> &[VertexId] {
        &self.shape.topdown
    }

    /// The LCA structure over the decomposition tree.
    pub fn lca_index(&self) -> &LcaIndex {
        &self.shape.lca
    }

    /// LCA of two nodes (None if they are in different components).
    pub fn lca(&self, u: VertexId, v: VertexId) -> Option<VertexId> {
        self.shape.lca.lca(u, v)
    }

    /// Returns the ancestors of `v` from the root down to its parent.
    pub fn ancestors(&self, v: VertexId) -> Vec<VertexId> {
        let mut path = Vec::with_capacity(self.depth(v) as usize);
        let mut cur = self.parent(v);
        while let Some(p) = cur {
            path.push(p);
            cur = self.parent(p);
        }
        path.reverse();
        path
    }

    /// Tree height: `max depth + 1` (the `h` of Theorem 5).
    pub fn height(&self) -> u32 {
        self.shape.depth.iter().copied().max().map_or(0, |d| d + 1)
    }

    /// Treewidth upper bound: the maximum bag size minus one (`w` of Theorem 5).
    pub fn treewidth(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.bag(VertexId::from_index(v)).len())
            .max()
            .unwrap_or(0)
    }

    /// Number of descendants of each vertex, itself included (the `cN` vector
    /// of TD-partitioning, Algorithm 2 lines 2-5).
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let n = self.num_vertices();
        let mut sizes = vec![1u32; n];
        for &v in self.shape.topdown.iter().rev() {
            if let Some(p) = self.parent(v) {
                sizes[p.index()] += sizes[v.index()];
            }
        }
        sizes
    }

    /// Validates the tree-decomposition properties of Definition 1 against the
    /// original graph; intended for tests.
    pub fn validate(&self, graph: &Graph) -> Result<(), String> {
        let n = self.num_vertices();
        if n != graph.num_vertices() {
            return Err("vertex count mismatch".into());
        }
        // Property 2: every edge is contained in some bag. Since the bag of
        // the lower-ranked endpoint contains the higher endpoint, check that.
        for (_, u, v, _) in graph.edges() {
            let (lo, hi) = if self.order().higher(u, v) {
                (v, u)
            } else {
                (u, v)
            };
            if !self.bag(lo).iter().any(|&(x, _)| x == hi) {
                return Err(format!("edge {lo}-{hi} not covered by bag of {lo}"));
            }
        }
        // Parent must be the lowest-ranked bag member and deeper bags must be
        // connected upwards (property 3 follows from the MDE construction; we
        // check the parent choice here).
        for v in 0..n {
            let vid = VertexId::from_index(v);
            if let Some(p) = self.parent(vid) {
                let min_rank = self
                    .bag(vid)
                    .iter()
                    .map(|&(x, _)| self.order().rank(x))
                    .min()
                    .unwrap();
                if self.order().rank(p) != min_rank {
                    return Err(format!("parent of {vid} is not its lowest-ranked neighbor"));
                }
                if self.depth(p) + 1 != self.depth(vid) {
                    return Err(format!("depth of {vid} inconsistent with parent"));
                }
            }
            // Every bag member must be an ancestor of v in the tree.
            for &(u, _) in self.bag(vid) {
                if !self.shape.lca.is_ancestor(u, vid) {
                    return Err(format!("bag member {u} of {vid} is not an ancestor"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, random_geometric, WeightRange};

    #[test]
    fn grid_decomposition_is_valid() {
        let g = grid(8, 8, WeightRange::new(1, 9), 3);
        let td = TreeDecomposition::build(&g);
        td.validate(&g).unwrap();
        assert_eq!(td.roots().len(), 1);
        assert!(td.height() >= 2);
        assert!(td.treewidth() >= 2);
    }

    #[test]
    fn geometric_decomposition_is_valid() {
        let g = random_geometric(200, 3, WeightRange::new(1, 50), 7);
        let td = TreeDecomposition::build(&g);
        td.validate(&g).unwrap();
    }

    #[test]
    fn topdown_order_puts_parents_first() {
        let g = grid(6, 6, WeightRange::new(1, 9), 5);
        let td = TreeDecomposition::build(&g);
        let mut seen = vec![false; g.num_vertices()];
        for &v in td.topdown_order() {
            if let Some(p) = td.parent(v) {
                assert!(seen[p.index()], "parent of {v} not yet visited");
            }
            seen[v.index()] = true;
        }
    }

    #[test]
    fn ancestors_follow_parent_chain() {
        let g = grid(6, 6, WeightRange::new(1, 9), 5);
        let td = TreeDecomposition::build(&g);
        for v in g.vertices() {
            let anc = td.ancestors(v);
            assert_eq!(anc.len(), td.depth(v) as usize);
            for pair in anc.windows(2) {
                assert_eq!(td.parent(pair[1]), Some(pair[0]));
            }
            if let Some(&last) = anc.last() {
                assert_eq!(td.parent(v), Some(last));
            }
            // Ancestor depths are 0..depth(v).
            for (i, &a) in anc.iter().enumerate() {
                assert_eq!(td.depth(a) as usize, i);
            }
        }
    }

    #[test]
    fn subtree_sizes_sum_to_n_at_roots() {
        let g = grid(7, 5, WeightRange::new(1, 9), 5);
        let td = TreeDecomposition::build(&g);
        let sizes = td.subtree_sizes();
        let total: u32 = td.roots().iter().map(|&r| sizes[r.index()]).sum();
        assert_eq!(total as usize, g.num_vertices());
        for v in g.vertices() {
            let child_sum: u32 = td.children(v).iter().map(|&c| sizes[c.index()]).sum();
            assert_eq!(sizes[v.index()], child_sum + 1);
        }
    }

    #[test]
    fn bag_members_are_higher_ranked_ancestors() {
        let g = grid(6, 6, WeightRange::new(1, 9), 2);
        let td = TreeDecomposition::build(&g);
        for v in g.vertices() {
            for &(u, _) in td.bag(v) {
                assert!(td.order().higher(u, v));
                assert!(td.lca_index().is_ancestor(u, v));
            }
        }
    }

    #[test]
    fn disconnected_graph_yields_forest() {
        use htsp_graph::GraphBuilder;
        let mut b = GraphBuilder::new(6);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(1), VertexId(2), 1);
        b.add_edge(VertexId(3), VertexId(4), 1);
        b.add_edge(VertexId(4), VertexId(5), 1);
        let g = b.build();
        let td = TreeDecomposition::build(&g);
        assert_eq!(td.roots().len(), 2);
        td.validate(&g).unwrap();
    }
}
