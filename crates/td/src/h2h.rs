//! The H2H (Hierarchical 2-Hop labeling) index.
//!
//! For every tree node `X(v)` the index stores the distance array `X(v).dis`:
//! the shortest distance from `v` to each of its ancestors (indexed by the
//! ancestor's depth), with the final entry `d(v, v) = 0`. The position array
//! `X(v).pos` of the paper is not materialized: a neighbor's position in the
//! ancestor array is simply its tree depth, available from the decomposition.
//!
//! A query `q(s, t)` finds the LCA `X` of the endpoints and minimizes
//! `X(s).dis[i] + X(t).dis[i]` over the positions `i` of `X`'s bag members
//! (§III-B, Example 2).

use crate::decomposition::TreeDecomposition;
use htsp_ch::{ContractionHierarchy, ShortcutMode};
use htsp_graph::cow::{CowStats, CowTable, RowRead, DEFAULT_CHUNK};
use htsp_graph::par::WorkerPool;
use htsp_graph::{ByteReader, ByteWriter, Dist, Graph, SnapshotError, VertexId, INF};

/// The H2H index: a tree decomposition plus per-node distance arrays.
///
/// The distance arrays live in a chunked copy-on-write [`CowTable`], so
/// cloning the index (which every published snapshot does transitively) is a
/// chunk-pointer copy, and a label repair that rewrites `k` rows while a
/// snapshot is outstanding clones `O(k / chunk)` chunks instead of the whole
/// table.
#[derive(Clone, Debug)]
pub struct H2HIndex {
    td: TreeDecomposition,
    /// `dis[v][d]` = distance from `v` to its ancestor at depth `d`;
    /// `dis[v][depth(v)] = 0`.
    dis: CowTable<Dist>,
}

impl H2HIndex {
    /// Builds the index from scratch with the default MDE ordering.
    pub fn build(graph: &Graph) -> Self {
        Self::build_pooled(graph, &WorkerPool::sequential())
    }

    /// Builds the index with both the contraction windows and the label fill
    /// parallelized over `pool`; bit-identical for every pool size.
    pub fn build_pooled(graph: &Graph, pool: &WorkerPool) -> Self {
        let td = TreeDecomposition::build_pooled(graph, pool);
        Self::from_decomposition_pooled(td, pool)
    }

    /// Builds the distance arrays over an existing decomposition.
    pub fn from_decomposition(td: TreeDecomposition) -> Self {
        Self::from_decomposition_pooled(td, &WorkerPool::sequential())
    }

    /// Builds the distance arrays over an existing decomposition, filling the
    /// label table level by level over `pool`.
    ///
    /// A label at depth `d` reads only ancestor labels (depths `< d`), so all
    /// rows of one tree level are independent: each level is computed
    /// read-only against the table in parallel, then written through
    /// [`CowTable::make_mut_where`], which hands out exactly the level's
    /// disjoint row borrows in index order. Both phases are pure functions of
    /// the decomposition, so every pool size produces a bit-identical table
    /// (and the same table the old ancestor-path DFS produced).
    pub fn from_decomposition_pooled(td: TreeDecomposition, pool: &WorkerPool) -> Self {
        let n = td.num_vertices();
        let depth: Vec<u32> = (0..n).map(|v| td.depth(VertexId::from_index(v))).collect();
        let mut levels: Vec<Vec<VertexId>> = vec![Vec::new(); td.height() as usize];
        for (v, &d) in depth.iter().enumerate() {
            levels[d as usize].push(VertexId::from_index(v));
        }
        let mut dis: CowTable<Dist> = CowTable::from_rows(vec![Vec::new(); n], DEFAULT_CHUNK);
        for (d, level) in levels.iter().enumerate() {
            // Compute phase: read-only against the filled shallower levels.
            let rows: Vec<Vec<Dist>> = pool.run("h2h_level", level.len(), |i| {
                let v = level[i];
                compute_label(&td, &dis, v, &td.ancestors(v))
            });
            // Write phase: the level's rows, disjoint by construction. Both
            // sides are in ascending row-index order, so they zip exactly.
            let slots = dis.make_mut_where(|i| depth[i] == d as u32);
            debug_assert_eq!(slots.len(), level.len());
            for ((slot, row), &v) in slots.into_iter().zip(rows).zip(level) {
                debug_assert_eq!(slot.0, v.index());
                *slot.1 = row;
            }
        }
        H2HIndex { td, dis }
    }

    /// Reassembles an index from a decomposition and its label rows — the
    /// warm-restart path used by the snapshot decoder. `dis[v]` must be the
    /// ancestor-distance array of `v` (length `depth(v) + 1`, last entry 0).
    pub fn from_parts(td: TreeDecomposition, dis: Vec<Vec<Dist>>) -> Self {
        assert_eq!(
            dis.len(),
            td.num_vertices(),
            "label table does not cover the decomposition"
        );
        H2HIndex {
            td,
            dis: CowTable::from_rows(dis, DEFAULT_CHUNK),
        }
    }

    /// The underlying tree decomposition.
    pub fn decomposition(&self) -> &TreeDecomposition {
        &self.td
    }

    /// Decomposes the index into its tree decomposition and label table.
    ///
    /// Used by indexes (e.g. PostMHL) that take over label maintenance with
    /// their own staging while reusing the H2H construction.
    pub fn into_parts(self) -> (TreeDecomposition, CowTable<Dist>) {
        (self.td, self.dis)
    }

    /// Mutable access used by the DH2H maintenance module.
    pub(crate) fn parts_mut(&mut self) -> (&mut TreeDecomposition, &mut CowTable<Dist>) {
        (&mut self.td, &mut self.dis)
    }

    /// Cumulative copy-on-write clone effort of the label table and the
    /// shortcut arrays (shared by all clones of this index's lineage).
    pub fn cow_stats(&self) -> CowStats {
        self.dis.stats().plus(self.td.cow_stats())
    }

    /// Distance array of `v` (`X(v).dis`).
    pub fn label(&self, v: VertexId) -> &[Dist] {
        self.dis.row(v.index())
    }

    /// Shortest distance between `s` and `t`, `INF` if disconnected.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return Dist::ZERO;
        }
        let x = match self.td.lca(s, t) {
            Some(x) => x,
            None => return INF,
        };
        if x == s {
            return self.dis.row(t.index())[self.td.depth(s) as usize];
        }
        if x == t {
            return self.dis.row(s.index())[self.td.depth(t) as usize];
        }
        let ds = self.dis.row(s.index());
        let dt = self.dis.row(t.index());
        let mut best = INF;
        // Positions of the LCA's bag members (its separator), plus the LCA itself.
        let x_depth = self.td.depth(x) as usize;
        let cand = ds[x_depth].saturating_add(dt[x_depth]);
        if cand < best {
            best = cand;
        }
        for &(u, _) in self.td.bag(x) {
            let i = self.td.depth(u) as usize;
            let cand = ds[i].saturating_add(dt[i]);
            if cand < best {
                best = cand;
            }
        }
        best
    }

    /// Number of label entries stored (the `|L|` statistic of Exp. 2).
    pub fn num_label_entries(&self) -> usize {
        self.dis.num_entries()
    }

    /// Approximate index size in bytes (labels + shortcut arrays).
    pub fn index_size_bytes(&self) -> usize {
        self.num_label_entries() * std::mem::size_of::<Dist>()
            + self.td.hierarchy().index_size_bytes()
    }

    /// Measured heap footprint of the label table alone (the hierarchy is
    /// reported separately by [`ContractionHierarchy::heap_bytes`]).
    pub fn label_heap_bytes(&self) -> usize {
        self.dis.heap_bytes()
    }

    /// Appends this index's snapshot section to `w`: the hierarchy section
    /// followed by one length-prefixed label row per vertex. The tree shape
    /// is *not* stored — it is a pure function of the hierarchy and is
    /// rebuilt on decode.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        self.td.hierarchy().encode_into(w);
        for v in 0..self.td.num_vertices() {
            let row = self.dis.row(v);
            w.put_u32(row.len() as u32);
            for &d in row {
                w.put_u32(d.0);
            }
        }
    }

    /// Serializes the index section to a standalone byte vector.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Reads an index section from `r`, validating label shapes against the
    /// rebuilt tree before reassembly. Corrupt input surfaces as a typed
    /// [`SnapshotError`], never a panic.
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, SnapshotError> {
        let ch = ContractionHierarchy::decode_from(r)?;
        if !matches!(ch.mode(), ShortcutMode::AllPairs) {
            return Err(SnapshotError::Malformed(
                "H2H snapshot requires an all-pairs hierarchy".to_string(),
            ));
        }
        let td = TreeDecomposition::from_hierarchy(ch);
        let n = td.num_vertices();
        let mut dis: Vec<Vec<Dist>> = Vec::with_capacity(n);
        for v in 0..n {
            let len = r.get_u32("h2h label length")? as usize;
            let expect = td.depth(VertexId::from_index(v)) as usize + 1;
            if len != expect {
                return Err(SnapshotError::Malformed(format!(
                    "label of vertex {v} has {len} entries, tree depth demands {expect}"
                )));
            }
            if r.remaining() < len.saturating_mul(4) {
                return Err(SnapshotError::Truncated {
                    context: "h2h label row",
                });
            }
            let mut row = Vec::with_capacity(len);
            for _ in 0..len {
                row.push(Dist(r.get_u32("h2h label entry")?));
            }
            if row.last() != Some(&Dist::ZERO) {
                return Err(SnapshotError::Malformed(format!(
                    "label of vertex {v} does not end with the self-distance 0"
                )));
            }
            dis.push(row);
        }
        Ok(H2HIndex::from_parts(td, dis))
    }

    /// Deserializes an index section produced by [`Self::to_snapshot_bytes`].
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        let h2h = Self::decode_from(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes after h2h section",
                r.remaining()
            )));
        }
        Ok(h2h)
    }
}

/// Computes the distance array of `v` given the labels of all its ancestors.
///
/// `path` is the root-to-parent ancestor list of `v` (so `path[d]` is the
/// ancestor at depth `d`). Generic over the label storage ([`RowRead`]) so
/// it serves both the build pass (plain rows under construction) and the
/// maintenance pass (the frozen [`CowTable`]).
pub(crate) fn compute_label<R: RowRead<Dist> + ?Sized>(
    td: &TreeDecomposition,
    dis: &R,
    v: VertexId,
    path: &[VertexId],
) -> Vec<Dist> {
    let depth_v = td.depth(v) as usize;
    debug_assert_eq!(path.len(), depth_v);
    let mut label = vec![INF; depth_v + 1];
    label[depth_v] = Dist::ZERO;
    let bag = td.bag(v);
    for (d, &a) in path.iter().enumerate() {
        let mut best = INF;
        for &(u, w) in bag {
            let du = td.depth(u) as usize;
            let rest = if du == d {
                // a == u
                Dist::ZERO
            } else if d < du {
                // a is an ancestor of u: read u's label.
                dis.row(u.index())[d]
            } else {
                // u is an ancestor of a: read a's label at u's depth.
                dis.row(a.index())[du]
            };
            let cand = rest.saturating_add_weight(w);
            if cand < best {
                best = cand;
            }
        }
        label[d] = best;
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, grid_with_diagonals, random_geometric, WeightRange};
    use htsp_graph::{GraphBuilder, QuerySet};
    use htsp_search::dijkstra_distance;

    fn check(g: &Graph, h2h: &H2HIndex, count: usize, seed: u64) {
        let qs = QuerySet::random(g, count, seed);
        for q in &qs {
            assert_eq!(
                h2h.distance(q.source, q.target),
                dijkstra_distance(g, q.source, q.target),
                "H2H mismatch for {:?}",
                q
            );
        }
    }

    #[test]
    fn h2h_exact_on_grid() {
        let g = grid(8, 8, WeightRange::new(1, 20), 3);
        let h2h = H2HIndex::build(&g);
        check(&g, &h2h, 200, 4);
    }

    #[test]
    fn h2h_exact_on_grid_with_diagonals() {
        let g = grid_with_diagonals(7, 9, WeightRange::new(1, 30), 0.25, 6);
        let h2h = H2HIndex::build(&g);
        check(&g, &h2h, 200, 5);
    }

    #[test]
    fn h2h_exact_on_geometric() {
        let g = random_geometric(250, 3, WeightRange::new(1, 100), 8);
        let h2h = H2HIndex::build(&g);
        check(&g, &h2h, 150, 6);
    }

    #[test]
    fn h2h_handles_ancestor_descendant_queries() {
        let g = grid(6, 6, WeightRange::new(1, 9), 2);
        let h2h = H2HIndex::build(&g);
        // Query every vertex against the tree root and its own parent.
        let td = h2h.decomposition();
        let root = td.roots()[0];
        for v in g.vertices() {
            assert_eq!(h2h.distance(v, root), dijkstra_distance(&g, v, root));
            if let Some(p) = td.parent(v) {
                assert_eq!(h2h.distance(v, p), dijkstra_distance(&g, v, p));
            }
            assert_eq!(h2h.distance(v, v), Dist::ZERO);
        }
    }

    #[test]
    fn h2h_disconnected_components_are_inf() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 2);
        b.add_edge(VertexId(2), VertexId(3), 5);
        let g = b.build();
        let h2h = H2HIndex::build(&g);
        assert_eq!(h2h.distance(VertexId(0), VertexId(3)), INF);
        assert_eq!(h2h.distance(VertexId(0), VertexId(1)), Dist(2));
        assert_eq!(h2h.distance(VertexId(2), VertexId(3)), Dist(5));
    }

    #[test]
    fn label_lengths_match_depth() {
        let g = grid(6, 6, WeightRange::new(1, 9), 7);
        let h2h = H2HIndex::build(&g);
        let td = h2h.decomposition();
        for v in g.vertices() {
            assert_eq!(h2h.label(v).len(), td.depth(v) as usize + 1);
            assert_eq!(*h2h.label(v).last().unwrap(), Dist::ZERO);
        }
    }

    #[test]
    fn labels_store_true_ancestor_distances() {
        let g = grid(5, 5, WeightRange::new(1, 9), 9);
        let h2h = H2HIndex::build(&g);
        let td = h2h.decomposition();
        for v in g.vertices() {
            for (d, &a) in td.ancestors(v).iter().enumerate() {
                assert_eq!(
                    h2h.label(v)[d],
                    dijkstra_distance(&g, v, a),
                    "label of {v} towards ancestor {a}"
                );
            }
        }
    }

    #[test]
    fn pooled_label_fill_is_bit_identical_across_thread_counts() {
        let g = random_geometric(260, 3, WeightRange::new(1, 80), 41);
        let base = H2HIndex::build_pooled(&g, &WorkerPool::sequential());
        for threads in [2usize, 3, 8] {
            let h2h = H2HIndex::build_pooled(&g, &WorkerPool::new(threads));
            assert_eq!(h2h.to_snapshot_bytes(), base.to_snapshot_bytes());
        }
        // And identical to the plain build entry point.
        assert_eq!(
            H2HIndex::build(&g).to_snapshot_bytes(),
            base.to_snapshot_bytes()
        );
        check(&g, &base, 120, 43);
    }

    #[test]
    fn index_size_is_reported() {
        let g = grid(6, 6, WeightRange::new(1, 9), 7);
        let h2h = H2HIndex::build(&g);
        assert!(h2h.num_label_entries() >= g.num_vertices());
        assert!(h2h.index_size_bytes() > 0);
        assert!(h2h.label_heap_bytes() > 0);
    }

    #[test]
    fn snapshot_round_trip_preserves_labels_and_answers() {
        let g = grid_with_diagonals(7, 7, WeightRange::new(1, 19), 0.2, 13);
        let h2h = H2HIndex::build(&g);
        let bytes = h2h.to_snapshot_bytes();
        let back = H2HIndex::from_snapshot_bytes(&bytes).expect("round trip");
        assert_eq!(back.num_label_entries(), h2h.num_label_entries());
        for v in g.vertices() {
            assert_eq!(back.label(v), h2h.label(v));
        }
        check(&g, &back, 150, 17);
    }

    #[test]
    fn snapshot_corruption_is_typed_never_a_panic() {
        use htsp_graph::SnapshotError;
        let g = grid(5, 5, WeightRange::new(1, 9), 3);
        let h2h = H2HIndex::build(&g);
        let clean = h2h.to_snapshot_bytes();
        // Every strict prefix fails with a typed error.
        for cut in 0..clean.len() {
            let err =
                H2HIndex::from_snapshot_bytes(&clean[..cut]).expect_err("strict prefix must fail");
            assert!(matches!(
                err,
                SnapshotError::Truncated { .. } | SnapshotError::Malformed(_)
            ));
        }
        // A label row that no longer ends in 0 is rejected (the encoding
        // ends with the last vertex's self-distance).
        let mut bad = clean.clone();
        let last = bad.len() - 4;
        bad[last..].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(
            H2HIndex::from_snapshot_bytes(&bad),
            Err(SnapshotError::Malformed(_))
        ));
        // Trailing garbage is rejected.
        let mut bad = clean.clone();
        bad.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            H2HIndex::from_snapshot_bytes(&bad),
            Err(SnapshotError::Malformed(_))
        ));
    }
}
