//! # htsp-td
//!
//! MDE tree decomposition, the H2H hierarchical 2-hop labeling index, and its
//! dynamic maintenance (DH2H).
//!
//! The tree decomposition (§II, Definition 1) is obtained by Minimum Degree
//! Elimination: contracting vertices in MDE order produces, for each vertex
//! `v`, a tree node `X(v) = {v} ∪ X(v).N` where `X(v).N` are `v`'s neighbors
//! in the contraction graph at the moment `v` is removed. The parent of `X(v)`
//! is the lowest-ranked vertex of `X(v).N`. Because this is exactly the CH
//! contraction with all-pairs shortcuts (Lemma 4), [`TreeDecomposition`] is a
//! thin layer over [`htsp_ch::ContractionHierarchy`]: the shortcut arrays
//! `X(v).sc` *are* the CH upward arcs.
//!
//! On top of the decomposition, [`H2HIndex`] stores for every node the
//! distance array `X(v).dis` (distances from `v` to each of its ancestors) and
//! answers queries through the LCA of the two endpoints (§III-B). Dynamic
//! maintenance ([`H2HIndex::apply_batch`]) runs the two phases of DH2H \[33\]:
//! bottom-up shortcut update (delegated to DCH) followed by top-down label
//! update over the affected subtrees.

#![warn(missing_docs)]

pub mod decomposition;
pub mod dh2h;
pub mod h2h;
pub mod lca;

pub use decomposition::TreeDecomposition;
pub use dh2h::H2HUpdateReport;
pub use h2h::H2HIndex;
pub use lca::LcaIndex;
