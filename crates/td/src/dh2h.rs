//! DH2H: dynamic maintenance of the H2H index.
//!
//! Maintenance proceeds in the two phases of \[33\] (and Figure 7's U-Stages 2-3
//! use exactly these phases per partition):
//!
//! 1. **Bottom-up shortcut update** — delegated to the DCH repair of the
//!    underlying contraction hierarchy
//!    ([`htsp_ch::ContractionHierarchy::apply_batch`]); it returns the set of
//!    tree nodes whose shortcut arrays changed.
//! 2. **Top-down label update** — a pruned depth-first pass over the tree that
//!    recomputes the distance arrays of every node whose own shortcuts changed
//!    or that lies below an ancestor whose labels changed. Subtrees containing
//!    no affected node are skipped entirely.
//!
//! The label phase dominates the cost (this is the paper's motivation for
//! PMHL/PostMHL: DH2H queries are fast but repairs are slow), and the returned
//! [`H2HUpdateReport`] exposes both phase durations so the throughput
//! simulator can model the index-unavailable window.

use crate::h2h::{compute_label, H2HIndex};
use htsp_ch::ShortcutChange;
use htsp_graph::{EdgeUpdate, Graph, VertexId};
use std::time::{Duration, Instant};

/// Outcome of one DH2H maintenance round.
#[derive(Clone, Debug, Default)]
pub struct H2HUpdateReport {
    /// Shortcuts whose weight changed during the bottom-up phase.
    pub shortcut_changes: Vec<ShortcutChange>,
    /// Vertices whose distance arrays changed during the top-down phase
    /// (the affected vertex set `V_A` consumed by PMHL's U-Stage 5).
    pub affected_labels: Vec<VertexId>,
    /// Number of tree nodes whose labels were recomputed (even if unchanged).
    pub labels_recomputed: usize,
    /// Wall-clock duration of the bottom-up shortcut phase.
    pub shortcut_time: Duration,
    /// Wall-clock duration of the top-down label phase.
    pub label_time: Duration,
}

impl H2HUpdateReport {
    /// Total maintenance time.
    pub fn total_time(&self) -> Duration {
        self.shortcut_time + self.label_time
    }
}

impl H2HIndex {
    /// Repairs the index after the updates in `batch` have been applied to
    /// `graph` (the graph must already hold the new weights).
    pub fn apply_batch(&mut self, graph: &Graph, batch: &[EdgeUpdate]) -> H2HUpdateReport {
        let t0 = Instant::now();
        let shortcut_changes = self.update_shortcuts(graph, batch);
        let shortcut_time = t0.elapsed();

        let t1 = Instant::now();
        let changed: Vec<VertexId> = shortcut_changes.iter().map(|c| c.from).collect();
        let (affected_labels, labels_recomputed) = self.update_labels_for(&changed);
        let label_time = t1.elapsed();

        H2HUpdateReport {
            shortcut_changes,
            affected_labels,
            labels_recomputed,
            shortcut_time,
            label_time,
        }
    }

    /// Phase 1 only: bottom-up shortcut update (shared with DCH). The label
    /// arrays are *not* repaired; CH-style queries on the shortcut arrays are
    /// correct after this call, H2H queries are not until
    /// [`H2HIndex::update_labels_for`] runs. Used by the multi-stage indexes
    /// (PMHL U-Stage 2 / PostMHL U-Stage 2).
    pub fn update_shortcuts(&mut self, graph: &Graph, batch: &[EdgeUpdate]) -> Vec<ShortcutChange> {
        let (td, _) = self.parts_mut();
        td.hierarchy_mut().apply_batch(graph, batch)
    }

    /// Phase 2 only: top-down label update given the vertices whose shortcut
    /// arrays changed in phase 1. Returns `(vertices whose labels changed,
    /// number of labels recomputed)`.
    pub fn update_labels_for(&mut self, sc_changed: &[VertexId]) -> (Vec<VertexId>, usize) {
        self.update_labels(sc_changed.iter().copied())
    }

    /// Top-down label update: recomputes the distance arrays of every node
    /// whose shortcut array changed (`sc_changed`) and of every node below an
    /// ancestor whose labels changed. Returns the vertices whose labels
    /// actually changed and the number of recomputed nodes.
    pub(crate) fn update_labels(
        &mut self,
        sc_changed: impl Iterator<Item = VertexId>,
    ) -> (Vec<VertexId>, usize) {
        let n = self.decomposition().num_vertices();
        let mut is_sc_changed = vec![false; n];
        let mut any = false;
        let mut seeds: Vec<VertexId> = Vec::new();
        for v in sc_changed {
            if !is_sc_changed[v.index()] {
                is_sc_changed[v.index()] = true;
                seeds.push(v);
                any = true;
            }
        }
        if !any {
            return (Vec::new(), 0);
        }
        // Mark every vertex whose subtree contains an affected node so the
        // DFS can prune unaffected branches.
        let mut subtree_affected = vec![false; n];
        {
            let td = self.decomposition();
            for &v in &seeds {
                let mut cur = Some(v);
                while let Some(x) = cur {
                    if subtree_affected[x.index()] {
                        break;
                    }
                    subtree_affected[x.index()] = true;
                    cur = td.parent(x);
                }
            }
        }

        let mut affected_labels = Vec::new();
        let mut recomputed = 0usize;
        let (td, dis) = self.parts_mut();
        for &root in td.roots() {
            if !subtree_affected[root.index()] {
                continue;
            }
            // DFS frames: (vertex, next child index, ancestor-changed flag for
            // this vertex's children).
            let mut path: Vec<VertexId> = Vec::new();
            let mut stack: Vec<(VertexId, usize, bool)> = vec![(root, 0, false)];
            // The flag passed *into* each vertex; parallel stack to `stack`.
            let mut in_flags: Vec<bool> = vec![false];
            while let Some(&mut (v, ref mut ci, ref mut child_flag)) = stack.last_mut() {
                if *ci == 0 {
                    let flag_in = *in_flags.last().unwrap();
                    let need = flag_in || is_sc_changed[v.index()];
                    let mut changed = false;
                    if need {
                        let new_label = compute_label(td, &*dis, v, &path);
                        recomputed += 1;
                        if new_label[..] != *dis.row(v.index()) {
                            *dis.make_mut(v.index()) = new_label;
                            changed = true;
                            affected_labels.push(v);
                        }
                    }
                    *child_flag = flag_in || changed;
                    path.push(v);
                }
                if *ci < td.children(v).len() {
                    let c = td.children(v)[*ci];
                    *ci += 1;
                    let cf = *child_flag;
                    if cf || subtree_affected[c.index()] {
                        stack.push((c, 0, false));
                        in_flags.push(cf);
                    }
                } else {
                    path.pop();
                    stack.pop();
                    in_flags.pop();
                }
            }
        }
        (affected_labels, recomputed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, grid_with_diagonals, WeightRange};
    use htsp_graph::{QuerySet, UpdateGenerator};
    use htsp_search::dijkstra_distance;

    fn check(g: &Graph, h2h: &H2HIndex, count: usize, seed: u64) {
        let qs = QuerySet::random(g, count, seed);
        for q in &qs {
            assert_eq!(
                h2h.distance(q.source, q.target),
                dijkstra_distance(g, q.source, q.target),
                "DH2H mismatch for {:?}",
                q
            );
        }
    }

    #[test]
    fn decrease_batch_keeps_h2h_exact() {
        let mut g = grid(8, 8, WeightRange::new(10, 40), 3);
        let mut h2h = H2HIndex::build(&g);
        let mut gen = UpdateGenerator::new(1);
        gen.decrease_fraction = 1.0;
        let batch = gen.generate(&g, 25);
        g.apply_batch(&batch);
        let report = h2h.apply_batch(&g, batch.as_slice());
        assert!(!report.shortcut_changes.is_empty());
        assert!(!report.affected_labels.is_empty());
        check(&g, &h2h, 200, 2);
    }

    #[test]
    fn increase_batch_keeps_h2h_exact() {
        let mut g = grid(8, 8, WeightRange::new(10, 40), 5);
        let mut h2h = H2HIndex::build(&g);
        let mut gen = UpdateGenerator::new(2);
        gen.decrease_fraction = 0.0;
        let batch = gen.generate(&g, 25);
        g.apply_batch(&batch);
        h2h.apply_batch(&g, batch.as_slice());
        check(&g, &h2h, 200, 3);
    }

    #[test]
    fn repeated_mixed_batches_keep_h2h_exact() {
        let mut g = grid_with_diagonals(7, 7, WeightRange::new(5, 60), 0.2, 4);
        let mut h2h = H2HIndex::build(&g);
        let mut gen = UpdateGenerator::new(3);
        for round in 0..4 {
            let batch = gen.generate(&g, 15);
            g.apply_batch(&batch);
            h2h.apply_batch(&g, batch.as_slice());
            check(&g, &h2h, 80, 50 + round);
        }
    }

    #[test]
    fn updated_index_matches_fresh_rebuild() {
        let mut g = grid(6, 6, WeightRange::new(5, 30), 7);
        let mut h2h = H2HIndex::build(&g);
        let mut gen = UpdateGenerator::new(4);
        let batch = gen.generate(&g, 12);
        g.apply_batch(&batch);
        h2h.apply_batch(&g, batch.as_slice());
        // A freshly built index with the same order must carry identical labels.
        let fresh = H2HIndex::from_decomposition(
            crate::decomposition::TreeDecomposition::build_with_order(
                &g,
                h2h.decomposition().order().clone(),
            ),
        );
        for v in g.vertices() {
            assert_eq!(h2h.label(v), fresh.label(v), "labels of {v} diverge");
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let g = grid(5, 5, WeightRange::new(1, 9), 7);
        let mut h2h = H2HIndex::build(&g);
        let report = h2h.apply_batch(&g, &[]);
        assert!(report.shortcut_changes.is_empty());
        assert!(report.affected_labels.is_empty());
        assert_eq!(report.labels_recomputed, 0);
    }

    #[test]
    fn report_times_are_recorded() {
        let mut g = grid(6, 6, WeightRange::new(10, 30), 9);
        let mut h2h = H2HIndex::build(&g);
        let mut gen = UpdateGenerator::new(5);
        let batch = gen.generate(&g, 10);
        g.apply_batch(&batch);
        let report = h2h.apply_batch(&g, batch.as_slice());
        assert!(report.total_time() >= report.label_time);
    }
}
