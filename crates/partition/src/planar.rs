//! Balanced edge-cut partitioning by seeded region growing plus a
//! boundary-reducing refinement pass — the PUNCH \[61\] substitute used to
//! build PMHL partitions (§V-C).
//!
//! The algorithm:
//!
//! 1. **Seeding.** `k` seeds are chosen by farthest-point sampling in hop
//!    distance, so they spread across the network.
//! 2. **Region growing.** A multi-source BFS grows all regions simultaneously;
//!    each step the smallest region expands first, which keeps partition sizes
//!    balanced (the balance matters for thread-parallel index maintenance).
//! 3. **Refinement.** A few Kernighan–Lin-style sweeps move boundary vertices
//!    to a neighboring partition when that strictly reduces the number of cut
//!    edges without violating the balance bound.

use crate::result::PartitionResult;
use htsp_graph::{Graph, VertexId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Partitions `graph` into `k` balanced connected-ish regions.
///
/// `seed` controls the seeding randomness; results are deterministic for a
/// given seed. `k` is clamped to the number of vertices.
pub fn partition_region_growing(graph: &Graph, k: usize, seed: u64) -> PartitionResult {
    let n = graph.num_vertices();
    assert!(n > 0, "cannot partition an empty graph");
    let k = k.clamp(1, n);
    let seeds = farthest_point_seeds(graph, k, seed);

    // Multi-source balanced BFS.
    let mut part_of = vec![u32::MAX; n];
    let mut frontiers: Vec<VecDeque<VertexId>> = vec![VecDeque::new(); k];
    let mut sizes = vec![0usize; k];
    for (i, &s) in seeds.iter().enumerate() {
        part_of[s.index()] = i as u32;
        frontiers[i].push_back(s);
        sizes[i] = 1;
    }
    let mut assigned = k.min(n);
    while assigned < n {
        // Pick the non-empty frontier of the currently smallest region.
        let mut best: Option<usize> = None;
        for i in 0..k {
            if !frontiers[i].is_empty() && best.is_none_or(|b| sizes[i] < sizes[b]) {
                best = Some(i);
            }
        }
        let i = match best {
            Some(i) => i,
            None => {
                // All frontiers empty but unassigned vertices remain
                // (disconnected graph): seed the smallest region with an
                // arbitrary unassigned vertex.
                let v = (0..n).find(|&v| part_of[v] == u32::MAX).unwrap();
                let i = (0..k).min_by_key(|&i| sizes[i]).unwrap();
                part_of[v] = i as u32;
                sizes[i] += 1;
                assigned += 1;
                frontiers[i].push_back(VertexId::from_index(v));
                continue;
            }
        };
        // Expand one vertex of region i.
        if let Some(v) = frontiers[i].pop_front() {
            for arc in graph.arcs(v) {
                if part_of[arc.to.index()] == u32::MAX {
                    part_of[arc.to.index()] = i as u32;
                    sizes[i] += 1;
                    assigned += 1;
                    frontiers[i].push_back(arc.to);
                }
            }
            // Keep v in the frontier until its neighborhood is exhausted? A
            // single pass is enough because we pushed all unassigned
            // neighbors already.
        }
    }

    // Refinement sweeps.
    let max_size = n.div_ceil(k) * 2; // allow up to 2x the average size
    refine(graph, &mut part_of, k, max_size, 3);

    PartitionResult::from_assignment(graph, part_of, k)
}

/// Farthest-point sampling in hop distance: the first seed is random, each
/// subsequent seed maximizes the hop distance to the already chosen seeds.
fn farthest_point_seeds(graph: &Graph, k: usize, seed: u64) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let first = VertexId::from_index(rng.gen_range(0..n));
    let mut seeds = vec![first];
    let mut hop = vec![u32::MAX; n];
    bfs_update_hops(graph, first, &mut hop);
    while seeds.len() < k {
        // Pick the vertex with maximum hop distance to the nearest seed
        // (unreached vertices of other components count as farthest).
        let mut best_v = 0usize;
        let mut best_d = 0u32;
        let mut found_unreached = false;
        for (v, &h) in hop.iter().enumerate() {
            if seeds.iter().any(|s| s.index() == v) {
                continue;
            }
            if h == u32::MAX {
                best_v = v;
                found_unreached = true;
                break;
            }
            if h >= best_d {
                best_d = h;
                best_v = v;
            }
        }
        let next = VertexId::from_index(best_v);
        seeds.push(next);
        let _ = found_unreached;
        bfs_update_hops(graph, next, &mut hop);
    }
    seeds
}

/// Updates `hop[v] = min(hop[v], hops from src)` via BFS.
fn bfs_update_hops(graph: &Graph, src: VertexId, hop: &mut [u32]) {
    let mut queue = VecDeque::new();
    hop[src.index()] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let d = hop[v.index()];
        for arc in graph.arcs(v) {
            if hop[arc.to.index()] > d + 1 {
                hop[arc.to.index()] = d + 1;
                queue.push_back(arc.to);
            }
        }
    }
}

/// Kernighan–Lin-style boundary refinement: moves a boundary vertex to an
/// adjacent partition when that strictly reduces the number of cut edges and
/// respects the size cap.
fn refine(graph: &Graph, part_of: &mut [u32], k: usize, max_size: usize, sweeps: usize) {
    let n = graph.num_vertices();
    let mut sizes = vec![0usize; k];
    for &p in part_of.iter() {
        sizes[p as usize] += 1;
    }
    for _ in 0..sweeps {
        let mut moved = 0usize;
        for v in 0..n {
            let vid = VertexId::from_index(v);
            let cur = part_of[v] as usize;
            if sizes[cur] <= 1 {
                continue;
            }
            // Count neighbors per partition.
            let mut counts: Vec<(usize, usize)> = Vec::new(); // (partition, count)
            for arc in graph.arcs(vid) {
                let p = part_of[arc.to.index()] as usize;
                match counts.iter_mut().find(|(q, _)| *q == p) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((p, 1)),
                }
            }
            let own = counts
                .iter()
                .find(|(q, _)| *q == cur)
                .map(|&(_, c)| c)
                .unwrap_or(0);
            // Best alternative partition.
            if let Some(&(best_p, best_c)) = counts
                .iter()
                .filter(|(q, _)| *q != cur)
                .max_by_key(|&&(_, c)| c)
            {
                if best_c > own && sizes[best_p] < max_size {
                    part_of[v] = best_p as u32;
                    sizes[cur] -= 1;
                    sizes[best_p] += 1;
                    moved += 1;
                }
            }
        }
        if moved == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, random_geometric, WeightRange};

    #[test]
    fn partitions_cover_and_balance_grid() {
        let g = grid(16, 16, WeightRange::new(1, 9), 3);
        let pr = partition_region_growing(&g, 8, 7);
        pr.validate(&g).unwrap();
        assert_eq!(pr.num_partitions(), 8);
        let avg = g.num_vertices() / 8;
        for i in 0..8 {
            assert!(!pr.vertices(i).is_empty(), "partition {i} is empty");
            assert!(
                pr.vertices(i).len() <= avg * 3,
                "partition {i} too large: {}",
                pr.vertices(i).len()
            );
        }
    }

    #[test]
    fn boundary_is_a_small_fraction_on_grids() {
        let g = grid(20, 20, WeightRange::new(1, 9), 5);
        let pr = partition_region_growing(&g, 4, 3);
        pr.validate(&g).unwrap();
        // On a 400-vertex grid with 4 parts, the cut should touch well under
        // half of the vertices.
        assert!(
            pr.num_boundary() < g.num_vertices() / 2,
            "boundary too large: {}",
            pr.num_boundary()
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g = grid(12, 12, WeightRange::new(1, 9), 1);
        let a = partition_region_growing(&g, 6, 9);
        let b = partition_region_growing(&g, 6, 9);
        for v in g.vertices() {
            assert_eq!(a.partition_of(v), b.partition_of(v));
        }
    }

    #[test]
    fn k_clamped_to_vertex_count() {
        let g = grid(2, 2, WeightRange::new(1, 9), 1);
        let pr = partition_region_growing(&g, 100, 1);
        assert_eq!(pr.num_partitions(), 4);
        pr.validate(&g).unwrap();
    }

    #[test]
    fn single_partition_works() {
        let g = grid(5, 5, WeightRange::new(1, 9), 1);
        let pr = partition_region_growing(&g, 1, 1);
        assert_eq!(pr.num_partitions(), 1);
        assert_eq!(pr.num_boundary(), 0);
    }

    #[test]
    fn geometric_graph_partitioning() {
        let g = random_geometric(400, 3, WeightRange::new(1, 50), 11);
        let pr = partition_region_growing(&g, 8, 2);
        pr.validate(&g).unwrap();
        for i in 0..8 {
            assert!(!pr.vertices(i).is_empty());
        }
    }

    #[test]
    fn disconnected_graph_is_fully_assigned() {
        use htsp_graph::GraphBuilder;
        let mut b = GraphBuilder::new(8);
        for i in 0..3 {
            b.add_edge(VertexId(i), VertexId(i + 1), 1);
        }
        for i in 4..7 {
            b.add_edge(VertexId(i), VertexId(i + 1), 1);
        }
        let g = b.build();
        let pr = partition_region_growing(&g, 2, 3);
        pr.validate(&g).unwrap();
        assert_eq!(
            pr.vertices(0).len() + pr.vertices(1).len(),
            g.num_vertices()
        );
    }
}
