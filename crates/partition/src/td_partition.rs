//! Tree-Decomposition-based graph partitioning (Algorithm 2 of the paper).
//!
//! TD-partitioning chooses one *root vertex* per partition: the partition is
//! the root's subtree in the tree decomposition, and its boundary set is the
//! root's bag `X(u).N`, which by construction separates the subtree from the
//! rest of the graph. Every vertex that is not inside a chosen subtree becomes
//! an *overlay* vertex. Because the partition inherits the MDE vertex order,
//! the resulting PSP index (PostMHL) reaches the query-efficiency upper bound
//! of Theorem 1 — i.e., plain H2H query speed — while still maintaining
//! partitions in parallel.

use htsp_graph::VertexId;
use htsp_td::TreeDecomposition;

/// Parameters of TD-partitioning (Algorithm 2).
#[derive(Clone, Copy, Debug)]
pub struct TdPartitionConfig {
    /// Bandwidth `τ`: the maximum allowed boundary size (bag size of a root
    /// candidate). Larger values shrink the overlay graph but slow the
    /// post-boundary queries (Exp. 8).
    pub bandwidth: usize,
    /// Expected number of partitions `k_e` (drives the size bounds).
    pub expected_partitions: usize,
    /// Lower imbalance ratio `β_l`: a candidate subtree must hold at least
    /// `β_l · n / k_e` vertices.
    pub beta_lower: f64,
    /// Upper imbalance ratio `β_u`: a candidate subtree must hold at most
    /// `β_u · n / k_e` vertices.
    pub beta_upper: f64,
}

impl Default for TdPartitionConfig {
    fn default() -> Self {
        // The paper's experimental defaults: β_l = 0.1, β_u = 2 (§VII-A).
        TdPartitionConfig {
            bandwidth: 16,
            expected_partitions: 32,
            beta_lower: 0.1,
            beta_upper: 2.0,
        }
    }
}

/// The result of TD-partitioning.
#[derive(Clone, Debug)]
pub struct TdPartition {
    /// Root vertex of each partition (`V_R`).
    roots: Vec<VertexId>,
    /// `partition_of[v]` = partition id, or `None` if `v` is an overlay vertex.
    partition_of: Vec<Option<u32>>,
    /// Vertices of each partition (the root and its descendants).
    vertices: Vec<Vec<VertexId>>,
    /// Boundary vertices `B_i` of each partition (= the root's bag members).
    boundaries: Vec<Vec<VertexId>>,
    /// Vertices of the overlay graph (all vertices in no partition).
    overlay_vertices: Vec<VertexId>,
}

impl TdPartition {
    /// Number of partitions actually produced.
    pub fn num_partitions(&self) -> usize {
        self.roots.len()
    }

    /// Root vertices of all partitions.
    pub fn roots(&self) -> &[VertexId] {
        &self.roots
    }

    /// Partition id of `v`, or `None` if `v` belongs to the overlay graph.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> Option<usize> {
        self.partition_of[v.index()].map(|p| p as usize)
    }

    /// Returns `true` if `v` is an overlay vertex.
    #[inline]
    pub fn is_overlay(&self, v: VertexId) -> bool {
        self.partition_of[v.index()].is_none()
    }

    /// In-partition vertices of partition `i` (root and descendants).
    pub fn vertices(&self, i: usize) -> &[VertexId] {
        &self.vertices[i]
    }

    /// Boundary vertices `B_i` of partition `i` (all overlay vertices).
    pub fn boundary(&self, i: usize) -> &[VertexId] {
        &self.boundaries[i]
    }

    /// All overlay vertices.
    pub fn overlay_vertices(&self) -> &[VertexId] {
        &self.overlay_vertices
    }

    /// Number of in-partition vertices (`n_p` of Theorem 5).
    pub fn num_in_partition(&self) -> usize {
        self.vertices.iter().map(|p| p.len()).sum()
    }

    /// Largest boundary size (`|B_max|` of Theorem 5).
    pub fn max_boundary_size(&self) -> usize {
        self.boundaries.iter().map(|b| b.len()).max().unwrap_or(0)
    }
}

/// Runs TD-partitioning (Algorithm 2) over a tree decomposition.
pub fn td_partition(td: &TreeDecomposition, config: &TdPartitionConfig) -> TdPartition {
    let n = td.num_vertices();
    let sizes = td.subtree_sizes(); // cN, lines 2-5
    let target = n as f64 / config.expected_partitions.max(1) as f64;
    let lower = (config.beta_lower * target).floor() as u32;
    let upper = (config.beta_upper * target).ceil() as u32;

    // Lines 6-9: root candidates in decreasing vertex order (rank).
    let mut candidates: Vec<VertexId> = Vec::new();
    for r in (0..n as u32).rev() {
        let v = td.order().vertex_at(r);
        let c = sizes[v.index()];
        if c >= lower.max(1) && c <= upper && td.bag(v).len() <= config.bandwidth {
            candidates.push(v);
        }
    }

    // Lines 10-12: minimum-overlay selection — keep a candidate only if no
    // already chosen root is its ancestor.
    let mut roots: Vec<VertexId> = Vec::new();
    for &v in &candidates {
        let covered = roots.iter().any(|&u| td.lca_index().is_ancestor(u, v));
        if !covered {
            roots.push(v);
        }
    }

    // Line 13: partition = root's subtree; boundary = root's bag; overlay =
    // everything else.
    let mut partition_of: Vec<Option<u32>> = vec![None; n];
    let mut vertices: Vec<Vec<VertexId>> = Vec::with_capacity(roots.len());
    let mut boundaries: Vec<Vec<VertexId>> = Vec::with_capacity(roots.len());
    for (i, &root) in roots.iter().enumerate() {
        let mut members = Vec::with_capacity(sizes[root.index()] as usize);
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            debug_assert!(partition_of[v.index()].is_none(), "overlapping partitions");
            partition_of[v.index()] = Some(i as u32);
            members.push(v);
            stack.extend_from_slice(td.children(v));
        }
        vertices.push(members);
        boundaries.push(td.bag(root).iter().map(|&(u, _)| u).collect());
    }
    let overlay_vertices: Vec<VertexId> = (0..n)
        .map(VertexId::from_index)
        .filter(|v| partition_of[v.index()].is_none())
        .collect();

    TdPartition {
        roots,
        partition_of,
        vertices,
        boundaries,
        overlay_vertices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, random_geometric, WeightRange};

    fn config(bandwidth: usize, ke: usize) -> TdPartitionConfig {
        TdPartitionConfig {
            bandwidth,
            expected_partitions: ke,
            beta_lower: 0.1,
            beta_upper: 2.0,
        }
    }

    #[test]
    fn partitions_are_disjoint_subtrees() {
        let g = grid(12, 12, WeightRange::new(1, 9), 3);
        let td = TreeDecomposition::build(&g);
        let tp = td_partition(&td, &config(12, 8));
        assert!(tp.num_partitions() >= 2, "expected at least two partitions");
        // Disjointness + coverage accounting.
        let covered: usize = (0..tp.num_partitions()).map(|i| tp.vertices(i).len()).sum();
        assert_eq!(covered + tp.overlay_vertices().len(), g.num_vertices());
        // Every partition member's partition_of agrees, and members are
        // descendants of the root.
        for i in 0..tp.num_partitions() {
            let root = tp.roots()[i];
            for &v in tp.vertices(i) {
                assert_eq!(tp.partition_of(v), Some(i));
                assert!(td.lca_index().is_ancestor(root, v));
            }
        }
    }

    #[test]
    fn boundaries_are_root_bags_and_overlay_vertices() {
        let g = grid(12, 12, WeightRange::new(1, 9), 5);
        let td = TreeDecomposition::build(&g);
        let tp = td_partition(&td, &config(12, 8));
        for i in 0..tp.num_partitions() {
            let root = tp.roots()[i];
            let bag: Vec<VertexId> = td.bag(root).iter().map(|&(u, _)| u).collect();
            assert_eq!(tp.boundary(i), bag.as_slice());
            assert!(tp.boundary(i).len() <= 12, "bandwidth violated");
            for &b in tp.boundary(i) {
                assert!(tp.is_overlay(b), "boundary vertex {b} must be overlay");
            }
        }
    }

    #[test]
    fn size_bounds_respected() {
        let g = grid(16, 16, WeightRange::new(1, 9), 7);
        let td = TreeDecomposition::build(&g);
        let ke = 8;
        let cfg = config(16, ke);
        let tp = td_partition(&td, &cfg);
        let target = g.num_vertices() as f64 / ke as f64;
        for i in 0..tp.num_partitions() {
            let s = tp.vertices(i).len() as f64;
            assert!(s >= (cfg.beta_lower * target).floor().max(1.0));
            assert!(s <= (cfg.beta_upper * target).ceil());
        }
    }

    #[test]
    fn larger_bandwidth_shrinks_overlay() {
        // The Exp. 8 trend: increasing τ lets more subtrees become partitions,
        // so the overlay graph gets smaller (or stays equal).
        let g = grid(16, 16, WeightRange::new(1, 9), 9);
        let td = TreeDecomposition::build(&g);
        let small = td_partition(&td, &config(6, 16));
        let large = td_partition(&td, &config(24, 16));
        assert!(large.overlay_vertices().len() <= small.overlay_vertices().len());
    }

    #[test]
    fn works_on_geometric_graphs() {
        let g = random_geometric(400, 3, WeightRange::new(1, 50), 11);
        let td = TreeDecomposition::build(&g);
        let tp = td_partition(&td, &config(16, 8));
        let covered: usize = (0..tp.num_partitions()).map(|i| tp.vertices(i).len()).sum();
        assert_eq!(covered + tp.overlay_vertices().len(), g.num_vertices());
    }

    #[test]
    fn roots_are_never_nested() {
        let g = grid(14, 14, WeightRange::new(1, 9), 13);
        let td = TreeDecomposition::build(&g);
        let tp = td_partition(&td, &config(14, 12));
        for (i, &a) in tp.roots().iter().enumerate() {
            for (j, &b) in tp.roots().iter().enumerate() {
                if i != j {
                    assert!(
                        !td.lca_index().is_ancestor(a, b),
                        "{a} is an ancestor of {b}"
                    );
                }
            }
        }
    }
}
