//! Partition descriptions shared by every PSP index.

use htsp_graph::{EdgeId, Graph, VertexId};
use rustc_hash::FxHashSet;

/// A planar partition of a road network into `k` vertex-disjoint subgraphs
/// (§III-C): every vertex belongs to exactly one partition, and the boundary
/// set `B_i` of partition `i` contains the vertices of `G_i` incident to at
/// least one inter-partition edge.
#[derive(Clone, Debug)]
pub struct PartitionResult {
    /// `part_of[v]` = partition id of vertex `v`.
    part_of: Vec<u32>,
    /// Vertices of each partition.
    vertices: Vec<Vec<VertexId>>,
    /// Boundary vertices of each partition.
    boundary: Vec<Vec<VertexId>>,
    /// `is_boundary[v]`.
    is_boundary: Vec<bool>,
    /// Inter-partition edges.
    inter_edges: Vec<EdgeId>,
}

impl PartitionResult {
    /// Builds the partition description from a per-vertex assignment.
    ///
    /// # Panics
    /// Panics if `part_of.len() != graph.num_vertices()` or an id is `>= k`.
    pub fn from_assignment(graph: &Graph, part_of: Vec<u32>, k: usize) -> Self {
        assert_eq!(part_of.len(), graph.num_vertices());
        let mut vertices: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        for (v, &p) in part_of.iter().enumerate() {
            assert!((p as usize) < k, "partition id {p} out of range");
            vertices[p as usize].push(VertexId::from_index(v));
        }
        let mut is_boundary = vec![false; graph.num_vertices()];
        let mut inter_edges = Vec::new();
        for (e, u, v, _) in graph.edges() {
            if part_of[u.index()] != part_of[v.index()] {
                is_boundary[u.index()] = true;
                is_boundary[v.index()] = true;
                inter_edges.push(e);
            }
        }
        let mut boundary: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        for v in 0..graph.num_vertices() {
            if is_boundary[v] {
                boundary[part_of[v] as usize].push(VertexId::from_index(v));
            }
        }
        PartitionResult {
            part_of,
            vertices,
            boundary,
            is_boundary,
            inter_edges,
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.vertices.len()
    }

    /// Partition id of `v`.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> usize {
        self.part_of[v.index()] as usize
    }

    /// Vertices of partition `i`.
    pub fn vertices(&self, i: usize) -> &[VertexId] {
        &self.vertices[i]
    }

    /// Boundary vertices `B_i` of partition `i`.
    pub fn boundary(&self, i: usize) -> &[VertexId] {
        &self.boundary[i]
    }

    /// All boundary vertices `B = ∪ B_i`.
    pub fn all_boundary(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.is_boundary
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(v, _)| VertexId::from_index(v))
    }

    /// Total number of boundary vertices (`|B|`, reported in Fig. 10).
    pub fn num_boundary(&self) -> usize {
        self.is_boundary.iter().filter(|&&b| b).count()
    }

    /// The boundary vertices as a hash set (for boundary-first ordering).
    pub fn boundary_set(&self) -> FxHashSet<VertexId> {
        self.all_boundary().collect()
    }

    /// Returns `true` if `v` is a boundary vertex.
    #[inline]
    pub fn is_boundary(&self, v: VertexId) -> bool {
        self.is_boundary[v.index()]
    }

    /// Inter-partition edges (`E_inter`).
    pub fn inter_edges(&self) -> &[EdgeId] {
        &self.inter_edges
    }

    /// Returns `true` if the two endpoints lie in the same partition.
    pub fn same_partition(&self, u: VertexId, v: VertexId) -> bool {
        self.part_of[u.index()] == self.part_of[v.index()]
    }

    /// Size of the largest partition (used to check the balance constraint).
    pub fn max_partition_size(&self) -> usize {
        self.vertices.iter().map(|p| p.len()).max().unwrap_or(0)
    }

    /// Size of the largest boundary set (`|B_max|` of Theorem 5).
    pub fn max_boundary_size(&self) -> usize {
        self.boundary.iter().map(|b| b.len()).max().unwrap_or(0)
    }

    /// Load-balance factor: largest partition size over the ideal `n / k`
    /// share (1.0 = perfectly balanced). The sharded serving tier reports
    /// this per fleet, since one oversized shard bounds fleet maintenance.
    pub fn balance(&self) -> f64 {
        let n: usize = self.vertices.iter().map(|p| p.len()).sum();
        if n == 0 || self.vertices.is_empty() {
            return 1.0;
        }
        let ideal = n as f64 / self.vertices.len() as f64;
        self.max_partition_size() as f64 / ideal
    }

    /// Fraction of all vertices that are boundary vertices — the share of
    /// queries and updates that must consult the overlay.
    pub fn boundary_fraction(&self) -> f64 {
        let n: usize = self.vertices.iter().map(|p| p.len()).sum();
        if n == 0 {
            return 0.0;
        }
        self.num_boundary() as f64 / n as f64
    }

    /// Checks internal consistency against the graph; intended for tests.
    pub fn validate(&self, graph: &Graph) -> Result<(), String> {
        if self.part_of.len() != graph.num_vertices() {
            return Err("assignment length mismatch".into());
        }
        let total: usize = self.vertices.iter().map(|p| p.len()).sum();
        if total != graph.num_vertices() {
            return Err("partitions do not cover all vertices".into());
        }
        for (e, u, v, _) in graph.edges() {
            let cross = self.part_of[u.index()] != self.part_of[v.index()];
            if cross != self.inter_edges.contains(&e) && cross {
                return Err(format!("inter edge {e:?} missing"));
            }
            if cross && (!self.is_boundary(u) || !self.is_boundary(v)) {
                return Err(format!("endpoints of inter edge {e:?} not boundary"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, WeightRange};

    #[test]
    fn two_way_split_of_grid() {
        let g = grid(4, 4, WeightRange::new(1, 9), 1);
        // Left half partition 0, right half partition 1.
        let part_of: Vec<u32> = (0..16).map(|v| if v % 4 < 2 { 0 } else { 1 }).collect();
        let pr = PartitionResult::from_assignment(&g, part_of, 2);
        pr.validate(&g).unwrap();
        assert_eq!(pr.num_partitions(), 2);
        assert_eq!(pr.vertices(0).len(), 8);
        assert_eq!(pr.vertices(1).len(), 8);
        // Columns 1 and 2 are the boundary.
        assert_eq!(pr.num_boundary(), 8);
        assert_eq!(pr.boundary(0).len(), 4);
        assert_eq!(pr.boundary(1).len(), 4);
        assert_eq!(pr.inter_edges().len(), 4);
        assert!(pr.same_partition(VertexId(0), VertexId(5)));
        assert!(!pr.same_partition(VertexId(0), VertexId(3)));
    }

    #[test]
    fn single_partition_has_no_boundary() {
        let g = grid(3, 3, WeightRange::new(1, 9), 1);
        let pr = PartitionResult::from_assignment(&g, vec![0; 9], 1);
        pr.validate(&g).unwrap();
        assert_eq!(pr.num_boundary(), 0);
        assert!(pr.inter_edges().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_partition_id_panics() {
        let g = grid(2, 2, WeightRange::new(1, 9), 1);
        let _ = PartitionResult::from_assignment(&g, vec![0, 0, 2, 0], 2);
    }

    #[test]
    fn boundary_set_matches_flags() {
        let g = grid(4, 4, WeightRange::new(1, 9), 1);
        let part_of: Vec<u32> = (0..16).map(|v| if v < 8 { 0 } else { 1 }).collect();
        let pr = PartitionResult::from_assignment(&g, part_of, 2);
        let set = pr.boundary_set();
        for v in g.vertices() {
            assert_eq!(set.contains(&v), pr.is_boundary(v));
        }
    }
}
