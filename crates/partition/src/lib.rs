//! # htsp-partition
//!
//! Graph partitioning for the PSP indexes.
//!
//! Two partitioners are provided:
//!
//! * [`planar::partition_region_growing`] — a balanced edge-cut partitioner
//!   (seeded region growing + boundary-reducing refinement) standing in for
//!   PUNCH \[61\], which the paper uses to build PMHL (§V-C). The PSP machinery
//!   only needs a balanced planar partition with small boundary sets; see
//!   DESIGN.md for the substitution argument.
//! * [`td_partition::td_partition`] — the paper's own Tree-Decomposition-based
//!   partitioning (Algorithm 2), which PostMHL uses so that the partition
//!   structure inherits the high-quality MDE vertex ordering (§VI-A).
//!
//! Both produce partition descriptions exposing, per partition, the vertex
//! set, the boundary vertex set `B_i`, and the classification of edges into
//! intra- and inter-partition edges (§III-C).

#![warn(missing_docs)]

pub mod planar;
pub mod result;
pub mod td_partition;

pub use planar::partition_region_growing;
pub use result::PartitionResult;
pub use td_partition::{td_partition, TdPartition, TdPartitionConfig};
