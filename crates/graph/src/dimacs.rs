//! Reader / writer for the 9th DIMACS Implementation Challenge `.gr` format.
//!
//! The paper's DIMACS datasets (NY, FLA, W, CTR, USA — Table I) are published
//! in this format. The reproduction runs on synthetic networks by default, but
//! this module lets the real files be dropped in unchanged:
//!
//! ```text
//! c comment lines
//! p sp <num_vertices> <num_arcs>
//! a <from> <to> <weight>      (1-based vertex ids, directed arcs)
//! ```
//!
//! Because our model is undirected (§II), the readers merge the two directed
//! arcs of each road segment into one undirected edge, keeping the minimum
//! weight if they disagree.
//!
//! Two loaders share one tokenizer (the internal `scan_gr` record stream):
//!
//! * [`read_gr`] builds the mutable adjacency-list [`Graph`] through
//!   [`GraphBuilder`] — the right entry point at bench scale.
//! * [`load_dimacs_streaming`] builds a flat [`CsrGraph`] **without** an
//!   adjacency-list
//!   intermediate: arcs stream into a compact 12-byte triple buffer that is
//!   sorted, deduplicated (minimum weight wins), and counting-sorted into
//!   CSR. At 10M+ arcs this avoids both the per-vertex `Vec` overhead and
//!   the hash-based deduplication of the builder path. Edge ids come out in
//!   sorted `(u, v)` order rather than file order.
//!
//! Parse errors always carry the 1-based line number and the offending
//! token; comment and blank lines are accepted anywhere, including before
//! the problem line and between arcs.

use crate::graph::{Graph, GraphBuilder};
use crate::storage::CsrGraph;
use crate::types::{VertexId, Weight};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Errors produced while parsing a DIMACS `.gr` file.
#[derive(Debug)]
pub enum DimacsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is syntactically malformed; the string describes the
    /// problem, the 1-based line number, and the offending token.
    Parse(String),
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimacsError::Io(e) => write!(f, "I/O error: {e}"),
            DimacsError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for DimacsError {}

impl From<std::io::Error> for DimacsError {
    fn from(e: std::io::Error) -> Self {
        DimacsError::Io(e)
    }
}

/// One syntactic record of a `.gr` file (comments and blank lines are
/// consumed by the scanner and never surfaced).
enum GrRecord {
    /// The `p sp <n> <arcs>` problem line.
    Problem {
        /// Declared vertex count.
        vertices: usize,
        /// Declared directed-arc count (advisory; mismatches are tolerated).
        arcs: usize,
    },
    /// One `a <tail> <head> <weight>` line, ids still 1-based but already
    /// validated against the declared vertex count.
    Arc {
        /// 1-based tail id.
        tail: usize,
        /// 1-based head id.
        head: usize,
        /// Arc weight as written.
        weight: Weight,
    },
}

/// Drives the shared `.gr` tokenizer, feeding each record to `sink`.
///
/// Guarantees on the record stream: exactly one `Problem` record, emitted
/// before any `Arc`; arc ids are 1-based, nonzero, and within the declared
/// vertex count. Everything else is a [`DimacsError::Parse`] that names the
/// line and the offending token.
fn scan_gr<R: BufRead>(
    reader: R,
    mut sink: impl FnMut(GrRecord) -> Result<(), DimacsError>,
) -> Result<(), DimacsError> {
    let mut vertices: Option<usize> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("c") => continue,
            Some("p") => {
                if vertices.is_some() {
                    return Err(DimacsError::Parse(format!(
                        "line {lineno}: duplicate problem line"
                    )));
                }
                let kind = it.next().ok_or_else(|| {
                    DimacsError::Parse(format!("line {lineno}: missing problem kind"))
                })?;
                if kind != "sp" {
                    return Err(DimacsError::Parse(format!(
                        "line {lineno}: unsupported problem kind '{kind}'"
                    )));
                }
                let n: usize = parse_field(it.next(), lineno, "vertex count")?;
                let arcs: usize = parse_field(it.next(), lineno, "arc count")?;
                vertices = Some(n);
                sink(GrRecord::Problem { vertices: n, arcs })?;
            }
            Some("a") => {
                let n = vertices.ok_or_else(|| {
                    DimacsError::Parse(format!("line {lineno}: arc before problem line"))
                })?;
                let tail: usize = parse_field(it.next(), lineno, "arc tail")?;
                let head: usize = parse_field(it.next(), lineno, "arc head")?;
                let weight: Weight = parse_field(it.next(), lineno, "arc weight")?;
                if tail == 0 || head == 0 {
                    return Err(DimacsError::Parse(format!(
                        "line {lineno}: DIMACS vertex ids are 1-based (got '{}')",
                        if tail == 0 { tail } else { head }
                    )));
                }
                if tail > n || head > n {
                    return Err(DimacsError::Parse(format!(
                        "line {lineno}: vertex id '{}' exceeds declared vertex count {n}",
                        if tail > n { tail } else { head }
                    )));
                }
                sink(GrRecord::Arc { tail, head, weight })?;
            }
            Some(other) => {
                return Err(DimacsError::Parse(format!(
                    "line {lineno}: unknown record '{other}'"
                )))
            }
            None => continue,
        }
    }
    if vertices.is_none() {
        return Err(DimacsError::Parse("missing 'p sp' problem line".into()));
    }
    Ok(())
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    lineno: usize,
    what: &str,
) -> Result<T, DimacsError> {
    let token =
        field.ok_or_else(|| DimacsError::Parse(format!("line {lineno}: missing {what}")))?;
    token
        .parse()
        .map_err(|_| DimacsError::Parse(format!("line {lineno}: invalid {what} '{token}'")))
}

/// Parses a DIMACS `.gr` graph from any buffered reader into the
/// adjacency-list [`Graph`] (edge ids in file order).
pub fn read_gr<R: BufRead>(reader: R) -> Result<Graph, DimacsError> {
    let mut builder: Option<GraphBuilder> = None;
    scan_gr(reader, |rec| {
        match rec {
            GrRecord::Problem { vertices, .. } => builder = Some(GraphBuilder::new(vertices)),
            GrRecord::Arc { tail, head, weight } => {
                let b = builder
                    .as_mut()
                    .expect("scanner emits arcs only after the problem line");
                if tail != head {
                    b.add_edge(
                        VertexId::from_index(tail - 1),
                        VertexId::from_index(head - 1),
                        weight.max(1),
                    );
                }
            }
        }
        Ok(())
    })?;
    Ok(builder.expect("scanner guarantees a problem line").build())
}

/// Reads a `.gr` file from disk.
pub fn read_gr_file<P: AsRef<Path>>(path: P) -> Result<Graph, DimacsError> {
    let file = std::fs::File::open(path)?;
    read_gr(std::io::BufReader::new(file))
}

/// Streams a DIMACS `.gr` graph straight into a flat [`CsrGraph`], never
/// materializing per-vertex adjacency `Vec`s.
///
/// Arcs are normalized (`u < v`, self-loops dropped) into a 12-byte triple
/// buffer as they are read; one sort + dedup pass (minimum weight wins for
/// parallel arcs, matching [`GraphBuilder`]) then yields the edge list the
/// CSR is counting-sorted from. Peak transient memory is ~12 bytes per
/// directed arc — at 10M+ edges an order of magnitude below the builder
/// path's hash map plus adjacency lists.
///
/// Edge ids are assigned in sorted `(u, v)` order (not file order); use
/// [`read_gr`] when file-order ids matter.
pub fn load_dimacs_streaming<R: BufRead>(reader: R) -> Result<CsrGraph, DimacsError> {
    let mut n = 0usize;
    let mut triples: Vec<(u32, u32, u32)> = Vec::new();
    scan_gr(reader, |rec| {
        match rec {
            GrRecord::Problem { vertices, arcs } => {
                n = vertices;
                // The declared arc count is advisory; cap the reservation so
                // a lying header cannot force an allocation.
                triples.reserve(arcs.min(1 << 24));
            }
            GrRecord::Arc { tail, head, weight } => {
                if tail != head {
                    let (a, b) = if tail < head {
                        (tail, head)
                    } else {
                        (head, tail)
                    };
                    triples.push(((a - 1) as u32, (b - 1) as u32, weight.max(1)));
                }
            }
        }
        Ok(())
    })?;
    triples.sort_unstable();
    // Sorted by (u, v, w): the first element of each (u, v) run carries the
    // minimum weight, and `dedup_by` keeps the first.
    triples.dedup_by(|later, kept| later.0 == kept.0 && later.1 == kept.1);
    let mut edges = Vec::with_capacity(triples.len());
    let mut weights: Vec<Weight> = Vec::with_capacity(triples.len());
    for &(u, v, w) in &triples {
        edges.push((VertexId(u), VertexId(v)));
        weights.push(w);
    }
    drop(triples);
    Ok(CsrGraph::from_normalized_edges(n, edges, &weights))
}

/// Streams a `.gr` file from disk into a [`CsrGraph`]
/// (see [`load_dimacs_streaming`]).
pub fn load_dimacs_streaming_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph, DimacsError> {
    let file = std::fs::File::open(path)?;
    load_dimacs_streaming(std::io::BufReader::new(file))
}

/// Writes a graph in DIMACS `.gr` format (each undirected edge is emitted as
/// two directed arcs, as the challenge files do).
pub fn write_gr<W: Write>(graph: &Graph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "c generated by htsp-graph")?;
    writeln!(w, "p sp {} {}", graph.num_vertices(), 2 * graph.num_edges())?;
    for (_, u, v, weight) in graph.edges() {
        writeln!(w, "a {} {} {}", u.0 + 1, v.0 + 1, weight)?;
        writeln!(w, "a {} {} {}", v.0 + 1, u.0 + 1, weight)?;
    }
    w.flush()
}

/// Writes a `.gr` file to disk.
pub fn write_gr_file<P: AsRef<Path>>(graph: &Graph, path: P) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_gr(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{grid, WeightRange};
    use crate::types::Dist;

    #[test]
    fn parse_minimal_file() {
        let text = "c tiny\np sp 3 4\na 1 2 5\na 2 1 5\na 2 3 7\na 3 2 7\n";
        let g = read_gr(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_dist(VertexId(0), VertexId(1)), Dist(5));
        assert_eq!(g.edge_dist(VertexId(1), VertexId(2)), Dist(7));
    }

    #[test]
    fn asymmetric_arcs_keep_minimum() {
        let text = "p sp 2 2\na 1 2 9\na 2 1 4\n";
        let g = read_gr(text.as_bytes()).unwrap();
        assert_eq!(g.edge_dist(VertexId(0), VertexId(1)), Dist(4));
    }

    #[test]
    fn self_loops_dropped() {
        let text = "p sp 2 2\na 1 1 9\na 1 2 3\n";
        let g = read_gr(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn missing_problem_line_is_error() {
        let text = "a 1 2 3\n";
        assert!(read_gr(text.as_bytes()).is_err());
    }

    #[test]
    fn unknown_record_is_error() {
        let text = "p sp 2 1\nx 1 2 3\n";
        assert!(read_gr(text.as_bytes()).is_err());
    }

    #[test]
    fn zero_based_id_is_error() {
        let text = "p sp 2 1\na 0 2 3\n";
        assert!(read_gr(text.as_bytes()).is_err());
    }

    #[test]
    fn out_of_range_id_is_error_not_panic() {
        let text = "p sp 2 1\na 1 9 3\n";
        match read_gr(text.as_bytes()) {
            Err(DimacsError::Parse(msg)) => {
                assert!(
                    msg.contains("line 2") && msg.contains("'9'"),
                    "message should carry line and token: {msg}"
                );
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_through_gr_format() {
        let g = grid(6, 5, WeightRange::new(1, 30), 77);
        let mut buf = Vec::new();
        write_gr(&g, &mut buf).unwrap();
        let g2 = read_gr(buf.as_slice()).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for (_, u, v, w) in g.edges() {
            assert_eq!(g2.edge_dist(u, v), Dist(w));
        }
    }

    #[test]
    fn streaming_loader_matches_builder_path() {
        let g = grid(8, 7, WeightRange::new(1, 50), 21);
        let mut buf = Vec::new();
        write_gr(&g, &mut buf).unwrap();
        let csr = load_dimacs_streaming(buf.as_slice()).unwrap();
        assert_eq!(csr.num_vertices(), g.num_vertices());
        assert_eq!(csr.num_edges(), g.num_edges());
        let back = csr.to_graph();
        back.validate().expect("streamed graph is valid");
        for (_, u, v, w) in g.edges() {
            assert_eq!(back.edge_dist(u, v), Dist(w));
        }
    }

    #[test]
    fn streaming_loader_dedups_parallel_arcs_with_min_weight() {
        let text = "p sp 3 5\na 1 2 9\na 2 1 4\nc noise\na 1 2 6\na 2 3 2\na 3 3 8\n";
        let csr = load_dimacs_streaming(text.as_bytes()).unwrap();
        assert_eq!(csr.num_edges(), 2, "parallel arcs merge, self-loop drops");
        let g = csr.to_graph();
        assert_eq!(g.edge_dist(VertexId(0), VertexId(1)), Dist(4));
        assert_eq!(g.edge_dist(VertexId(1), VertexId(2)), Dist(2));
    }

    #[test]
    fn truncated_arc_line_is_error_with_line_number() {
        let text = "p sp 3 2\na 1 2 5\na 2 3\n";
        match read_gr(text.as_bytes()) {
            Err(DimacsError::Parse(msg)) => {
                assert!(
                    msg.contains("line 3"),
                    "message should locate the line: {msg}"
                );
                assert!(
                    msg.contains("arc weight"),
                    "message should name the field: {msg}"
                );
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn non_numeric_weight_error_carries_the_token() {
        let text = "p sp 2 1\na 1 2 fast\n";
        match read_gr(text.as_bytes()) {
            Err(DimacsError::Parse(msg)) => {
                assert!(
                    msg.contains("line 2")
                        && msg.contains("invalid arc weight")
                        && msg.contains("'fast'"),
                    "message should carry line, field, and token: {msg}"
                );
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_problem_line_is_error() {
        assert!(read_gr("p sp many 4\n".as_bytes()).is_err());
        assert!(read_gr("p max 3 4\n".as_bytes()).is_err());
        assert!(read_gr("p sp\n".as_bytes()).is_err());
        assert!(read_gr("p sp 3 4\np sp 3 4\n".as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_accepted_anywhere() {
        let text = "c header\n\nc more\np sp 2 2\nc mid\na 1 2 4\n\na 2 1 4\nc trailing\n";
        for parse_csr in [false, true] {
            let (n, m) = if parse_csr {
                let csr = load_dimacs_streaming(text.as_bytes()).unwrap();
                (csr.num_vertices(), csr.num_edges())
            } else {
                let g = read_gr(text.as_bytes()).unwrap();
                (g.num_vertices(), g.num_edges())
            };
            assert_eq!((n, m), (2, 1));
        }
    }

    #[test]
    fn zero_weight_is_clamped_to_one() {
        let text = "p sp 2 1\na 1 2 0\n";
        let g = read_gr(text.as_bytes()).unwrap();
        assert_eq!(g.edge_dist(VertexId(0), VertexId(1)), Dist(1));
        let csr = load_dimacs_streaming(text.as_bytes()).unwrap();
        assert_eq!(csr.to_graph().edge_dist(VertexId(0), VertexId(1)), Dist(1));
    }

    /// Fuzz-ish sweep: systematically mangled inputs must produce
    /// `DimacsError` values, never panics, through both loaders.
    #[test]
    fn mangled_inputs_error_cleanly() {
        let base = "c ok\np sp 3 4\na 1 2 5\na 2 3 7\n";
        let mut cases: Vec<String> = vec![
            String::new(),
            "\n\n\n".into(),
            "c only comments\n".into(),
            "p sp -3 4\na 1 2 5\n".into(),
            "p sp 3 4\na 1 2 5 trailing junk is fine\n".into(),
            "p sp 3 4\na 1 2\n".into(),
            "p sp 3 4\na one 2 3\n".into(),
            "p sp 3 4\na 1 2 99999999999999999999\n".into(),
            "p sp 3 4\nb 1 2 3\n".into(),
            "p sp 3 4\na 4 1 3\n".into(),
            "p sp 18446744073709551616 4\n".into(),
            "p sp 3\n".into(),
            "q sp 3 4\n".into(),
            "p sp 3 4\na 0 0 0\n".into(),
        ];
        // Every truncation of a valid file, and every single-byte deletion.
        for i in 0..base.len() {
            cases.push(base[..i].to_string());
            let mut s = base.to_string();
            s.remove(i);
            cases.push(s);
        }
        for case in &cases {
            // Outcomes may differ (some mutations stay valid); the contract
            // is simply: no panic, and failures are typed.
            let _ = read_gr(case.as_bytes());
            let _ = load_dimacs_streaming(case.as_bytes());
        }
    }

    #[test]
    fn file_roundtrip() {
        let g = grid(4, 4, WeightRange::new(1, 10), 3);
        let dir = std::env::temp_dir().join("htsp_dimacs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.gr");
        write_gr_file(&g, &path).unwrap();
        let g2 = read_gr_file(&path).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        let csr = load_dimacs_streaming_file(&path).unwrap();
        assert_eq!(csr.num_edges(), g.num_edges());
        std::fs::remove_file(&path).ok();
    }
}
