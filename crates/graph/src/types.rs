//! Fundamental identifier and distance types shared by all HTSP crates.
//!
//! Vertex ids and distances are deliberately 32-bit: road networks with tens
//! of millions of vertices and travel-time weights fit comfortably, and the
//! hub-labeling indexes store hundreds of millions of distance entries, so
//! halving the memory footprint matters (see the type-size guidance in the
//! Rust performance guide).

use std::fmt;

/// A compact vertex identifier (index into the graph's vertex arrays).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `VertexId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in `u32`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        debug_assert!(idx <= u32::MAX as usize, "vertex index overflows u32");
        VertexId(idx as u32)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A compact edge identifier (index into the graph's edge arrays).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a `usize` index.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        debug_assert!(idx <= u32::MAX as usize, "edge index overflows u32");
        EdgeId(idx as u32)
    }
}

/// Edge weight (positive travel time). Stored as `u32`.
pub type Weight = u32;

/// A shortest-path distance value.
///
/// `Dist` is a thin wrapper around `u32` whose addition saturates at
/// [`INF`], so `INF + w == INF` and unreachable vertices propagate correctly
/// through distance concatenation (the PSP query of §III-C chains up to three
/// distance values).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Dist(pub u32);

/// The "unreachable" sentinel distance.
pub const INF: Dist = Dist(u32::MAX);

impl Dist {
    /// Zero distance.
    pub const ZERO: Dist = Dist(0);

    /// Returns `true` if this distance is the unreachable sentinel.
    #[inline]
    pub fn is_inf(self) -> bool {
        self.0 == u32::MAX
    }

    /// Returns `true` if this distance is finite (reachable).
    #[inline]
    pub fn is_finite(self) -> bool {
        !self.is_inf()
    }

    /// Saturating addition: `INF + x == INF`, and finite sums that would
    /// overflow also clamp to `INF`.
    #[inline]
    pub fn saturating_add(self, other: Dist) -> Dist {
        if self.is_inf() || other.is_inf() {
            INF
        } else {
            match self.0.checked_add(other.0) {
                Some(v) if v != u32::MAX => Dist(v),
                _ => INF,
            }
        }
    }

    /// Adds a raw weight with the same saturating semantics.
    #[inline]
    pub fn saturating_add_weight(self, w: Weight) -> Dist {
        self.saturating_add(Dist(w))
    }

    /// Returns the minimum of two distances.
    #[inline]
    pub fn min(self, other: Dist) -> Dist {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the inner value, panicking if it is the `INF` sentinel.
    #[inline]
    pub fn expect_finite(self) -> u32 {
        assert!(self.is_finite(), "distance is INF");
        self.0
    }
}

impl fmt::Debug for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inf() {
            write!(f, "INF")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Weight> for Dist {
    #[inline]
    fn from(w: Weight) -> Self {
        Dist(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from_index(17);
        assert_eq!(v.index(), 17);
        assert_eq!(format!("{v}"), "v17");
        assert_eq!(format!("{v:?}"), "v17");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from_index(3);
        assert_eq!(e.index(), 3);
    }

    #[test]
    fn dist_saturating_add_inf() {
        assert_eq!(INF.saturating_add(Dist(5)), INF);
        assert_eq!(Dist(5).saturating_add(INF), INF);
        assert_eq!(INF.saturating_add(INF), INF);
    }

    #[test]
    fn dist_saturating_add_finite() {
        assert_eq!(Dist(3).saturating_add(Dist(4)), Dist(7));
        assert_eq!(Dist(0).saturating_add(Dist(0)), Dist(0));
    }

    #[test]
    fn dist_saturating_add_overflow_clamps() {
        let big = Dist(u32::MAX - 1);
        assert_eq!(big.saturating_add(Dist(10)), INF);
        assert!(big.saturating_add(Dist(10)).is_inf());
    }

    #[test]
    fn dist_min() {
        assert_eq!(Dist(3).min(Dist(9)), Dist(3));
        assert_eq!(INF.min(Dist(9)), Dist(9));
        assert_eq!(Dist(2).min(INF), Dist(2));
    }

    #[test]
    fn dist_ordering_places_inf_last() {
        assert!(Dist(0) < Dist(1));
        assert!(Dist(1_000_000) < INF);
    }

    #[test]
    fn dist_display() {
        assert_eq!(format!("{}", Dist(12)), "12");
        assert_eq!(format!("{}", INF), "INF");
    }

    #[test]
    #[should_panic(expected = "distance is INF")]
    fn expect_finite_panics_on_inf() {
        let _ = INF.expect_finite();
    }
}
