//! A small lock-based pool of reusable query scratch state.
//!
//! The searchers in this repository (bidirectional Dijkstra, CH search, PCH
//! search) keep per-query working memory — distance arrays, visited flags,
//! binary heaps — that is reset cheaply between queries. Under the
//! [`QueryView`](crate::index_api::QueryView) contract `distance` takes
//! `&self` and must be callable from many threads at once, so that working
//! memory cannot live in the view itself. A [`ScratchPool`] bridges the gap:
//! each query checks out one scratch object (allocating a fresh one only when
//! the pool is empty, i.e. at most once per concurrently active thread) and
//! returns it when done.
//!
//! Two checkout styles exist:
//!
//! * [`ScratchPool::with`] — scoped, one pool round-trip (a mutex lock pair)
//!   per call. Used by the stray-single-query path
//!   [`QueryView::distance`](crate::index_api::QueryView::distance).
//! * [`ScratchPool::checkout`] — hands out a [`ScratchGuard`] that owns the
//!   scratch until dropped. This is what
//!   [`QuerySession`](crate::index_api::QuerySession)s are built on: one
//!   checkout when the session opens, zero pool traffic per query.

use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// A pool of reusable scratch objects handed out one per concurrent query.
pub struct ScratchPool<T> {
    free: Mutex<Vec<T>>,
    make: Box<dyn Fn() -> T + Send + Sync>,
}

impl<T> ScratchPool<T> {
    /// Creates a pool; `make` builds a fresh scratch object when the pool has
    /// no idle one (at most once per concurrently active thread).
    pub fn new(make: impl Fn() -> T + Send + Sync + 'static) -> Self {
        ScratchPool {
            free: Mutex::new(Vec::new()),
            make: Box::new(make),
        }
    }

    /// Runs `f` with exclusive access to one scratch object.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.checkout();
        f(&mut guard)
    }

    /// Checks one scratch object out of the pool until the returned guard is
    /// dropped (at which point it returns, buffers and all, for reuse).
    ///
    /// Long-lived holders — query sessions above all — pay the pool mutex
    /// once here instead of once per query.
    pub fn checkout(&self) -> ScratchGuard<'_, T> {
        let item = self
            .free
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_else(|| (self.make)());
        ScratchGuard {
            pool: self,
            item: Some(item),
        }
    }

    /// Number of idle scratch objects currently pooled.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("scratch pool poisoned").len()
    }
}

/// Exclusive ownership of one pooled scratch object; returns it to the pool
/// on drop. Created by [`ScratchPool::checkout`].
pub struct ScratchGuard<'a, T> {
    pool: &'a ScratchPool<T>,
    item: Option<T>,
}

impl<T> Deref for ScratchGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.item.as_ref().expect("scratch taken")
    }
}

impl<T> DerefMut for ScratchGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.item.as_mut().expect("scratch taken")
    }
}

impl<T> Drop for ScratchGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(item) = self.item.take() {
            self.pool
                .free
                .lock()
                .expect("scratch pool poisoned")
                .push(item);
        }
    }
}

impl<T> std::fmt::Debug for ScratchPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchPool")
            .field("idle", &self.idle())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn objects_are_reused() {
        let pool = ScratchPool::new(Vec::<u32>::new);
        pool.with(|v| v.push(1));
        assert_eq!(pool.idle(), 1);
        // The same buffer comes back (still holding its capacity).
        pool.with(|v| assert_eq!(v.len(), 1));
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn checkout_guard_returns_scratch_on_drop() {
        let pool = ScratchPool::new(Vec::<u32>::new);
        {
            let mut a = pool.checkout();
            let mut b = pool.checkout();
            a.push(1);
            b.push(2);
            b.push(3);
            assert_eq!(pool.idle(), 0, "both objects are out");
        }
        assert_eq!(pool.idle(), 2, "both objects came back");
        // The returned buffers keep their state (callers reset lazily).
        let a = pool.checkout();
        let b = pool.checkout();
        let mut lens = [a.len(), b.len()];
        lens.sort_unstable();
        assert_eq!(lens, [1, 2]);
    }

    #[test]
    fn concurrent_checkout_allocates_at_most_per_thread() {
        let pool = Arc::new(ScratchPool::new(|| 0u64));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for _ in 0..100 {
                        pool.with(|x| *x += 1);
                    }
                });
            }
        });
        assert!(pool.idle() >= 1 && pool.idle() <= 8);
    }
}
