//! A small lock-based pool of reusable query scratch state.
//!
//! The searchers in this repository (bidirectional Dijkstra, CH search, PCH
//! search) keep per-query working memory — distance arrays, visited flags,
//! binary heaps — that is reset cheaply between queries. Under the
//! [`QueryView`](crate::index_api::QueryView) contract `distance` takes
//! `&self` and must be callable from many threads at once, so that working
//! memory cannot live in the view itself. A [`ScratchPool`] bridges the gap:
//! each query checks out one scratch object (allocating a fresh one only when
//! the pool is empty, i.e. at most once per concurrently active thread) and
//! returns it when done.

use std::sync::Mutex;

/// A pool of reusable scratch objects handed out one per concurrent query.
pub struct ScratchPool<T> {
    free: Mutex<Vec<T>>,
    make: Box<dyn Fn() -> T + Send + Sync>,
}

impl<T> ScratchPool<T> {
    /// Creates a pool; `make` builds a fresh scratch object when the pool has
    /// no idle one (at most once per concurrently active thread).
    pub fn new(make: impl Fn() -> T + Send + Sync + 'static) -> Self {
        ScratchPool {
            free: Mutex::new(Vec::new()),
            make: Box::new(make),
        }
    }

    /// Runs `f` with exclusive access to one scratch object.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut scratch = self
            .free
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_else(|| (self.make)());
        let result = f(&mut scratch);
        self.free
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);
        result
    }

    /// Number of idle scratch objects currently pooled.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("scratch pool poisoned").len()
    }
}

impl<T> std::fmt::Debug for ScratchPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchPool")
            .field("idle", &self.idle())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn objects_are_reused() {
        let pool = ScratchPool::new(Vec::<u32>::new);
        pool.with(|v| v.push(1));
        assert_eq!(pool.idle(), 1);
        // The same buffer comes back (still holding its capacity).
        pool.with(|v| assert_eq!(v.len(), 1));
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn concurrent_checkout_allocates_at_most_per_thread() {
        let pool = Arc::new(ScratchPool::new(|| 0u64));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for _ in 0..100 {
                        pool.with(|x| *x += 1);
                    }
                });
            }
        });
        assert!(pool.idle() >= 1 && pool.idle() <= 8);
    }
}
