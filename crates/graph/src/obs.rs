//! Observability vocabulary shared across the pipeline: trace ids and the
//! span-sink hook the serving tier's telemetry hub implements.
//!
//! The graph crate owns the *write side* of the pipeline (the
//! [`SnapshotPublisher`](crate::SnapshotPublisher) and its publish hooks),
//! while the serving tier owns the telemetry hub that aggregates what
//! happened. This module is the thin contract between them, so the graph
//! crate never depends on the throughput crate:
//!
//! * [`TraceId`] — a process-unique id minted once per logical request
//!   (one edge update submitted to a feed, one query batch submitted to a
//!   service) and carried through every pipeline stage, so the stages of a
//!   single request can be reconstructed from a flat span stream;
//! * [`SpanSink`] — the object-safe recording hook: pipeline code reports
//!   completed spans (a named interval attributed to a trace) and instant
//!   events to whatever sink is wired in;
//! * [`NullSink`] — the no-op sink, for running without telemetry.
//!
//! Sinks receive *completed* intervals (`start`, `end` both known), which
//! keeps the hook trivially balanced — a recorded span is by construction
//! both opened and closed — and keeps the hot path to one virtual call
//! after the interval finishes, instead of two around it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Global trace-id source; ids are process-unique and never reused.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// A process-unique id attributed to one logical request for its whole
/// trip through the pipeline (see the [module docs](self)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Mints a fresh id (monotone within the process, starting at 1; id 0
    /// is reserved for "untraced").
    pub fn next() -> TraceId {
        TraceId(NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// The reserved "no trace attached" id.
    pub const NONE: TraceId = TraceId(0);

    /// `true` for every id minted by [`TraceId::next`].
    pub fn is_real(&self) -> bool {
        self.0 != 0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Where pipeline code reports completed spans and instant events.
///
/// Implementations must be cheap and non-blocking enough to sit on the
/// maintenance and query hot paths (the serving tier's hub uses a bounded
/// ring buffer behind a short mutex), and must tolerate being called from
/// any thread.
pub trait SpanSink: Send + Sync {
    /// Records a completed interval `[start, end]` named `name` in category
    /// `cat`, attributed to `trace`.
    fn span(
        &self,
        trace: TraceId,
        cat: &'static str,
        name: &'static str,
        start: Instant,
        end: Instant,
    );

    /// Records an instantaneous event at `at` (a terminal marker such as a
    /// shed or an expiry, or a point occurrence such as a publication).
    fn event(&self, trace: TraceId, cat: &'static str, name: &'static str, at: Instant);

    /// `false` when recording is currently a no-op, so callers can skip
    /// assembling span arguments entirely.
    fn is_recording(&self) -> bool {
        true
    }
}

/// The no-op sink: every record is discarded.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl SpanSink for NullSink {
    fn span(&self, _: TraceId, _: &'static str, _: &'static str, _: Instant, _: Instant) {}
    fn event(&self, _: TraceId, _: &'static str, _: &'static str, _: Instant) {}
    fn is_recording(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_real() {
        let a = TraceId::next();
        let b = TraceId::next();
        assert_ne!(a, b);
        assert!(a.is_real() && b.is_real());
        assert!(!TraceId::NONE.is_real());
        assert_eq!(format!("{a}"), format!("{}", a.0));
    }

    #[test]
    fn trace_ids_are_unique_across_threads() {
        let ids: Vec<Vec<TraceId>> = std::thread::scope(|s| {
            (0..4)
                .map(|_| s.spawn(|| (0..1000).map(|_| TraceId::next()).collect()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut all: Vec<u64> = ids.into_iter().flatten().map(|t| t.0).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "trace ids collided across threads");
    }

    #[test]
    fn null_sink_reports_not_recording() {
        let sink = NullSink;
        assert!(!sink.is_recording());
        let now = Instant::now();
        sink.span(TraceId::next(), "c", "n", now, now);
        sink.event(TraceId::NONE, "c", "n", now);
    }
}
