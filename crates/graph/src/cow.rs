//! Chunked copy-on-write storage: the memory layer under snapshot isolation.
//!
//! # Why chunks
//!
//! Every maintainer in this repository publishes immutable
//! [`QueryView`](crate::index_api::QueryView) snapshots while it repairs its
//! index. The original implementation kept whole components (a distance
//! table, a partition-index vector) behind one [`Arc`] and mutated through
//! `Arc::make_mut`, so the *first* write of a stage — while a snapshot was
//! outstanding, which is always — paid a deep clone of the **entire
//! component**, O(index size), no matter how few rows the batch touched.
//!
//! The types in this module split a component into fixed-size chunks, each
//! behind its own `Arc`. Cloning the whole structure only copies the chunk
//! pointer spine (one `Arc` bump per chunk); mutating element `i` only
//! clones the single chunk containing `i`, and only when a snapshot still
//! shares it. A maintenance stage that touches `k` rows therefore clones
//! `O(k / chunk_size + k)` rows of data instead of the whole table — the
//! per-stage copy-on-write cost tracks the *change set*, not the index.
//!
//! # The two containers
//!
//! * [`CowVec<T>`] — a chunked vector of elements. Reads are `&self`
//!   (`Index`, [`CowVec::get`], [`CowVec::iter`]); writes go through
//!   [`CowVec::make_mut`], which clones the containing chunk if it is
//!   shared. Byte accounting covers `size_of::<T>()` per element, which is
//!   accurate precisely when `T`'s own clone is shallow (e.g. a
//!   `PartitionIndex` whose big tables are themselves cow containers).
//! * [`CowTable<T>`] — a chunked table of rows (`Vec<T>`), the shape of
//!   every label/distance table in the repository (`dis`, `disB`, shortcut
//!   arrays, 2-hop labels). Its byte accounting includes each cloned row's
//!   heap payload, so the reported `bytes_cloned` is the real copy volume.
//!
//! # Clone telemetry
//!
//! Each container carries a [`CowStats`] counter pair (chunks and bytes
//! actually cloned by `make_mut`). The counters are **shared by all clones**
//! of a container (they travel in an `Arc`), so a maintainer can read one
//! monotonic figure for a logical component even as snapshots clone the
//! spine or the container itself moves through a chunk clone of an outer
//! `CowVec`. Stage deltas are taken with [`CowStats::since`] and flow into
//! [`PublishEvent`](crate::index_api::PublishEvent) via
//! [`SnapshotPublisher::publish_with_cow`](crate::index_api::SnapshotPublisher::publish_with_cow).
//!
//! # Worked example
//!
//! ```
//! use htsp_graph::cow::CowTable;
//!
//! // A 1000-row distance table, 64 rows per chunk.
//! let rows: Vec<Vec<u32>> = (0..1000).map(|i| vec![i; 8]).collect();
//! let mut table = CowTable::from_rows(rows, 64);
//!
//! // A snapshot pins the current contents: just a spine copy.
//! let snapshot = table.clone();
//!
//! // Repair three rows. Only the chunks holding rows 10, 11, 700 are
//! // cloned (two chunks), not the whole table.
//! for i in [10usize, 11, 700] {
//!     table.make_mut(i)[0] = 42;
//! }
//! assert_eq!(table.stats().chunks_cloned, 2);
//!
//! // The snapshot still sees the pre-repair values.
//! assert_eq!(snapshot.row(10)[0], 10);
//! assert_eq!(table.row(10)[0], 42);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of rows/elements per chunk.
///
/// Small enough that one stray write clones a few KiB, large enough that the
/// pointer spine stays negligible next to the data.
pub const DEFAULT_CHUNK: usize = 64;

/// Cumulative copy-on-write effort: how many chunks (and how many bytes of
/// element data) `make_mut` actually had to clone because a snapshot still
/// shared them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CowStats {
    /// Chunks deep-cloned by `make_mut` since the container was created.
    pub chunks_cloned: u64,
    /// Bytes of element data inside those chunks.
    pub bytes_cloned: u64,
}

impl CowStats {
    /// The delta from an earlier reading of the same (or an aggregated)
    /// counter — the per-stage figure published alongside each snapshot.
    pub fn since(self, earlier: CowStats) -> CowStats {
        CowStats {
            chunks_cloned: self.chunks_cloned.saturating_sub(earlier.chunks_cloned),
            bytes_cloned: self.bytes_cloned.saturating_sub(earlier.bytes_cloned),
        }
    }

    /// Component-wise sum, for aggregating the counters of several
    /// containers into one logical component.
    pub fn plus(self, other: CowStats) -> CowStats {
        CowStats {
            chunks_cloned: self.chunks_cloned + other.chunks_cloned,
            bytes_cloned: self.bytes_cloned + other.bytes_cloned,
        }
    }

    /// `true` when nothing was cloned.
    pub fn is_zero(self) -> bool {
        self.chunks_cloned == 0 && self.bytes_cloned == 0
    }
}

/// The shared counter cell behind a container lineage (see module docs).
#[derive(Debug, Default)]
struct Counters {
    chunks: AtomicU64,
    bytes: AtomicU64,
}

impl Counters {
    fn record(&self, bytes: u64) {
        self.chunks.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    fn read(&self) -> CowStats {
        CowStats {
            chunks_cloned: self.chunks.load(Ordering::Relaxed),
            bytes_cloned: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// A chunked copy-on-write vector: whole-structure clones bump one `Arc` per
/// chunk, element writes clone at most one chunk.
///
/// See the [module docs](self) for the design; use [`CowTable`] instead when
/// the elements are rows (`Vec<T>`) and the byte telemetry should include
/// their heap payload.
#[derive(Debug)]
pub struct CowVec<T> {
    chunks: Vec<Arc<[T]>>,
    len: usize,
    chunk_size: usize,
    counters: Arc<Counters>,
}

impl<T: Clone> CowVec<T> {
    /// Builds a chunked vector from `items` with `chunk_size` elements per
    /// chunk (the last chunk may be shorter).
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    pub fn from_vec(items: Vec<T>, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        let len = items.len();
        let mut chunks = Vec::with_capacity(len.div_ceil(chunk_size));
        let mut items = items.into_iter();
        loop {
            let chunk: Arc<[T]> = items.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        CowVec {
            chunks,
            len,
            chunk_size,
            counters: Arc::new(Counters::default()),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Elements per chunk.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Number of chunks (the spine length copied by `clone`).
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Shared read of element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &T {
        &self.chunks[i / self.chunk_size][i % self.chunk_size]
    }

    /// Iterates over all elements.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Cumulative clone effort of this container lineage (shared by all
    /// clones — see the module docs).
    pub fn stats(&self) -> CowStats {
        self.counters.read()
    }

    /// Heap bytes held by this handle: the chunk-pointer spine plus every
    /// chunk's payload. Chunks shared with clones are counted in full (each
    /// handle reports the bytes it keeps alive).
    pub fn heap_bytes(&self) -> usize {
        self.chunks.capacity() * std::mem::size_of::<Arc<[T]>>()
            + self
                .chunks
                .iter()
                .map(|c| c.len() * std::mem::size_of::<T>())
                .sum::<usize>()
    }

    /// `true` if element `i`'s chunk is currently shared with a clone (a
    /// write through [`CowVec::make_mut`] would have to copy it).
    pub fn is_shared(&self, i: usize) -> bool {
        let chunk = &self.chunks[i / self.chunk_size];
        Arc::strong_count(chunk) > 1
    }

    /// Mutable access to element `i`, cloning its chunk first if any other
    /// clone of this container still shares it (and counting that clone).
    pub fn make_mut(&mut self, i: usize) -> &mut T {
        let ci = i / self.chunk_size;
        self.ensure_unique(ci);
        let chunk = &mut self.chunks[ci];
        &mut Arc::get_mut(chunk).expect("chunk just made unique")[i % self.chunk_size]
    }

    /// Hands out disjoint `&mut` borrows of every element whose index
    /// satisfies `select`, cloning only the chunks that contain at least one
    /// selected element. This is the fan-out entry point for
    /// partition-parallel maintenance: uniquify once, then ship the borrows
    /// to worker threads.
    ///
    /// `select` must be a pure predicate of the index: it is invoked up to
    /// twice per index (a short-circuiting probe decides whether a chunk
    /// needs uniquifying, a second pass collects the borrows), so a stateful
    /// closure would see an order- and chunk-layout-dependent call pattern.
    pub fn make_mut_where(
        &mut self,
        mut select: impl FnMut(usize) -> bool,
    ) -> Vec<(usize, &mut T)> {
        let chunk_size = self.chunk_size;
        let mut out = Vec::new();
        for (ci, chunk) in self.chunks.iter_mut().enumerate() {
            let base = ci * chunk_size;
            if !(0..chunk.len()).any(|o| select(base + o)) {
                continue;
            }
            if Arc::get_mut(&mut *chunk).is_none() {
                let bytes = (chunk.len() * std::mem::size_of::<T>()) as u64;
                let cloned: Arc<[T]> = chunk.iter().cloned().collect();
                *chunk = cloned;
                self.counters.record(bytes);
            }
            let slice = Arc::get_mut(chunk).expect("chunk just made unique");
            for (o, item) in slice.iter_mut().enumerate() {
                if select(base + o) {
                    out.push((base + o, item));
                }
            }
        }
        out
    }

    fn ensure_unique(&mut self, ci: usize) {
        let chunk = &mut self.chunks[ci];
        if Arc::get_mut(chunk).is_none() {
            let bytes = (chunk.len() * std::mem::size_of::<T>()) as u64;
            let cloned: Arc<[T]> = chunk.iter().cloned().collect();
            *chunk = cloned;
            self.counters.record(bytes);
        }
    }
}

impl<T> Clone for CowVec<T> {
    /// Spine-only copy: one `Arc` bump per chunk, no element is cloned.
    fn clone(&self) -> Self {
        CowVec {
            chunks: self.chunks.clone(),
            len: self.len,
            chunk_size: self.chunk_size,
            counters: Arc::clone(&self.counters),
        }
    }
}

impl<T: Clone> std::ops::Index<usize> for CowVec<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        self.get(i)
    }
}

impl<T: Clone> FromIterator<T> for CowVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        CowVec::from_vec(iter.into_iter().collect(), DEFAULT_CHUNK)
    }
}

/// Read access to a table of rows, independent of its storage: implemented
/// by plain `[Vec<T>]` slices (used while a table is being *built*, before
/// it is frozen into chunks) and by [`CowTable`].
pub trait RowRead<T> {
    /// Row `i` as a slice.
    fn row(&self, i: usize) -> &[T];
}

impl<T> RowRead<T> for [Vec<T>] {
    #[inline]
    fn row(&self, i: usize) -> &[T] {
        &self[i]
    }
}

impl<T: Clone> RowRead<T> for CowTable<T> {
    #[inline]
    fn row(&self, i: usize) -> &[T] {
        CowTable::row(self, i)
    }
}

/// A chunked copy-on-write table of rows — the storage shape of every label
/// and distance table in the repository.
///
/// Structurally a [`CowVec`]`<Vec<T>>`, but its clone telemetry counts each
/// cloned row's heap payload (`row.len() * size_of::<T>()`) on top of the
/// row headers, so `bytes_cloned` reflects the real volume of copied label
/// data.
#[derive(Debug)]
pub struct CowTable<T> {
    chunks: Vec<Arc<[Vec<T>]>>,
    len: usize,
    chunk_size: usize,
    counters: Arc<Counters>,
}

impl<T: Clone> CowTable<T> {
    /// Builds a table from `rows` with `chunk_size` rows per chunk.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    pub fn from_rows(rows: Vec<Vec<T>>, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        let len = rows.len();
        let mut chunks = Vec::with_capacity(len.div_ceil(chunk_size));
        let mut rows = rows.into_iter();
        loop {
            let chunk: Arc<[Vec<T>]> = rows.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        CowTable {
            chunks,
            len,
            chunk_size,
            counters: Arc::new(Counters::default()),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rows per chunk.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Number of chunks (the spine length copied by `clone`).
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Shared read of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.chunks[i / self.chunk_size][i % self.chunk_size]
    }

    /// Iterates over all rows.
    pub fn rows(&self) -> impl Iterator<Item = &Vec<T>> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Total elements across all rows (label-entry count).
    pub fn num_entries(&self) -> usize {
        self.rows().map(|r| r.len()).sum()
    }

    /// Cumulative clone effort of this container lineage (shared by all
    /// clones — see the module docs).
    pub fn stats(&self) -> CowStats {
        self.counters.read()
    }

    /// Heap bytes held by this handle: the spine, the per-row `Vec` headers,
    /// and every row's element payload. Chunks shared with clones are
    /// counted in full (each handle reports the bytes it keeps alive).
    pub fn heap_bytes(&self) -> usize {
        let mut bytes = self.chunks.capacity() * std::mem::size_of::<Arc<[Vec<T>]>>();
        for chunk in &self.chunks {
            bytes += chunk.len() * std::mem::size_of::<Vec<T>>();
            bytes += chunk
                .iter()
                .map(|r| r.capacity() * std::mem::size_of::<T>())
                .sum::<usize>();
        }
        bytes
    }

    /// `true` if row `i`'s chunk is currently shared with a clone.
    pub fn is_shared(&self, i: usize) -> bool {
        Arc::strong_count(&self.chunks[i / self.chunk_size]) > 1
    }

    /// Mutable access to row `i`, cloning its chunk (rows and payload) first
    /// if any clone of this table still shares it.
    pub fn make_mut(&mut self, i: usize) -> &mut Vec<T> {
        let ci = i / self.chunk_size;
        let chunk = &mut self.chunks[ci];
        if Arc::get_mut(chunk).is_none() {
            let headers = chunk.len() * std::mem::size_of::<Vec<T>>();
            let payload: usize = chunk
                .iter()
                .map(|r| r.len() * std::mem::size_of::<T>())
                .sum();
            let cloned: Arc<[Vec<T>]> = chunk.iter().cloned().collect();
            *chunk = cloned;
            self.counters.record((headers + payload) as u64);
        }
        &mut Arc::get_mut(&mut self.chunks[ci]).expect("chunk just made unique")
            [i % self.chunk_size]
    }

    /// Uniquifies every chunk containing a selected row and returns one
    /// `(row_index, &mut row)` borrow per selected row, in index order. This
    /// is the fan-out entry point for level-parallel label fills: uniquify
    /// once, then hand the disjoint row borrows to worker results.
    ///
    /// `select` must be a pure predicate of the index: it is invoked up to
    /// twice per index (a short-circuiting probe decides whether a chunk
    /// needs uniquifying, a second pass collects the borrows), so a stateful
    /// closure would see an order- and chunk-layout-dependent call pattern.
    pub fn make_mut_where(
        &mut self,
        mut select: impl FnMut(usize) -> bool,
    ) -> Vec<(usize, &mut Vec<T>)> {
        let chunk_size = self.chunk_size;
        let mut out = Vec::new();
        for (ci, chunk) in self.chunks.iter_mut().enumerate() {
            let base = ci * chunk_size;
            if !(0..chunk.len()).any(|o| select(base + o)) {
                continue;
            }
            if Arc::get_mut(&mut *chunk).is_none() {
                let headers = chunk.len() * std::mem::size_of::<Vec<T>>();
                let payload: usize = chunk
                    .iter()
                    .map(|r| r.len() * std::mem::size_of::<T>())
                    .sum();
                let cloned: Arc<[Vec<T>]> = chunk.iter().cloned().collect();
                *chunk = cloned;
                self.counters.record((headers + payload) as u64);
            }
            let slice = Arc::get_mut(chunk).expect("chunk just made unique");
            for (o, row) in slice.iter_mut().enumerate() {
                if select(base + o) {
                    out.push((base + o, row));
                }
            }
        }
        out
    }
}

impl<T> Clone for CowTable<T> {
    /// Spine-only copy: one `Arc` bump per chunk, no row is cloned.
    fn clone(&self) -> Self {
        CowTable {
            chunks: self.chunks.clone(),
            len: self.len,
            chunk_size: self.chunk_size,
            counters: Arc::clone(&self.counters),
        }
    }
}

impl<T: Clone> std::ops::Index<usize> for CowTable<T> {
    type Output = [T];
    #[inline]
    fn index(&self, i: usize) -> &[T] {
        self.row(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cowvec_round_trips_and_indexes() {
        let v = CowVec::from_vec((0..101u32).collect(), 16);
        assert_eq!(v.len(), 101);
        assert_eq!(v.num_chunks(), 7); // 6 full chunks + 5 elements
        assert_eq!(v[0], 0);
        assert_eq!(v[100], 100);
        assert_eq!(v.iter().copied().sum::<u32>(), 100 * 101 / 2);
        assert!(!v.is_empty());
        let empty: CowVec<u32> = CowVec::from_vec(Vec::new(), 8);
        assert!(empty.is_empty());
        assert_eq!(empty.num_chunks(), 0);
    }

    #[test]
    fn unique_writes_are_free() {
        let mut v = CowVec::from_vec(vec![1u64; 100], 10);
        for i in 0..100 {
            *v.make_mut(i) += i as u64;
        }
        // No snapshot outstanding: nothing was cloned.
        assert_eq!(v.stats(), CowStats::default());
        assert_eq!(v[99], 100);
    }

    #[test]
    fn shared_chunks_clone_once_and_alias_the_rest() {
        let mut v = CowVec::from_vec((0..100u32).collect(), 10);
        let snapshot = v.clone();
        // Two writes inside one chunk: one clone; a third in another chunk:
        // a second clone.
        *v.make_mut(5) = 500;
        *v.make_mut(6) = 600;
        *v.make_mut(95) = 950;
        assert_eq!(v.stats().chunks_cloned, 2);
        assert_eq!(
            v.stats().bytes_cloned,
            2 * 10 * std::mem::size_of::<u32>() as u64
        );
        // Snapshot is frozen; untouched chunks still alias.
        assert_eq!(snapshot[5], 5);
        assert_eq!(snapshot[95], 95);
        assert_eq!(v[5], 500);
        assert!(!v.is_shared(5), "written chunk must be unique now");
        assert!(v.is_shared(15), "untouched chunk must still alias");
        assert!(std::ptr::eq(snapshot.get(15), v.get(15)));
        assert!(!std::ptr::eq(snapshot.get(5), v.get(5)));
    }

    #[test]
    fn make_mut_after_snapshot_drop_is_free_again() {
        let mut v = CowVec::from_vec(vec![7u8; 64], 8);
        let snapshot = v.clone();
        *v.make_mut(0) = 1;
        assert_eq!(v.stats().chunks_cloned, 1);
        drop(snapshot);
        *v.make_mut(9) = 2;
        // Chunk 1 became unique when the snapshot dropped: no second clone.
        assert_eq!(v.stats().chunks_cloned, 1);
    }

    #[test]
    fn clones_share_counters() {
        let mut v = CowVec::from_vec(vec![0u32; 32], 8);
        let snapshot = v.clone();
        *v.make_mut(0) = 1;
        // The snapshot reads the same lineage counter.
        assert_eq!(snapshot.stats(), v.stats());
        assert_eq!(v.stats().chunks_cloned, 1);
    }

    #[test]
    fn make_mut_where_uniquifies_only_selected_chunks() {
        let mut v = CowVec::from_vec((0..40u32).collect(), 10);
        let snapshot = v.clone();
        let picked = v.make_mut_where(|i| i == 3 || i == 7 || i == 35);
        assert_eq!(
            picked.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![3, 7, 35]
        );
        for (i, item) in picked {
            *item = i as u32 * 100;
        }
        assert_eq!(v.stats().chunks_cloned, 2); // chunks 0 and 3
        assert_eq!(v[3], 300);
        assert_eq!(v[35], 3500);
        assert_eq!(snapshot[3], 3);
        assert!(v.is_shared(15), "unselected chunk must still alias");
    }

    #[test]
    fn cowtable_counts_row_payload() {
        let rows: Vec<Vec<u32>> = (0..20).map(|i| vec![i as u32; i]).collect();
        let mut t = CowTable::from_rows(rows, 4);
        assert_eq!(t.len(), 20);
        assert_eq!(t.num_entries(), (0..20).sum::<usize>());
        let snapshot = t.clone();
        t.make_mut(5).push(9); // chunk 1 holds rows 4..8 (lengths 4+5+6+7)
        let expect_bytes = (4 * std::mem::size_of::<Vec<u32>>()
            + (4 + 5 + 6 + 7) * std::mem::size_of::<u32>()) as u64;
        assert_eq!(t.stats().chunks_cloned, 1);
        assert_eq!(t.stats().bytes_cloned, expect_bytes);
        assert_eq!(snapshot.row(5).len(), 5);
        assert_eq!(t.row(5).len(), 6);
        // Second write in the same chunk: free.
        t.make_mut(6).push(1);
        assert_eq!(t.stats().chunks_cloned, 1);
    }

    #[test]
    fn cowtable_make_mut_where_hands_out_disjoint_rows_in_index_order() {
        let rows: Vec<Vec<u32>> = (0..20).map(|i| vec![i as u32]).collect();
        let mut t = CowTable::from_rows(rows, 4);
        let snapshot = t.clone();
        let picked = t.make_mut_where(|i| i % 7 == 2);
        assert_eq!(
            picked.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![2, 9, 16]
        );
        for (i, row) in picked {
            row.push(i as u32 * 10);
        }
        // Chunks 0, 2, 4 were uniquified; chunk 1 (rows 4..8) still aliases.
        assert_eq!(t.stats().chunks_cloned, 3);
        assert!(t.is_shared(5));
        assert_eq!(t.row(9), &[9, 90]);
        assert_eq!(snapshot.row(9), &[9]);
    }

    #[test]
    fn cowtable_row_read_trait_matches_slice_impl() {
        let rows: Vec<Vec<u8>> = vec![vec![1, 2], vec![3]];
        let t = CowTable::from_rows(rows.clone(), 1);
        fn read<R: RowRead<u8> + ?Sized>(r: &R, i: usize) -> Vec<u8> {
            r.row(i).to_vec()
        }
        assert_eq!(read(&t, 0), read(&rows[..], 0));
        assert_eq!(read(&t, 1), read(&rows[..], 1));
        assert_eq!(&t[1], &rows[1][..]);
    }

    #[test]
    fn stats_since_and_plus() {
        let a = CowStats {
            chunks_cloned: 5,
            bytes_cloned: 500,
        };
        let b = CowStats {
            chunks_cloned: 2,
            bytes_cloned: 150,
        };
        assert_eq!(
            a.since(b),
            CowStats {
                chunks_cloned: 3,
                bytes_cloned: 350
            }
        );
        assert_eq!(
            a.plus(b),
            CowStats {
                chunks_cloned: 7,
                bytes_cloned: 650
            }
        );
        assert!(CowStats::default().is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn containers_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CowVec<u32>>();
        assert_send_sync::<CowTable<u32>>();
    }

    /// Randomized interleavings of `clone` / drop-clone / `make_mut` /
    /// `make_mut_where` against a reference model: untouched chunks stay
    /// pointer-shared with the latest snapshot, touched chunks uniquify
    /// exactly once, and the lineage counters match the clones the test
    /// *observed* (predicted from `is_shared` right before each write).
    #[test]
    fn randomized_interleavings_keep_aliasing_and_counters_exact() {
        use rand::{Rng, SeedableRng};
        use rand_chacha::ChaCha8Rng;

        for seed in 0..6u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let chunk = 1 + rng.gen_range(0..24usize);
            let n = 64 + rng.gen_range(0..192usize);
            let chunk_len = |ci: usize| chunk.min(n - ci * chunk);

            let mut v = CowVec::from_vec((0..n as u64).collect(), chunk);
            let mut model: Vec<u64> = (0..n as u64).collect();
            // Older snapshots only pin chunks; the latest one also gets its
            // values checked and its untouched chunks pointer-compared.
            let mut older: Vec<CowVec<u64>> = Vec::new();
            let mut latest: Option<(CowVec<u64>, Vec<u64>)> = None;
            let mut touched_since_latest: std::collections::HashSet<usize> =
                std::collections::HashSet::new();
            let mut expected = v.stats();
            assert!(expected.is_zero());

            for step in 0..150u64 {
                match rng.gen_range(0..6u32) {
                    0 => {
                        if let Some((old, _)) = latest.replace((v.clone(), model.clone())) {
                            older.push(old);
                        }
                        touched_since_latest.clear();
                    }
                    1 => {
                        if !older.is_empty() {
                            let k = rng.gen_range(0..older.len());
                            older.swap_remove(k);
                        }
                    }
                    2 | 3 => {
                        let i = rng.gen_range(0..n);
                        let ci = i / chunk;
                        if v.is_shared(i) {
                            expected.chunks_cloned += 1;
                            expected.bytes_cloned +=
                                (chunk_len(ci) * std::mem::size_of::<u64>()) as u64;
                        }
                        *v.make_mut(i) = step * 1000 + i as u64;
                        model[i] = step * 1000 + i as u64;
                        touched_since_latest.insert(ci);
                        assert!(!v.is_shared(i), "make_mut left the chunk shared");
                        // Touched chunks uniquify exactly once: a second
                        // write to the same chunk must be counter-free.
                        let before = v.stats();
                        let j = ci * chunk;
                        *v.make_mut(j) = model[j];
                        assert_eq!(v.stats(), before, "chunk uniquified twice");
                    }
                    _ => {
                        let mask: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.05)).collect();
                        for ci in 0..v.num_chunks() {
                            let base = ci * chunk;
                            if !(0..chunk_len(ci)).any(|o| mask[base + o]) {
                                continue;
                            }
                            touched_since_latest.insert(ci);
                            if v.is_shared(base) {
                                expected.chunks_cloned += 1;
                                expected.bytes_cloned +=
                                    (chunk_len(ci) * std::mem::size_of::<u64>()) as u64;
                            }
                        }
                        for (i, item) in v.make_mut_where(|i| mask[i]) {
                            *item = step * 1000 + i as u64 + 7;
                            model[i] = step * 1000 + i as u64 + 7;
                        }
                    }
                }
                assert_eq!(
                    v.stats(),
                    expected,
                    "counters diverged from observed clones (seed {seed}, step {step})"
                );
                // Untouched chunks still alias the latest snapshot's data.
                if let Some((snap, _)) = &latest {
                    for ci in 0..v.num_chunks() {
                        if !touched_since_latest.contains(&ci) {
                            let base = ci * chunk;
                            assert!(
                                std::ptr::eq(snap.get(base), v.get(base)),
                                "untouched chunk {ci} stopped aliasing (seed {seed}, step {step})"
                            );
                        }
                    }
                }
            }

            // End-state: the working copy matches the model, the snapshot is
            // frozen at its clone point.
            assert!(v.iter().copied().eq(model.iter().copied()));
            if let Some((snap, frozen)) = &latest {
                assert!(
                    snap.iter().copied().eq(frozen.iter().copied()),
                    "snapshot drifted (seed {seed})"
                );
            }
        }
    }

    /// The `CowTable` variant: `make_mut` under random snapshot pressure,
    /// with the byte counters checked against the *observed* row payloads
    /// (headers + element bytes of every row in the cloned chunk).
    #[test]
    fn randomized_table_interleavings_count_payload_and_freeze_snapshots() {
        use rand::{Rng, SeedableRng};
        use rand_chacha::ChaCha8Rng;

        for seed in 0..4u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(0xbeef ^ seed);
            let chunk = 1 + rng.gen_range(0..8usize);
            let n = 40 + rng.gen_range(0..40usize);
            let chunk_len = |ci: usize| chunk.min(n - ci * chunk);
            let rows: Vec<Vec<u32>> = (0..n).map(|i| vec![i as u32; i % 5]).collect();
            let mut t = CowTable::from_rows(rows.clone(), chunk);
            let mut model = rows;
            let mut snapshot: Option<(CowTable<u32>, Vec<Vec<u32>>)> = None;
            let mut expected = t.stats();

            for step in 0..120u32 {
                match rng.gen_range(0..4u32) {
                    0 => snapshot = Some((t.clone(), model.clone())),
                    1 => {
                        if rng.gen_bool(0.5) {
                            snapshot = None;
                        }
                    }
                    _ => {
                        let i = rng.gen_range(0..n);
                        let ci = i / chunk;
                        if t.is_shared(i) {
                            let base = ci * chunk;
                            let headers = chunk_len(ci) * std::mem::size_of::<Vec<u32>>();
                            let payload: usize = (0..chunk_len(ci))
                                .map(|o| model[base + o].len() * std::mem::size_of::<u32>())
                                .sum();
                            expected.chunks_cloned += 1;
                            expected.bytes_cloned += (headers + payload) as u64;
                        }
                        t.make_mut(i).push(step);
                        model[i].push(step);
                        assert!(!t.is_shared(i), "make_mut left the chunk shared");
                    }
                }
                assert_eq!(
                    t.stats(),
                    expected,
                    "table counters diverged (seed {seed}, step {step})"
                );
            }
            for (i, row) in model.iter().enumerate() {
                assert_eq!(t.row(i), &row[..]);
            }
            if let Some((snap, frozen)) = &snapshot {
                for (i, row) in frozen.iter().enumerate() {
                    assert_eq!(snap.row(i), &row[..], "table snapshot drifted");
                }
            }
        }
    }
}
