//! Flat CSR storage for large road networks.
//!
//! The adjacency-list [`Graph`] is the mutable substrate every index in this
//! repository is built on, but its pointer-chasing layout (one heap `Vec`
//! per vertex) is the wrong shape for graphs at the 10M+ edge scale the
//! paper's throughput claims live at: neighbor walks take a cache miss per
//! vertex, and each arc costs 12 bytes plus per-`Vec` overhead.
//!
//! [`CsrGraph`] is the frozen struct-of-arrays counterpart:
//!
//! ```text
//! offsets:  [0 .. n]     u32   arc range of vertex v = offsets[v]..offsets[v+1]
//! targets:  [0 .. 2m)    u32   neighbor per arc, sorted per vertex
//! arc_edge: [0 .. 2m)    u32   undirected edge id per arc
//! ticks:    [0 .. 2m)    u16   quantized weight per arc (see below)
//! blocks:   per 131072 arcs   (base, scale) dequantization pair
//! overflow: arc -> Weight      exact weights the block encoding cannot hold
//! edges:    [0 .. m)           endpoints per edge id (u < v)
//! ```
//!
//! # Per-block weight quantization
//!
//! Road-network travel times cluster tightly, so storing every arc weight at
//! full width wastes most of its bits. Arcs are cut into blocks of
//! [`QUANT_BLOCK_ARCS`] = 131072; each block stores a `base` (the block's
//! minimum weight) and a `scale` (the gcd of all weight deltas in the
//! block), and each arc stores the `u16` tick `(w - base) / scale`. The
//! encoding is **lossless** by construction — `base + tick * scale`
//! reproduces the exact weight — so CSR-backed searches return bit-identical
//! distances. Weights a block cannot represent (tick ≥ `u16::MAX`, or
//! off-grid values installed later by [`CsrGraph::set_edge_weight`]) get the
//! sentinel tick [`OVERFLOW_TICK`] and live exactly in the `overflow` map.
//! Weight storage is 2 bytes/arc plus 8 bytes per 131072-arc block — a 4×
//! reduction against `u64` weights and 2× against this repo's native `u32`.
//!
//! # The [`Adjacency`] trait
//!
//! The hot searches in `htsp-search` are generic over [`Adjacency`], which
//! both [`Graph`] and [`CsrGraph`] implement, so the same monomorphized
//! Dijkstra runs on either representation and exactness can be asserted by
//! comparing the two.

use crate::graph::Graph;
use crate::types::{EdgeId, VertexId, Weight};
use rustc_hash::FxHashMap;

/// Arcs per quantization block (131072: large enough that block metadata is
/// noise, small enough that one outlier weight only widens one block).
pub const QUANT_BLOCK_ARCS: usize = 131_072;

/// Sentinel tick marking an arc whose exact weight lives in the overflow
/// table.
pub const OVERFLOW_TICK: u16 = u16::MAX;

/// Dequantization pair of one weight block: `w = base + tick * scale`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct WeightBlock {
    base: u32,
    scale: u32,
}

/// Uniform read access to an undirected graph's adjacency structure.
///
/// Implemented by the mutable adjacency-list [`Graph`] and the frozen
/// [`CsrGraph`]; the index-free searches in `htsp-search` are generic over
/// it, so they monomorphize to a direct loop for either layout.
pub trait Adjacency {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Calls `f(neighbor, weight)` for every arc leaving `v`.
    fn for_each_arc<F: FnMut(VertexId, Weight)>(&self, v: VertexId, f: F);
}

impl<A: Adjacency + ?Sized> Adjacency for std::sync::Arc<A> {
    #[inline]
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    #[inline]
    fn for_each_arc<F: FnMut(VertexId, Weight)>(&self, v: VertexId, f: F) {
        (**self).for_each_arc(v, f)
    }
}

impl Adjacency for Graph {
    #[inline]
    fn num_vertices(&self) -> usize {
        Graph::num_vertices(self)
    }

    #[inline]
    fn for_each_arc<F: FnMut(VertexId, Weight)>(&self, v: VertexId, mut f: F) {
        for arc in self.arcs(v) {
            f(arc.to, arc.weight);
        }
    }
}

/// Heap-byte breakdown of a [`CsrGraph`] (see [`CsrGraph::heap_bytes`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct CsrFootprint {
    /// `offsets` + `targets` + `arc_edge`: the topology arrays.
    pub topology_bytes: usize,
    /// `ticks` + `blocks`: the quantized weight storage.
    pub weight_bytes: usize,
    /// Overflow-table entries (exact weights off the block grid).
    pub overflow_bytes: usize,
    /// The edge-id → endpoints list.
    pub edge_list_bytes: usize,
}

impl CsrFootprint {
    /// Total heap bytes.
    pub fn total(&self) -> usize {
        self.topology_bytes + self.weight_bytes + self.overflow_bytes + self.edge_list_bytes
    }
}

/// A frozen compressed-sparse-row graph with per-block quantized weights.
///
/// Built from an adjacency-list [`Graph`] ([`CsrGraph::from_graph`]) or
/// directly from a normalized edge list (the streaming DIMACS loader,
/// [`crate::dimacs::load_dimacs_streaming`]). Topology is immutable; edge
/// weights can still be updated in place ([`CsrGraph::set_edge_weight`]),
/// which keeps the representation usable behind the update pipeline.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` = arc indices of vertex `v`; length n+1.
    offsets: Vec<u32>,
    /// Neighbor per arc, sorted ascending within each vertex's range.
    targets: Vec<u32>,
    /// Undirected edge id per arc.
    arc_edge: Vec<u32>,
    /// Quantized weight per arc ([`OVERFLOW_TICK`] = see `overflow`).
    ticks: Vec<u16>,
    /// Dequantization pair per [`QUANT_BLOCK_ARCS`] arcs.
    blocks: Vec<WeightBlock>,
    /// Exact weights of arcs the block encoding cannot hold.
    overflow: FxHashMap<u32, Weight>,
    /// Endpoints per edge id, `u < v`.
    edges: Vec<(VertexId, VertexId)>,
}

fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl CsrGraph {
    /// Converts an adjacency-list graph, preserving edge ids.
    pub fn from_graph(g: &Graph) -> Self {
        let mut edges = Vec::with_capacity(g.num_edges());
        let mut weights = Vec::with_capacity(g.num_edges());
        for (_, u, v, w) in g.edges() {
            edges.push((u, v));
            weights.push(w);
        }
        Self::from_normalized_edges(g.num_vertices(), edges, &weights)
    }

    /// Builds the CSR from a normalized edge list (`u < v`, deduplicated, no
    /// self-loops, positive weights; `edges[e]` defines edge id `e`).
    ///
    /// Callers validate — the streaming loader checks every token against
    /// the header, and [`CsrGraph::from_graph`] starts from an
    /// already-valid graph.
    pub(crate) fn from_normalized_edges(
        n: usize,
        edges: Vec<(VertexId, VertexId)>,
        weights: &[Weight],
    ) -> Self {
        debug_assert_eq!(edges.len(), weights.len());
        let num_arcs = edges.len() * 2;
        // Counting sort: degrees, then prefix sums, then fill.
        let mut offsets = vec![0u32; n + 1];
        for &(u, v) in &edges {
            offsets[u.index() + 1] += 1;
            offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; num_arcs];
        let mut arc_edge = vec![0u32; num_arcs];
        for (e, &(u, v)) in edges.iter().enumerate() {
            let a = cursor[u.index()] as usize;
            targets[a] = v.0;
            arc_edge[a] = e as u32;
            cursor[u.index()] += 1;
            let b = cursor[v.index()] as usize;
            targets[b] = u.0;
            arc_edge[b] = e as u32;
            cursor[v.index()] += 1;
        }
        // Sort each vertex's range by target so lookups can binary-search.
        let mut scratch: Vec<(u32, u32)> = Vec::new();
        for v in 0..n {
            let range = offsets[v] as usize..offsets[v + 1] as usize;
            if range.len() > 1 {
                scratch.clear();
                scratch.extend(
                    targets[range.clone()]
                        .iter()
                        .copied()
                        .zip(arc_edge[range.clone()].iter().copied()),
                );
                scratch.sort_unstable();
                for (i, &(t, e)) in scratch.iter().enumerate() {
                    targets[range.start + i] = t;
                    arc_edge[range.start + i] = e;
                }
            }
        }
        // Quantize per block of QUANT_BLOCK_ARCS arcs.
        let mut ticks = vec![0u16; num_arcs];
        let mut blocks = Vec::with_capacity(num_arcs.div_ceil(QUANT_BLOCK_ARCS));
        let mut overflow = FxHashMap::default();
        for (b, chunk) in arc_edge.chunks(QUANT_BLOCK_ARCS).enumerate() {
            let start = b * QUANT_BLOCK_ARCS;
            let base = chunk
                .iter()
                .map(|&e| weights[e as usize])
                .min()
                .unwrap_or(0);
            let mut scale = 0u32;
            for &e in chunk {
                scale = gcd(scale, weights[e as usize] - base);
            }
            let scale = scale.max(1);
            blocks.push(WeightBlock { base, scale });
            for (i, &e) in chunk.iter().enumerate() {
                let delta = (weights[e as usize] - base) / scale;
                if delta >= OVERFLOW_TICK as u32 {
                    ticks[start + i] = OVERFLOW_TICK;
                    overflow.insert((start + i) as u32, weights[e as usize]);
                } else {
                    ticks[start + i] = delta as u16;
                }
            }
        }
        CsrGraph {
            offsets,
            targets,
            arc_edge,
            ticks,
            blocks,
            overflow,
            edges,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of directed arcs (`2 * num_edges`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Endpoints `(u, v)` of edge `e`, with `u < v`.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e.index()]
    }

    /// Exact weight of the arc at flat index `a`.
    #[inline]
    fn arc_weight(&self, a: usize) -> Weight {
        let tick = self.ticks[a];
        if tick == OVERFLOW_TICK {
            self.overflow[&(a as u32)]
        } else {
            let blk = self.blocks[a / QUANT_BLOCK_ARCS];
            blk.base + tick as u32 * blk.scale
        }
    }

    /// Flat arc index of edge `e` as seen from endpoint `from` (the
    /// neighbor ranges are target-sorted, so this is a binary search plus a
    /// short scan over equal targets — which is a single arc, since the
    /// graph has no parallel edges).
    fn arc_index(&self, from: VertexId, to: VertexId) -> Option<usize> {
        let range = self.offsets[from.index()] as usize..self.offsets[from.index() + 1] as usize;
        let slice = &self.targets[range.clone()];
        slice.binary_search(&to.0).ok().map(|pos| range.start + pos)
    }

    /// Current weight of edge `e`.
    pub fn edge_weight(&self, e: EdgeId) -> Weight {
        let (u, v) = self.edges[e.index()];
        let a = self
            .arc_index(u, v)
            .expect("CSR invariant: every edge has an arc at its first endpoint");
        self.arc_weight(a)
    }

    /// Sets the weight of edge `e` to `w` (strictly positive), updating both
    /// arc copies. Weights on the block grid stay quantized; off-grid
    /// weights fall back to the exact overflow table, so the update is
    /// always lossless. Returns the previous weight.
    pub fn set_edge_weight(&mut self, e: EdgeId, w: Weight) -> Weight {
        assert!(w > 0, "edge weights must be strictly positive");
        let (u, v) = self.edges[e.index()];
        let a = self
            .arc_index(u, v)
            .expect("CSR invariant: edge arc at first endpoint");
        let b = self
            .arc_index(v, u)
            .expect("CSR invariant: edge arc at second endpoint");
        let old = self.arc_weight(a);
        for idx in [a, b] {
            let blk = self.blocks[idx / QUANT_BLOCK_ARCS];
            let representable = w >= blk.base
                && (w - blk.base).is_multiple_of(blk.scale)
                && (w - blk.base) / blk.scale < OVERFLOW_TICK as u32;
            if representable {
                if self.ticks[idx] == OVERFLOW_TICK {
                    self.overflow.remove(&(idx as u32));
                }
                self.ticks[idx] = ((w - blk.base) / blk.scale) as u16;
            } else {
                self.ticks[idx] = OVERFLOW_TICK;
                self.overflow.insert(idx as u32, w);
            }
        }
        old
    }

    /// Converts back to the adjacency-list [`Graph`], preserving edge ids.
    pub fn to_graph(&self) -> Graph {
        let weights: Vec<Weight> = (0..self.edges.len())
            .map(|e| self.edge_weight(EdgeId::from_index(e)))
            .collect();
        Graph::from_normalized_edges(self.num_vertices(), self.edges.clone(), weights)
    }

    /// Heap bytes per component (topology / quantized weights / overflow /
    /// edge list). The quantized `weight_bytes` is what BENCH_pr9 compares
    /// against the `8 * num_arcs` a `u64`-weighted layout would pay.
    pub fn heap_bytes(&self) -> CsrFootprint {
        use std::mem::size_of;
        CsrFootprint {
            topology_bytes: self.offsets.capacity() * size_of::<u32>()
                + self.targets.capacity() * size_of::<u32>()
                + self.arc_edge.capacity() * size_of::<u32>(),
            weight_bytes: self.ticks.capacity() * size_of::<u16>()
                + self.blocks.capacity() * size_of::<WeightBlock>(),
            overflow_bytes: self.overflow.len() * (size_of::<u32>() + size_of::<Weight>()),
            edge_list_bytes: self.edges.capacity() * size_of::<(VertexId, VertexId)>(),
        }
    }

    /// Number of arcs stored exactly in the overflow table.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }
}

impl Adjacency for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    #[inline]
    fn for_each_arc<F: FnMut(VertexId, Weight)>(&self, v: VertexId, mut f: F) {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        for a in lo..hi {
            f(VertexId(self.targets[a]), self.arc_weight(a));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::graph::GraphBuilder;

    fn grid(side: usize, seed: u64) -> Graph {
        gen::grid(side, side, gen::WeightRange::default(), seed)
    }

    /// Collects `(neighbor, weight)` pairs for `v`, sorted, via the trait.
    fn arcs_of<A: Adjacency>(g: &A, v: VertexId) -> Vec<(VertexId, Weight)> {
        let mut out = Vec::new();
        g.for_each_arc(v, |t, w| out.push((t, w)));
        out.sort_unstable();
        out
    }

    #[test]
    fn csr_matches_adjacency_lists() {
        let g = grid(9, 42);
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.num_vertices(), g.num_vertices());
        assert_eq!(csr.num_edges(), g.num_edges());
        assert_eq!(csr.num_arcs(), 2 * g.num_edges());
        for v in g.vertices() {
            assert_eq!(csr.degree(v), g.degree(v));
            assert_eq!(arcs_of(&csr, v), arcs_of(&g, v));
        }
        for (e, u, v, w) in g.edges() {
            assert_eq!(csr.edge_endpoints(e), (u, v));
            assert_eq!(csr.edge_weight(e), w, "quantization must be lossless");
        }
    }

    #[test]
    fn round_trip_through_graph_preserves_edge_ids() {
        let g = grid(7, 7);
        let csr = CsrGraph::from_graph(&g);
        let back = csr.to_graph();
        back.validate().expect("round-tripped graph is valid");
        assert_eq!(back.num_edges(), g.num_edges());
        for (e, u, v, w) in g.edges() {
            assert_eq!(back.edge_endpoints(e), (u, v));
            assert_eq!(back.edge_weight(e), w);
        }
    }

    #[test]
    fn wide_weight_spread_lands_in_overflow_and_stays_exact() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(1), VertexId(2), 2);
        // gcd(1, 2_000_000_000 - 1) = 1, so this tick overflows u16.
        b.add_edge(VertexId(2), VertexId(3), 2_000_000_000);
        let g = b.build();
        let csr = CsrGraph::from_graph(&g);
        assert!(csr.overflow_len() > 0);
        for (e, _, _, w) in g.edges() {
            assert_eq!(csr.edge_weight(e), w);
        }
    }

    #[test]
    fn set_edge_weight_updates_both_arcs_and_survives_off_grid() {
        let g = grid(5, 3);
        let mut csr = CsrGraph::from_graph(&g);
        let (e, u, v, w0) = g.edges().next().unwrap();
        // An off-grid weight (below every base) must go exact.
        assert_eq!(csr.set_edge_weight(e, w0), w0);
        let old = csr.set_edge_weight(e, 1);
        assert_eq!(old, w0);
        assert_eq!(csr.edge_weight(e), 1);
        let mut seen = Vec::new();
        csr.for_each_arc(u, |t, w| {
            if t == v {
                seen.push(w);
            }
        });
        csr.for_each_arc(v, |t, w| {
            if t == u {
                seen.push(w);
            }
        });
        assert_eq!(seen, vec![1, 1], "both arc copies observe the new weight");
        // Back onto the grid: the overflow entry must be retired.
        let before = csr.overflow_len();
        csr.set_edge_weight(e, w0);
        assert!(csr.overflow_len() <= before);
        assert_eq!(csr.edge_weight(e), w0);
    }

    #[test]
    fn quantized_weights_beat_u64_storage_by_2x() {
        let g = grid(24, 11);
        let csr = CsrGraph::from_graph(&g);
        let fp = csr.heap_bytes();
        let u64_bytes = csr.num_arcs() * std::mem::size_of::<u64>();
        assert!(
            (fp.weight_bytes + fp.overflow_bytes) * 2 <= u64_bytes,
            "quantized weights ({} + {} B) must be ≤ half of u64 storage ({u64_bytes} B)",
            fp.weight_bytes,
            fp.overflow_bytes,
        );
        assert!(fp.total() > 0 && fp.topology_bytes > 0);
    }

    /// Builds a path graph (vertex i — i+1) over `weights`, one edge per
    /// weight, so a weight *stream* maps 1:1 onto edge ids.
    fn path_graph(weights: &[Weight]) -> Graph {
        let mut b = GraphBuilder::new(weights.len() + 1);
        for (i, &w) in weights.iter().enumerate() {
            b.add_edge(VertexId(i as u32), VertexId(i as u32 + 1), w);
        }
        b.build()
    }

    /// Property core: the stream must round-trip exactly through the CSR,
    /// and every edge must survive a `set_edge_weight` re-quantization to a
    /// permuted weight of the same stream (both the on-grid and the off-grid
    /// path of the update).
    fn assert_stream_round_trips(weights: &[Weight]) {
        let g = path_graph(weights);
        let mut csr = CsrGraph::from_graph(&g);
        for (i, &w) in weights.iter().enumerate() {
            assert_eq!(
                csr.edge_weight(EdgeId::from_index(i)),
                w,
                "edge {i} lost weight {w} in quantization"
            );
        }
        // Re-quantization: rotate the stream by one, then restore. Each set
        // must be lossless regardless of whether the new weight lands on the
        // block grid or in the overflow table.
        for (i, &w) in weights.iter().enumerate() {
            let rotated = weights[(i + 1) % weights.len()];
            let e = EdgeId::from_index(i);
            assert_eq!(csr.set_edge_weight(e, rotated), w);
            assert_eq!(csr.edge_weight(e), rotated);
            assert_eq!(csr.set_edge_weight(e, w), rotated);
            assert_eq!(csr.edge_weight(e), w);
        }
        // The round trip also survives conversion back to adjacency lists.
        let back = csr.to_graph();
        for (i, &w) in weights.iter().enumerate() {
            assert_eq!(back.edge_weight(EdgeId::from_index(i)), w);
        }
    }

    #[test]
    fn scale_one_streams_round_trip_exactly() {
        use rand::{Rng, SeedableRng};
        // Random small weights: deltas have gcd 1 (scale-1 blocks) and every
        // tick fits, so nothing may reach the overflow table.
        for seed in 0..4u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let weights: Vec<Weight> = (0..300).map(|_| rng.gen_range(1..=60_000)).collect();
            let csr = CsrGraph::from_graph(&path_graph(&weights));
            assert_eq!(csr.overflow_len(), 0, "seed {seed}: scale-1 overflowed");
            assert_stream_round_trips(&weights);
        }
    }

    #[test]
    fn all_equal_streams_round_trip_exactly() {
        // All deltas are 0: the gcd collapses to the scale.max(1) floor and
        // every tick is 0.
        for w in [1, 7, 1_000_000, u32::MAX - 1] {
            let weights = vec![w; 64];
            let csr = CsrGraph::from_graph(&path_graph(&weights));
            assert_eq!(csr.overflow_len(), 0, "constant stream {w} overflowed");
            assert_stream_round_trips(&weights);
        }
    }

    #[test]
    fn overflow_heavy_streams_round_trip_exactly() {
        use rand::{Rng, SeedableRng};
        // Weights spread across the whole u32 range with gcd-1 deltas: most
        // ticks exceed u16, so the overflow table carries the block.
        for seed in 0..4u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(100 + seed);
            let mut weights: Vec<Weight> = (0..200).map(|_| rng.gen_range(1..u32::MAX)).collect();
            weights.push(1); // pin the base low so large weights must overflow
            let csr = CsrGraph::from_graph(&path_graph(&weights));
            assert!(
                csr.overflow_len() * 2 >= weights.len(),
                "seed {seed}: expected an overflow-heavy block, got {} of {}",
                csr.overflow_len(),
                weights.len()
            );
            assert_stream_round_trips(&weights);
        }
    }

    #[test]
    fn max_adjacent_weights_round_trip_exactly() {
        // Weights hugging the top of the Weight domain: base is itself huge,
        // deltas are tiny, and re-quantization to/from u32::MAX must not
        // wrap anywhere in `base + tick * scale`.
        let top = u32::MAX;
        let weights: Vec<Weight> = (0..40).map(|i| top - (i % 5)).collect();
        assert_stream_round_trips(&weights);
        // A mixed stream: one tiny weight forces a scale-1 block whose huge
        // members can only live in the overflow table.
        let mut mixed = weights.clone();
        mixed.push(1);
        mixed.push(2);
        let csr = CsrGraph::from_graph(&path_graph(&mixed));
        assert!(csr.overflow_len() > 0);
        assert_stream_round_trips(&mixed);
    }

    #[test]
    fn empty_and_single_vertex_graphs() {
        let g = Graph::with_vertices(0);
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_arcs(), 0);
        let g1 = Graph::with_vertices(3);
        let csr1 = CsrGraph::from_graph(&g1);
        assert_eq!(csr1.num_vertices(), 3);
        assert_eq!(csr1.degree(VertexId(1)), 0);
        let _ = csr1.heap_bytes();
    }
}
