//! The read/write index API every dynamic shortest-distance index in this
//! repository implements (BiDijkstra, DCH, DH2H, N-CH-P, P-TD-P, TOAIN, MHL,
//! PMHL, PostMHL), and the contract the `RoadNetworkServer` facade in
//! `htsp-throughput` is built on.
//!
//! # Where this sits in the serving stack
//!
//! The deployed pipeline is **ingest → coalesce → staged maintenance →
//! publish → sessions**:
//!
//! 1. **Ingest** — applications submit single edge-weight updates to an
//!    `UpdateFeed` (in `htsp-throughput`) and hold an `UpdateTicket` per
//!    submission.
//! 2. **Coalesce** — a maintenance thread batches pending updates under a
//!    `CoalescePolicy` (max batch size `|U|`, max delay Δt). That Δt *is*
//!    the update interval `δt` of the paper's Lemma 1: with a saturated
//!    feed the maintainer receives one [`UpdateBatch`] per Δt.
//! 3. **Staged maintenance** — the batch is handed to an
//!    [`IndexMaintainer::apply_batch`], which repairs stage by stage.
//! 4. **Publish** — at the end of every completed stage the maintainer
//!    publishes an immutable [`QueryView`] through the
//!    [`SnapshotPublisher`]; tickets resolve against publisher versions
//!    ([`SnapshotPublisher::wait_for_version`] is the no-polling primitive
//!    behind `wait_visible()` read-your-writes).
//! 5. **Sessions** — serving threads open [`QuerySession`]s on published
//!    views and answer point-to-point / one-to-many / matrix workloads,
//!    re-pinning when the version advances.
//!
//! This module defines layers 3–5 (the graph-level contract); the server,
//! feed, and registry live in `htsp-throughput` so they can construct every
//! concrete index.
//!
//! # Sharded serving tier
//!
//! The pipeline above scales out by partitioning: `htsp-throughput`'s
//! `ShardedFleet` runs one complete server (feed + maintainer + publisher)
//! per partition shard on the shard's induced subgraph, with a front-end
//! `FleetRouter` over the boundary overlay. The router fans each update to
//! the shard owning its edge (boundary-incident updates also repair the
//! overlay), so shard maintainers repair **in parallel** and a non-boundary
//! update's visibility lag is bounded by its own shard's repair time.
//! After every routed batch the router publishes a *fleet epoch* — one
//! pinned [`QueryView`] per shard plus the post-apply global and overlay
//! graphs, all mutually weight-consistent — and fleet sessions answer
//! cross-shard pairs by concatenating boundary fans with an overlay run,
//! exactly (the overlay preserves boundary-to-boundary distances). The
//! two-trait split below is what makes this tier cheap: a shard server is
//! just another [`IndexMaintainer`] host, and an epoch is just a vector of
//! [`QueryView`]s.
//!
//! # Why two traits
//!
//! The paper's whole premise (Figure 1, §II) is that a road-network index
//! must keep serving queries *while* it is being repaired after a traffic
//! update batch. That requires the query side and the maintenance side to be
//! separate objects with separate ownership:
//!
//! * [`QueryView`] is the **read half**: an immutable, `Send + Sync`
//!   snapshot that answers `distance(s, t)` from shared references on any
//!   number of threads. A view is frozen at a specific graph version and a
//!   specific query stage; it never observes in-flight maintenance.
//!   For anything beyond a stray single query, a thread opens a
//!   [`QuerySession`] on the view ([`QueryView::session`]) and drives its
//!   point-to-point, one-to-many, and many-to-many workloads through it —
//!   see *Sessions and batch queries* below.
//! * [`IndexMaintainer`] is the **write half**: it owns the mutable index
//!   machinery, repairs it when a batch arrives, and *publishes* a fresh
//!   `Arc<dyn QueryView>` through a [`SnapshotPublisher`] at the end of each
//!   completed update stage — the staged availability of Figure 1. Query
//!   threads atomically pick up the newest snapshot and immediately run at
//!   that stage's speed.
//!
//! The contract mirrors the paper's system model: when a batch arrives the
//! maintainer first installs the new edge weights (U-Stage 1), after which a
//! view answering exactly on the *new* weights (via index-free search) is
//! published; each further update stage releases a faster view. Every
//! published view is internally consistent — it reports the graph snapshot
//! it answers on via [`QueryView::graph`], and its answers are exact w.r.t.
//! that snapshot (no staleness, no torn reads).
//!
//! Snapshot isolation is implemented by *chunked* copy-on-write
//! ([`crate::cow`]): the heavy maintainer state — label and distance
//! tables, shortcut arrays, per-partition indexes — lives in
//! [`CowVec`](crate::cow::CowVec) / [`CowTable`](crate::cow::CowTable)
//! containers whose data sits in fixed-size chunks, each behind its own
//! [`Arc`]. Publishing a view clones only the chunk-pointer spine; a stage
//! that then repairs `k` rows clones the O(k / chunk_size) chunks those
//! rows live in, not the whole component. The per-stage snapshot-isolation
//! cost therefore tracks the **change set**, not the index size, and it is
//! *measured*: every publication carries the [`CowStats`] delta (chunks and
//! bytes actually cloned during the stage) in its [`PublishEvent`], which
//! the `QueryEngine` in `htsp-throughput` aggregates into per-stage
//! clone-telemetry tallies. When no snapshot is outstanding, chunk writes
//! are in-place and free. (Small immutable component parts — tree shape,
//! vertex orders — are plain `Arc`s; they never clone after build.)
//!
//! # Sessions and batch queries
//!
//! `QueryView::distance(&self, s, t)` is deliberately stateless: it checks a
//! scratch object out of a shared [`ScratchPool`](crate::scratch::ScratchPool)
//! for every call, which makes one-off queries trivially safe from any
//! thread but pays one pool round-trip (a mutex lock) and one
//! snapshot-lookup per query. Real traffic is not one-off: a serving thread
//! answers thousands of queries against the *same* snapshot, and much of it
//! arrives as one-to-many (one origin, many candidate destinations) or
//! many-to-many (distance matrices for dispatch/assignment problems).
//!
//! [`QuerySession`] is the per-thread object for that shape of traffic. A
//! thread calls [`QueryView::session`] **once**, which checks out the view's
//! scratch a single time; the session then owns that working memory for its
//! whole lifetime (it returns to the pool on drop) and answers
//!
//! * [`QuerySession::distance`] — point-to-point, identical answers to
//!   `QueryView::distance` without the per-call checkout;
//! * [`QuerySession::one_to_many`] — one source, a slice of targets;
//! * [`QuerySession::matrix`] — a full `sources × targets` distance
//!   matrix (many-to-many).
//!
//! The batch methods have default implementations that loop over
//! `distance`, so a correct session is one method long; views whose
//! machinery can do better override them (a Dijkstra-based view answers
//! `one_to_many` with a single truncated forward search; a CH-based view
//! runs the forward upward search once and reuses it for every target;
//! label-based views are already a per-target lookup, for which the loop
//! *is* the optimal algorithm).
//!
//! A session is pinned to its view: it never observes a newer snapshot.
//! Long-lived serving threads therefore re-open a session when the
//! [`SnapshotPublisher`] version advances — see `DistanceService` in
//! `htsp-throughput` for the reference implementation of that loop.
//!
//! # Version watching and ticket plumbing
//!
//! The publisher is also the synchronization point between writers and
//! readers. Every publication bumps a monotone version;
//! [`SnapshotPublisher::wait_for_version`] parks a thread until a target
//! version is published (condvar wakeup, not polling), which is what gives
//! update tickets their read-your-writes `wait_visible()`: the feed knows
//! the batch's first publication will be `version + 1`, so a ticket holder
//! simply waits for that version and is then guaranteed that
//! [`SnapshotPublisher::snapshot`] contains its update. Each
//! [`PublishEvent`] additionally carries the ingest-batch tag installed via
//! [`SnapshotPublisher::set_batch_tag`], so the publication log attributes
//! every staged release to the coalesced batch that caused it, and
//! [`SnapshotPublisher::cow_since`] aggregates a batch's snapshot-isolation
//! clone cost without draining the log.
//!
//! # Throughput measurement
//!
//! The harnesses in `htsp-throughput` drive a `RoadNetworkServer` through
//! update batches: the model harness measures per-stage query latency to
//! evaluate the Lemma 1 throughput bound; the `QueryEngine` additionally
//! runs real query worker threads against the published snapshots to report
//! *measured* QPS curves, in single-call and in session/batched mode; and
//! `bench-pr4` measures submit-to-visible latency against the coalescing
//! Δt.
//!
//! (The legacy single-object `&mut self` trait `DynamicSpIndex`, deprecated
//! since 0.2.0, has been removed: it serialized queries against maintenance
//! and nothing in or out of tree used it beyond its own unit test.)

use crate::cow::CowStats;
use crate::graph::Graph;
use crate::queries::Query;
use crate::types::{Dist, VertexId};
use crate::updates::UpdateBatch;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// One completed update stage: after `elapsed_in_stage` of work the stage's
/// index became available and queries can run at that stage's speed.
#[derive(Clone, Debug, PartialEq)]
pub struct StageReport {
    /// Human-readable stage name (e.g. `"U2: no-boundary shortcut update"`).
    pub name: String,
    /// Time spent inside this stage.
    pub duration: Duration,
}

/// The timeline of one maintenance round: the stage list in completion order.
#[derive(Clone, Debug, Default)]
pub struct UpdateTimeline {
    /// Stages in the order they completed.
    pub stages: Vec<StageReport>,
}

impl UpdateTimeline {
    /// Creates a timeline with a single stage (for single-stage indexes).
    pub fn single(name: impl Into<String>, duration: Duration) -> Self {
        UpdateTimeline {
            stages: vec![StageReport {
                name: name.into(),
                duration,
            }],
        }
    }

    /// Adds a stage.
    pub fn push(&mut self, name: impl Into<String>, duration: Duration) {
        self.stages.push(StageReport {
            name: name.into(),
            duration,
        });
    }

    /// Total update time `t_u`.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|s| s.duration).sum()
    }

    /// Cumulative time until the end of stage `i` (0-based).
    pub fn elapsed_until(&self, i: usize) -> Duration {
        self.stages.iter().take(i + 1).map(|s| s.duration).sum()
    }
}

/// An immutable, concurrently shareable snapshot of a shortest-distance
/// index: the **read half** of the API.
///
/// A view is pinned to one graph version and one query stage. All methods
/// take `&self`; implementations keep per-query working memory in a
/// [`ScratchPool`](crate::scratch::ScratchPool) so any number of threads can
/// query one view simultaneously. The trait is object-safe: maintainers
/// publish `Arc<dyn QueryView>` snapshots.
///
/// `distance(&self, ..)` is the convenience path for stray single queries;
/// serving threads open a [`QuerySession`] via [`QueryView::session`] and
/// run their (possibly batched) workload through it — same answers, scratch
/// checked out once instead of per call, plus one-to-many and matrix
/// queries.
pub trait QueryView: Send + Sync {
    /// Short algorithm name used in experiment tables (e.g. `"PostMHL"`).
    fn algorithm(&self) -> &'static str;

    /// The 0-based query stage this view serves
    /// (`IndexMaintainer::num_query_stages() - 1` = fully repaired).
    fn stage(&self) -> usize;

    /// Answers `q(s, t)` exactly on this view's graph snapshot.
    fn distance(&self, s: VertexId, t: VertexId) -> Dist;

    /// Opens a per-thread query session on this view.
    ///
    /// The session owns its search scratch (checked out of the view's pool
    /// once, returned when the session drops) and is pinned to this view's
    /// graph version and query stage for its whole lifetime. One session
    /// serves one thread; any number of sessions can be open on one view at
    /// the same time.
    fn session(&self) -> Box<dyn QuerySession + '_>;

    /// The graph snapshot this view answers on. Every answer of
    /// [`QueryView::distance`] equals a fresh Dijkstra run on this graph.
    fn graph(&self) -> &Graph;

    /// Approximate index size in bytes (0 for index-free views).
    fn index_size_bytes(&self) -> usize {
        0
    }

    /// Convenience: answers a [`Query`].
    fn query(&self, q: &Query) -> Dist {
        self.distance(q.source, q.target)
    }
}

/// A per-thread query session over one frozen [`QueryView`]: the hot path
/// for point-to-point, one-to-many, and many-to-many (matrix) workloads.
///
/// Methods take `&mut self` because the session *owns* its working memory:
/// the distance arrays, heaps, and visited flags a search needs live inside
/// the session instead of being checked out of a
/// [`ScratchPool`](crate::scratch::ScratchPool) per query. Every answer is
/// exact on the session's view (and therefore on that view's
/// [`QueryView::graph`] snapshot) — a session never observes maintenance
/// that happened after its view was published.
///
/// The batch methods default to looping over [`QuerySession::distance`],
/// so implementing `distance` alone yields a correct session;
/// implementations override them when the underlying machinery can share
/// work across targets.
pub trait QuerySession {
    /// Answers `q(s, t)` exactly on the session's graph snapshot.
    fn distance(&mut self, s: VertexId, t: VertexId) -> Dist;

    /// Answers `q(source, t)` for every `t` in `targets` (same order).
    ///
    /// Equivalent to calling [`QuerySession::distance`] per target;
    /// implementations override it when one source-side search can be
    /// shared across all targets.
    fn one_to_many(&mut self, source: VertexId, targets: &[VertexId]) -> Vec<Dist> {
        targets.iter().map(|&t| self.distance(source, t)).collect()
    }

    /// Answers the full `sources × targets` distance matrix; row `i` holds
    /// the distances from `sources[i]` in target order.
    fn matrix(&mut self, sources: &[VertexId], targets: &[VertexId]) -> Vec<Vec<Dist>> {
        sources
            .iter()
            .map(|&s| self.one_to_many(s, targets))
            .collect()
    }

    /// Convenience: answers a [`Query`].
    fn query(&mut self, q: &Query) -> Dist {
        self.distance(q.source, q.target)
    }
}

/// The do-nothing-smarter session: forwards every `distance` to the view's
/// shared-reference path.
///
/// The right session for views whose `distance` needs no scratch at all
/// (pure label lookups like DH2H — a per-target label scan is already the
/// optimal one-to-many algorithm there). Views that *do* check scratch per
/// call should implement a session that owns the scratch instead.
pub struct FallbackSession<'a> {
    view: &'a dyn QueryView,
}

impl<'a> FallbackSession<'a> {
    /// Wraps `view`.
    pub fn new(view: &'a dyn QueryView) -> Self {
        FallbackSession { view }
    }
}

impl QuerySession for FallbackSession<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Dist {
        self.view.distance(s, t)
    }
}

/// A callback invoked after every publication (see
/// [`SnapshotPublisher::on_publish`]).
pub type PublishHook = Arc<dyn Fn(&PublishEvent) + Send + Sync>;

/// The channel through which a maintainer publishes snapshots and query
/// threads pick them up.
///
/// `publish` atomically replaces the current snapshot; `snapshot` hands any
/// thread an owned `Arc` of the newest view. A monotonically increasing
/// version and a publication log (instants + stages) let the measurement
/// harness correlate observed throughput with stage availability.
pub struct SnapshotPublisher {
    slot: RwLock<Arc<dyn QueryView>>,
    version: AtomicU64,
    log: Mutex<Vec<PublishEvent>>,
    /// Ingest-batch tag stamped onto every publication (see
    /// [`SnapshotPublisher::set_batch_tag`]).
    batch_tag: AtomicU64,
    /// Version mirror + condvar backing [`SnapshotPublisher::wait_for_version`].
    watch: Mutex<u64>,
    watch_cv: Condvar,
    /// Subscribers notified after every publication (see
    /// [`SnapshotPublisher::on_publish`]).
    hooks: Mutex<Vec<PublishHook>>,
}

/// One publication: which stage became available, when, and what the stage's
/// repair cost in snapshot-isolation clones.
#[derive(Clone, Copy, Debug)]
pub struct PublishEvent {
    /// When the snapshot was published.
    pub at: Instant,
    /// The query stage of the published view.
    pub stage: usize,
    /// Publisher version right after this publication.
    pub version: u64,
    /// The ingest batch this publication belongs to: the tag installed by
    /// [`SnapshotPublisher::set_batch_tag`] before the maintainer ran (0 when
    /// no ingest pipeline tagged the publisher — e.g. a directly driven
    /// maintainer). Lets update tickets and benches attribute staged
    /// publications to the coalesced batch that caused them.
    pub batch: u64,
    /// Copy-on-write chunks/bytes the maintainer cloned while producing this
    /// stage (zero when published via [`SnapshotPublisher::publish`], which
    /// carries no telemetry).
    pub cow: CowStats,
}

impl SnapshotPublisher {
    /// Publication-log retention bound: the oldest events are dropped once
    /// the undrained log exceeds this many entries, so a publisher serving
    /// indefinitely (no harness calling [`SnapshotPublisher::take_log`])
    /// uses bounded memory. Harness runs drain per batch/run and stay far
    /// below this.
    pub const MAX_LOG_EVENTS: usize = 4096;

    /// Creates a publisher holding `initial` as the current snapshot.
    pub fn new(initial: Arc<dyn QueryView>) -> Self {
        SnapshotPublisher {
            slot: RwLock::new(initial),
            version: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
            batch_tag: AtomicU64::new(0),
            watch: Mutex::new(0),
            watch_cv: Condvar::new(),
            hooks: Mutex::new(Vec::new()),
        }
    }

    /// Registers a callback that runs after every publication, with the
    /// published [`PublishEvent`].
    ///
    /// This is the epoch plumbing for version-aware consumers (the
    /// `DistanceCache` in `htsp-throughput` invalidates its entries through
    /// it): a hook observes every version bump without polling or draining
    /// the log. Hooks run on the publishing (maintenance) thread *after* the
    /// snapshot slot and version watch have been updated, so a hook that
    /// reads [`SnapshotPublisher::snapshot`] sees a view at least as new as
    /// its event (the hook list is snapshotted before invocation, so a hook
    /// may even register further hooks or publish itself without
    /// deadlocking — though a self-publishing hook must terminate the
    /// recursion). Keep hooks cheap — they extend the publication path —
    /// and order-tolerant: two racing publishers may deliver their events
    /// to a hook in either order (consumers should fold events
    /// monotonically, e.g. with a `fetch_max` on the version).
    pub fn on_publish(&self, hook: impl Fn(&PublishEvent) + Send + Sync + 'static) {
        self.hooks
            .lock()
            .expect("publisher hooks poisoned")
            .push(Arc::new(hook));
    }

    /// Atomically replaces the current snapshot (called by the maintainer at
    /// the end of each completed update stage).
    ///
    /// The version bump, the event timestamp, and the log append all happen
    /// while the slot write lock is held, so concurrent publishers cannot
    /// produce log events whose `version` order disagrees with their `at`
    /// order (or with the log's own order).
    pub fn publish(&self, view: Arc<dyn QueryView>) {
        self.publish_with_cow(view, CowStats::default());
    }

    /// Like [`SnapshotPublisher::publish`], but records the copy-on-write
    /// clone effort (`cow`) the maintainer spent producing this stage — the
    /// [`CowStats::since`] delta of its component counters — in the
    /// publication log for the measurement harness.
    pub fn publish_with_cow(&self, view: Arc<dyn QueryView>, cow: CowStats) {
        let stage = view.stage();
        let event;
        {
            let mut slot = self.slot.write().expect("publisher poisoned");
            *slot = view;
            let version = self.version.fetch_add(1, Ordering::AcqRel) + 1;
            event = PublishEvent {
                at: Instant::now(),
                stage,
                version,
                batch: self.batch_tag.load(Ordering::Acquire),
                cow,
            };
            {
                let mut log = self.log.lock().expect("publisher log poisoned");
                log.push(event);
                // Long-lived servers publish forever and may never drain the
                // log; cap it so memory (and `cow_since` scans) stay bounded.
                // The measurement harnesses drain far below the cap.
                if log.len() > Self::MAX_LOG_EVENTS {
                    let excess = log.len() - Self::MAX_LOG_EVENTS;
                    log.drain(..excess);
                }
            }
            // Wake version watchers. The mirror is updated while the slot
            // write lock is still held, so a waiter released by this
            // publication observes the new snapshot through `snapshot()`.
            *self.watch.lock().expect("publisher watch poisoned") = event.version;
            self.watch_cv.notify_all();
        }
        // Hooks run after the slot lock is released, on a snapshot of the
        // hook list (so a hook may read the publisher or register further
        // hooks without deadlocking); racing publishers may therefore
        // deliver events out of version order (see `on_publish`).
        let hooks: Vec<PublishHook> = self.hooks.lock().expect("publisher hooks poisoned").clone();
        for hook in &hooks {
            hook(&event);
        }
    }

    /// Returns an owned handle to the newest snapshot.
    pub fn snapshot(&self) -> Arc<dyn QueryView> {
        Arc::clone(&self.slot.read().expect("publisher poisoned"))
    }

    /// Returns the newest snapshot together with the version it was
    /// published under, read atomically (both under the slot read lock, and
    /// `publish` updates both under the write lock).
    ///
    /// Session-pinning loops need this pairing: reading `snapshot()` and
    /// `version()` separately can interleave with a publish and tag the old
    /// view with the new version, which would suppress the re-pin.
    pub fn versioned_snapshot(&self) -> (u64, Arc<dyn QueryView>) {
        let slot = self.slot.read().expect("publisher poisoned");
        (self.version.load(Ordering::Acquire), Arc::clone(&slot))
    }

    /// Number of publications so far.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Drains and returns the publication log (at most the newest
    /// [`SnapshotPublisher::MAX_LOG_EVENTS`] events — older ones are
    /// discarded at publish time if nobody drains).
    pub fn take_log(&self) -> Vec<PublishEvent> {
        std::mem::take(&mut self.log.lock().expect("publisher log poisoned"))
    }

    /// Blocks until at least `version` publications have happened.
    ///
    /// Returns immediately when the publisher is already at (or past)
    /// `version`. This is the primitive behind update tickets'
    /// `wait_visible()`: a waiter released by the publication of `version`
    /// is guaranteed to see a snapshot at least that new from
    /// [`SnapshotPublisher::snapshot`] — no polling loop required.
    pub fn wait_for_version(&self, version: u64) {
        let mut seen = self.watch.lock().expect("publisher watch poisoned");
        while *seen < version {
            seen = self.watch_cv.wait(seen).expect("publisher watch poisoned");
        }
    }

    /// Like [`SnapshotPublisher::wait_for_version`], but gives up after
    /// `timeout`. Returns `true` when the version was reached.
    pub fn wait_for_version_timeout(&self, version: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut seen = self.watch.lock().expect("publisher watch poisoned");
        while *seen < version {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .watch_cv
                .wait_timeout(seen, deadline - now)
                .expect("publisher watch poisoned");
            seen = guard;
        }
        true
    }

    /// Installs the ingest-batch tag stamped onto subsequent publications
    /// (see [`PublishEvent::batch`]). Called by the update feed's
    /// maintenance thread before it hands a coalesced batch to the
    /// maintainer, so every staged publication of that repair is
    /// attributable to the batch.
    pub fn set_batch_tag(&self, batch: u64) {
        self.batch_tag.store(batch, Ordering::Release);
    }

    /// Sums the copy-on-write clone telemetry of all logged publications
    /// newer than `version`, without draining the log. Used by the update
    /// feed to attach the snapshot-isolation price of one coalesced batch to
    /// its tickets while leaving the log for the measurement harnesses.
    pub fn cow_since(&self, version: u64) -> CowStats {
        self.log
            .lock()
            .expect("publisher log poisoned")
            .iter()
            .filter(|e| e.version > version)
            .fold(CowStats::default(), |acc, e| acc.plus(e.cow))
    }
}

impl std::fmt::Debug for SnapshotPublisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotPublisher")
            .field("version", &self.version())
            .finish()
    }
}

/// The **write half** of the API: owns the mutable index machinery and
/// repairs it after each update batch, publishing staged snapshots.
///
/// The contract (mirroring §II and Figure 1 of the paper):
///
/// 1. `apply_batch(graph, batch, publisher)` is called once per batch with
///    the already-updated global graph and the batch itself. The maintainer
///    installs the new weights in its own graph copy (U-Stage 1) and then
///    runs its repair stages in order.
/// 2. At the end of every completed stage that releases new (or faster)
///    query machinery, the maintainer calls [`SnapshotPublisher::publish`]
///    with a view that answers exactly on the new weights.
/// 3. Between publications the previously published snapshot stays valid —
///    query threads keep using it; they are never blocked and never observe
///    a half-repaired index.
pub trait IndexMaintainer: Send {
    /// Short algorithm name used in experiment tables (e.g. `"PostMHL"`).
    fn name(&self) -> &'static str;

    /// Number of query stages this index exposes (1 for single-stage
    /// indexes).
    fn num_query_stages(&self) -> usize {
        1
    }

    /// Repairs the index after `batch` has been applied to `graph`,
    /// publishing a snapshot at the end of each completed stage. Returns the
    /// staged availability timeline.
    fn apply_batch(
        &mut self,
        graph: &Graph,
        batch: &UpdateBatch,
        publisher: &SnapshotPublisher,
    ) -> UpdateTimeline;

    /// A snapshot of the fastest fully-repaired query machinery.
    fn current_view(&self) -> Arc<dyn QueryView>;

    /// A snapshot using the machinery of query stage `stage` (0-based) over
    /// the *current* (fully repaired) data — used by the harness to measure
    /// each stage's query speed. Single-stage indexes ignore `stage`.
    fn view_at_stage(&self, stage: usize) -> Arc<dyn QueryView> {
        let _ = stage;
        self.current_view()
    }

    /// Approximate index size in bytes (0 for index-free algorithms).
    fn index_size_bytes(&self) -> usize {
        0
    }

    /// Serializes the built index state for the snapshot file
    /// ([`crate::snapshot`]), or `None` when the index is cheap enough to
    /// rebuild deterministically from graph + build parameters (the default).
    ///
    /// The encoding is opaque to the snapshot container; the algorithm
    /// registry in `htsp-throughput` routes the bytes back to the matching
    /// restore constructor on warm restart.
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Per-component heap footprint `(component, bytes)` for the
    /// `htsp_storage_bytes{component=}` gauges. Defaults to a single
    /// `"index"` entry of [`IndexMaintainer::index_size_bytes`].
    fn storage_bytes(&self) -> Vec<(&'static str, usize)> {
        vec![("index", self.index_size_bytes())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_accumulates() {
        let mut t = UpdateTimeline::default();
        t.push("a", Duration::from_millis(5));
        t.push("b", Duration::from_millis(7));
        assert_eq!(t.total(), Duration::from_millis(12));
        assert_eq!(t.elapsed_until(0), Duration::from_millis(5));
        assert_eq!(t.elapsed_until(1), Duration::from_millis(12));
        assert_eq!(t.stages.len(), 2);
    }

    #[test]
    fn single_stage_timeline() {
        let t = UpdateTimeline::single("only", Duration::from_micros(3));
        assert_eq!(t.stages.len(), 1);
        assert_eq!(t.total(), Duration::from_micros(3));
    }

    /// A constant view for exercising the publisher.
    struct Fixed {
        stage: usize,
        graph: Graph,
    }

    impl QueryView for Fixed {
        fn algorithm(&self) -> &'static str {
            "fixed"
        }
        fn stage(&self) -> usize {
            self.stage
        }
        fn distance(&self, _s: VertexId, _t: VertexId) -> Dist {
            Dist(self.stage as u32)
        }
        fn session(&self) -> Box<dyn QuerySession + '_> {
            Box::new(FallbackSession::new(self))
        }
        fn graph(&self) -> &Graph {
            &self.graph
        }
    }

    fn tiny_graph() -> Graph {
        let mut b = crate::graph::GraphBuilder::new(2);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.build()
    }

    #[test]
    fn publisher_swaps_snapshots_and_logs() {
        let publisher = SnapshotPublisher::new(Arc::new(Fixed {
            stage: 0,
            graph: tiny_graph(),
        }));
        assert_eq!(publisher.version(), 0);
        assert_eq!(publisher.snapshot().stage(), 0);

        publisher.publish(Arc::new(Fixed {
            stage: 1,
            graph: tiny_graph(),
        }));
        assert_eq!(publisher.version(), 1);
        assert_eq!(publisher.snapshot().stage(), 1);
        assert_eq!(
            publisher.snapshot().distance(VertexId(0), VertexId(1)),
            Dist(1)
        );

        let log = publisher.take_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].stage, 1);
        assert_eq!(log[0].version, 1);
        assert!(publisher.take_log().is_empty());
    }

    #[test]
    fn session_defaults_loop_over_distance() {
        let view = Fixed {
            stage: 3,
            graph: tiny_graph(),
        };
        let mut session = view.session();
        assert_eq!(session.distance(VertexId(0), VertexId(1)), Dist(3));
        assert_eq!(
            session.one_to_many(VertexId(0), &[VertexId(0), VertexId(1)]),
            vec![Dist(3), Dist(3)]
        );
        let m = session.matrix(&[VertexId(0), VertexId(1)], &[VertexId(0)]);
        assert_eq!(m, vec![vec![Dist(3)], vec![Dist(3)]]);
        assert_eq!(
            session.query(&Query::new(VertexId(0), VertexId(1))),
            Dist(3)
        );
    }

    #[test]
    fn racing_publishers_log_versions_in_timestamp_order() {
        // Two threads publish concurrently; the log must never show a higher
        // version with an earlier timestamp (the `at` is taken while the
        // slot write lock is held).
        let publisher = SnapshotPublisher::new(Arc::new(Fixed {
            stage: 0,
            graph: tiny_graph(),
        }));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let publisher = &publisher;
                scope.spawn(move || {
                    for stage in 0..50 {
                        publisher.publish(Arc::new(Fixed {
                            stage,
                            graph: tiny_graph(),
                        }));
                    }
                });
            }
        });
        let log = publisher.take_log();
        assert_eq!(log.len(), 200);
        for pair in log.windows(2) {
            assert_eq!(pair[1].version, pair[0].version + 1, "log out of order");
            assert!(
                pair[0].at <= pair[1].at,
                "version {} logged at a later instant than version {}",
                pair[0].version,
                pair[1].version
            );
        }
    }

    #[test]
    fn publish_with_cow_lands_in_the_log() {
        let publisher = SnapshotPublisher::new(Arc::new(Fixed {
            stage: 0,
            graph: tiny_graph(),
        }));
        publisher.publish(Arc::new(Fixed {
            stage: 1,
            graph: tiny_graph(),
        }));
        publisher.publish_with_cow(
            Arc::new(Fixed {
                stage: 2,
                graph: tiny_graph(),
            }),
            CowStats {
                chunks_cloned: 3,
                bytes_cloned: 4096,
            },
        );
        let log = publisher.take_log();
        assert_eq!(log.len(), 2);
        assert!(log[0].cow.is_zero(), "plain publish carries no telemetry");
        assert_eq!(log[1].cow.chunks_cloned, 3);
        assert_eq!(log[1].cow.bytes_cloned, 4096);
    }

    #[test]
    fn wait_for_version_wakes_watchers_without_polling() {
        let publisher = Arc::new(SnapshotPublisher::new(Arc::new(Fixed {
            stage: 0,
            graph: tiny_graph(),
        })));
        // Already-satisfied waits return immediately.
        publisher.wait_for_version(0);
        assert!(publisher.wait_for_version_timeout(0, Duration::from_millis(1)));
        // A watcher parked on a future version is released by the publish
        // and observes a snapshot at least that new.
        let waiter = {
            let publisher = Arc::clone(&publisher);
            std::thread::spawn(move || {
                publisher.wait_for_version(2);
                publisher.snapshot().stage()
            })
        };
        publisher.publish(Arc::new(Fixed {
            stage: 1,
            graph: tiny_graph(),
        }));
        publisher.publish(Arc::new(Fixed {
            stage: 2,
            graph: tiny_graph(),
        }));
        assert!(waiter.join().expect("waiter panicked") >= 2);
        // A timeout on a version that never arrives reports false.
        assert!(!publisher.wait_for_version_timeout(99, Duration::from_millis(10)));
    }

    #[test]
    fn publications_carry_the_installed_batch_tag() {
        let publisher = SnapshotPublisher::new(Arc::new(Fixed {
            stage: 0,
            graph: tiny_graph(),
        }));
        publisher.publish(Arc::new(Fixed {
            stage: 0,
            graph: tiny_graph(),
        }));
        publisher.set_batch_tag(7);
        publisher.publish_with_cow(
            Arc::new(Fixed {
                stage: 1,
                graph: tiny_graph(),
            }),
            CowStats {
                chunks_cloned: 1,
                bytes_cloned: 64,
            },
        );
        publisher.publish(Arc::new(Fixed {
            stage: 2,
            graph: tiny_graph(),
        }));
        // cow_since sums without draining.
        assert_eq!(publisher.cow_since(1).bytes_cloned, 64);
        assert_eq!(publisher.cow_since(2).bytes_cloned, 0);
        let log = publisher.take_log();
        assert_eq!(log[0].batch, 0, "pre-tag publication is untagged");
        assert_eq!(log[1].batch, 7);
        assert_eq!(log[2].batch, 7, "tag persists until replaced");
    }

    #[test]
    fn publish_hooks_observe_every_publication() {
        use std::sync::atomic::AtomicU64;
        let publisher = SnapshotPublisher::new(Arc::new(Fixed {
            stage: 0,
            graph: tiny_graph(),
        }));
        let seen = Arc::new(AtomicU64::new(0));
        let max_version = Arc::new(AtomicU64::new(0));
        {
            let seen = Arc::clone(&seen);
            let max_version = Arc::clone(&max_version);
            publisher.on_publish(move |e| {
                seen.fetch_add(1, Ordering::Relaxed);
                max_version.fetch_max(e.version, Ordering::Relaxed);
            });
        }
        publisher.set_batch_tag(3);
        for stage in 0..5 {
            publisher.publish(Arc::new(Fixed {
                stage,
                graph: tiny_graph(),
            }));
        }
        assert_eq!(seen.load(Ordering::Relaxed), 5);
        assert_eq!(max_version.load(Ordering::Relaxed), publisher.version());
    }

    #[test]
    fn a_hook_may_register_further_hooks_without_deadlocking() {
        use std::sync::atomic::AtomicU64;
        let publisher = Arc::new(SnapshotPublisher::new(Arc::new(Fixed {
            stage: 0,
            graph: tiny_graph(),
        })));
        let nested_fires = Arc::new(AtomicU64::new(0));
        {
            let publisher = Arc::clone(&publisher);
            let nested_fires = Arc::clone(&nested_fires);
            let registered = Arc::new(std::sync::atomic::AtomicBool::new(false));
            publisher.clone().on_publish(move |_| {
                // Re-entrant registration: the hook list is snapshotted
                // before invocation, so this must not deadlock.
                if !registered.swap(true, Ordering::Relaxed) {
                    let nested_fires = Arc::clone(&nested_fires);
                    publisher.on_publish(move |_| {
                        nested_fires.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        publisher.publish(Arc::new(Fixed {
            stage: 1,
            graph: tiny_graph(),
        }));
        publisher.publish(Arc::new(Fixed {
            stage: 2,
            graph: tiny_graph(),
        }));
        assert_eq!(
            nested_fires.load(Ordering::Relaxed),
            1,
            "the hook registered by the first publication must fire on the second"
        );
    }

    #[test]
    fn query_view_is_object_safe_send_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn QueryView>();
        // Snapshots can be shared across threads.
        let view: Arc<dyn QueryView> = Arc::new(Fixed {
            stage: 0,
            graph: tiny_graph(),
        });
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let v = Arc::clone(&view);
                scope.spawn(move || {
                    assert_eq!(v.distance(VertexId(0), VertexId(1)), Dist(0));
                });
            }
        });
    }
}
