//! The common interface implemented by every dynamic shortest-distance index
//! in this repository (BiDijkstra, DCH, DH2H, N-CH-P, P-TD-P, TOAIN, PMHL,
//! PostMHL).
//!
//! The throughput harness (crate `htsp-throughput`) drives all algorithms
//! through this trait: it applies an update batch, observes the *staged*
//! availability timeline the index reports (Figure 1 of the paper), measures
//! per-stage query latency, and feeds both into the throughput model of
//! Lemma 1.

use crate::graph::Graph;
use crate::queries::Query;
use crate::types::{Dist, VertexId};
use crate::updates::UpdateBatch;
use std::time::Duration;

/// One completed update stage: after `elapsed_in_stage` of work the stage's
/// index became available and queries can run at that stage's speed.
#[derive(Clone, Debug, PartialEq)]
pub struct StageReport {
    /// Human-readable stage name (e.g. `"U2: no-boundary shortcut update"`).
    pub name: String,
    /// Time spent inside this stage.
    pub duration: Duration,
}

/// The timeline of one maintenance round: the stage list in completion order.
#[derive(Clone, Debug, Default)]
pub struct UpdateTimeline {
    /// Stages in the order they completed.
    pub stages: Vec<StageReport>,
}

impl UpdateTimeline {
    /// Creates a timeline with a single stage (for single-stage indexes).
    pub fn single(name: impl Into<String>, duration: Duration) -> Self {
        UpdateTimeline {
            stages: vec![StageReport {
                name: name.into(),
                duration,
            }],
        }
    }

    /// Adds a stage.
    pub fn push(&mut self, name: impl Into<String>, duration: Duration) {
        self.stages.push(StageReport {
            name: name.into(),
            duration,
        });
    }

    /// Total update time `t_u`.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|s| s.duration).sum()
    }

    /// Cumulative time until the end of stage `i` (0-based).
    pub fn elapsed_until(&self, i: usize) -> Duration {
        self.stages.iter().take(i + 1).map(|s| s.duration).sum()
    }
}

/// A dynamic shortest-distance index driven by the throughput harness.
///
/// The contract mirrors the paper's system model (§II): when a batch arrives
/// the caller first applies it to the graph (U-Stage 1 happens inside
/// [`DynamicSpIndex::apply_batch`] implementations that need it), then the
/// index repairs itself; queries issued afterwards must reflect the new
/// weights exactly (no staleness).
pub trait DynamicSpIndex {
    /// Short algorithm name used in experiment tables (e.g. `"PostMHL"`).
    fn name(&self) -> &'static str;

    /// Repairs the index after `batch` has been applied to `graph`.
    /// Returns the staged availability timeline.
    fn apply_batch(&mut self, graph: &Graph, batch: &UpdateBatch) -> UpdateTimeline;

    /// Number of query stages this index exposes (1 for single-stage indexes).
    fn num_query_stages(&self) -> usize {
        1
    }

    /// Answers `q(s, t)` with the fastest fully-updated machinery (the final
    /// query stage).
    fn distance(&mut self, graph: &Graph, s: VertexId, t: VertexId) -> Dist;

    /// Answers `q(s, t)` using the machinery available at query stage `stage`
    /// (0-based; stage `num_query_stages() - 1` equals [`Self::distance`]).
    ///
    /// Single-stage indexes ignore `stage`.
    fn distance_at_stage(
        &mut self,
        graph: &Graph,
        stage: usize,
        s: VertexId,
        t: VertexId,
    ) -> Dist {
        let _ = stage;
        self.distance(graph, s, t)
    }

    /// Approximate index size in bytes (0 for index-free algorithms).
    fn index_size_bytes(&self) -> usize {
        0
    }

    /// Convenience: answers a [`Query`].
    fn query(&mut self, graph: &Graph, q: &Query) -> Dist {
        self.distance(graph, q.source, q.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_accumulates() {
        let mut t = UpdateTimeline::default();
        t.push("a", Duration::from_millis(5));
        t.push("b", Duration::from_millis(7));
        assert_eq!(t.total(), Duration::from_millis(12));
        assert_eq!(t.elapsed_until(0), Duration::from_millis(5));
        assert_eq!(t.elapsed_until(1), Duration::from_millis(12));
        assert_eq!(t.stages.len(), 2);
    }

    #[test]
    fn single_stage_timeline() {
        let t = UpdateTimeline::single("only", Duration::from_micros(3));
        assert_eq!(t.stages.len(), 1);
        assert_eq!(t.total(), Duration::from_micros(3));
    }
}
