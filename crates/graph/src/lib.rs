//! # htsp-graph
//!
//! Dynamic weighted road-network graph model used by every index in the HTSP
//! reproduction (PMHL, PostMHL, and all baselines).
//!
//! The crate provides:
//!
//! * [`Graph`] — an undirected, positively weighted graph with adjacency-list
//!   storage, mutable edge weights, and O(deg) weight lookup. Vertices are
//!   compact [`VertexId`]s (`u32`), distances are [`Dist`]s (`u32` with a
//!   saturating `INF` sentinel), matching the paper's model in §II.
//! * [`updates`] — edge-weight *increase* / *decrease* update batches
//!   ([`UpdateBatch`]) and a seeded random generator following the paper's
//!   protocol (§VII-A: pick edges uniformly, halve or double their weight).
//! * [`gen`] — synthetic road-like network generators (grid, ring-radial city
//!   model, random geometric graph) used as laptop-scale substitutes for the
//!   DIMACS / NavInfo datasets of Table I.
//! * [`dimacs`] — a reader/writer for the DIMACS `.gr` format so the real
//!   datasets can be dropped in when available, including a streaming loader
//!   that builds CSR storage without an adjacency-list intermediate.
//! * [`storage`] — the flat large-graph layer: [`CsrGraph`]
//!   (struct-of-arrays CSR with per-block lossless weight quantization) and
//!   the [`Adjacency`] trait the index-free searches are generic over.
//! * [`snapshot`] — the versioned, checksummed index-snapshot wire format
//!   ([`IndexSnapshot`], [`ByteWriter`]/[`ByteReader`]) behind
//!   `save_snapshot`/`load_snapshot` warm restarts in `htsp-throughput`.
//! * [`queries`] — shortest-distance query workloads: uniform random pairs and
//!   Poisson-process arrival timestamps (§II system model).
//! * [`index_api`] — the read/write index API: immutable, thread-safe
//!   [`QueryView`] snapshots published by an [`IndexMaintainer`] through a
//!   [`SnapshotPublisher`] at the end of each completed update stage
//!   (Figure 1). Serving threads open a per-thread [`QuerySession`] on a
//!   view for point-to-point, one-to-many, and matrix workloads.
//! * [`cow`] — the chunked copy-on-write storage layer ([`CowVec`],
//!   [`CowTable`]) that snapshot isolation rides on: whole-structure clones
//!   are chunk-pointer copies, element writes clone at most one chunk, and
//!   per-lineage [`CowStats`] counters report the chunks/bytes each
//!   maintenance stage actually copied.
//! * [`obs`] — the observability contract ([`TraceId`], [`SpanSink`]): the
//!   trace-id and span-recording vocabulary pipeline hooks use to report
//!   where time went, implemented by the serving tier's telemetry hub.
//! * [`par`] — the scoped construction [`WorkerPool`]: deterministic
//!   fork/join parallelism (index-ordered results, disjoint mutable chunks)
//!   with per-stage wall-clock accounting, used by every parallel index
//!   build in the workspace.
//! * [`scratch`] — the [`ScratchPool`] that lets one immutable view serve
//!   many query threads, each with its own search working memory; sessions
//!   hold a [`ScratchGuard`] over it for their whole lifetime.
//!
//! # Quick example
//!
//! ```
//! use htsp_graph::{gen, Graph, VertexId};
//!
//! // An 8x8 grid road network with travel-time weights in [1, 10].
//! let g: Graph = gen::grid(8, 8, gen::WeightRange::new(1, 10), 42);
//! assert_eq!(g.num_vertices(), 64);
//! assert!(g.num_edges() > 0);
//! let v = VertexId(0);
//! assert!(g.degree(v) >= 2);
//! ```

#![warn(missing_docs)]

pub mod cow;
pub mod dimacs;
pub mod gen;
pub mod graph;
pub mod index_api;
pub mod obs;
pub mod par;
pub mod queries;
pub mod scratch;
pub mod snapshot;
pub mod storage;
pub mod types;
pub mod updates;

pub use cow::{CowStats, CowTable, CowVec, RowRead};
pub use graph::{Graph, GraphBuilder, NeighborIter};
pub use index_api::{
    FallbackSession, IndexMaintainer, PublishEvent, PublishHook, QuerySession, QueryView,
    SnapshotPublisher, StageReport, UpdateTimeline,
};
pub use obs::{NullSink, SpanSink, TraceId};
pub use par::{available_parallelism, StageStats, WorkerPool};
pub use queries::{Query, QuerySet, QueryWorkload};
pub use scratch::{ScratchGuard, ScratchPool};
pub use snapshot::{ByteReader, ByteWriter, IndexSnapshot, SnapshotError};
pub use storage::{Adjacency, CsrFootprint, CsrGraph};
pub use types::{Dist, EdgeId, VertexId, Weight, INF};
pub use updates::{EdgeUpdate, UpdateBatch, UpdateGenerator, UpdateKind};
