//! Edge-weight update batches.
//!
//! The paper's system model (§II) collects graph changes into a batch `U`
//! every `δt` seconds; each change is an edge-weight *increase* or *decrease*
//! (the topology never changes). The evaluation (§VII-A) generates batches by
//! selecting edges uniformly at random and either halving (`0.5×`) or doubling
//! (`2×`) their weight — [`UpdateGenerator`] reproduces that protocol.

use crate::graph::Graph;
use crate::types::{EdgeId, Weight};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The direction of a weight change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UpdateKind {
    /// The edge weight decreased (shortest distances can only shrink).
    Decrease,
    /// The edge weight increased (shortest distances can only grow).
    Increase,
    /// The new weight equals the old weight (no-op; kept for bookkeeping).
    Unchanged,
}

/// A single edge-weight update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeUpdate {
    /// The edge whose weight changes.
    pub edge: EdgeId,
    /// The weight before the update.
    pub old_weight: Weight,
    /// The weight after the update.
    pub new_weight: Weight,
}

impl EdgeUpdate {
    /// Creates a new update record.
    pub fn new(edge: EdgeId, old_weight: Weight, new_weight: Weight) -> Self {
        EdgeUpdate {
            edge,
            old_weight,
            new_weight,
        }
    }

    /// Classifies the update as increase / decrease / unchanged.
    pub fn kind(&self) -> UpdateKind {
        use std::cmp::Ordering::*;
        match self.new_weight.cmp(&self.old_weight) {
            Less => UpdateKind::Decrease,
            Greater => UpdateKind::Increase,
            Equal => UpdateKind::Unchanged,
        }
    }
}

/// A batch of edge-weight updates collected over one update interval `δt`.
#[derive(Clone, Debug, Default)]
pub struct UpdateBatch {
    updates: Vec<EdgeUpdate>,
}

impl UpdateBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        UpdateBatch {
            updates: Vec::new(),
        }
    }

    /// Creates a batch from a list of updates.
    pub fn from_updates(updates: Vec<EdgeUpdate>) -> Self {
        UpdateBatch { updates }
    }

    /// Appends an update.
    pub fn push(&mut self, u: EdgeUpdate) {
        self.updates.push(u);
    }

    /// Number of updates in the batch (`|U|` in the paper).
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Returns `true` if the batch contains no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Iterator over the updates.
    pub fn iter(&self) -> impl Iterator<Item = &EdgeUpdate> {
        self.updates.iter()
    }

    /// Slice view of the updates.
    pub fn as_slice(&self) -> &[EdgeUpdate] {
        &self.updates
    }

    /// Counts `(decreases, increases)` in the batch.
    pub fn counts(&self) -> (usize, usize) {
        let mut dec = 0;
        let mut inc = 0;
        for u in &self.updates {
            match u.kind() {
                UpdateKind::Decrease => dec += 1,
                UpdateKind::Increase => inc += 1,
                UpdateKind::Unchanged => {}
            }
        }
        (dec, inc)
    }

    /// Splits the batch into `(decrease_only, increase_only)` sub-batches.
    ///
    /// DCH and DH2H maintenance handle the two directions with different
    /// algorithms (§III), so indexes typically process all decreases first and
    /// then all increases.
    pub fn split_by_kind(&self) -> (UpdateBatch, UpdateBatch) {
        let mut dec = UpdateBatch::new();
        let mut inc = UpdateBatch::new();
        for &u in &self.updates {
            match u.kind() {
                UpdateKind::Decrease => dec.push(u),
                UpdateKind::Increase => inc.push(u),
                UpdateKind::Unchanged => {}
            }
        }
        (dec, inc)
    }
}

impl<'a> IntoIterator for &'a UpdateBatch {
    type Item = &'a EdgeUpdate;
    type IntoIter = std::slice::Iter<'a, EdgeUpdate>;

    fn into_iter(self) -> Self::IntoIter {
        self.updates.iter()
    }
}

/// Seeded generator of random update batches following the paper's protocol.
///
/// For each batch, `|U|` distinct edges are drawn uniformly at random; each
/// drawn edge's weight is set to `max(1, w/2)` with probability
/// `decrease_fraction` and to `min(2·w, cap)` otherwise.
#[derive(Clone, Debug)]
pub struct UpdateGenerator {
    rng: ChaCha8Rng,
    /// Probability that a selected edge receives a *decrease* update.
    pub decrease_fraction: f64,
    /// Upper clamp applied to increased weights to avoid unbounded growth when
    /// the same generator is used for many consecutive batches.
    pub weight_cap: Weight,
}

impl UpdateGenerator {
    /// Creates a generator with the paper's defaults: 50% decreases, weights
    /// capped at `1_000_000`.
    pub fn new(seed: u64) -> Self {
        UpdateGenerator {
            rng: ChaCha8Rng::seed_from_u64(seed),
            decrease_fraction: 0.5,
            weight_cap: 1_000_000,
        }
    }

    /// Generates one batch of `volume` updates against the *current* weights
    /// of `graph`. The graph itself is not modified.
    pub fn generate(&mut self, graph: &Graph, volume: usize) -> UpdateBatch {
        let m = graph.num_edges();
        assert!(m > 0, "cannot generate updates for an edgeless graph");
        let volume = volume.min(m);
        let mut ids: Vec<usize> = (0..m).collect();
        ids.shuffle(&mut self.rng);
        ids.truncate(volume);
        let mut batch = UpdateBatch::new();
        for idx in ids {
            let e = EdgeId::from_index(idx);
            let old = graph.edge_weight(e);
            let new = if self.rng.gen_bool(self.decrease_fraction) {
                (old / 2).max(1)
            } else {
                (old.saturating_mul(2)).min(self.weight_cap).max(1)
            };
            batch.push(EdgeUpdate::new(e, old, new));
        }
        batch
    }

    /// Generates `count` consecutive batches, applying each to a scratch copy
    /// of the graph so later batches see the effect of earlier ones (the
    /// paper generates 10 such batches per dataset).
    pub fn generate_sequence(
        &mut self,
        graph: &Graph,
        volume: usize,
        count: usize,
    ) -> Vec<UpdateBatch> {
        let mut scratch = graph.clone();
        let mut batches = Vec::with_capacity(count);
        for _ in 0..count {
            let b = self.generate(&scratch, volume);
            scratch.apply_batch(&b);
            batches.push(b);
        }
        batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{grid, WeightRange};

    #[test]
    fn update_kind_classification() {
        let e = EdgeId(0);
        assert_eq!(EdgeUpdate::new(e, 10, 5).kind(), UpdateKind::Decrease);
        assert_eq!(EdgeUpdate::new(e, 5, 10).kind(), UpdateKind::Increase);
        assert_eq!(EdgeUpdate::new(e, 5, 5).kind(), UpdateKind::Unchanged);
    }

    #[test]
    fn batch_counts_and_split() {
        let e = EdgeId(0);
        let batch = UpdateBatch::from_updates(vec![
            EdgeUpdate::new(e, 10, 5),
            EdgeUpdate::new(e, 10, 20),
            EdgeUpdate::new(e, 7, 7),
            EdgeUpdate::new(e, 4, 2),
        ]);
        assert_eq!(batch.counts(), (2, 1));
        let (dec, inc) = batch.split_by_kind();
        assert_eq!(dec.len(), 2);
        assert_eq!(inc.len(), 1);
    }

    #[test]
    fn generator_respects_volume_and_halve_double_protocol() {
        let g = grid(10, 10, WeightRange::new(2, 100), 7);
        let mut gen = UpdateGenerator::new(99);
        let batch = gen.generate(&g, 30);
        assert_eq!(batch.len(), 30);
        for u in batch.iter() {
            let old = u.old_weight;
            assert!(
                u.new_weight == (old / 2).max(1) || u.new_weight == (old * 2).min(1_000_000),
                "update {:?} is not a halve/double of {}",
                u,
                old
            );
            assert!(u.new_weight >= 1);
        }
    }

    #[test]
    fn generator_selects_distinct_edges() {
        let g = grid(6, 6, WeightRange::new(1, 10), 3);
        let mut gen = UpdateGenerator::new(1);
        let batch = gen.generate(&g, g.num_edges());
        let mut edges: Vec<u32> = batch.iter().map(|u| u.edge.0).collect();
        edges.sort_unstable();
        edges.dedup();
        assert_eq!(edges.len(), g.num_edges());
    }

    #[test]
    fn generator_volume_clamped_to_edge_count() {
        let g = grid(3, 3, WeightRange::new(1, 10), 3);
        let mut gen = UpdateGenerator::new(1);
        let batch = gen.generate(&g, 10_000);
        assert_eq!(batch.len(), g.num_edges());
    }

    #[test]
    fn generator_is_deterministic_for_same_seed() {
        let g = grid(8, 8, WeightRange::new(1, 50), 11);
        let b1 = UpdateGenerator::new(42).generate(&g, 20);
        let b2 = UpdateGenerator::new(42).generate(&g, 20);
        assert_eq!(b1.as_slice(), b2.as_slice());
        let b3 = UpdateGenerator::new(43).generate(&g, 20);
        assert_ne!(b1.as_slice(), b3.as_slice());
    }

    #[test]
    fn sequence_batches_chain_weights() {
        let g = grid(6, 6, WeightRange::new(8, 8), 5);
        let mut gen = UpdateGenerator::new(5);
        let batches = gen.generate_sequence(&g, g.num_edges(), 2);
        assert_eq!(batches.len(), 2);
        // The second batch must start from the weights produced by the first.
        let mut scratch = g.clone();
        scratch.apply_batch(&batches[0]);
        for u in batches[1].iter() {
            assert_eq!(u.old_weight, scratch.edge_weight(u.edge));
        }
    }
}
