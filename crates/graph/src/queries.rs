//! Shortest-distance query workloads.
//!
//! Following the system model of §II and the evaluation protocol of §VII-A,
//! queries are uniformly random `(s, t)` pairs arriving as a Poisson process
//! with rate `λ_q`. A [`QuerySet`] is just the pairs; a [`QueryWorkload`]
//! additionally carries arrival timestamps so the throughput simulator can
//! model queueing delay against the QoS constraint `R*_q`.

use crate::graph::Graph;
use crate::types::VertexId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A single shortest-distance query `q(s, t)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Query {
    /// Source vertex.
    pub source: VertexId,
    /// Target vertex.
    pub target: VertexId,
}

impl Query {
    /// Creates a query.
    pub fn new(source: VertexId, target: VertexId) -> Self {
        Query { source, target }
    }
}

/// A set of queries without timing information.
#[derive(Clone, Debug, Default)]
pub struct QuerySet {
    queries: Vec<Query>,
}

impl QuerySet {
    /// Creates an empty query set.
    pub fn new() -> Self {
        QuerySet {
            queries: Vec::new(),
        }
    }

    /// Generates `count` uniformly random queries over the vertices of
    /// `graph`, excluding trivial `s == t` pairs.
    pub fn random(graph: &Graph, count: usize, seed: u64) -> Self {
        let n = graph.num_vertices();
        assert!(n >= 2, "need at least two vertices to generate queries");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut queries = Vec::with_capacity(count);
        while queries.len() < count {
            let s = rng.gen_range(0..n);
            let t = rng.gen_range(0..n);
            if s != t {
                queries.push(Query::new(VertexId::from_index(s), VertexId::from_index(t)));
            }
        }
        QuerySet { queries }
    }

    /// Generates `count` *local* queries: the target is drawn from vertices
    /// whose id is within `radius` of the source id. For grid-based synthetic
    /// networks this approximates same-city / same-partition queries (the
    /// query class the post-boundary strategy optimizes, §V-C).
    pub fn random_local(graph: &Graph, count: usize, radius: usize, seed: u64) -> Self {
        let n = graph.num_vertices();
        assert!(n >= 2, "need at least two vertices to generate queries");
        let radius = radius.max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut queries = Vec::with_capacity(count);
        while queries.len() < count {
            let s = rng.gen_range(0..n);
            let lo = s.saturating_sub(radius);
            let hi = (s + radius).min(n - 1);
            let t = rng.gen_range(lo..=hi);
            if s != t {
                queries.push(Query::new(VertexId::from_index(s), VertexId::from_index(t)));
            }
        }
        QuerySet { queries }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterator over the queries.
    pub fn iter(&self) -> impl Iterator<Item = &Query> {
        self.queries.iter()
    }

    /// Slice of the queries.
    pub fn as_slice(&self) -> &[Query] {
        &self.queries
    }

    /// Adds a query.
    pub fn push(&mut self, q: Query) {
        self.queries.push(q);
    }
}

impl<'a> IntoIterator for &'a QuerySet {
    type Item = &'a Query;
    type IntoIter = std::slice::Iter<'a, Query>;

    fn into_iter(self) -> Self::IntoIter {
        self.queries.iter()
    }
}

/// A timed query workload: queries plus Poisson arrival times (seconds).
#[derive(Clone, Debug, Default)]
pub struct QueryWorkload {
    /// The queries, in arrival order.
    pub queries: Vec<Query>,
    /// Arrival time of each query, in seconds from the period start,
    /// non-decreasing.
    pub arrival_times: Vec<f64>,
}

impl QueryWorkload {
    /// Generates a Poisson-process workload with arrival rate `lambda_q`
    /// (queries per second) over a horizon of `duration` seconds.
    pub fn poisson(graph: &Graph, lambda_q: f64, duration: f64, seed: u64) -> Self {
        assert!(lambda_q > 0.0, "arrival rate must be positive");
        assert!(duration > 0.0, "duration must be positive");
        let n = graph.num_vertices();
        assert!(n >= 2, "need at least two vertices");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut queries = Vec::new();
        let mut arrival_times = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival times with rate lambda_q.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / lambda_q;
            if t >= duration {
                break;
            }
            let s = rng.gen_range(0..n);
            let mut d = rng.gen_range(0..n);
            if d == s {
                d = (d + 1) % n;
            }
            queries.push(Query::new(VertexId::from_index(s), VertexId::from_index(d)));
            arrival_times.push(t);
        }
        QueryWorkload {
            queries,
            arrival_times,
        }
    }

    /// Number of queries in the workload.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Returns `true` if the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Empirical arrival rate (queries per second).
    pub fn empirical_rate(&self, duration: f64) -> f64 {
        self.queries.len() as f64 / duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{grid, WeightRange};

    #[test]
    fn random_queries_have_distinct_endpoints() {
        let g = grid(8, 8, WeightRange::default(), 1);
        let qs = QuerySet::random(&g, 100, 42);
        assert_eq!(qs.len(), 100);
        for q in &qs {
            assert_ne!(q.source, q.target);
            assert!(q.source.index() < g.num_vertices());
            assert!(q.target.index() < g.num_vertices());
        }
    }

    #[test]
    fn random_queries_deterministic() {
        let g = grid(8, 8, WeightRange::default(), 1);
        let a = QuerySet::random(&g, 50, 7);
        let b = QuerySet::random(&g, 50, 7);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn local_queries_stay_close() {
        let g = grid(16, 16, WeightRange::default(), 1);
        let qs = QuerySet::random_local(&g, 200, 10, 3);
        for q in &qs {
            let d = q.source.index().abs_diff(q.target.index());
            assert!(d <= 10, "local query spans {d} ids");
        }
    }

    #[test]
    fn poisson_workload_times_are_sorted_and_rate_is_close() {
        let g = grid(8, 8, WeightRange::default(), 1);
        let w = QueryWorkload::poisson(&g, 500.0, 10.0, 5);
        assert!(!w.is_empty());
        for pair in w.arrival_times.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        assert!(w.arrival_times.iter().all(|&t| t < 10.0));
        let rate = w.empirical_rate(10.0);
        assert!(
            (rate - 500.0).abs() / 500.0 < 0.2,
            "empirical rate {rate} far from 500"
        );
    }

    #[test]
    fn poisson_workload_deterministic() {
        let g = grid(8, 8, WeightRange::default(), 1);
        let a = QueryWorkload::poisson(&g, 100.0, 5.0, 9);
        let b = QueryWorkload::poisson(&g, 100.0, 5.0, 9);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn poisson_rejects_zero_rate() {
        let g = grid(4, 4, WeightRange::default(), 1);
        let _ = QueryWorkload::poisson(&g, 0.0, 5.0, 9);
    }
}
