//! The construction worker pool: scoped, dep-free fork/join parallelism with
//! deterministic result ordering and per-stage accounting.
//!
//! Every parallel construction path in the workspace (CH contraction windows,
//! H2H level fills, per-partition index builds, fleet shard builds) funnels
//! through a [`WorkerPool`], which guarantees the *determinism contract* of
//! the parallel-construction subsystem:
//!
//! * [`WorkerPool::run`] evaluates a pure function over task indices
//!   `0..tasks` and returns the results **in index order**, regardless of
//!   which worker computed what — so a build that consumes the results
//!   observes exactly the sequence a single-threaded loop would produce.
//! * [`WorkerPool::run_chunks`] hands each worker a *disjoint contiguous*
//!   sub-slice of a mutable buffer (split at [`chunk_bounds`]) so sharded
//!   apply phases cannot race, and again returns per-chunk results in chunk
//!   order.
//!
//! Construction algorithms are written so the *work decomposition* never
//! depends on the thread count — the pool only changes how many tasks are in
//! flight, never which tasks exist or how their outputs are combined. A pool
//! with one thread runs everything inline on the caller, so
//! [`WorkerPool::sequential`] is the zero-overhead baseline every
//! equivalence test compares against.
//!
//! The pool also keeps per-stage wall-clock and task counters
//! ([`WorkerPool::stage_stats`]); the serving tier exports them as the
//! `htsp_build_*` telemetry family.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Accumulated accounting for one named construction stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageStats {
    /// Stage name as passed to [`WorkerPool::run`] / [`WorkerPool::run_chunks`].
    pub stage: String,
    /// Number of `run*` invocations recorded under this name.
    pub runs: usize,
    /// Total tasks (or chunks) dispatched across those invocations.
    pub tasks: usize,
    /// Total wall-clock microseconds spent inside those invocations.
    pub micros: u64,
}

/// A small scoped worker pool for construction-time parallelism.
///
/// Threads are spawned per `run*` call with [`std::thread::scope`] (no
/// long-lived workers, no channels, no dependencies), which keeps the pool
/// trivially `Send + Sync` and lets borrowed closures capture graph state
/// directly.
#[derive(Debug)]
pub struct WorkerPool {
    threads: usize,
    stats: Mutex<Vec<StageStats>>,
}

impl WorkerPool {
    /// A pool that runs up to `threads` tasks concurrently (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
            stats: Mutex::new(Vec::new()),
        }
    }

    /// The single-threaded pool: every task runs inline on the caller.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// A pool sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        Self::new(available_parallelism())
    }

    /// Number of worker threads this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0..tasks)` and returns the results in task-index order.
    ///
    /// `f` must be a pure function of its index (it may read shared state but
    /// must not care which thread calls it). With one thread, or one task,
    /// everything runs inline on the caller.
    pub fn run<T, F>(&self, stage: &str, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let start = Instant::now();
        let workers = self.threads.min(tasks);
        let out = if workers <= 1 {
            (0..tasks).map(&f).collect()
        } else {
            let next = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(tasks));
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        collected.lock().unwrap().extend(local);
                    });
                }
            });
            let mut pairs = collected.into_inner().unwrap();
            pairs.sort_unstable_by_key(|&(i, _)| i);
            debug_assert_eq!(pairs.len(), tasks);
            pairs.into_iter().map(|(_, t)| t).collect()
        };
        self.record(stage, tasks, start);
        out
    }

    /// Splits `data` into `self.threads()` contiguous chunks (per
    /// [`chunk_bounds`]) and runs `f(chunk_index, offset, chunk)` on each
    /// concurrently. Results come back in chunk order.
    ///
    /// Callers that pre-bucket work per chunk must use the same
    /// [`chunk_bounds`] to agree on the split.
    pub fn run_chunks<T, R, F>(&self, stage: &str, data: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, usize, &mut [T]) -> R + Sync,
    {
        let start = Instant::now();
        let bounds = chunk_bounds(data.len(), self.threads);
        let nchunks = bounds.len();
        let out = if nchunks <= 1 {
            let len = data.len();
            vec![f(0, 0, &mut data[..len])]
        } else {
            let mut slots: Vec<(usize, usize, &mut [T])> = Vec::with_capacity(nchunks);
            let mut rest = data;
            let mut offset = 0usize;
            for (ci, &(lo, hi)) in bounds.iter().enumerate() {
                debug_assert_eq!(lo, offset);
                let (chunk, tail) = rest.split_at_mut(hi - lo);
                slots.push((ci, offset, chunk));
                rest = tail;
                offset = hi;
            }
            let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(nchunks));
            std::thread::scope(|scope| {
                for (ci, off, chunk) in slots {
                    let f = &f;
                    let results = &results;
                    scope.spawn(move || {
                        let r = f(ci, off, chunk);
                        results.lock().unwrap().push((ci, r));
                    });
                }
            });
            let mut pairs = results.into_inner().unwrap();
            pairs.sort_unstable_by_key(|&(i, _)| i);
            pairs.into_iter().map(|(_, r)| r).collect()
        };
        self.record(stage, nchunks, start);
        out
    }

    fn record(&self, stage: &str, tasks: usize, start: Instant) {
        let micros = start.elapsed().as_micros() as u64;
        let mut stats = self.stats.lock().unwrap();
        if let Some(s) = stats.iter_mut().find(|s| s.stage == stage) {
            s.runs += 1;
            s.tasks += tasks;
            s.micros += micros;
        } else {
            stats.push(StageStats {
                stage: stage.to_string(),
                runs: 1,
                tasks,
                micros,
            });
        }
    }

    /// Per-stage accounting accumulated so far, in first-seen order.
    pub fn stage_stats(&self) -> Vec<StageStats> {
        self.stats.lock().unwrap().clone()
    }
}

/// The machine's available parallelism (≥ 1); the default for
/// `BuildParams::num_threads`.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The contiguous chunk boundaries `run_chunks` uses for a buffer of `len`
/// elements over `parts` workers: at most `parts` half-open `(lo, hi)`
/// ranges, sizes differing by at most one, empty chunks elided.
pub fn chunk_bounds(len: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0usize;
    for i in 0..parts {
        let sz = base + usize::from(i < extra);
        if sz == 0 {
            continue;
        }
        out.push((lo, lo + sz));
        lo += sz;
    }
    if out.is_empty() {
        out.push((0, 0));
    }
    out
}

/// The chunk index that owns element `i` under [`chunk_bounds`]`(len, parts)`.
pub fn chunk_of(bounds: &[(usize, usize)], i: usize) -> usize {
    bounds
        .partition_point(|&(_, hi)| hi <= i)
        .min(bounds.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let out = pool.run("square", 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_handles_empty_and_single_task() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.run("none", 0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run("one", 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn run_chunks_covers_the_buffer_disjointly() {
        for threads in [1, 2, 3, 5, 16] {
            let pool = WorkerPool::new(threads);
            let mut data = vec![0u32; 97];
            let sizes = pool.run_chunks("fill", &mut data, |ci, off, chunk| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x = (off + k) as u32 * 100 + ci as u32;
                }
                chunk.len()
            });
            assert_eq!(sizes.iter().sum::<usize>(), 97);
            for (i, &x) in data.iter().enumerate() {
                assert_eq!(x / 100, i as u32, "element {i} written once at its index");
            }
        }
    }

    #[test]
    fn chunk_bounds_partition_the_range() {
        for len in [0usize, 1, 7, 64, 97] {
            for parts in [1usize, 2, 3, 9, 200] {
                let b = chunk_bounds(len, parts);
                assert!(b.len() <= parts.max(1));
                let mut at = 0;
                for &(lo, hi) in &b {
                    assert_eq!(lo, at);
                    assert!(hi >= lo);
                    at = hi;
                }
                assert_eq!(at, len);
                if len > 0 {
                    for i in 0..len {
                        let c = chunk_of(&b, i);
                        assert!(b[c].0 <= i && i < b[c].1, "element {i} in chunk {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn stage_stats_accumulate() {
        let pool = WorkerPool::new(2);
        pool.run("a", 10, |i| i);
        pool.run("a", 5, |i| i);
        pool.run("b", 3, |i| i);
        let stats = pool.stage_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].stage, "a");
        assert_eq!(stats[0].runs, 2);
        assert_eq!(stats[0].tasks, 15);
        assert_eq!(stats[1].stage, "b");
        assert_eq!(stats[1].tasks, 3);
    }

    #[test]
    fn sequential_pool_runs_inline() {
        let pool = WorkerPool::sequential();
        assert_eq!(pool.threads(), 1);
        let tid = std::thread::current().id();
        let ids = pool.run("inline", 4, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == tid));
    }

    #[test]
    fn available_parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
        assert!(WorkerPool::with_available_parallelism().threads() >= 1);
    }
}
