//! Undirected, positively weighted dynamic graph with adjacency-list storage.
//!
//! The [`Graph`] type is the substrate for every index in this repository.
//! It supports:
//!
//! * O(1) amortized edge insertion through [`GraphBuilder`],
//! * O(deg) neighbor iteration and edge-weight lookup,
//! * in-place edge-weight mutation (the "dynamicity" of §II: weights only
//!   increase or decrease, the topology never changes),
//! * cheap cloning (used by index-construction algorithms that contract a
//!   working copy of the graph).

use crate::types::{Dist, EdgeId, VertexId, Weight};
use crate::updates::UpdateBatch;
use rustc_hash::FxHashMap;
use std::fmt;

/// One directed arc stored in the adjacency list (each undirected edge is
/// stored twice, once per endpoint).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arc {
    /// The neighbor this arc points to.
    pub to: VertexId,
    /// Current weight of the underlying undirected edge.
    pub weight: Weight,
    /// Identifier of the underlying undirected edge (shared by both arcs).
    pub edge: EdgeId,
}

/// An undirected weighted graph with mutable edge weights.
///
/// Invariants:
/// * every undirected edge `{u, v}` appears exactly once in `edges` and as two
///   arcs, one in `adj[u]` and one in `adj[v]`, which always carry the same
///   weight;
/// * there are no self-loops and no parallel edges;
/// * all weights are strictly positive.
#[derive(Clone)]
pub struct Graph {
    /// Adjacency lists: `adj[v]` holds one [`Arc`] per incident edge.
    adj: Vec<Vec<Arc>>,
    /// Endpoints of every undirected edge, `edges[e] = (u, v)` with `u < v`.
    edges: Vec<(VertexId, VertexId)>,
    /// Current weight of every undirected edge.
    weights: Vec<Weight>,
}

impl Graph {
    /// Creates an empty graph with `n` isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Iterator over all vertex ids, `v0..v(n-1)`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.adj.len()).map(VertexId::from_index)
    }

    /// Degree (number of incident edges) of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// Iterator over the arcs leaving `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> NeighborIter<'_> {
        NeighborIter {
            inner: self.adj[v.index()].iter(),
        }
    }

    /// Slice of the arcs leaving `v` (useful for index-based hot loops).
    #[inline]
    pub fn arcs(&self, v: VertexId) -> &[Arc] {
        &self.adj[v.index()]
    }

    /// Endpoints `(u, v)` of edge `e`, with `u < v`.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e.index()]
    }

    /// Current weight of edge `e`.
    #[inline]
    pub fn edge_weight(&self, e: EdgeId) -> Weight {
        self.weights[e.index()]
    }

    /// Iterator over `(EdgeId, u, v, weight)` for every undirected edge.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId, Weight)> + '_ {
        self.edges
            .iter()
            .zip(self.weights.iter())
            .enumerate()
            .map(|(i, (&(u, v), &w))| (EdgeId::from_index(i), u, v, w))
    }

    /// Looks up the edge between `u` and `v`, if any, returning its id and
    /// current weight. O(min(deg(u), deg(v))).
    pub fn find_edge(&self, u: VertexId, v: VertexId) -> Option<(EdgeId, Weight)> {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a.index()]
            .iter()
            .find(|arc| arc.to == b)
            .map(|arc| (arc.edge, arc.weight))
    }

    /// Returns the weight of the edge between `u` and `v` as a [`Dist`], or
    /// `INF` if the edge does not exist.
    pub fn edge_dist(&self, u: VertexId, v: VertexId) -> Dist {
        match self.find_edge(u, v) {
            Some((_, w)) => Dist(w),
            None => crate::types::INF,
        }
    }

    /// Sets the weight of edge `e` to `w` (must be positive), updating both
    /// adjacency copies. Returns the previous weight.
    pub fn set_edge_weight(&mut self, e: EdgeId, w: Weight) -> Weight {
        assert!(w > 0, "edge weights must be strictly positive");
        let old = self.weights[e.index()];
        if old == w {
            return old;
        }
        self.weights[e.index()] = w;
        let (u, v) = self.edges[e.index()];
        for arc in self.adj[u.index()].iter_mut() {
            if arc.edge == e {
                arc.weight = w;
                break;
            }
        }
        for arc in self.adj[v.index()].iter_mut() {
            if arc.edge == e {
                arc.weight = w;
                break;
            }
        }
        old
    }

    /// Applies every update of a batch in order, returning the list of
    /// `(EdgeId, old_weight, new_weight)` changes actually performed (no-op
    /// updates whose new weight equals the current weight are skipped).
    ///
    /// This is "U-Stage 1: on-spot edge update" of the PMHL/PostMHL pipelines
    /// (§V-D, §VI-C): the graph is refreshed immediately so that index-free
    /// BiDijkstra can already answer queries correctly.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> Vec<(EdgeId, Weight, Weight)> {
        let mut applied = Vec::with_capacity(batch.len());
        for upd in batch.iter() {
            let old = self.edge_weight(upd.edge);
            if old != upd.new_weight {
                self.set_edge_weight(upd.edge, upd.new_weight);
                applied.push((upd.edge, old, upd.new_weight));
            }
        }
        applied
    }

    /// Reverses a previously applied batch (used by experiments that replay
    /// the same batch against several indexes).
    pub fn revert(&mut self, applied: &[(EdgeId, Weight, Weight)]) {
        for &(e, old, _new) in applied.iter().rev() {
            self.set_edge_weight(e, old);
        }
    }

    /// Total weight of all edges (useful as a sanity statistic).
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().map(|&w| w as u64).sum()
    }

    /// Returns the maximum vertex degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|a| a.len()).max().unwrap_or(0)
    }

    /// Checks the structural invariants; intended for tests and debug builds.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if self.edges.len() != self.weights.len() {
            return Err("edges / weights length mismatch".into());
        }
        let mut seen: FxHashMap<(u32, u32), EdgeId> = FxHashMap::default();
        for (i, (&(u, v), &w)) in self.edges.iter().zip(self.weights.iter()).enumerate() {
            let e = EdgeId::from_index(i);
            if u == v {
                return Err(format!("self loop at {u}"));
            }
            if u.index() >= n || v.index() >= n {
                return Err(format!("edge {e:?} endpoint out of range"));
            }
            if u > v {
                return Err(format!("edge {e:?} endpoints not normalized"));
            }
            if w == 0 {
                return Err(format!("edge {e:?} has zero weight"));
            }
            if seen.insert((u.0, v.0), e).is_some() {
                return Err(format!("parallel edge {u}-{v}"));
            }
            let arc_u = self.adj[u.index()].iter().find(|a| a.edge == e);
            let arc_v = self.adj[v.index()].iter().find(|a| a.edge == e);
            match (arc_u, arc_v) {
                (Some(au), Some(av)) => {
                    if au.to != v || av.to != u || au.weight != w || av.weight != w {
                        return Err(format!("arc mismatch for edge {e:?}"));
                    }
                }
                _ => return Err(format!("missing arc for edge {e:?}")),
            }
        }
        let arc_count: usize = self.adj.iter().map(|a| a.len()).sum();
        if arc_count != 2 * self.edges.len() {
            return Err("arc count is not twice the edge count".into());
        }
        Ok(())
    }

    /// Returns `true` if the graph is connected (empty graphs count as
    /// connected). Uses an iterative BFS over the adjacency lists.
    pub fn is_connected(&self) -> bool {
        let n = self.num_vertices();
        if n == 0 {
            return true;
        }
        let mut visited = vec![false; n];
        let mut stack = vec![VertexId(0)];
        visited[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for arc in self.arcs(v) {
                if !visited[arc.to.index()] {
                    visited[arc.to.index()] = true;
                    count += 1;
                    stack.push(arc.to);
                }
            }
        }
        count == n
    }

    /// Heap bytes held by the adjacency lists and edge arrays (the
    /// pointer-chasing representation the flat [`crate::storage::CsrGraph`]
    /// is compared against).
    pub fn heap_bytes(&self) -> usize {
        let arcs: usize = self.adj.iter().map(|a| a.capacity()).sum();
        self.adj.capacity() * std::mem::size_of::<Vec<Arc>>()
            + arcs * std::mem::size_of::<Arc>()
            + self.edges.capacity() * std::mem::size_of::<(VertexId, VertexId)>()
            + self.weights.capacity() * std::mem::size_of::<Weight>()
    }

    /// Builds a graph from an already-normalized edge list: `u < v`, no
    /// self-loops, no duplicates. Edge ids are positions in `edges`. Callers
    /// (the CSR converter and the snapshot decoder) validate beforehand;
    /// this constructor only asserts in debug builds.
    pub(crate) fn from_normalized_edges(
        n: usize,
        edges: Vec<(VertexId, VertexId)>,
        weights: Vec<Weight>,
    ) -> Graph {
        debug_assert_eq!(edges.len(), weights.len());
        let mut adj: Vec<Vec<Arc>> = vec![Vec::new(); n];
        for (i, &(u, v)) in edges.iter().enumerate() {
            debug_assert!(u < v && v.index() < n && weights[i] > 0);
            let e = EdgeId::from_index(i);
            let w = weights[i];
            adj[u.index()].push(Arc {
                to: v,
                weight: w,
                edge: e,
            });
            adj[v.index()].push(Arc {
                to: u,
                weight: w,
                edge: e,
            });
        }
        Graph {
            adj,
            edges,
            weights,
        }
    }

    /// Extracts the vertex-induced subgraph on `vertices`, relabelling the
    /// vertices to `0..k`. Returns the subgraph together with the mapping
    /// `local -> global`.
    ///
    /// Only edges with *both* endpoints inside `vertices` are retained
    /// (intra-partition edges `E_intra` in the PSP terminology of §III-C).
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> (Graph, Vec<VertexId>) {
        let mut global_to_local: FxHashMap<VertexId, u32> = FxHashMap::default();
        global_to_local.reserve(vertices.len());
        for (i, &v) in vertices.iter().enumerate() {
            global_to_local.insert(v, i as u32);
        }
        let mut builder = GraphBuilder::new(vertices.len());
        for (_, u, v, w) in self.edges() {
            if let (Some(&lu), Some(&lv)) = (global_to_local.get(&u), global_to_local.get(&v)) {
                builder.add_edge(VertexId(lu), VertexId(lv), w);
            }
        }
        (builder.build(), vertices.to_vec())
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph {{ n: {}, m: {} }}",
            self.num_vertices(),
            self.num_edges()
        )
    }
}

/// Incremental builder for [`Graph`]; deduplicates parallel edges by keeping
/// the minimum weight (the standard convention for road-network multigraphs).
pub struct GraphBuilder {
    n: usize,
    /// Map from normalized endpoint pair to (position in `edge_list`).
    index: FxHashMap<(u32, u32), usize>,
    edge_list: Vec<(VertexId, VertexId, Weight)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            index: FxHashMap::default(),
            edge_list: Vec::new(),
        }
    }

    /// Adds (or merges) the undirected edge `{u, v}` with weight `w`.
    ///
    /// Self-loops are ignored. If the edge already exists the minimum of the
    /// old and new weights is kept. Returns `true` if a new edge was created.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> bool {
        assert!(w > 0, "edge weights must be strictly positive");
        assert!(
            u.index() < self.n && v.index() < self.n,
            "edge endpoint out of range"
        );
        if u == v {
            return false;
        }
        let key = if u < v { (u.0, v.0) } else { (v.0, u.0) };
        match self.index.get(&key) {
            Some(&pos) => {
                if w < self.edge_list[pos].2 {
                    self.edge_list[pos].2 = w;
                }
                false
            }
            None => {
                let (a, b) = if u < v { (u, v) } else { (v, u) };
                self.index.insert(key, self.edge_list.len());
                self.edge_list.push((a, b, w));
                true
            }
        }
    }

    /// Number of distinct edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edge_list.len()
    }

    /// Finalizes the builder into an immutable-topology [`Graph`].
    pub fn build(self) -> Graph {
        let mut g = Graph::with_vertices(self.n);
        g.edges.reserve(self.edge_list.len());
        g.weights.reserve(self.edge_list.len());
        for (u, v, w) in self.edge_list {
            let e = EdgeId::from_index(g.edges.len());
            g.edges.push((u, v));
            g.weights.push(w);
            g.adj[u.index()].push(Arc {
                to: v,
                weight: w,
                edge: e,
            });
            g.adj[v.index()].push(Arc {
                to: u,
                weight: w,
                edge: e,
            });
        }
        g
    }
}

/// Iterator over the arcs incident to one vertex.
pub struct NeighborIter<'a> {
    inner: std::slice::Iter<'a, Arc>,
}

impl<'a> Iterator for NeighborIter<'a> {
    type Item = &'a Arc;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a> ExactSizeIterator for NeighborIter<'a> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::INF;
    use crate::updates::EdgeUpdate;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(VertexId(0), VertexId(1), 3);
        b.add_edge(VertexId(1), VertexId(2), 4);
        b.add_edge(VertexId(0), VertexId(2), 10);
        b.build()
    }

    #[test]
    fn build_and_validate_triangle() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        g.validate().expect("triangle should be valid");
        assert!(g.is_connected());
    }

    #[test]
    fn degree_and_neighbors() {
        let g = triangle();
        assert_eq!(g.degree(VertexId(0)), 2);
        let nbrs: Vec<_> = g.neighbors(VertexId(0)).map(|a| a.to).collect();
        assert!(nbrs.contains(&VertexId(1)));
        assert!(nbrs.contains(&VertexId(2)));
    }

    #[test]
    fn find_edge_and_edge_dist() {
        let g = triangle();
        let (_, w) = g.find_edge(VertexId(0), VertexId(1)).unwrap();
        assert_eq!(w, 3);
        let (_, w) = g.find_edge(VertexId(1), VertexId(0)).unwrap();
        assert_eq!(w, 3);
        assert_eq!(g.edge_dist(VertexId(0), VertexId(2)), Dist(10));
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        let g2 = b.build();
        assert_eq!(g2.edge_dist(VertexId(0), VertexId(3)), INF);
        assert!(g2.find_edge(VertexId(2), VertexId(3)).is_none());
    }

    #[test]
    fn set_edge_weight_updates_both_arcs() {
        let mut g = triangle();
        let (e, _) = g.find_edge(VertexId(0), VertexId(1)).unwrap();
        let old = g.set_edge_weight(e, 7);
        assert_eq!(old, 3);
        assert_eq!(g.edge_weight(e), 7);
        assert_eq!(g.edge_dist(VertexId(0), VertexId(1)), Dist(7));
        assert_eq!(g.edge_dist(VertexId(1), VertexId(0)), Dist(7));
        g.validate().expect("still valid after weight change");
    }

    #[test]
    fn parallel_edges_keep_minimum_weight() {
        let mut b = GraphBuilder::new(2);
        assert!(b.add_edge(VertexId(0), VertexId(1), 9));
        assert!(!b.add_edge(VertexId(1), VertexId(0), 4));
        assert!(!b.add_edge(VertexId(0), VertexId(1), 6));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_dist(VertexId(0), VertexId(1)), Dist(4));
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut b = GraphBuilder::new(2);
        assert!(!b.add_edge(VertexId(1), VertexId(1), 5));
        assert_eq!(b.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_weight_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(VertexId(0), VertexId(1), 0);
    }

    #[test]
    fn apply_and_revert_batch() {
        let mut g = triangle();
        let (e01, _) = g.find_edge(VertexId(0), VertexId(1)).unwrap();
        let (e12, _) = g.find_edge(VertexId(1), VertexId(2)).unwrap();
        let batch =
            UpdateBatch::from_updates(vec![EdgeUpdate::new(e01, 3, 6), EdgeUpdate::new(e12, 4, 2)]);
        let applied = g.apply_batch(&batch);
        assert_eq!(applied.len(), 2);
        assert_eq!(g.edge_weight(e01), 6);
        assert_eq!(g.edge_weight(e12), 2);
        g.revert(&applied);
        assert_eq!(g.edge_weight(e01), 3);
        assert_eq!(g.edge_weight(e12), 4);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = triangle();
        let (sub, mapping) = g.induced_subgraph(&[VertexId(0), VertexId(1)]);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(mapping, vec![VertexId(0), VertexId(1)]);
        assert_eq!(sub.edge_dist(VertexId(0), VertexId(1)), Dist(3));
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(2), VertexId(3), 1);
        let g = b.build();
        assert!(!g.is_connected());
    }

    #[test]
    fn vertices_iterator_covers_all() {
        let g = triangle();
        let vs: Vec<_> = g.vertices().collect();
        assert_eq!(vs, vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn total_weight_and_max_degree() {
        let g = triangle();
        assert_eq!(g.total_weight(), 17);
        assert_eq!(g.max_degree(), 2);
    }
}
