//! Synthetic road-like network generators.
//!
//! The paper evaluates on eight real road networks (Table I) ranging from
//! 264k to 24M vertices. Those datasets (and the NavInfo China networks) are
//! not redistributable here, so this module provides laptop-scale synthetic
//! substitutes that preserve the structural properties the algorithms depend
//! on: near-planar topology, low average degree (~2.5), strong locality,
//! small separators and low treewidth.
//!
//! Three families are provided:
//!
//! * [`grid`] — an `w × h` lattice with 4-neighborhood and randomly perturbed
//!   weights, optionally with random "diagonal shortcuts" ([`grid_with_diagonals`]);
//!   the classic Manhattan-style city model.
//! * [`ring_radial`] — concentric rings connected by radial avenues, a
//!   European-city model with a denser core (produces a natural
//!   core-periphery structure).
//! * [`random_geometric`] — points scattered uniformly in the unit square and
//!   connected to their nearest neighbors (Delaunay-like sparse connectivity),
//!   which mimics rural/inter-city road topology.
//!
//! All generators are deterministic given their seed and always return a
//! connected graph.

use crate::graph::{Graph, GraphBuilder};
use crate::types::{VertexId, Weight};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Inclusive range of edge weights used by the generators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightRange {
    /// Minimum weight (must be ≥ 1).
    pub min: Weight,
    /// Maximum weight (must be ≥ `min`).
    pub max: Weight,
}

impl WeightRange {
    /// Creates a new weight range, panicking if `min == 0` or `min > max`.
    pub fn new(min: Weight, max: Weight) -> Self {
        assert!(min >= 1, "weights must be strictly positive");
        assert!(min <= max, "min must not exceed max");
        WeightRange { min, max }
    }

    fn sample(&self, rng: &mut impl Rng) -> Weight {
        rng.gen_range(self.min..=self.max)
    }
}

impl Default for WeightRange {
    fn default() -> Self {
        WeightRange { min: 1, max: 100 }
    }
}

/// Generates a `width × height` grid road network.
///
/// Vertex `(x, y)` has index `y * width + x`; horizontal and vertical
/// neighbors are connected with weights sampled from `weights`.
pub fn grid(width: usize, height: usize, weights: WeightRange, seed: u64) -> Graph {
    assert!(width >= 1 && height >= 1, "grid dimensions must be >= 1");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = width * height;
    let mut b = GraphBuilder::new(n);
    let id = |x: usize, y: usize| VertexId::from_index(y * width + x);
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                b.add_edge(id(x, y), id(x + 1, y), weights.sample(&mut rng));
            }
            if y + 1 < height {
                b.add_edge(id(x, y), id(x, y + 1), weights.sample(&mut rng));
            }
        }
    }
    b.build()
}

/// Grid network with an extra fraction of diagonal shortcut edges, which adds
/// triangles (slightly higher treewidth) and more route diversity.
pub fn grid_with_diagonals(
    width: usize,
    height: usize,
    weights: WeightRange,
    diagonal_fraction: f64,
    seed: u64,
) -> Graph {
    assert!(
        (0.0..=1.0).contains(&diagonal_fraction),
        "diagonal_fraction must be in [0, 1]"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = width * height;
    let mut b = GraphBuilder::new(n);
    let id = |x: usize, y: usize| VertexId::from_index(y * width + x);
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                b.add_edge(id(x, y), id(x + 1, y), weights.sample(&mut rng));
            }
            if y + 1 < height {
                b.add_edge(id(x, y), id(x, y + 1), weights.sample(&mut rng));
            }
            if x + 1 < width && y + 1 < height && rng.gen_bool(diagonal_fraction) {
                // Diagonals are a bit longer than axis edges on average.
                let w = weights.sample(&mut rng).saturating_add(weights.min).max(1);
                b.add_edge(id(x, y), id(x + 1, y + 1), w);
            }
        }
    }
    b.build()
}

/// Generates a ring-radial ("spider-web") city network.
///
/// `rings` concentric rings each hold `spokes` vertices; consecutive vertices
/// on a ring are connected, and each vertex is connected to the corresponding
/// vertex on the next ring. A central vertex connects to the innermost ring.
pub fn ring_radial(rings: usize, spokes: usize, weights: WeightRange, seed: u64) -> Graph {
    assert!(rings >= 1 && spokes >= 3, "need >=1 ring and >=3 spokes");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = rings * spokes + 1;
    let mut b = GraphBuilder::new(n);
    let center = VertexId(0);
    let id = |ring: usize, spoke: usize| VertexId::from_index(1 + ring * spokes + (spoke % spokes));
    for s in 0..spokes {
        b.add_edge(center, id(0, s), weights.sample(&mut rng));
    }
    for r in 0..rings {
        for s in 0..spokes {
            // Ring edge; outer rings are longer (scaled by ring index).
            let scale = (r + 1) as Weight;
            let w = weights.sample(&mut rng).saturating_mul(scale).max(1);
            b.add_edge(id(r, s), id(r, s + 1), w);
            // Radial edge to the next ring.
            if r + 1 < rings {
                b.add_edge(id(r, s), id(r + 1, s), weights.sample(&mut rng));
            }
        }
    }
    b.build()
}

/// Generates a random geometric road network: `n` points are scattered
/// uniformly in the unit square, each point is connected to its `k` nearest
/// neighbors, and the weight of an edge is its Euclidean length scaled to
/// the weight range. A spanning pass guarantees connectivity.
pub fn random_geometric(n: usize, k: usize, weights: WeightRange, seed: u64) -> Graph {
    assert!(n >= 2, "need at least two vertices");
    assert!(k >= 1, "need at least one neighbor per vertex");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();

    let span = (weights.max - weights.min) as f64;
    let weight_of = |a: (f64, f64), b: (f64, f64)| -> Weight {
        let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        // Normalize by the diagonal of the unit square.
        let t = (d / std::f64::consts::SQRT_2).clamp(0.0, 1.0);
        (weights.min as f64 + t * span).round().max(1.0) as Weight
    };

    // Sort vertices on a coarse grid to find near neighbors cheaply (avoids
    // the O(n^2) all-pairs scan for larger n).
    let cells = (n as f64).sqrt().ceil() as usize;
    let cell_of = |p: (f64, f64)| -> (usize, usize) {
        let cx = ((p.0 * cells as f64) as usize).min(cells - 1);
        let cy = ((p.1 * cells as f64) as usize).min(cells - 1);
        (cx, cy)
    };
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); cells * cells];
    for (i, &p) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        buckets[cy * cells + cx].push(i);
    }

    let mut b = GraphBuilder::new(n);
    let mut cand: Vec<(f64, usize)> = Vec::new();
    for i in 0..n {
        let (cx, cy) = cell_of(pts[i]);
        cand.clear();
        // Expand the search ring until we have enough candidates.
        let mut radius = 1usize;
        loop {
            cand.clear();
            let x0 = cx.saturating_sub(radius);
            let x1 = (cx + radius).min(cells - 1);
            let y0 = cy.saturating_sub(radius);
            let y1 = (cy + radius).min(cells - 1);
            for gy in y0..=y1 {
                for gx in x0..=x1 {
                    for &j in &buckets[gy * cells + gx] {
                        if j != i {
                            let d = (pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2);
                            cand.push((d, j));
                        }
                    }
                }
            }
            if cand.len() >= k || (x0 == 0 && y0 == 0 && x1 == cells - 1 && y1 == cells - 1) {
                break;
            }
            radius += 1;
        }
        cand.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for &(_, j) in cand.iter().take(k) {
            b.add_edge(
                VertexId::from_index(i),
                VertexId::from_index(j),
                weight_of(pts[i], pts[j]),
            );
        }
    }
    let mut g = b.build();
    g = connect_components(g, &pts, weights);
    g
}

/// Connects any remaining components by adding an edge between the closest
/// pair of vertices in different components (repeatedly, component by
/// component). Preserves determinism because it only depends on `pts`.
fn connect_components(g: Graph, pts: &[(f64, f64)], weights: WeightRange) -> Graph {
    let n = g.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut num_comp = 0usize;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![VertexId::from_index(start)];
        comp[start] = num_comp;
        while let Some(v) = stack.pop() {
            for arc in g.arcs(v) {
                if comp[arc.to.index()] == usize::MAX {
                    comp[arc.to.index()] = num_comp;
                    stack.push(arc.to);
                }
            }
        }
        num_comp += 1;
    }
    if num_comp <= 1 {
        return g;
    }
    let span = (weights.max - weights.min) as f64;
    let mut b = GraphBuilder::new(n);
    for (_, u, v, w) in g.edges() {
        b.add_edge(u, v, w);
    }
    // Greedily merge components 1..k into component 0 by the closest pair.
    let mut comp_of = comp;
    for target in 1..num_comp {
        let mut best: Option<(f64, usize, usize)> = None;
        for i in 0..n {
            if comp_of[i] != target {
                continue;
            }
            for j in 0..n {
                if comp_of[j] == target {
                    continue;
                }
                let d = (pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2);
                if best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, i, j));
                }
            }
        }
        if let Some((d, i, j)) = best {
            let t = (d.sqrt() / std::f64::consts::SQRT_2).clamp(0.0, 1.0);
            let w = (weights.min as f64 + t * span).round().max(1.0) as Weight;
            b.add_edge(VertexId::from_index(i), VertexId::from_index(j), w);
            // Relabel the merged component.
            let absorbed: Vec<usize> = (0..n).filter(|&x| comp_of[x] == target).collect();
            let new_label = comp_of[j];
            for x in absorbed {
                comp_of[x] = new_label;
            }
        }
    }
    b.build()
}

/// Named synthetic dataset presets mirroring the *roles* of Table I (small
/// city → national network) at laptop scale. Used by the experiment harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Preset {
    /// ~1k vertices; stand-in for a district network (quick tests).
    Tiny,
    /// ~4k vertices; stand-in for NY (small city).
    Small,
    /// ~16k vertices; stand-in for FLA/GD (state / province).
    Medium,
    /// ~64k vertices; stand-in for W/EC (multi-state region).
    Large,
}

impl Preset {
    /// Human-readable dataset name used in experiment output tables.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Tiny => "TINY-grid1k",
            Preset::Small => "SMALL-grid4k",
            Preset::Medium => "MEDIUM-grid16k",
            Preset::Large => "LARGE-grid64k",
        }
    }

    /// Builds the preset graph deterministically.
    pub fn build(self, seed: u64) -> Graph {
        let w = WeightRange::new(1, 100);
        match self {
            Preset::Tiny => grid_with_diagonals(32, 32, w, 0.1, seed),
            Preset::Small => grid_with_diagonals(64, 64, w, 0.1, seed),
            Preset::Medium => grid_with_diagonals(128, 128, w, 0.08, seed),
            Preset::Large => grid_with_diagonals(256, 256, w, 0.05, seed),
        }
    }

    /// All presets, smallest first.
    pub fn all() -> [Preset; 4] {
        [Preset::Tiny, Preset::Small, Preset::Medium, Preset::Large]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_connectivity() {
        let g = grid(5, 4, WeightRange::new(1, 9), 1);
        assert_eq!(g.num_vertices(), 20);
        // 4*(5-1) horizontal + 5*(4-1) vertical = 16 + 15 = 31
        assert_eq!(g.num_edges(), 31);
        assert!(g.is_connected());
        g.validate().unwrap();
    }

    #[test]
    fn grid_is_deterministic() {
        let a = grid(6, 6, WeightRange::new(1, 50), 7);
        let b = grid(6, 6, WeightRange::new(1, 50), 7);
        assert_eq!(a.total_weight(), b.total_weight());
        let c = grid(6, 6, WeightRange::new(1, 50), 8);
        // Different seed will almost surely differ in total weight.
        assert_ne!(a.total_weight(), c.total_weight());
    }

    #[test]
    fn grid_with_diagonals_adds_edges() {
        let plain = grid(10, 10, WeightRange::new(1, 10), 3);
        let diag = grid_with_diagonals(10, 10, WeightRange::new(1, 10), 1.0, 3);
        assert!(diag.num_edges() > plain.num_edges());
        assert!(diag.is_connected());
        diag.validate().unwrap();
    }

    #[test]
    fn ring_radial_connectivity() {
        let g = ring_radial(4, 8, WeightRange::new(1, 20), 5);
        assert_eq!(g.num_vertices(), 4 * 8 + 1);
        assert!(g.is_connected());
        g.validate().unwrap();
        // Center has degree == spokes.
        assert_eq!(g.degree(VertexId(0)), 8);
    }

    #[test]
    fn random_geometric_connected_and_sparse() {
        let g = random_geometric(300, 3, WeightRange::new(1, 100), 11);
        assert_eq!(g.num_vertices(), 300);
        assert!(g.is_connected());
        g.validate().unwrap();
        // Road-like sparsity: average degree stays small.
        let avg_deg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(avg_deg < 10.0, "average degree {avg_deg} too high");
    }

    #[test]
    fn random_geometric_deterministic() {
        let a = random_geometric(200, 3, WeightRange::new(1, 100), 2);
        let b = random_geometric(200, 3, WeightRange::new(1, 100), 2);
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.total_weight(), b.total_weight());
    }

    #[test]
    fn presets_build_connected_graphs() {
        for p in [Preset::Tiny, Preset::Small] {
            let g = p.build(1);
            assert!(g.is_connected(), "{} should be connected", p.name());
            assert!(g.num_vertices() >= 1000);
        }
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_min_weight_rejected() {
        let _ = WeightRange::new(0, 5);
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn inverted_weight_range_rejected() {
        let _ = WeightRange::new(10, 5);
    }
}
