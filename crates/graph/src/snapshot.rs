//! Versioned, checksummed index-snapshot format.
//!
//! Building a shortest-distance index at metro scale is the expensive step
//! of the serving pipeline — minutes of contraction and label computation
//! that a restart should not pay twice. This module is the wire layer for
//! *warm restart*: a hand-rolled binary writer/reader pair (no serde, same
//! discipline as the telemetry exposition formats) plus a self-describing
//! container that `htsp-throughput` uses to persist a built index next to
//! the graph it answers on.
//!
//! # File layout
//!
//! | section   | bytes | contents                                        |
//! |-----------|-------|-------------------------------------------------|
//! | magic     | 8     | `b"HTSPSNAP"`                                   |
//! | version   | 4     | format version, little-endian ([`FORMAT_VERSION`]) |
//! | length    | 8     | payload length in bytes                         |
//! | payload   | —     | algorithm name, build params, graph, index state |
//! | checksum  | 8     | FNV-1a-64 over the payload                      |
//!
//! Inside the payload every variable-length field is length-prefixed; the
//! graph section is the normalized edge list in edge-id order (so ids
//! round-trip exactly), and the index-state section is an opaque
//! per-algorithm blob produced by `IndexMaintainer::snapshot_state` (absent
//! for algorithms that rebuild deterministically from graph + params).
//!
//! # Error discipline
//!
//! Decoding never panics on hostile bytes: every read is bounds-checked
//! ([`ByteReader`] returns [`SnapshotError::Truncated`]), the magic,
//! version, and checksum are verified before the payload is interpreted,
//! and semantic violations (an edge endpoint past the vertex count, a
//! non-normalized pair, a zero weight) surface as
//! [`SnapshotError::Malformed`].

use crate::graph::Graph;
use crate::types::{VertexId, Weight};
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

/// Leading magic of every snapshot file.
pub const MAGIC: &[u8; 8] = b"HTSPSNAP";

/// Current snapshot format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors surfaced while reading or writing snapshots. Corrupt input is
/// always reported through one of these variants — never a panic.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The payload checksum does not match (bit rot or truncated rewrite).
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the payload actually read.
        computed: u64,
    },
    /// The input ended before a field could be read completely.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The bytes decoded but violate a semantic invariant.
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build supports {supported})"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64-bit hash — the snapshot payload checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian binary writer used by every snapshot encoder.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` length prefix followed by the raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(u32::try_from(bytes.len()).expect("section exceeds u32 length"));
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Finishes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Bounds-checked little-endian reader over a byte slice.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps `buf` at position 0.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self, context: &'static str) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(
            self.take(2, context)?.try_into().unwrap(),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    /// Reads a `u32`-length-prefixed byte section.
    pub fn get_bytes(&mut self, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        let len = self.get_u32(context)? as usize;
        self.take(len, context)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, context: &'static str) -> Result<String, SnapshotError> {
        let bytes = self.get_bytes(context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed(format!("{context}: invalid UTF-8")))
    }
}

/// Encodes a graph as its normalized edge list in edge-id order.
pub fn encode_graph(g: &Graph, w: &mut ByteWriter) {
    w.put_u32(g.num_vertices() as u32);
    w.put_u32(g.num_edges() as u32);
    for (_, u, v, weight) in g.edges() {
        w.put_u32(u.0);
        w.put_u32(v.0);
        w.put_u32(weight);
    }
}

/// Decodes a graph encoded by [`encode_graph`], validating every edge
/// (endpoints in range, normalized `u < v`, no duplicates, positive
/// weight). Edge ids are reproduced by position.
pub fn decode_graph(r: &mut ByteReader<'_>) -> Result<Graph, SnapshotError> {
    let n = r.get_u32("graph vertex count")? as usize;
    let m = r.get_u32("graph edge count")? as usize;
    if r.remaining() < m.saturating_mul(12) {
        return Err(SnapshotError::Truncated {
            context: "graph edge list",
        });
    }
    let mut edges = Vec::with_capacity(m);
    let mut weights: Vec<Weight> = Vec::with_capacity(m);
    let mut seen = rustc_hash::FxHashSet::default();
    seen.reserve(m);
    for i in 0..m {
        let u = r.get_u32("graph edge endpoint")?;
        let v = r.get_u32("graph edge endpoint")?;
        let w = r.get_u32("graph edge weight")?;
        if u >= v {
            return Err(SnapshotError::Malformed(format!(
                "edge {i}: endpoints ({u}, {v}) not normalized"
            )));
        }
        if v as usize >= n {
            return Err(SnapshotError::Malformed(format!(
                "edge {i}: endpoint {v} out of range for {n} vertices"
            )));
        }
        if w == 0 {
            return Err(SnapshotError::Malformed(format!("edge {i}: zero weight")));
        }
        if !seen.insert((u, v)) {
            return Err(SnapshotError::Malformed(format!(
                "edge {i}: duplicate edge ({u}, {v})"
            )));
        }
        edges.push((VertexId(u), VertexId(v)));
        weights.push(w);
    }
    Ok(Graph::from_normalized_edges(n, edges, weights))
}

/// One persisted index: everything warm restart needs to re-publish a
/// query view without rebuilding.
#[derive(Debug)]
pub struct IndexSnapshot {
    /// Registry name of the algorithm (e.g. `"DCH"`).
    pub algorithm: String,
    /// Opaque encoding of the build parameters (decoded by the registry).
    pub params: Vec<u8>,
    /// The graph the index answers on, with edge ids preserved.
    pub graph: Graph,
    /// Opaque per-algorithm index state; `None` for algorithms that rebuild
    /// deterministically from `graph` + `params`.
    pub state: Option<Vec<u8>>,
}

impl IndexSnapshot {
    /// Serializes the snapshot into the framed, checksummed file format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = ByteWriter::new();
        payload.put_str(&self.algorithm);
        payload.put_bytes(&self.params);
        encode_graph(&self.graph, &mut payload);
        match &self.state {
            Some(state) => {
                payload.put_u8(1);
                payload.put_bytes(state);
            }
            None => payload.put_u8(0),
        }
        let payload = payload.into_bytes();
        let mut out = Vec::with_capacity(payload.len() + 28);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out
    }

    /// Parses and verifies a snapshot file image (magic, version, length,
    /// checksum, then payload semantics).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take(8, "magic")?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.get_u32("format version")?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let payload_len = r.get_u64("payload length")? as usize;
        if r.remaining() < payload_len + 8 {
            return Err(SnapshotError::Truncated { context: "payload" });
        }
        let payload = r.take(payload_len, "payload")?;
        let stored = r.get_u64("checksum")?;
        let computed = fnv1a64(payload);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        let mut p = ByteReader::new(payload);
        let algorithm = p.get_str("algorithm name")?;
        let params = p.get_bytes("build params")?.to_vec();
        let graph = decode_graph(&mut p)?;
        let state = match p.get_u8("state flag")? {
            0 => None,
            1 => Some(p.get_bytes("index state")?.to_vec()),
            other => {
                return Err(SnapshotError::Malformed(format!(
                    "unknown state flag {other}"
                )))
            }
        };
        Ok(IndexSnapshot {
            algorithm,
            params,
            graph,
            state,
        })
    }

    /// Writes the snapshot to `path` (tmp-file-free single write; callers
    /// that need atomicity write to a sibling and rename).
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Reads and verifies a snapshot from `path`.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn sample() -> IndexSnapshot {
        IndexSnapshot {
            algorithm: "DCH".to_string(),
            params: vec![1, 2, 3],
            graph: gen::grid(6, 6, gen::WeightRange::default(), 5),
            state: Some(vec![9; 100]),
        }
    }

    #[test]
    fn round_trip() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = IndexSnapshot::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.algorithm, "DCH");
        assert_eq!(back.params, vec![1, 2, 3]);
        assert_eq!(back.state.as_deref(), Some(&[9u8; 100][..]));
        assert_eq!(back.graph.num_edges(), snap.graph.num_edges());
        for (e, u, v, w) in snap.graph.edges() {
            assert_eq!(back.graph.edge_endpoints(e), (u, v));
            assert_eq!(back.graph.edge_weight(e), w);
        }
    }

    #[test]
    fn stateless_round_trip() {
        let mut snap = sample();
        snap.state = None;
        let back = IndexSnapshot::from_bytes(&snap.to_bytes()).expect("round trip");
        assert!(back.state.is_none());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            IndexSnapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 0xFF;
        assert!(matches!(
            IndexSnapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { found, supported })
                if found != FORMAT_VERSION && supported == FORMAT_VERSION
        ));
    }

    #[test]
    fn corruption_fails_the_checksum() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            IndexSnapshot::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn every_truncation_point_is_a_typed_error() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            let err = IndexSnapshot::from_bytes(&bytes[..len])
                .expect_err("every strict prefix must fail");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. }
                        | SnapshotError::ChecksumMismatch { .. }
                        | SnapshotError::BadMagic
                        | SnapshotError::UnsupportedVersion { .. }
                ),
                "prefix of {len} bytes produced unexpected error: {err}"
            );
        }
    }

    #[test]
    fn malformed_graph_sections_are_rejected() {
        // Hand-assemble a payload with an out-of-range endpoint.
        let mut payload = ByteWriter::new();
        payload.put_str("DCH");
        payload.put_bytes(&[]);
        payload.put_u32(2); // n
        payload.put_u32(1); // m
        payload.put_u32(0);
        payload.put_u32(7); // v = 7 out of range
        payload.put_u32(1);
        payload.put_u8(0);
        let payload = payload.into_bytes();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        assert!(matches!(
            IndexSnapshot::from_bytes(&bytes),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn writer_reader_primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u16("b").unwrap(), 300);
        assert_eq!(r.get_u32("c").unwrap(), 70_000);
        assert_eq!(r.get_u64("d").unwrap(), 1 << 40);
        assert_eq!(r.get_str("e").unwrap(), "héllo");
        assert_eq!(r.remaining(), 0);
        assert!(matches!(
            r.get_u8("past end"),
            Err(SnapshotError::Truncated {
                context: "past end"
            })
        ));
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for the FNV-1a 64-bit parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
