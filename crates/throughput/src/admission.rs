//! Admission control for the batched serving front-end: what happens when
//! requests arrive faster than the [`DistanceService`](crate::DistanceService)
//! workers can answer them.
//!
//! An unbounded FIFO queue turns overload into *silent latency*: every
//! request is eventually answered, but the queue — and with it the
//! submit-to-answer latency of everything behind it — grows without bound.
//! Closed-loop benchmarks never see this (they only submit after the
//! previous answer returns); an open-loop arrival process does, immediately.
//! The [`AdmissionPolicy`] makes the overload decision explicit:
//!
//! | policy | queue | overload behaviour | latency under overload |
//! |---|---|---|---|
//! | [`Block`](AdmissionPolicy::Block) | unbounded | everything queues | unbounded (collapse) |
//! | [`Shed`](AdmissionPolicy::Shed) | bounded at `max_depth` | excess rejected at submit | bounded by `max_depth × service time` |
//! | [`Deadline`](AdmissionPolicy::Deadline) | unbounded | stale work discarded | bounded by `budget` |
//!
//! Every rejection is explicit: [`SubmitOutcome`] tells the submitter
//! whether the batch was accepted (with a ticket), shed, or already expired,
//! and [`ServiceStats`] counts each path so reports can show queue depth,
//! shed rate, and deadline misses next to goodput.

use crate::service::BatchTicket;

/// The overload policy of a [`DistanceService`](crate::DistanceService)
/// queue (see the [module docs](self) for the policy matrix).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum AdmissionPolicy {
    /// Unbounded FIFO: every submitted batch is queued and eventually
    /// answered. Overload shows up as unbounded queueing latency — the
    /// legacy (and default) behaviour.
    #[default]
    Block,
    /// Bounded queue: a batch submitted while the queue already holds
    /// `max_depth` jobs is rejected with [`SubmitOutcome::Shed`].
    /// Queueing latency stays bounded by `max_depth` service times.
    Shed {
        /// Maximum number of queued (not yet executing) jobs.
        max_depth: usize,
    },
    /// Every batch carries the deadline `generated_at + budget`. Batches
    /// already expired at submission are rejected with
    /// [`SubmitOutcome::Expired`]; batches whose deadline passes while they
    /// wait in the queue are discarded by the workers *without being
    /// executed* and resolve to
    /// [`BatchResult::Expired`](crate::BatchResult::Expired).
    Deadline {
        /// Submit-to-answer latency budget.
        budget: std::time::Duration,
    },
}

impl AdmissionPolicy {
    /// Short label for reports (`"block"`, `"shed(64)"`, `"deadline(50ms)"`).
    pub fn label(&self) -> String {
        match self {
            AdmissionPolicy::Block => "block".to_string(),
            AdmissionPolicy::Shed { max_depth } => format!("shed({max_depth})"),
            AdmissionPolicy::Deadline { budget } => format!("deadline({budget:?})"),
        }
    }
}

/// The admission decision for one submitted batch; returned by
/// [`DistanceService::try_submit`](crate::DistanceService::try_submit).
#[derive(Debug)]
pub enum SubmitOutcome {
    /// The batch was queued; the ticket yields its
    /// [`BatchResult`](crate::BatchResult).
    Accepted(BatchTicket),
    /// The queue was at its [`Shed`](AdmissionPolicy::Shed) bound; the batch
    /// was rejected without being queued.
    Shed,
    /// The batch's [`Deadline`](AdmissionPolicy::Deadline) had already
    /// passed at submission; it was rejected without being queued.
    Expired,
}

impl SubmitOutcome {
    /// `true` when the batch was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, SubmitOutcome::Accepted(_))
    }

    /// The ticket, when accepted.
    pub fn ticket(self) -> Option<BatchTicket> {
        match self {
            SubmitOutcome::Accepted(t) => Some(t),
            _ => None,
        }
    }

    /// The ticket; panics when the batch was rejected.
    ///
    /// # Panics
    ///
    /// Panics on [`SubmitOutcome::Shed`] / [`SubmitOutcome::Expired`].
    pub fn expect_accepted(self) -> BatchTicket {
        match self {
            SubmitOutcome::Accepted(t) => t,
            other => panic!("batch was not accepted: {other:?}"),
        }
    }
}

/// Counters of every admission and execution path of a
/// [`DistanceService`](crate::DistanceService), snapshotted by
/// [`DistanceService::stats`](crate::DistanceService::stats).
///
/// Invariant: `submitted = accepted + shed + expired_at_submit`, and every
/// accepted job resolves exactly once as answered, expired-in-queue, or
/// abandoned-at-shutdown.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Batches offered to the service (all `submit*` calls).
    pub submitted: u64,
    /// Batches admitted to the queue.
    pub accepted: u64,
    /// Batches rejected at submit because the queue was at its bound.
    pub shed: u64,
    /// Batches rejected at submit because their deadline had passed.
    pub expired_at_submit: u64,
    /// Accepted batches discarded unexecuted because their deadline passed
    /// while they waited in the queue.
    pub expired_in_queue: u64,
    /// Accepted batches discarded unexecuted by a shedding shutdown.
    pub abandoned: u64,
    /// Batches answered by a worker.
    pub answered: u64,
    /// Total `(s, t)` pairs inside answered batches (goodput numerator).
    pub answered_pairs: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// High-water mark of the queue depth.
    pub max_queue_depth: usize,
}

/// What [`DistanceService::shutdown`](crate::DistanceService::shutdown) did
/// with the jobs still queued when shutdown was flagged.
#[derive(Clone, Copy, Debug)]
pub struct ShutdownReport {
    /// Jobs still queued at shutdown that were drained — executed and
    /// answered — before the workers exited (the
    /// [`Block`](AdmissionPolicy::Block) path).
    pub drained: usize,
    /// Jobs still queued at shutdown that were discarded unexecuted, their
    /// tickets resolved to
    /// [`BatchResult::Abandoned`](crate::BatchResult::Abandoned) (the
    /// [`Shed`](AdmissionPolicy::Shed) / [`Deadline`](AdmissionPolicy::Deadline)
    /// path).
    pub abandoned: usize,
}
