//! The first-class algorithm registry: every dynamic shortest-distance index
//! in the repository, constructible by name through one factory.
//!
//! [`AlgorithmKind`] enumerates the nine algorithms of the paper's comparison
//! (§VII) and [`AlgorithmKind::build`] turns a kind plus [`BuildParams`] into
//! a boxed [`IndexMaintainer`]. This is the registry the
//! [`RoadNetworkServer`](crate::RoadNetworkServer) builder consumes, and it
//! replaces the hand-rolled constructor lists that used to live in
//! `htsp-bench` and the integration tests: one place decides how a name maps
//! to index machinery, everywhere else says *which* index it wants.

use htsp_baselines::{BiDijkstraBaseline, DchBaseline, Dh2hBaseline, ToainBaseline};
use htsp_core::{Mhl, Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp_graph::{ByteReader, ByteWriter, Graph, IndexMaintainer, SnapshotError, WorkerPool};
use htsp_partition::TdPartitionConfig;
use htsp_psp::{NChP, PTdP};

/// One of the nine dynamic shortest-distance algorithms of the paper's
/// evaluation, identified independently of its construction parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Index-free bidirectional Dijkstra (no repair cost, slow queries).
    BiDijkstra,
    /// Dynamic Contraction Hierarchies.
    Dch,
    /// Dynamic H2H labelling.
    Dh2h,
    /// TOAIN (SCOB-adapted capped CH).
    Toain,
    /// No-boundary partitioned CH (N-CH-P).
    NChP,
    /// Pre-boundary partitioned tree decomposition (P-TD-P).
    PTdP,
    /// Multi-stage Hierarchical Labelling (single-machine MHL).
    Mhl,
    /// Partitioned MHL — one of the paper's contributions.
    Pmhl,
    /// Post-boundary MHL — the paper's headline contribution.
    PostMhl,
}

/// Construction parameters shared by the whole registry.
///
/// Every algorithm reads the subset it needs: the partitioned indexes take
/// `num_partitions` / `seed`, the parallel maintainers take `num_threads`,
/// TOAIN takes its contraction `toain_level_cap`, and PostMHL derives its
/// TD-partitioning configuration from `num_partitions` and
/// `postmhl_bandwidth`.
#[derive(Clone, Copy, Debug)]
pub struct BuildParams {
    /// Partition count `k` for PMHL / N-CH-P / P-TD-P (PostMHL's expected
    /// partition count `k_e` is derived as `max(4k, 8)`).
    pub num_partitions: usize,
    /// Worker threads for partition-parallel maintenance stages.
    pub num_threads: usize,
    /// Partitioner seed.
    pub seed: u64,
    /// TOAIN contraction level cap.
    pub toain_level_cap: usize,
    /// PostMHL TD-partitioning bandwidth `τ`.
    pub postmhl_bandwidth: usize,
}

impl Default for BuildParams {
    fn default() -> Self {
        BuildParams {
            num_partitions: 8,
            num_threads: htsp_graph::available_parallelism(),
            seed: 1,
            toain_level_cap: 64,
            postmhl_bandwidth: 16,
        }
    }
}

impl BuildParams {
    /// Convenience constructor for the two knobs almost every caller sets.
    pub fn new(num_partitions: usize, num_threads: usize) -> Self {
        BuildParams {
            num_partitions,
            num_threads,
            ..BuildParams::default()
        }
    }

    /// Worker threads for construction and partition-parallel maintenance
    /// (≥ 1). This is the thread count [`AlgorithmKind::build`] sizes its
    /// [`WorkerPool`] with; the built index is identical at any value.
    pub fn threads(&self) -> usize {
        self.num_threads.max(1)
    }

    /// Scales the parameters down for one shard of a
    /// [`ShardedFleet`](crate::fleet::ShardedFleet): partition-based shard
    /// indexes must not over-partition the (much smaller) shard subgraph, so
    /// the partition count is clamped to keep roughly 16 vertices per inner
    /// partition, and the per-shard thread count is capped at 2 since the
    /// fleet already runs one maintenance thread per shard.
    pub fn for_shard(&self, shard_vertices: usize) -> BuildParams {
        let cap = (shard_vertices / 16).clamp(2, self.num_partitions.max(2));
        BuildParams {
            num_partitions: self.num_partitions.min(cap),
            num_threads: self.num_threads.min(2),
            ..*self
        }
    }

    /// The PMHL configuration these parameters describe.
    pub fn pmhl_config(&self) -> PmhlConfig {
        PmhlConfig {
            num_partitions: self.num_partitions,
            num_threads: self.num_threads,
            seed: self.seed,
        }
    }

    /// Serializes the parameters into a snapshot payload section.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u32(self.num_partitions as u32);
        w.put_u32(self.num_threads as u32);
        w.put_u64(self.seed);
        w.put_u32(self.toain_level_cap as u32);
        w.put_u32(self.postmhl_bandwidth as u32);
    }

    /// Serializes the parameters to a standalone byte vector (the `params`
    /// section of an [`htsp_graph::IndexSnapshot`]).
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Deserializes parameters produced by [`Self::to_snapshot_bytes`].
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        let params = BuildParams {
            num_partitions: r.get_u32("build params partitions")? as usize,
            num_threads: r.get_u32("build params threads")? as usize,
            seed: r.get_u64("build params seed")?,
            toain_level_cap: r.get_u32("build params toain cap")? as usize,
            postmhl_bandwidth: r.get_u32("build params postmhl bandwidth")? as usize,
        };
        if r.remaining() != 0 {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes after build params",
                r.remaining()
            )));
        }
        Ok(params)
    }

    /// The PostMHL configuration these parameters describe.
    pub fn postmhl_config(&self) -> PostMhlConfig {
        PostMhlConfig {
            partitioning: TdPartitionConfig {
                bandwidth: self.postmhl_bandwidth,
                expected_partitions: (self.num_partitions * 4).max(8),
                beta_lower: 0.1,
                beta_upper: 2.0,
            },
            num_threads: self.num_threads,
        }
    }
}

impl AlgorithmKind {
    /// Every algorithm of the paper's comparison, in the canonical table
    /// order (baselines first, the paper's contributions last).
    pub const ALL: [AlgorithmKind; 9] = [
        AlgorithmKind::BiDijkstra,
        AlgorithmKind::Dch,
        AlgorithmKind::Dh2h,
        AlgorithmKind::Toain,
        AlgorithmKind::NChP,
        AlgorithmKind::PTdP,
        AlgorithmKind::Mhl,
        AlgorithmKind::Pmhl,
        AlgorithmKind::PostMhl,
    ];

    /// The paper's contributions only (PMHL + PostMHL).
    pub const OURS: [AlgorithmKind; 2] = [AlgorithmKind::Pmhl, AlgorithmKind::PostMhl];

    /// Everything except the slowest baselines (used on larger presets).
    pub const FAST: [AlgorithmKind; 6] = [
        AlgorithmKind::Dch,
        AlgorithmKind::Dh2h,
        AlgorithmKind::NChP,
        AlgorithmKind::PTdP,
        AlgorithmKind::Pmhl,
        AlgorithmKind::PostMhl,
    ];

    /// The table name of the algorithm; matches
    /// [`IndexMaintainer::name`] of the built maintainer.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::BiDijkstra => "BiDijkstra",
            AlgorithmKind::Dch => "DCH",
            AlgorithmKind::Dh2h => "DH2H",
            AlgorithmKind::Toain => "TOAIN",
            AlgorithmKind::NChP => "N-CH-P",
            AlgorithmKind::PTdP => "P-TD-P",
            AlgorithmKind::Mhl => "MHL",
            AlgorithmKind::Pmhl => "PMHL",
            AlgorithmKind::PostMhl => "PostMHL",
        }
    }

    /// Resolves a table name (as produced by [`AlgorithmKind::name`],
    /// case-insensitively) back to its kind.
    pub fn from_name(name: &str) -> Option<AlgorithmKind> {
        AlgorithmKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name))
    }

    /// Builds the index machinery of this kind over `graph`.
    ///
    /// Construction is the expensive step (seconds at laptop scale for the
    /// labelled indexes); the returned maintainer is ready to serve through
    /// [`IndexMaintainer::current_view`] and to be repaired through
    /// `apply_batch`.
    pub fn build(self, graph: &Graph, params: &BuildParams) -> Box<dyn IndexMaintainer> {
        let pool = WorkerPool::new(params.threads());
        self.build_pooled(graph, params, &pool)
    }

    /// Builds the index machinery of this kind with construction stages
    /// running on `pool`.
    ///
    /// The determinism contract of the parallel-construction subsystem: the
    /// built index — its answers, and for the native-codec kinds its
    /// serialized state bytes — is identical at every thread count. The pool
    /// only changes how many construction tasks are in flight, never which
    /// tasks exist or how their outputs combine.
    pub fn build_pooled(
        self,
        graph: &Graph,
        params: &BuildParams,
        pool: &WorkerPool,
    ) -> Box<dyn IndexMaintainer> {
        match self {
            AlgorithmKind::BiDijkstra => Box::new(BiDijkstraBaseline::new(graph)),
            AlgorithmKind::Dch => Box::new(DchBaseline::build_pooled(graph, pool)),
            AlgorithmKind::Dh2h => Box::new(Dh2hBaseline::build_pooled(graph, pool)),
            AlgorithmKind::Toain => Box::new(ToainBaseline::build_pooled(
                graph,
                params.toain_level_cap,
                pool,
            )),
            AlgorithmKind::NChP => Box::new(NChP::build_pooled(
                graph,
                params.num_partitions,
                params.seed,
                pool,
            )),
            AlgorithmKind::PTdP => Box::new(PTdP::build_pooled(
                graph,
                params.num_partitions,
                params.seed,
                pool,
            )),
            AlgorithmKind::Mhl => Box::new(Mhl::build_pooled(graph, pool)),
            AlgorithmKind::Pmhl => Box::new(Pmhl::build_pooled(graph, params.pmhl_config(), pool)),
            AlgorithmKind::PostMhl => {
                Box::new(PostMhl::build_pooled(graph, params.postmhl_config(), pool))
            }
        }
    }

    /// Restores the index machinery of this kind from a snapshot.
    ///
    /// Kinds with a native serialized form (DCH, TOAIN, DH2H, MHL) decode
    /// `state` and skip construction entirely — the warm-restart fast path.
    /// The remaining kinds rebuild deterministically from the snapshotted
    /// graph and `params`; BiDijkstra has no index state at all. Corrupt
    /// `state` bytes surface as a typed [`SnapshotError`], never a panic.
    pub fn restore(
        self,
        graph: &Graph,
        params: &BuildParams,
        state: Option<&[u8]>,
    ) -> Result<Box<dyn IndexMaintainer>, SnapshotError> {
        let state = match state {
            Some(bytes) => bytes,
            None => return Ok(self.build(graph, params)),
        };
        Ok(match self {
            AlgorithmKind::Dch => Box::new(DchBaseline::from_state(graph, state)?),
            AlgorithmKind::Toain => Box::new(ToainBaseline::from_state(graph, state)?),
            AlgorithmKind::Dh2h => Box::new(Dh2hBaseline::from_state(graph, state)?),
            AlgorithmKind::Mhl => Box::new(Mhl::from_state(graph, state)?),
            // No native codec: the stored state (if any) is ignored and the
            // index is rebuilt from the snapshotted graph.
            _ => self.build(graph, params),
        })
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, WeightRange};

    #[test]
    fn names_round_trip_and_match_the_maintainers() {
        let g = grid(6, 6, WeightRange::new(1, 10), 2);
        let params = BuildParams::new(2, 1);
        for kind in AlgorithmKind::ALL {
            assert_eq!(AlgorithmKind::from_name(kind.name()), Some(kind));
            let maintainer = kind.build(&g, &params);
            assert_eq!(maintainer.name(), kind.name(), "{kind:?} name mismatch");
            assert!(maintainer.num_query_stages() >= 1);
        }
        assert_eq!(
            AlgorithmKind::from_name("postmhl"),
            Some(AlgorithmKind::PostMhl)
        );
        assert_eq!(AlgorithmKind::from_name("nope"), None);
    }

    #[test]
    fn subsets_are_subsets_of_all() {
        for k in AlgorithmKind::OURS.iter().chain(AlgorithmKind::FAST.iter()) {
            assert!(AlgorithmKind::ALL.contains(k));
        }
    }
}
