//! The throughput harness: drives a [`RoadNetworkServer`] through a sequence
//! of update batches (submitted through the server's update feed), measures
//! its staged availability and per-stage query latency via [`QueryView`]
//! snapshots, and evaluates the throughput metrics of §VII. (For *measured*
//! concurrent throughput, see [`crate::engine::QueryEngine`].)

use crate::config::SystemConfig;
use crate::fleet::ShardedFleet;
use crate::model::{lemma1_bound, staged_throughput, QueryStats};
use crate::server::RoadNetworkServer;
use htsp_graph::{QuerySession, QuerySet, QueryView, UpdateGenerator};
use std::time::{Duration, Instant};

/// One point of the QPS-evolution curve (Fig. 13): at `elapsed` seconds after
/// the batch arrived, the available query stage sustains `qps` queries/second.
#[derive(Clone, Copy, Debug)]
pub struct QpsPoint {
    /// Seconds since the batch arrival at which this stage became available.
    pub elapsed: f64,
    /// Sustained queries per second of that stage (`1 / t_q`).
    pub qps: f64,
}

/// The measured outcome of one update batch.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Total update time `t_u` in seconds.
    pub update_time: f64,
    /// Per-stage `(stage duration, stage query time)` pairs in completion
    /// order; the stage query time is measured right after the stage ends.
    pub stages: Vec<(f64, f64)>,
    /// Query statistics of the final (fastest) stage.
    pub final_stats: QueryStats,
    /// Tail (p95) query latency of the final stage in seconds, from a
    /// [`LatencyHistogram`](crate::LatencyHistogram) over the same samples
    /// as [`BatchOutcome::final_stats`] — the quantity the open-loop SLO
    /// sweeps bound, next to the model's mean.
    pub p95_query_time: f64,
    /// QPS evolution samples across the maintenance window.
    pub qps_evolution: Vec<QpsPoint>,
}

/// Aggregated result over all batches for one algorithm.
#[derive(Clone, Debug)]
pub struct ThroughputResult {
    /// Algorithm name.
    pub algorithm: String,
    /// Average update time `t_u` (seconds).
    pub avg_update_time: f64,
    /// Average final-stage query time `t_q` (seconds).
    pub avg_query_time: f64,
    /// Lemma 1 throughput bound `λ*_q` (queries/second).
    pub lemma1_throughput: f64,
    /// Staged throughput (queries/second over the interval, Figure 1 area).
    pub staged_throughput: f64,
    /// Index size in bytes after the last batch.
    pub index_size_bytes: usize,
    /// Per-batch details.
    pub batches: Vec<BatchOutcome>,
}

impl ThroughputResult {
    /// The throughput estimate used in the comparison figures: the Lemma 1
    /// QoS bound capped by the staged service capacity.
    pub fn throughput(&self) -> f64 {
        self.lemma1_throughput.min(self.staged_throughput)
    }
}

/// Drives indexes through batches and measures throughput.
pub struct ThroughputHarness {
    /// System-model parameters.
    pub config: SystemConfig,
    /// Seed for workload generation.
    pub seed: u64,
    /// Number of update batches to replay.
    pub num_batches: usize,
}

impl ThroughputHarness {
    /// Creates a harness with the given configuration.
    pub fn new(config: SystemConfig, seed: u64, num_batches: usize) -> Self {
        ThroughputHarness {
            config,
            seed,
            num_batches,
        }
    }

    /// Measures per-query latencies (seconds) of `view` over a query sample.
    fn measure_queries(view: &dyn QueryView, queries: &QuerySet) -> Vec<f64> {
        let mut samples = Vec::with_capacity(queries.len());
        for q in queries {
            let t = Instant::now();
            let _ = view.distance(q.source, q.target);
            samples.push(t.elapsed().as_secs_f64());
        }
        samples
    }

    /// Runs the full measurement against a live [`RoadNetworkServer`]:
    /// `num_batches` update batches are generated from the server's graph,
    /// submitted through its update feed (one forced batch boundary per
    /// round), and query latency is measured per stage through the server's
    /// index-introspection hook. Returns the aggregated result.
    pub fn run(&self, server: &RoadNetworkServer) -> ThroughputResult {
        let mut gen = UpdateGenerator::new(self.seed);
        let (queries, stage_sample) = server.with_graph(|g| {
            (
                QuerySet::random(g, self.config.query_sample, self.seed ^ 0x5eed),
                QuerySet::random(
                    g,
                    (self.config.query_sample / 4).max(10),
                    self.seed ^ 0xabcd,
                ),
            )
        });

        let mut batches = Vec::with_capacity(self.num_batches);
        for _ in 0..self.num_batches {
            let batch = server.with_graph(|g| gen.generate(g, self.config.update_volume));
            // The model harness is sequential: submit the round's updates,
            // force the batch boundary, and wait for the staged repair;
            // per-stage speed is measured afterwards.
            server.feed().submit_all(batch.as_slice().iter().copied());
            let outcome = server.feed().flush().wait_applied();
            let publications = server.publisher().take_log();
            let timeline = &outcome.timeline;
            let update_time = timeline.total().as_secs_f64();
            let apply_start = outcome.apply_start;

            // Each query stage's average latency over the (fully repaired)
            // current data, measured with exclusive access to the index
            // between batches.
            let sample = stage_sample.clone();
            let stage_latency: Vec<f64> = server.with_index(move |index| {
                (0..index.num_query_stages())
                    .map(|stage| {
                        let view = index.view_at_stage(stage);
                        let t = Instant::now();
                        for q in &sample {
                            let _ = view.distance(q.source, q.target);
                        }
                        t.elapsed().as_secs_f64() / sample.len().max(1) as f64
                    })
                    .collect()
            });

            // Per-stage query time: the query stage available at the end of
            // timeline stage i is the one most recently *published* by then
            // (update stages that release no machinery — e.g. PostMHL's
            // overlay pass — keep the previous stage's speed). The stage-end
            // instants are reconstructed from the stage durations, which
            // under-estimates them by untimed gaps, so a publication is
            // never credited early; the final stage is by contract the
            // fully-repaired one.
            let n_qstages = server.num_query_stages();
            let mut stages = Vec::with_capacity(timeline.stages.len());
            let mut qps_evolution = Vec::new();
            let mut elapsed = 0.0;
            let mut current_qstage = 0usize;
            for (i, s) in timeline.stages.iter().enumerate() {
                elapsed += s.duration.as_secs_f64();
                let stage_end = apply_start + Duration::from_secs_f64(elapsed);
                if let Some(e) = publications.iter().rfind(|e| e.at <= stage_end) {
                    current_qstage = e.stage;
                }
                let qstage = if i + 1 == timeline.stages.len() {
                    n_qstages - 1
                } else {
                    current_qstage.min(n_qstages - 1)
                };
                let tq = stage_latency[qstage.min(stage_latency.len() - 1)];
                stages.push((s.duration.as_secs_f64(), tq));
                qps_evolution.push(QpsPoint {
                    elapsed,
                    qps: if tq > 0.0 { 1.0 / tq } else { f64::INFINITY },
                });
            }
            // Final-stage statistics over the full sample, against the
            // published (fully repaired) snapshot.
            let samples = Self::measure_queries(&*server.snapshot(), &queries);
            let final_stats = QueryStats::from_samples(&samples);
            let mut tail = crate::slo::LatencyHistogram::new();
            for s in &samples {
                tail.record(Duration::from_secs_f64(*s));
            }
            batches.push(BatchOutcome {
                update_time,
                stages,
                final_stats,
                p95_query_time: tail.quantile(0.95).as_secs_f64(),
                qps_evolution,
            });
        }

        let avg_update_time =
            batches.iter().map(|b| b.update_time).sum::<f64>() / batches.len().max(1) as f64;
        let avg_query_time =
            batches.iter().map(|b| b.final_stats.mean).sum::<f64>() / batches.len().max(1) as f64;
        let avg_variance = batches.iter().map(|b| b.final_stats.variance).sum::<f64>()
            / batches.len().max(1) as f64;
        let stats = QueryStats {
            mean: avg_query_time,
            variance: avg_variance,
        };
        let lemma1 = lemma1_bound(
            stats,
            avg_update_time,
            self.config.update_interval,
            self.config.max_response_time,
        );
        // Staged throughput averaged over batches.
        let staged = batches
            .iter()
            .map(|b| staged_throughput(&b.stages, b.final_stats.mean, self.config.update_interval))
            .sum::<f64>()
            / batches.len().max(1) as f64;

        ThroughputResult {
            algorithm: server.algorithm().to_string(),
            avg_update_time,
            avg_query_time,
            lemma1_throughput: lemma1,
            staged_throughput: staged,
            index_size_bytes: server.with_index(|index| index.index_size_bytes()),
            batches,
        }
    }

    /// Runs the measurement against a [`ShardedFleet`]: each round's batch
    /// goes through the fleet router (shard fan-out + overlay maintenance)
    /// and query latency is measured through a fleet session pinned to the
    /// resulting epoch.
    ///
    /// A fleet session always serves the final (fully repaired) epoch, so
    /// each batch reports exactly one stage whose duration is the full
    /// round-trip repair time (submit → epoch published); the staged
    /// throughput therefore degenerates to the Lemma 1 shape, which is the
    /// honest model for the tier.
    pub fn run_sharded(&self, fleet: &ShardedFleet) -> ThroughputResult {
        let mut gen = UpdateGenerator::new(self.seed);
        let graph = fleet.session().graph().clone();
        let queries = QuerySet::random(&graph, self.config.query_sample, self.seed ^ 0x5eed);

        let mut batches = Vec::with_capacity(self.num_batches);
        for _ in 0..self.num_batches {
            let batch = {
                let session = fleet.session();
                gen.generate(session.graph(), self.config.update_volume)
            };
            let submit = Instant::now();
            fleet.router().submit_all(batch.as_slice().iter().copied());
            fleet.flush().wait_applied();
            let update_time = submit.elapsed().as_secs_f64();

            let mut session = fleet.session();
            let mut samples = Vec::with_capacity(queries.len());
            for q in &queries {
                let t = Instant::now();
                let _ = session.distance(q.source, q.target);
                samples.push(t.elapsed().as_secs_f64());
            }
            let final_stats = QueryStats::from_samples(&samples);
            let tq = final_stats.mean;
            let mut tail = crate::slo::LatencyHistogram::new();
            for s in &samples {
                tail.record(Duration::from_secs_f64(*s));
            }
            batches.push(BatchOutcome {
                update_time,
                stages: vec![(update_time, tq)],
                final_stats,
                p95_query_time: tail.quantile(0.95).as_secs_f64(),
                qps_evolution: vec![QpsPoint {
                    elapsed: update_time,
                    qps: if tq > 0.0 { 1.0 / tq } else { f64::INFINITY },
                }],
            });
        }

        let avg_update_time =
            batches.iter().map(|b| b.update_time).sum::<f64>() / batches.len().max(1) as f64;
        let avg_query_time =
            batches.iter().map(|b| b.final_stats.mean).sum::<f64>() / batches.len().max(1) as f64;
        let avg_variance = batches.iter().map(|b| b.final_stats.variance).sum::<f64>()
            / batches.len().max(1) as f64;
        let stats = QueryStats {
            mean: avg_query_time,
            variance: avg_variance,
        };
        let lemma1 = lemma1_bound(
            stats,
            avg_update_time,
            self.config.update_interval,
            self.config.max_response_time,
        );
        let staged = batches
            .iter()
            .map(|b| staged_throughput(&b.stages, b.final_stats.mean, self.config.update_interval))
            .sum::<f64>()
            / batches.len().max(1) as f64;

        ThroughputResult {
            algorithm: fleet.algorithm(),
            avg_update_time,
            avg_query_time,
            lemma1_throughput: lemma1,
            staged_throughput: staged,
            index_size_bytes: fleet.index_size_bytes(),
            batches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::{
        Dist, Graph, IndexMaintainer, SnapshotPublisher, UpdateBatch, UpdateTimeline, VertexId,
    };
    use std::sync::Arc;

    /// A trivial index used to exercise the harness deterministically.
    struct Fake {
        graph: Arc<Graph>,
    }

    struct FakeView {
        graph: Arc<Graph>,
    }

    impl QueryView for FakeView {
        fn algorithm(&self) -> &'static str {
            "fake"
        }
        fn stage(&self) -> usize {
            0
        }
        fn distance(&self, _s: VertexId, _t: VertexId) -> Dist {
            Dist(1)
        }
        fn session(&self) -> Box<dyn htsp_graph::QuerySession + '_> {
            Box::new(htsp_graph::FallbackSession::new(self))
        }
        fn graph(&self) -> &Graph {
            &self.graph
        }
    }

    impl IndexMaintainer for Fake {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn apply_batch(
            &mut self,
            _g: &Graph,
            batch: &UpdateBatch,
            publisher: &SnapshotPublisher,
        ) -> UpdateTimeline {
            Arc::make_mut(&mut self.graph).apply_batch(batch);
            publisher.publish(self.current_view());
            UpdateTimeline::single("noop", std::time::Duration::from_micros(10))
        }
        fn current_view(&self) -> Arc<dyn QueryView> {
            Arc::new(FakeView {
                graph: Arc::clone(&self.graph),
            })
        }
    }

    #[test]
    fn harness_produces_consistent_aggregates() {
        let g = grid(6, 6, WeightRange::new(1, 9), 1);
        let config = SystemConfig {
            update_volume: 5,
            update_interval: 10.0,
            max_response_time: 1.0,
            query_sample: 20,
        };
        let harness = ThroughputHarness::new(config, 7, 3);
        let server = RoadNetworkServer::host(
            &g,
            Box::new(Fake {
                graph: Arc::new(g.clone()),
            }),
        );
        let result = harness.run(&server);
        server.shutdown();
        assert_eq!(result.algorithm, "fake");
        assert_eq!(result.batches.len(), 3);
        assert!(result.avg_update_time > 0.0);
        assert!(result.avg_query_time > 0.0);
        assert!(result.throughput() > 0.0);
        assert!(result.staged_throughput > 0.0);
        for b in &result.batches {
            assert_eq!(b.stages.len(), 1);
            assert_eq!(b.qps_evolution.len(), 1);
        }
    }
}
