//! The analytical throughput model of §II (Lemma 1) and the staged-throughput
//! integral of Figure 1.

/// Mean and variance of the query (processing) time, in seconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryStats {
    /// Average query time `t_q` (seconds).
    pub mean: f64,
    /// Variance `V_q` of the query time (seconds²).
    pub variance: f64,
}

impl QueryStats {
    /// Computes mean/variance from a sample of per-query latencies (seconds).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return QueryStats::default();
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let variance = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        QueryStats { mean, variance }
    }
}

/// Lemma 1: the maximum average throughput supported by a single-stage index
/// with query statistics `stats`, update time `t_u`, update interval `δt`,
/// and response-time QoS `R*_q`. Returns queries per second (0 if the system
/// cannot even install the updates in time).
///
/// `λ*_q ≤ min( 2(R* − t_q) / (V_q + 2 R* t_q − t_q²),  (δt − t_u) / (t_q δt) )`
pub fn lemma1_bound(stats: QueryStats, t_u: f64, delta_t: f64, r_star: f64) -> f64 {
    let t_q = stats.mean;
    if t_q <= 0.0 {
        return f64::INFINITY;
    }
    if t_u >= delta_t || r_star <= t_q {
        // Updates cannot be installed in time, or even an unloaded system
        // violates the QoS: zero throughput.
        return 0.0;
    }
    let denom = stats.variance + 2.0 * r_star * t_q - t_q * t_q;
    let mg1 = if denom <= 0.0 {
        f64::INFINITY
    } else {
        2.0 * (r_star - t_q) / denom
    };
    let update_constraint = (delta_t - t_u) / (t_q * delta_t);
    mg1.min(update_constraint).max(0.0)
}

/// The staged-throughput integral of Figure 1: given the per-stage
/// `(stage_duration_seconds, stage_query_time_seconds)` pairs covering the
/// maintenance window (in completion order) and the final-stage query time,
/// returns the average number of queries the system can process per second of
/// the update interval `δt`.
///
/// During the work of stage `i+1` the queries are served by the machinery
/// released at the end of stage `i`; after the last stage the final machinery
/// serves queries for the remaining `δt − t_u` seconds.
pub fn staged_throughput(stages: &[(f64, f64)], final_query_time: f64, delta_t: f64) -> f64 {
    let t_u: f64 = stages.iter().map(|&(d, _)| d).sum();
    if t_u >= delta_t {
        return 0.0;
    }
    let mut processed = 0.0;
    // Queries served while stage i+1 is being installed use stage i's speed.
    for i in 1..stages.len() {
        let duration = stages[i].0;
        let query_time = stages[i - 1].1;
        if query_time > 0.0 {
            processed += duration / query_time;
        }
    }
    if final_query_time > 0.0 {
        processed += (delta_t - t_u) / final_query_time;
    }
    processed / delta_t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_stats_from_samples() {
        let s = QueryStats::from_samples(&[1.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.variance - 1.0).abs() < 1e-12);
        assert_eq!(QueryStats::from_samples(&[]).mean, 0.0);
    }

    #[test]
    fn lemma1_zero_when_updates_do_not_fit() {
        let stats = QueryStats {
            mean: 1e-4,
            variance: 0.0,
        };
        assert_eq!(lemma1_bound(stats, 200.0, 120.0, 1.0), 0.0);
    }

    #[test]
    fn lemma1_faster_queries_give_higher_throughput() {
        let fast = QueryStats {
            mean: 1e-5,
            variance: 1e-12,
        };
        let slow = QueryStats {
            mean: 1e-3,
            variance: 1e-8,
        };
        let a = lemma1_bound(fast, 10.0, 120.0, 1.0);
        let b = lemma1_bound(slow, 10.0, 120.0, 1.0);
        assert!(a > b);
        assert!(b > 0.0);
    }

    #[test]
    fn lemma1_longer_update_reduces_throughput() {
        let stats = QueryStats {
            mean: 1e-4,
            variance: 1e-10,
        };
        let a = lemma1_bound(stats, 5.0, 120.0, 1.0);
        let b = lemma1_bound(stats, 60.0, 120.0, 1.0);
        assert!(a >= b);
    }

    #[test]
    fn staged_throughput_beats_single_stage_with_slow_final_wait() {
        // A multi-stage index that can already answer (slowly) during its
        // maintenance window processes strictly more queries than one that is
        // blocked for the whole window.
        let delta_t = 120.0;
        let staged = staged_throughput(&[(0.0, 1e-2), (5.0, 1e-4), (20.0, 1e-5)], 1e-5, delta_t);
        let blocked = staged_throughput(&[(25.0, 1e-5)], 1e-5, delta_t);
        assert!(staged > blocked);
    }

    #[test]
    fn staged_throughput_zero_when_update_exceeds_interval() {
        assert_eq!(staged_throughput(&[(130.0, 1e-4)], 1e-4, 120.0), 0.0);
    }
}
