//! The concurrent query engine: **measured** throughput, not modeled.
//!
//! [`QueryEngine`] is a measurement driver over the
//! [`RoadNetworkServer`] facade: it runs
//! `num_workers` query worker threads that continuously answer
//! shortest-distance queries against the snapshot currently published by the
//! server, while the calling thread plays the traffic source — it submits
//! update batches through the server's [`UpdateFeed`](crate::UpdateFeed) and
//! forces a batch boundary per round, so the server's maintenance thread
//! repairs the index and publishes a fresh snapshot at the end of each
//! completed update stage (the staged availability of Figure 1). Because the
//! engine drives the same public ingest/serve API an application would
//! deploy, its numbers measure the real stack, not a test harness shortcut.
//!
//! Workers are never blocked by maintenance and never observe a
//! half-repaired index: they always query the latest *published* snapshot,
//! which is frozen by copy-on-write. The engine records every query
//! completion in per-worker time-bucket histograms and tags it with the
//! stage of the view that answered, yielding the measured QPS-over-time
//! curve that the paper's Figure 13 models analytically.
//!
//! [`QueryEngineConfig::workload`] selects the serving pattern
//! ([`WorkloadKind`]): the legacy per-call path (snapshot lookup + scratch
//! checkout per query), the session-based batched paths (one
//! [`QuerySession`] per published snapshot,
//! point-to-point bundles, one-to-many fans, or distance matrices), or the
//! skewed [`WorkloadKind::HotPairs`] mode, where each worker draws from a
//! deterministic Zipf [`HotPairStream`] over a universe of hot
//! origin–destination pairs. Running the same index under `SingleCall` and
//! under `Batched` yields the single-call vs batched QPS comparison of
//! `BENCH_pr2.json`; running `HotPairs` against a server with and without a
//! result cache yields the cached vs uncached comparison of
//! `BENCH_pr5.json`.
//!
//! When the server owns a [`DistanceCache`]
//! ([`ServerBuilder::result_cache`](crate::ServerBuilder::result_cache)),
//! every session-based worker wraps its session in a
//! [`CachedSession`] pinned to the worker's snapshot
//! version, and the report carries the run's cache-stats delta
//! ([`EngineReport::cache`]). The single-call baseline path never consults
//! the cache — it is the uncached reference by construction.
//!
//! With [`QueryEngineConfig::verify`] enabled, every answer is re-derived
//! with a fresh Dijkstra run on the answering view's own graph snapshot —
//! the no-torn-reads / no-staleness check used by the concurrency
//! integration test (this is orders of magnitude slower than serving, so it
//! is off by default).

use crate::cache::{CacheStats, CachedSession, DistanceCache};
use crate::fleet::ShardedFleet;
use crate::server::RoadNetworkServer;
use crate::slo::LatencyHistogram;
use htsp_graph::cow::CowStats;
use htsp_graph::{
    Query, QuerySession, QuerySet, QueryView, UpdateGenerator, UpdateTimeline, VertexId,
};
use htsp_search::dijkstra_distance;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// The shape of the workload the engine's query workers drive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkloadKind {
    /// One [`QueryView::distance`] call per query, against a freshly looked
    /// up snapshot each time — the pre-session serving pattern, kept as the
    /// baseline of the single-call vs batched comparison.
    SingleCall,
    /// Point-to-point bundles: each worker opens a session on the current
    /// snapshot and answers `batch_size` queries through it before checking
    /// for a newer snapshot.
    Batched {
        /// Queries answered per session drain (and per version check).
        batch_size: usize,
    },
    /// One-to-many fans: each batch is one source against `fanout` targets,
    /// answered by the session's shared-search one-to-many.
    OneToMany {
        /// Targets per fan.
        fanout: usize,
    },
    /// Distance matrices: each batch is a `side × side` matrix; throughput
    /// is reported in pairs per second.
    Matrix {
        /// Sources (= targets) per matrix.
        side: usize,
    },
    /// Skewed hot-pair traffic: each worker draws queries from the first
    /// `universe` entries of the query pool under a Zipf(`zipf_s`)
    /// distribution (rank 1 is the hottest pair), through a deterministic
    /// per-worker [`HotPairStream`]. The workload real result caches feed
    /// on — run it against a server with and without
    /// [`ServerBuilder::result_cache`](crate::ServerBuilder::result_cache)
    /// for the cached vs uncached QPS comparison of `bench-pr5`.
    HotPairs {
        /// Zipf exponent `s` (0 = uniform over the universe; typical
        /// navigation traffic is ~0.8–1.2; larger = more skew).
        zipf_s: f64,
        /// Number of distinct hot pairs (capped at the query-pool size).
        universe: usize,
    },
}

impl WorkloadKind {
    /// `(s, t)` pairs answered per batch of this workload.
    pub fn pairs_per_batch(&self) -> usize {
        match *self {
            WorkloadKind::SingleCall | WorkloadKind::HotPairs { .. } => 1,
            WorkloadKind::Batched { batch_size } => batch_size.max(1),
            WorkloadKind::OneToMany { fanout } => fanout.max(1),
            WorkloadKind::Matrix { side } => side.max(1) * side.max(1),
        }
    }

    /// Short label for tables (`single-call`, `batched(64)`, ...).
    pub fn label(&self) -> String {
        match *self {
            WorkloadKind::SingleCall => "single-call".to_string(),
            WorkloadKind::Batched { batch_size } => format!("batched({batch_size})"),
            WorkloadKind::OneToMany { fanout } => format!("one-to-many({fanout})"),
            WorkloadKind::Matrix { side } => format!("matrix({side}x{side})"),
            WorkloadKind::HotPairs { zipf_s, universe } => {
                format!("hot-pairs(s={zipf_s},u={universe})")
            }
        }
    }
}

/// A deterministic sampler of the Zipf distribution over ranks
/// `0..n`: `P(k) ∝ 1/(k+1)^s`.
///
/// Built once (O(n) cumulative table), sampled by binary search on a
/// uniform draw — no rejection, so one sample consumes exactly one RNG
/// output and two streams with the same seed stay in lock-step (what makes
/// [`WorkloadKind::HotPairs`] runs reproducible).
#[derive(Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over ranks `0..n` with exponent `s` (`s = 0` is uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf universe must be non-empty");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `false` always (a sampler is never empty); present for clippy parity.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..len()`.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// The deterministic hot-pair query stream behind
/// [`WorkloadKind::HotPairs`]: a seeded ChaCha8 generator driving a
/// [`ZipfSampler`].
///
/// Streams are pure functions of `(universe, zipf_s, seed, worker)`: two
/// streams constructed with the same parameters yield identical index
/// sequences, which is what pins the engine's skewed workload (and its
/// hit-rate telemetry) across runs.
#[derive(Debug)]
pub struct HotPairStream {
    rng: ChaCha8Rng,
    zipf: ZipfSampler,
}

impl HotPairStream {
    /// A stream over ranks `0..universe` for `worker` (each worker of a run
    /// gets a decorrelated but deterministic substream of the same seed).
    pub fn new(universe: usize, zipf_s: f64, seed: u64, worker: usize) -> Self {
        HotPairStream {
            rng: ChaCha8Rng::seed_from_u64(
                seed ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ),
            zipf: ZipfSampler::new(universe.max(1), zipf_s),
        }
    }

    /// The next rank (pool index) of the stream.
    pub fn next_index(&mut self) -> usize {
        self.zipf.sample(&mut self.rng)
    }

    /// The next query, drawn from the first `universe` entries of `pool`.
    pub fn next_query(&mut self, pool: &[Query]) -> Query {
        pool[self.next_index() % pool.len()]
    }
}

/// Configuration of a [`QueryEngine`] run.
#[derive(Clone, Debug)]
pub struct QueryEngineConfig {
    /// Number of query worker threads.
    pub num_workers: usize,
    /// Number of update batches the maintenance thread replays.
    pub num_batches: usize,
    /// Edge updates per batch (`|U|`).
    pub update_volume: usize,
    /// Serving-only time between batches (a scaled-down update interval; the
    /// workers keep hammering the final-stage snapshot during it).
    pub pause_between_batches: Duration,
    /// Size of the random query pool workers draw from.
    pub query_pool: usize,
    /// Width of one bucket of the QPS-over-time histogram.
    pub bucket: Duration,
    /// Verify every answer against a fresh Dijkstra run on the answering
    /// view's graph snapshot (slow; for correctness tests).
    pub verify: bool,
    /// Workload seed.
    pub seed: u64,
    /// The serving pattern the workers drive.
    pub workload: WorkloadKind,
}

impl Default for QueryEngineConfig {
    fn default() -> Self {
        QueryEngineConfig {
            num_workers: 4,
            num_batches: 3,
            update_volume: 100,
            pause_between_batches: Duration::from_millis(50),
            query_pool: 512,
            bucket: Duration::from_millis(10),
            verify: false,
            seed: 7,
            workload: WorkloadKind::SingleCall,
        }
    }
}

/// Builder for [`QueryEngine`].
#[derive(Clone, Debug, Default)]
pub struct QueryEngineBuilder {
    config: QueryEngineConfig,
}

impl QueryEngineBuilder {
    /// Sets the number of query worker threads.
    pub fn workers(mut self, n: usize) -> Self {
        self.config.num_workers = n.max(1);
        self
    }

    /// Sets the number of update batches to replay.
    pub fn batches(mut self, n: usize) -> Self {
        self.config.num_batches = n;
        self
    }

    /// Sets the number of edge updates per batch.
    pub fn update_volume(mut self, v: usize) -> Self {
        self.config.update_volume = v;
        self
    }

    /// Sets the serving-only pause between batches.
    pub fn pause_between_batches(mut self, d: Duration) -> Self {
        self.config.pause_between_batches = d;
        self
    }

    /// Sets the size of the random query pool.
    pub fn query_pool(mut self, n: usize) -> Self {
        self.config.query_pool = n.max(1);
        self
    }

    /// Sets the QPS histogram bucket width.
    pub fn bucket(mut self, d: Duration) -> Self {
        self.config.bucket = d;
        self
    }

    /// Enables per-answer Dijkstra verification (slow).
    pub fn verify(mut self, on: bool) -> Self {
        self.config.verify = on;
        self
    }

    /// Sets the serving pattern (single-call, batched, one-to-many, matrix).
    pub fn workload(mut self, w: WorkloadKind) -> Self {
        self.config.workload = w;
        self
    }

    /// Sets the workload seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.config.seed = s;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> QueryEngine {
        QueryEngine {
            config: self.config,
        }
    }
}

/// One bucket of the measured QPS-over-time curve.
#[derive(Clone, Copy, Debug)]
pub struct QpsSample {
    /// Seconds since the engine started (bucket start).
    pub elapsed: f64,
    /// Measured queries per second inside this bucket.
    pub qps: f64,
}

/// The result of one [`QueryEngine`] run.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// Algorithm name.
    pub algorithm: String,
    /// The serving pattern that produced these numbers.
    pub workload: WorkloadKind,
    /// Number of query worker threads that ran.
    pub num_workers: usize,
    /// Total `(s, t)` pairs answered across all workers (for matrix and
    /// one-to-many workloads every pair counts, so `measured_qps` is
    /// pairs per second).
    pub total_queries: u64,
    /// Wall-clock duration of the run in seconds.
    pub wall_time: f64,
    /// Overall measured throughput (`total_queries / wall_time`).
    pub measured_qps: f64,
    /// Queries answered per query stage (index = stage).
    pub per_stage_queries: Vec<u64>,
    /// Measured QPS per time bucket (the Fig. 13 staircase, observed).
    pub qps_curve: Vec<QpsSample>,
    /// Snapshot publications: `(elapsed seconds, stage)` in publication order.
    pub publications: Vec<(f64, usize)>,
    /// Copy-on-write clone effort per query stage (index = stage), summed
    /// over every publication of that stage: the snapshot-isolation price
    /// each repair stage actually paid, as reported by the maintainer
    /// through [`htsp_graph::SnapshotPublisher::publish_with_cow`].
    pub per_stage_cow: Vec<CowStats>,
    /// Update timeline of every replayed batch.
    pub timelines: Vec<UpdateTimeline>,
    /// Submit-to-visible latency per batch: from the first update's
    /// submission to the publication of the first snapshot containing it,
    /// as observed by the batch's `wait_visible()` ticket.
    pub visibility_lags: LatencyHistogram,
    /// Number of answers that failed Dijkstra verification (always 0 unless
    /// `verify` was enabled and the index is broken).
    pub verify_failures: u64,
    /// Description of the first verification failure, if any.
    pub first_failure: Option<String>,
    /// Result-cache telemetry delta over this run (`None` when the server
    /// runs without a [`DistanceCache`]); `cache.hit_rate()` is the
    /// headline number of the skewed-workload benchmarks.
    pub cache: Option<CacheStats>,
}

struct WorkerTally {
    answered: u64,
    per_stage: Vec<u64>,
    /// Query completions per time bucket.
    histogram: Vec<u64>,
    failures: u64,
    first_failure: Option<String>,
}

impl WorkerTally {
    /// Records `pairs` completions answered by `stage` at the current time.
    fn record(&mut self, stage: usize, pairs: u64, start: Instant, bucket_nanos: u64) {
        let slot = stage.min(self.per_stage.len() - 1);
        self.per_stage[slot] += pairs;
        let bucket = (start.elapsed().as_nanos() as u64 / bucket_nanos) as usize;
        if self.histogram.len() <= bucket {
            self.histogram.resize(bucket + 1, 0);
        }
        self.histogram[bucket] += pairs;
        self.answered += pairs;
    }

    /// Verifies `got` against a fresh Dijkstra run on `view`'s own graph.
    fn verify_answer(
        &mut self,
        view: &dyn QueryView,
        s: VertexId,
        t: VertexId,
        got: htsp_graph::Dist,
    ) {
        let expect = dijkstra_distance(view.graph(), s, t);
        if got != expect {
            self.failures += 1;
            if self.first_failure.is_none() {
                self.first_failure = Some(format!(
                    "{} stage {}: d({}, {}) = {:?}, Dijkstra says {:?}",
                    view.algorithm(),
                    view.stage(),
                    s,
                    t,
                    got,
                    expect
                ));
            }
        }
    }
}

/// Measures real query throughput while an index is being maintained.
pub struct QueryEngine {
    config: QueryEngineConfig,
}

impl QueryEngine {
    /// Starts building an engine.
    pub fn builder() -> QueryEngineBuilder {
        QueryEngineBuilder::default()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &QueryEngineConfig {
        &self.config
    }

    /// Runs the engine against a live [`RoadNetworkServer`]: `num_workers`
    /// query threads race the server's maintenance thread over
    /// `num_batches` update batches, which the calling thread submits
    /// through the server's update feed, closing each round with an
    /// explicit flush boundary. Host the server with
    /// [`CoalescePolicy::manual`](crate::CoalescePolicy::manual) (what
    /// [`RoadNetworkServer::host`] does) so each round is exactly one feed
    /// batch; under an auto-flushing policy a round may split into several
    /// batches, which the report then merges into one round timeline.
    ///
    /// The same server can be measured repeatedly (different workloads,
    /// repetitions); each run drains the publisher log it produced.
    pub fn run(&self, server: &RoadNetworkServer) -> EngineReport {
        let cfg = &self.config;
        let num_stages = server.num_query_stages();
        let queries = server.with_graph(|g| QuerySet::random(g, cfg.query_pool, cfg.seed ^ 0x51ab));
        let publisher = &**server.publisher();
        // Session-based workloads consult the server's result cache when it
        // has one (the single-call baseline path stays cache-free by
        // design); the report carries the stats delta of this run.
        let cache: Option<&DistanceCache> = server.cache().map(|c| &**c);
        let cache_before = cache.map(|c| c.stats());
        let stop = AtomicBool::new(false);
        let start = Instant::now();
        let bucket_nanos = cfg.bucket.as_nanos().max(1) as u64;

        let mut gen = UpdateGenerator::new(cfg.seed);
        let mut timelines = Vec::with_capacity(cfg.num_batches);
        let mut visibility_lags = LatencyHistogram::new();

        // If the maintenance loop (or anything else in the scope body)
        // panics, the workers must still be told to stop — otherwise
        // `thread::scope` joins threads that spin forever and the process
        // hangs instead of propagating the panic.
        struct StopGuard<'a>(&'a AtomicBool);
        impl Drop for StopGuard<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::Relaxed);
            }
        }

        let tallies: Vec<WorkerTally> = std::thread::scope(|scope| {
            let _stop_on_unwind = StopGuard(&stop);
            let mut handles = Vec::with_capacity(cfg.num_workers);
            for w in 0..cfg.num_workers {
                let stop = &stop;
                let queries = &queries;
                let verify = cfg.verify;
                let workload = cfg.workload;
                let seed = cfg.seed;
                handles.push(scope.spawn(move || {
                    let mut tally = WorkerTally {
                        answered: 0,
                        per_stage: vec![0; num_stages],
                        histogram: Vec::new(),
                        failures: 0,
                        first_failure: None,
                    };
                    let mut i = w; // stride through the pool, worker-offset
                    match workload {
                        // The per-call baseline: fresh snapshot lookup and
                        // per-query scratch checkout every time.
                        WorkloadKind::SingleCall => {
                            while !stop.load(Ordering::Relaxed) {
                                let view = publisher.snapshot();
                                let q = &queries.as_slice()[i % queries.len()];
                                i += 1;
                                let d = view.distance(q.source, q.target);
                                if verify {
                                    // The answer must be exact on the graph
                                    // snapshot that was current when the
                                    // query was answered.
                                    tally.verify_answer(&*view, q.source, q.target, d);
                                }
                                tally.record(view.stage(), 1, start, bucket_nanos);
                            }
                        }
                        // Session paths: pin one session per published
                        // snapshot, drain batches through it, re-pin when
                        // the publisher version advances.
                        _ => {
                            // The hot-pair stream outlives re-pins: one
                            // deterministic stream per worker per run.
                            let mut hot = match workload {
                                WorkloadKind::HotPairs { zipf_s, universe } => {
                                    Some(HotPairStream::new(
                                        universe.clamp(1, queries.len()),
                                        zipf_s,
                                        seed,
                                        w,
                                    ))
                                }
                                _ => None,
                            };
                            while !stop.load(Ordering::Relaxed) {
                                // Atomic (version, view) read: a publish
                                // between separate snapshot()/version()
                                // calls would pin the old view under the
                                // new version and skip the re-pin.
                                let (pinned, view) = publisher.versioned_snapshot();
                                let stage = view.stage();
                                // With a result cache, wrap the session so
                                // repeated pairs skip the search; the
                                // wrapper carries the pinned version, so a
                                // cached answer never crosses a publication.
                                let mut session: Box<dyn QuerySession + '_> = match cache {
                                    Some(cache) => {
                                        Box::new(CachedSession::new(view.session(), cache, pinned))
                                    }
                                    None => view.session(),
                                };
                                while !stop.load(Ordering::Relaxed) && publisher.version() == pinned
                                {
                                    let pool = queries.as_slice();
                                    let next = |i: &mut usize| -> &Query {
                                        let q = &pool[*i % pool.len()];
                                        *i += 1;
                                        q
                                    };
                                    match workload {
                                        // SingleCall never reaches the
                                        // session path (outer match);
                                        // treat it as a 1-query bundle so
                                        // no arm is unreachable.
                                        WorkloadKind::SingleCall | WorkloadKind::Batched { .. } => {
                                            for _ in 0..workload.pairs_per_batch() {
                                                let q = *next(&mut i);
                                                let d = session.distance(q.source, q.target);
                                                if verify {
                                                    tally.verify_answer(
                                                        &*view, q.source, q.target, d,
                                                    );
                                                }
                                            }
                                        }
                                        WorkloadKind::OneToMany { fanout } => {
                                            let source = next(&mut i).source;
                                            let targets: Vec<VertexId> = (0..fanout.max(1))
                                                .map(|_| next(&mut i).target)
                                                .collect();
                                            let ds = session.one_to_many(source, &targets);
                                            if verify {
                                                for (&t, &d) in targets.iter().zip(&ds) {
                                                    tally.verify_answer(&*view, source, t, d);
                                                }
                                            }
                                        }
                                        WorkloadKind::Matrix { side } => {
                                            let sources: Vec<VertexId> = (0..side.max(1))
                                                .map(|_| next(&mut i).source)
                                                .collect();
                                            let targets: Vec<VertexId> = (0..side.max(1))
                                                .map(|_| next(&mut i).target)
                                                .collect();
                                            let m = session.matrix(&sources, &targets);
                                            if verify {
                                                for (&s, row) in sources.iter().zip(&m) {
                                                    for (&t, &d) in targets.iter().zip(row) {
                                                        tally.verify_answer(&*view, s, t, d);
                                                    }
                                                }
                                            }
                                        }
                                        WorkloadKind::HotPairs { .. } => {
                                            let q = hot
                                                .as_mut()
                                                .expect("hot-pair stream")
                                                .next_query(pool);
                                            let d = session.distance(q.source, q.target);
                                            if verify {
                                                tally.verify_answer(&*view, q.source, q.target, d);
                                            }
                                        }
                                    }
                                    tally.record(
                                        stage,
                                        workload.pairs_per_batch() as u64,
                                        start,
                                        bucket_nanos,
                                    );
                                }
                            }
                        }
                    }
                    tally
                }));
            }

            // Traffic loop on this thread: submit each round's updates
            // through the server's feed and force a batch boundary; the
            // server's maintenance thread coalesces, repairs, and publishes
            // staged snapshots while the workers keep serving. Then let the
            // workers drain against the final stage for the configured
            // pause.
            for _ in 0..cfg.num_batches {
                let batch = server.with_graph(|g| gen.generate(g, cfg.update_volume));
                let tickets = server.feed().submit_all(batch.as_slice().iter().copied());
                let barrier = server.feed().flush();
                let vis = tickets.first().unwrap_or(&barrier).wait_visible();
                visibility_lags.record(vis.latency);
                // Under a manual policy (how every bench/test hosts the
                // server) the whole round is one feed batch and this merge
                // is a no-op; under an auto-flushing policy the round may
                // have split into several batches, so the round timeline
                // concatenates every distinct outcome's stages to keep the
                // reported t_u covering the full round.
                let mut seen_batches = std::collections::HashSet::new();
                let mut round_timeline = UpdateTimeline::default();
                for ticket in tickets.iter().chain(std::iter::once(&barrier)) {
                    let outcome = ticket.wait_applied();
                    if seen_batches.insert(outcome.batch_seq) {
                        for stage in &outcome.timeline.stages {
                            round_timeline.push(stage.name.clone(), stage.duration);
                        }
                    }
                }
                timelines.push(round_timeline);
                if !cfg.pause_between_batches.is_zero() {
                    std::thread::sleep(cfg.pause_between_batches);
                }
            }
            stop.store(true, Ordering::Relaxed);
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let wall_time = start.elapsed().as_secs_f64();
        let total_queries: u64 = tallies.iter().map(|t| t.answered).sum();
        let mut per_stage_queries = vec![0u64; num_stages];
        let mut histogram: Vec<u64> = Vec::new();
        let mut verify_failures = 0;
        let mut first_failure = None;
        for t in &tallies {
            for (s, c) in t.per_stage.iter().enumerate() {
                per_stage_queries[s] += c;
            }
            if histogram.len() < t.histogram.len() {
                histogram.resize(t.histogram.len(), 0);
            }
            for (b, c) in t.histogram.iter().enumerate() {
                histogram[b] += c;
            }
            verify_failures += t.failures;
            if first_failure.is_none() {
                first_failure = t.first_failure.clone();
            }
        }
        let bucket_secs = cfg.bucket.as_secs_f64();
        let qps_curve = histogram
            .iter()
            .enumerate()
            .map(|(b, &c)| {
                let bucket_start = b as f64 * bucket_secs;
                // The run usually stops mid-bucket: divide the last bucket by
                // the time actually spent inside it, not the full width.
                let span = (wall_time - bucket_start).clamp(f64::MIN_POSITIVE, bucket_secs);
                QpsSample {
                    elapsed: bucket_start,
                    qps: c as f64 / span,
                }
            })
            .collect();
        let mut per_stage_cow = vec![CowStats::default(); num_stages];
        let publications = publisher
            .take_log()
            .into_iter()
            .map(|e| {
                let slot = e.stage.min(num_stages.saturating_sub(1));
                per_stage_cow[slot] = per_stage_cow[slot].plus(e.cow);
                let elapsed = e.at.saturating_duration_since(start).as_secs_f64();
                (elapsed, e.stage)
            })
            .collect();

        EngineReport {
            algorithm: server.algorithm().to_string(),
            workload: cfg.workload,
            num_workers: cfg.num_workers,
            total_queries,
            wall_time,
            measured_qps: if wall_time > 0.0 {
                total_queries as f64 / wall_time
            } else {
                0.0
            },
            per_stage_queries,
            qps_curve,
            publications,
            per_stage_cow,
            timelines,
            visibility_lags,
            verify_failures,
            first_failure,
            cache: cache.map(|c| c.stats().since(cache_before.unwrap_or_default())),
        }
    }

    /// Runs the engine against a live [`ShardedFleet`]: query workers pin
    /// [`FleetSession`](crate::router::FleetSession)s (re-pinning whenever
    /// the fleet publishes a fresher epoch) while the calling thread
    /// submits update batches through the fleet router, closing each round
    /// with a router flush.
    ///
    /// The report reuses the single-server [`EngineReport`] shape with the
    /// fleet-specific simplifications: fleet sessions always serve the
    /// final (fully repaired) stage, so there is exactly one query stage;
    /// per-publication logs and timelines live in the
    /// [`FleetReport`](crate::fleet::FleetReport) instead and are left
    /// empty here. `visibility_lags` records each round's first-update
    /// submit-to-visible latency as observed by its composite
    /// [`FleetTicket`](crate::router::FleetTicket). With `verify` enabled,
    /// every answer is checked against a Dijkstra run on the session's own
    /// epoch graph — the fleet-consistency (no torn epochs) check.
    pub fn run_sharded(&self, fleet: &ShardedFleet) -> EngineReport {
        let cfg = &self.config;
        let router = fleet.router();
        let pool_graph = router.session().graph().clone();
        let queries = QuerySet::random(&pool_graph, cfg.query_pool, cfg.seed ^ 0x51ab);
        let cache_before = fleet.report().cache_total();
        let stop = AtomicBool::new(false);
        let start = Instant::now();
        let bucket_nanos = cfg.bucket.as_nanos().max(1) as u64;

        let mut gen = UpdateGenerator::new(cfg.seed);
        let mut visibility_lags = LatencyHistogram::new();

        struct StopGuard<'a>(&'a AtomicBool);
        impl Drop for StopGuard<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::Relaxed);
            }
        }

        let tallies: Vec<WorkerTally> = std::thread::scope(|scope| {
            let _stop_on_unwind = StopGuard(&stop);
            let mut handles = Vec::with_capacity(cfg.num_workers);
            for w in 0..cfg.num_workers {
                let stop = &stop;
                let queries = &queries;
                let verify = cfg.verify;
                let workload = cfg.workload;
                let seed = cfg.seed;
                handles.push(scope.spawn(move || {
                    let mut tally = WorkerTally {
                        answered: 0,
                        per_stage: vec![0; 1],
                        histogram: Vec::new(),
                        failures: 0,
                        first_failure: None,
                    };
                    let mut i = w;
                    let mut hot = match workload {
                        WorkloadKind::HotPairs { zipf_s, universe } => Some(HotPairStream::new(
                            universe.clamp(1, queries.len()),
                            zipf_s,
                            seed,
                            w,
                        )),
                        _ => None,
                    };
                    while !stop.load(Ordering::Relaxed) {
                        // Pin one session per published fleet epoch; every
                        // answer inside is exact on the epoch's own graph.
                        let mut session = router.session();
                        let pinned = session.fleet_version();
                        while !stop.load(Ordering::Relaxed) && router.fleet_version() == pinned {
                            let pool = queries.as_slice();
                            let next = |i: &mut usize| -> Query {
                                let q = pool[*i % pool.len()];
                                *i += 1;
                                q
                            };
                            match workload {
                                WorkloadKind::SingleCall | WorkloadKind::Batched { .. } => {
                                    for _ in 0..workload.pairs_per_batch() {
                                        let q = next(&mut i);
                                        let d = session.distance(q.source, q.target);
                                        if verify {
                                            verify_fleet_answer(
                                                &mut tally, &session, q.source, q.target, d,
                                            );
                                        }
                                    }
                                }
                                WorkloadKind::OneToMany { fanout } => {
                                    let source = next(&mut i).source;
                                    let targets: Vec<VertexId> =
                                        (0..fanout.max(1)).map(|_| next(&mut i).target).collect();
                                    let ds = session.one_to_many(source, &targets);
                                    if verify {
                                        for (&t, &d) in targets.iter().zip(&ds) {
                                            verify_fleet_answer(&mut tally, &session, source, t, d);
                                        }
                                    }
                                }
                                WorkloadKind::Matrix { side } => {
                                    let sources: Vec<VertexId> =
                                        (0..side.max(1)).map(|_| next(&mut i).source).collect();
                                    let targets: Vec<VertexId> =
                                        (0..side.max(1)).map(|_| next(&mut i).target).collect();
                                    let m = session.matrix(&sources, &targets);
                                    if verify {
                                        for (&s, row) in sources.iter().zip(&m) {
                                            for (&t, &d) in targets.iter().zip(row) {
                                                verify_fleet_answer(&mut tally, &session, s, t, d);
                                            }
                                        }
                                    }
                                }
                                WorkloadKind::HotPairs { .. } => {
                                    let q = hot.as_mut().expect("hot-pair stream").next_query(pool);
                                    let d = session.distance(q.source, q.target);
                                    if verify {
                                        verify_fleet_answer(
                                            &mut tally, &session, q.source, q.target, d,
                                        );
                                    }
                                }
                            }
                            tally.record(0, workload.pairs_per_batch() as u64, start, bucket_nanos);
                        }
                    }
                    tally
                }));
            }

            // Traffic loop: each round's updates are generated against the
            // currently published epoch graph (the router serializes all
            // batches, so weights are current after the previous round's
            // wait) and submitted through the fleet router.
            for _ in 0..cfg.num_batches {
                let batch = {
                    let session = router.session();
                    gen.generate(session.graph(), cfg.update_volume)
                };
                let tickets = router.submit_all(batch.as_slice().iter().copied());
                let barrier = router.flush();
                let vis = tickets.first().unwrap_or(&barrier).wait_visible();
                visibility_lags.record(vis.latency);
                barrier.wait_applied();
                if !cfg.pause_between_batches.is_zero() {
                    std::thread::sleep(cfg.pause_between_batches);
                }
            }
            stop.store(true, Ordering::Relaxed);
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let wall_time = start.elapsed().as_secs_f64();
        let total_queries: u64 = tallies.iter().map(|t| t.answered).sum();
        let mut per_stage_queries = vec![0u64; 1];
        let mut histogram: Vec<u64> = Vec::new();
        let mut verify_failures = 0;
        let mut first_failure = None;
        for t in &tallies {
            per_stage_queries[0] += t.answered;
            if histogram.len() < t.histogram.len() {
                histogram.resize(t.histogram.len(), 0);
            }
            for (b, c) in t.histogram.iter().enumerate() {
                histogram[b] += c;
            }
            verify_failures += t.failures;
            if first_failure.is_none() {
                first_failure = t.first_failure.clone();
            }
        }
        let bucket_secs = cfg.bucket.as_secs_f64();
        let qps_curve = histogram
            .iter()
            .enumerate()
            .map(|(b, &c)| {
                let bucket_start = b as f64 * bucket_secs;
                let span = (wall_time - bucket_start).clamp(f64::MIN_POSITIVE, bucket_secs);
                QpsSample {
                    elapsed: bucket_start,
                    qps: c as f64 / span,
                }
            })
            .collect();

        EngineReport {
            algorithm: fleet.algorithm(),
            workload: cfg.workload,
            num_workers: cfg.num_workers,
            total_queries,
            wall_time,
            measured_qps: if wall_time > 0.0 {
                total_queries as f64 / wall_time
            } else {
                0.0
            },
            per_stage_queries,
            qps_curve,
            publications: Vec::new(),
            per_stage_cow: vec![CowStats::default()],
            timelines: Vec::new(),
            visibility_lags,
            verify_failures,
            first_failure,
            cache: fleet
                .report()
                .cache_total()
                .map(|after| after.since(cache_before.unwrap_or_default())),
        }
    }
}

/// Verifies a fleet answer against a Dijkstra run on the session's own
/// epoch graph (the exactness contract of the sharded query path).
fn verify_fleet_answer(
    tally: &mut WorkerTally,
    session: &crate::router::FleetSession,
    s: VertexId,
    t: VertexId,
    got: htsp_graph::Dist,
) {
    let expect = dijkstra_distance(session.graph(), s, t);
    if got != expect {
        tally.failures += 1;
        if tally.first_failure.is_none() {
            tally.first_failure = Some(format!(
                "fleet epoch {}: d({}, {}) = {:?}, Dijkstra says {:?}",
                session.fleet_version(),
                s,
                t,
                got,
                expect
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feed::CoalescePolicy;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::{
        Dist, Graph, IndexMaintainer, QueryView, SnapshotPublisher, UpdateBatch, VertexId,
    };
    use std::sync::Arc;

    /// A trivial single-stage maintainer for exercising the engine.
    struct Fake {
        graph: Arc<Graph>,
    }

    struct FakeView {
        graph: Arc<Graph>,
    }

    impl QueryView for FakeView {
        fn algorithm(&self) -> &'static str {
            "fake"
        }
        fn stage(&self) -> usize {
            0
        }
        fn distance(&self, s: VertexId, t: VertexId) -> Dist {
            if s == t {
                Dist::ZERO
            } else {
                Dist(1)
            }
        }
        fn session(&self) -> Box<dyn htsp_graph::QuerySession + '_> {
            Box::new(htsp_graph::FallbackSession::new(self))
        }
        fn graph(&self) -> &Graph {
            &self.graph
        }
    }

    impl IndexMaintainer for Fake {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn apply_batch(
            &mut self,
            _graph: &Graph,
            batch: &UpdateBatch,
            publisher: &SnapshotPublisher,
        ) -> UpdateTimeline {
            Arc::make_mut(&mut self.graph).apply_batch(batch);
            publisher.publish(self.current_view());
            UpdateTimeline::single("noop", Duration::from_micros(10))
        }
        fn current_view(&self) -> Arc<dyn QueryView> {
            Arc::new(FakeView {
                graph: Arc::clone(&self.graph),
            })
        }
    }

    fn host(g: &Graph) -> RoadNetworkServer {
        RoadNetworkServer::builder()
            .maintainer(Box::new(Fake {
                graph: Arc::new(g.clone()),
            }))
            .coalesce(CoalescePolicy::manual())
            .start(g)
    }

    #[test]
    fn batched_workloads_count_pairs_and_verify() {
        let g = grid(6, 6, WeightRange::new(1, 9), 2);
        for workload in [
            WorkloadKind::Batched { batch_size: 16 },
            WorkloadKind::OneToMany { fanout: 8 },
            WorkloadKind::Matrix { side: 4 },
        ] {
            let server = host(&g);
            let engine = QueryEngine::builder()
                .workers(2)
                .batches(2)
                .update_volume(5)
                .pause_between_batches(Duration::from_millis(10))
                .workload(workload)
                .build();
            let report = engine.run(&server);
            server.shutdown();
            assert_eq!(report.workload, workload);
            assert!(report.total_queries > 0, "{workload:?} answered nothing");
            assert_eq!(
                report.total_queries % workload.pairs_per_batch() as u64,
                0,
                "{workload:?} recorded partial batches"
            );
            assert_eq!(
                report.per_stage_queries.iter().sum::<u64>(),
                report.total_queries
            );
        }
    }

    #[test]
    fn workload_labels_and_pair_counts() {
        assert_eq!(WorkloadKind::SingleCall.pairs_per_batch(), 1);
        assert_eq!(WorkloadKind::Batched { batch_size: 7 }.pairs_per_batch(), 7);
        assert_eq!(WorkloadKind::Matrix { side: 5 }.pairs_per_batch(), 25);
        assert_eq!(
            WorkloadKind::HotPairs {
                zipf_s: 1.1,
                universe: 64
            }
            .pairs_per_batch(),
            1
        );
        assert_eq!(WorkloadKind::SingleCall.label(), "single-call");
        assert_eq!(
            WorkloadKind::OneToMany { fanout: 3 }.label(),
            "one-to-many(3)"
        );
        assert_eq!(
            WorkloadKind::HotPairs {
                zipf_s: 1.1,
                universe: 64
            }
            .label(),
            "hot-pairs(s=1.1,u=64)"
        );
    }

    #[test]
    fn zipf_sampler_is_deterministic_skewed_and_in_bounds() {
        let zipf = ZipfSampler::new(100, 1.2);
        assert_eq!(zipf.len(), 100);
        assert!(!zipf.is_empty());
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let xs: Vec<usize> = (0..5000).map(|_| zipf.sample(&mut a)).collect();
        let ys: Vec<usize> = (0..5000).map(|_| zipf.sample(&mut b)).collect();
        assert_eq!(xs, ys, "same seed must give the same stream");
        assert!(xs.iter().all(|&x| x < 100));
        // Rank 0 dominates under skew: more mass than a uniform share.
        let zeros = xs.iter().filter(|&&x| x == 0).count();
        assert!(zeros > 5000 / 100, "rank 0 drew only {zeros} of 5000");
        // s = 0 degenerates to (roughly) uniform: rank 0 is no longer
        // an order of magnitude above its uniform share.
        let uniform = ZipfSampler::new(100, 0.0);
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let uz = (0..5000).filter(|_| uniform.sample(&mut r) == 0).count();
        assert!(uz < zeros, "s=0 must be less skewed than s=1.2");
    }

    #[test]
    fn hot_pairs_workload_serves_and_reports_cache_hits() {
        use crate::config::CacheConfig;
        let g = grid(6, 6, WeightRange::new(1, 9), 4);
        let server = RoadNetworkServer::builder()
            .maintainer(Box::new(Fake {
                graph: Arc::new(g.clone()),
            }))
            .coalesce(CoalescePolicy::manual())
            .result_cache(CacheConfig::with_capacity(512))
            .start(&g);
        let engine = QueryEngine::builder()
            .workers(2)
            .batches(2)
            .update_volume(4)
            .pause_between_batches(Duration::from_millis(15))
            .workload(WorkloadKind::HotPairs {
                zipf_s: 1.2,
                universe: 64,
            })
            .build();
        let report = engine.run(&server);
        server.shutdown();
        assert!(report.total_queries > 0);
        let cache = report.cache.expect("cache-enabled server must report");
        assert_eq!(cache.lookups(), report.total_queries);
        assert!(
            cache.hits > 0,
            "skewed traffic against a cache must produce hits"
        );
        assert!(cache.hit_rate() > 0.0 && cache.hit_rate() <= 1.0);
    }

    #[test]
    fn engine_counts_queries_and_publications() {
        let g = grid(6, 6, WeightRange::new(1, 9), 1);
        let server = host(&g);
        let engine = QueryEngine::builder()
            .workers(4)
            .batches(2)
            .update_volume(5)
            .pause_between_batches(Duration::from_millis(20))
            .build();
        let report = engine.run(&server);
        server.shutdown();
        assert_eq!(report.algorithm, "fake");
        assert_eq!(report.num_workers, 4);
        assert!(report.total_queries > 0, "workers answered no queries");
        assert!(report.measured_qps > 0.0);
        assert_eq!(report.timelines.len(), 2);
        assert_eq!(report.publications.len(), 2);
        assert_eq!(report.visibility_lags.count(), 2);
        assert!(report.visibility_lags.quantile_secs(0.5) >= 0.0);
        assert_eq!(report.verify_failures, 0);
        // Full buckets account for their exact counts; the final bucket is
        // divided by its (shorter) actual span, so the reconstruction is a
        // lower bound on the total.
        let bucket_secs = engine.config().bucket.as_secs_f64();
        let histogram_total: f64 = report.qps_curve.iter().map(|s| s.qps * bucket_secs).sum();
        assert!(histogram_total.round() as u64 >= report.total_queries);
        assert!(report
            .qps_curve
            .iter()
            .all(|s| s.qps.is_finite() && s.qps >= 0.0));
    }
}
