//! # htsp-throughput
//!
//! The HTSP system model (§II) and throughput measurement harness.
//!
//! Given any [`DynamicSpIndex`], the harness replays update batches and a
//! query workload, measures the per-stage update timeline and per-stage query
//! latency, and evaluates:
//!
//! * the **Lemma 1 bound** on the maximum average throughput `λ*_q` (an M/G/1
//!   response-time constraint combined with the update-installability
//!   constraint `t_u < δt`), and
//! * the **staged throughput**: the number of queries the system can serve per
//!   second of the update interval when each maintenance stage releases a
//!   faster query stage (the yellow area of Figure 1), which is what the
//!   multi-stage indexes improve.
//!
//! It also records the **QPS evolution** over the update interval (Fig. 13).

#![warn(missing_docs)]

pub mod config;
pub mod model;
pub mod simulator;

pub use config::SystemConfig;
pub use model::{lemma1_bound, staged_throughput, QueryStats};
pub use simulator::{BatchOutcome, QpsPoint, ThroughputHarness, ThroughputResult};
