//! # htsp-throughput
//!
//! The HTSP system model (§II) and both throughput harnesses.
//!
//! Given any [`htsp_graph::IndexMaintainer`], the **model harness**
//! ([`ThroughputHarness`]) replays update batches and a query workload,
//! measures the per-stage update timeline and per-stage query latency via
//! [`htsp_graph::QueryView`] snapshots, and evaluates:
//!
//! * the **Lemma 1 bound** on the maximum average throughput `λ*_q` (an M/G/1
//!   response-time constraint combined with the update-installability
//!   constraint `t_u < δt`), and
//! * the **staged throughput**: the number of queries the system can serve per
//!   second of the update interval when each maintenance stage releases a
//!   faster query stage (the yellow area of Figure 1), which is what the
//!   multi-stage indexes improve.
//!
//! It also records the **QPS evolution** over the update interval (Fig. 13).
//!
//! The **concurrent engine** ([`QueryEngine`]) goes beyond the model: it
//! runs real query worker threads against the published snapshots while the
//! maintenance thread repairs the index, and reports the *measured* QPS
//! curve next to the modeled one. Its [`WorkloadKind`] selects the serving
//! pattern: the legacy single-call path, or the session-based batched,
//! one-to-many, and matrix paths.
//!
//! The **distance service** ([`DistanceService`]) is the batch-oriented
//! serving front-end: clients submit [`QueryBatch`] requests into a queue;
//! worker threads answer them through per-thread
//! [`QuerySession`](htsp_graph::QuerySession)s pinned to the currently
//! published snapshot, re-pinning whenever the maintainer publishes a
//! fresher stage.
//!
//! The **result cache** ([`DistanceCache`]) memoizes answers for skewed
//! (hot-pair) traffic without ever serving a stale one: entries are tagged
//! with the snapshot version they were computed against and every
//! publication invalidates by epoch. It is config-gated off by default
//! ([`ServerBuilder::result_cache`] enables it); [`WorkloadKind::HotPairs`]
//! is the Zipf-skewed workload that measures it.
//!
//! The **sharded serving tier** ([`ShardedFleet`] + [`FleetRouter`])
//! partitions the network, runs one [`RoadNetworkServer`] per shard, keeps
//! a boundary-overlay index update-maintained, and answers cross-shard
//! queries exactly by concatenating shard boundary fans through one
//! multi-source overlay search — see the [`fleet`] and [`router`] module
//! docs.
//!
//! The **telemetry hub** ([`TelemetryHub`]) is the unified observability
//! layer over all of the above: a metrics registry (counters, gauges,
//! labeled latency histograms on the single [`LatencyHistogram`] quantile
//! type) plus a bounded span recorder that follows each update and each
//! query batch by trace id across every pipeline stage, exporting
//! Prometheus text exposition and Chrome trace-event JSON — see the
//! [`telemetry`] module docs.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod config;
pub mod engine;
pub mod feed;
pub mod fleet;
pub mod loadgen;
pub mod model;
pub mod registry;
pub mod router;
pub mod server;
pub mod service;
pub mod simulator;
pub mod slo;
pub mod telemetry;

pub use admission::{AdmissionPolicy, ServiceStats, ShutdownReport, SubmitOutcome};
pub use cache::{CacheStats, CachedSession, DistanceCache};
pub use config::{CacheConfig, FleetConfig, SystemConfig};
pub use engine::{
    EngineReport, HotPairStream, QpsSample, QueryEngine, QueryEngineBuilder, QueryEngineConfig,
    WorkloadKind, ZipfSampler,
};
pub use feed::{CoalescePolicy, FeedStats, UpdateFeed, UpdateOutcome, UpdateTicket, Visibility};
pub use fleet::{FleetReport, ShardReport, ShardedFleet};
pub use loadgen::{
    find_knee, run_open_loop, run_open_loop_with_telemetry, ArrivalProcess, ClassReport,
    LoadProfile, LoadReport, OpenLoopStream, Pacer, RequestClass, RequestMix, ScheduledRequest,
};
pub use model::{lemma1_bound, staged_throughput, QueryStats};
pub use registry::{AlgorithmKind, BuildParams};
pub use router::{FleetQueryHandle, FleetRouter, FleetSession, FleetTicket, FleetVisibility};
pub use server::{RoadNetworkServer, ServerBuilder, STORAGE_BYTES_METRIC};
pub use service::{BatchAnswer, BatchResult, BatchTicket, DistanceService, QueryBatch};
pub use simulator::{BatchOutcome, QpsPoint, ThroughputHarness, ThroughputResult};
pub use slo::{LatencyHistogram, SloCheck, SloTarget, SloVerdict};
pub use telemetry::{
    intern, validate_json, validate_prometheus, Counter, Gauge, Histogram, Reporter, SpanGuard,
    TelemetryHub, TelemetrySnapshot,
};
