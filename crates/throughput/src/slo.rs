//! Streaming latency accounting and SLO verdicts for the open-loop load
//! subsystem.
//!
//! The core type is [`LatencyHistogram`]: a fixed-size logarithmic-bucket
//! histogram over nanosecond latencies (the classic HDR layout — one octave
//! per power of two, [`SUB_BUCKETS`] linear sub-buckets per octave), so
//! recording is O(1), memory is a few kilobytes regardless of sample count,
//! and any quantile is recoverable with a bounded relative error of
//! `1 / SUB_BUCKETS` (~3%). No dependencies, no allocation after
//! construction — it can sit on the hot path of a load generator.
//!
//! [`SloTarget`] turns a histogram into an explicit pass/fail
//! [`SloVerdict`]: each configured quantile target (p50/p95/p99) is checked
//! against the recorded distribution, and the verdict carries the achieved
//! values so reports can show *how far* a run was from its SLO, not just
//! that it missed.

use std::time::Duration;

/// Linear sub-buckets per power-of-two octave; bounds the relative error of
/// any reported quantile to `1 / SUB_BUCKETS` (~3.1%).
pub const SUB_BUCKETS: usize = 32;

const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Largest bucket index reachable for a `u64` nanosecond value.
const NUM_BUCKETS: usize = (63 - SUB_BITS as usize) * SUB_BUCKETS + SUB_BUCKETS * 2;

/// A streaming log-bucket latency histogram (see the [module docs](self)).
///
/// Values are recorded in nanoseconds; sub-nanosecond durations land in the
/// first bucket. The histogram is cheap to merge, so per-thread instances
/// can be folded into a run-wide one.
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Bucket index of a nanosecond value. Values below `2 * SUB_BUCKETS`
    /// map to themselves (exact); above that, one octave per power of two
    /// with `SUB_BUCKETS` linear sub-buckets.
    fn index_of(ns: u64) -> usize {
        let v = ns.max(1);
        let bits = 64 - v.leading_zeros(); // highest set bit + 1
        if bits <= SUB_BITS + 1 {
            return v as usize;
        }
        let exp = bits - 1 - SUB_BITS;
        let mantissa = (v >> exp) as usize; // in [SUB_BUCKETS, 2 * SUB_BUCKETS)
        ((exp as usize) << SUB_BITS) + mantissa
    }

    /// Inclusive upper bound (ns) of bucket `idx` — what quantile queries
    /// report, so reported values never undershoot the true quantile.
    fn bucket_upper_bound(idx: usize) -> u64 {
        if idx < 2 * SUB_BUCKETS {
            return idx as u64;
        }
        let exp = (idx >> SUB_BITS) as u32 - 1;
        let mantissa = (idx - ((exp as usize + 1) << SUB_BITS) + SUB_BUCKETS) as u64;
        ((mantissa + 1) << exp) - 1
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one latency sample given in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[Self::index_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records one latency sample given in (non-negative, finite) seconds.
    /// Negative or non-finite values are clamped to zero; values past
    /// ~584 years saturate at `u64::MAX` nanoseconds.
    pub fn record_secs(&mut self, secs: f64) {
        let secs = if secs.is_finite() { secs.max(0.0) } else { 0.0 };
        let ns = (secs * 1e9).min(u64::MAX as f64) as u64;
        self.record_ns(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean recorded latency; zero on an empty histogram.
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / self.total as u128) as u64)
    }

    /// Largest recorded latency (exact, not bucketed).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// The `q`-th quantile (0..=1, nearest rank) of the recorded latencies,
    /// reported as the containing bucket's upper bound (≤3.1% relative
    /// overshoot). Zero on an empty histogram.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Duration::from_nanos(Self::bucket_upper_bound(idx).min(self.max_ns));
            }
        }
        Duration::from_nanos(self.max_ns)
    }

    /// The `q`-th quantile in seconds — the floating-point twin of
    /// [`quantile`](Self::quantile), for reports that carry lags as `f64`
    /// seconds.
    pub fn quantile_secs(&self, q: f64) -> f64 {
        self.quantile(q).as_secs_f64()
    }

    /// Sum of all recorded samples in nanoseconds (the Prometheus
    /// histogram `_sum` series).
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// The non-empty buckets as `(upper_bound_ns, count)` pairs in
    /// ascending bound order — what an exporter needs to emit cumulative
    /// `_bucket{le=...}` series without walking the (mostly zero) full
    /// bucket array.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| (Self::bucket_upper_bound(idx), c))
            .collect()
    }

    /// Folds `other` into `self` (for per-thread histogram aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50", &self.quantile(0.50))
            .field("p95", &self.quantile(0.95))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

/// Explicit latency SLO targets: quantile bounds on submit-to-answer
/// latency. Unset quantiles are not checked.
#[derive(Clone, Copy, Debug, Default)]
pub struct SloTarget {
    /// Median latency bound.
    pub p50: Option<Duration>,
    /// 95th-percentile latency bound.
    pub p95: Option<Duration>,
    /// 99th-percentile latency bound.
    pub p99: Option<Duration>,
}

impl SloTarget {
    /// The most common serving SLO shape: a single p95 bound.
    pub fn p95(bound: Duration) -> Self {
        SloTarget {
            p95: Some(bound),
            ..SloTarget::default()
        }
    }

    /// Adds a p50 bound.
    pub fn with_p50(mut self, bound: Duration) -> Self {
        self.p50 = Some(bound);
        self
    }

    /// Adds a p99 bound.
    pub fn with_p99(mut self, bound: Duration) -> Self {
        self.p99 = Some(bound);
        self
    }

    /// Evaluates every configured quantile bound against `histogram` into a
    /// pass/fail [`SloVerdict`]. An empty histogram fails: a run that
    /// answered nothing has not met any latency SLO.
    pub fn evaluate(&self, histogram: &LatencyHistogram) -> SloVerdict {
        let mut checks = Vec::new();
        for (quantile, target) in [(0.50, self.p50), (0.95, self.p95), (0.99, self.p99)] {
            if let Some(target) = target {
                let achieved = histogram.quantile(quantile);
                checks.push(SloCheck {
                    quantile,
                    target,
                    achieved,
                    pass: !histogram.is_empty() && achieved <= target,
                });
            }
        }
        let passed = !checks.is_empty() && checks.iter().all(|c| c.pass);
        SloVerdict { checks, passed }
    }
}

/// One evaluated quantile bound of an [`SloTarget`].
#[derive(Clone, Copy, Debug)]
pub struct SloCheck {
    /// The quantile checked (0.50 / 0.95 / 0.99).
    pub quantile: f64,
    /// The configured bound.
    pub target: Duration,
    /// The achieved latency at that quantile.
    pub achieved: Duration,
    /// Whether the achieved latency met the bound.
    pub pass: bool,
}

/// The pass/fail outcome of evaluating an [`SloTarget`] over a run.
#[derive(Clone, Debug)]
pub struct SloVerdict {
    /// Every configured quantile check with its achieved value.
    pub checks: Vec<SloCheck>,
    /// `true` iff at least one check was configured and all of them passed.
    pub passed: bool,
}

impl std::fmt::Display for SloVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", if self.passed { "PASS" } else { "FAIL" })?;
        for c in &self.checks {
            write!(
                f,
                " [p{:02.0} {:?} ≤ {:?}: {}]",
                c.quantile * 100.0,
                c.achieved,
                c.target,
                if c.pass { "ok" } else { "violated" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_bounds_dominate_values() {
        // Every value maps into a bucket whose upper bound is >= the value
        // and overshoots by at most 1/SUB_BUCKETS.
        let mut prev_idx = 0usize;
        for shift in 0..50 {
            for off in [0u64, 1, 3] {
                let v = (1u64 << shift) + off;
                let idx = LatencyHistogram::index_of(v);
                assert!(idx >= prev_idx || v < 2 * SUB_BUCKETS as u64);
                prev_idx = prev_idx.max(idx);
                let ub = LatencyHistogram::bucket_upper_bound(idx);
                assert!(ub >= v, "upper bound {ub} < value {v}");
                assert!(
                    (ub - v) as f64 <= v as f64 / SUB_BUCKETS as f64 + 1.0,
                    "bucket too wide at {v}: upper bound {ub}"
                );
            }
        }
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let mut h = LatencyHistogram::new();
        // 1..=1000 µs, one sample each.
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.50).as_micros() as f64;
        let p95 = h.quantile(0.95).as_micros() as f64;
        let p99 = h.quantile(0.99).as_micros() as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 = {p50}");
        assert!((p95 - 950.0).abs() / 950.0 < 0.05, "p95 = {p95}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.05, "p99 = {p99}");
        assert_eq!(h.max(), Duration::from_micros(1000));
        assert!(h.mean() >= Duration::from_micros(450));
        assert!(h.mean() <= Duration::from_micros(550));
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = (i * 7919) % 100_000 + 1;
            if i % 2 == 0 { &mut a } else { &mut b }.record_ns(v);
            all.record_ns(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn slo_verdicts_pass_and_fail_on_the_right_side() {
        let mut h = LatencyHistogram::new();
        for us in 1..=100u64 {
            h.record(Duration::from_micros(us));
        }
        let pass = SloTarget::p95(Duration::from_micros(200)).evaluate(&h);
        assert!(pass.passed, "{pass}");
        let fail = SloTarget::p95(Duration::from_micros(50)).evaluate(&h);
        assert!(!fail.passed, "{fail}");
        assert_eq!(fail.checks.len(), 1);
        assert!(fail.checks[0].achieved > fail.checks[0].target);
        // An empty histogram never passes.
        let empty = SloTarget::p95(Duration::from_secs(1)).evaluate(&LatencyHistogram::new());
        assert!(!empty.passed);
    }
}
