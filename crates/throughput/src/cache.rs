//! The snapshot-versioned distance-result cache: the throughput multiplier
//! for skewed (hot-pair) query traffic.
//!
//! Real navigation traffic is heavily skewed — a small set of hot
//! origin–destination pairs (airport ↔ downtown, stadium ↔ park-and-ride)
//! dominates the stream — so most queries recompute an answer the server
//! produced moments ago. A [`DistanceCache`] memoizes those answers *without
//! ever serving a stale one*: every entry is tagged with the
//! [`SnapshotPublisher`](htsp_graph::SnapshotPublisher) version it was
//! computed against, and a lookup only hits when the entry's version equals
//! the reader's pinned snapshot version. Publication of a new snapshot
//! therefore invalidates the whole cache *implicitly* — no sweep, no
//! flush — and stale entries are lazily overwritten by the next insert of
//! their pair.
//!
//! ```text
//!   maintainer ──publish(v+1)──► SnapshotPublisher ──on_publish──► epoch v+1
//!                                                                  │
//!   reader pinned at v+1:  get(s, t, v+1) ── entry.version == v+1? ┤
//!                                             yes → HIT (no search)│
//!                                             no  → stale MISS ────┴► search,
//!                                                   insert(s, t, v+1, d)
//! ```
//!
//! # Sharding and eviction
//!
//! The cache is split into `shards` independently locked segments (pair →
//! shard by Fx hash), each a fixed-capacity LRU list, so concurrent serving
//! threads rarely contend on one mutex. Per-shard telemetry counts hits,
//! misses (with the stale subset), inserts, and both eviction flavours
//! (capacity LRU evictions and lazy overwrites of stale entries);
//! [`DistanceCache::stats`] folds the shards into one [`CacheStats`].
//!
//! # Epochs
//!
//! The cache also tracks the newest published version it has *heard of* (its
//! epoch), fed by
//! [`SnapshotPublisher::on_publish`](htsp_graph::SnapshotPublisher::on_publish)
//! → [`DistanceCache::bump_epoch`] when a `RoadNetworkServer` owns the cache.
//! Correctness never depends on the epoch — the version equality check
//! carries it alone — but the epoch lets telemetry distinguish a *stale*
//! miss (the pair is cached, just from an older snapshot) from a *cold* one,
//! which is the number that says whether invalidation or capacity is eating
//! the hit rate.
//!
//! # When the cache helps vs hurts
//!
//! A hit costs one shard mutex and a hash lookup (~tens of ns); a miss adds
//! that on top of the search it failed to avoid. The cache therefore wins
//! when `hit_rate × t_search` exceeds the lookup cost: dramatically for
//! search-based views (BiDijkstra, DCH, the partitioned CH family, where
//! `t_search` is µs–ms), marginally or not at all for pure label lookups
//! (DH2H/MHL answer in ~100 ns — about the price of the probe itself). It is
//! config-gated off by default for exactly that reason; `bench-pr5` measures
//! both sides.
//!
//! # Worked example
//!
//! ```
//! use htsp_throughput::{CacheConfig, DistanceCache};
//! use htsp_graph::{Dist, VertexId};
//!
//! let cache = DistanceCache::new(CacheConfig { capacity: 128, shards: 2 });
//! let (s, t) = (VertexId(3), VertexId(9));
//!
//! // Version 4 of the index answers d(s, t) = 17 and caches it.
//! assert_eq!(cache.get(s, t, 4), None); // cold miss
//! cache.insert(s, t, 4, Dist(17));
//! assert_eq!(cache.get(s, t, 4), Some(Dist(17))); // hit, no search
//!
//! // A new snapshot is published: same pair, new epoch — the old entry is
//! // invisible (stale miss) and the next insert overwrites it in place.
//! cache.bump_epoch(5);
//! assert_eq!(cache.get(s, t, 5), None);
//! cache.insert(s, t, 5, Dist(21));
//! assert_eq!(cache.get(s, t, 5), Some(Dist(21)));
//!
//! let stats = cache.stats();
//! assert_eq!((stats.hits, stats.misses, stats.stale_misses), (2, 2, 1));
//! assert_eq!(stats.stale_evictions, 1); // the overwrite of the v4 entry
//! ```

use crate::config::CacheConfig;
use crate::telemetry::{Counter, TelemetryHub};
use htsp_graph::{Dist, QuerySession, VertexId};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cumulative telemetry of a [`DistanceCache`] (or one of its shards).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (entry present at the reader's
    /// snapshot version).
    pub hits: u64,
    /// Lookups that had to fall through to a search (includes
    /// [`CacheStats::stale_misses`]).
    pub misses: u64,
    /// The subset of misses where the pair *was* cached, but from a
    /// different snapshot version than the reader's (usually an older one —
    /// the price of publication-epoch invalidation).
    pub stale_misses: u64,
    /// Entries written (fresh inserts and overwrites alike).
    pub inserts: u64,
    /// Entries evicted because their shard was full (LRU order).
    pub evictions: u64,
    /// Entries lazily overwritten by an insert of the same pair at a newer
    /// version.
    pub stale_evictions: u64,
}

impl CacheStats {
    /// Component-wise sum (used to fold shards into one figure).
    pub fn plus(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            stale_misses: self.stale_misses + other.stale_misses,
            inserts: self.inserts + other.inserts,
            evictions: self.evictions + other.evictions,
            stale_evictions: self.stale_evictions + other.stale_evictions,
        }
    }

    /// The delta from an earlier reading of the same counters — the
    /// per-run figure the measurement harnesses report.
    pub fn since(self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            stale_misses: self.stale_misses.saturating_sub(earlier.stale_misses),
            inserts: self.inserts.saturating_sub(earlier.inserts),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            stale_evictions: self.stale_evictions.saturating_sub(earlier.stale_evictions),
        }
    }

    /// Fraction of lookups answered from the cache (0 when none happened).
    pub fn hit_rate(self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total lookups (hits + misses).
    pub fn lookups(self) -> u64 {
        self.hits + self.misses
    }

    /// Folds any number of per-shard (or per-server) readings into one
    /// aggregate — the fleet-report path, so per-shard cache telemetry sums
    /// without hand-rolled loops. Equivalent to `iter.sum()` via the
    /// [`Sum`](std::iter::Sum) impl.
    pub fn merge(stats: impl IntoIterator<Item = CacheStats>) -> CacheStats {
        stats
            .into_iter()
            .fold(CacheStats::default(), CacheStats::plus)
    }
}

impl std::iter::Sum for CacheStats {
    fn sum<I: Iterator<Item = CacheStats>>(iter: I) -> CacheStats {
        CacheStats::merge(iter)
    }
}

impl<'a> std::iter::Sum<&'a CacheStats> for CacheStats {
    fn sum<I: Iterator<Item = &'a CacheStats>>(iter: I) -> CacheStats {
        CacheStats::merge(iter.copied())
    }
}

/// Sentinel for "no slot" in the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// One cached answer, threaded into its shard's LRU list.
#[derive(Clone, Copy)]
struct Slot {
    key: (VertexId, VertexId),
    /// Publisher version the answer was computed against.
    version: u64,
    dist: Dist,
    /// Towards more-recently-used.
    prev: u32,
    /// Towards less-recently-used.
    next: u32,
}

/// One shard's telemetry: lock-free [`Counter`] handles, readable without
/// the shard mutex and registerable into a [`TelemetryHub`] as labeled
/// `htsp_cache_*` series — the registry is the single source of truth;
/// [`CacheStats`] is a snapshot of these counters.
#[derive(Clone, Default)]
struct ShardMetrics {
    hits: Counter,
    misses: Counter,
    stale_misses: Counter,
    inserts: Counter,
    evictions: Counter,
    stale_evictions: Counter,
}

impl ShardMetrics {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            stale_misses: self.stale_misses.get(),
            inserts: self.inserts.get(),
            evictions: self.evictions.get(),
            stale_evictions: self.stale_evictions.get(),
        }
    }
}

/// One independently locked cache segment: a fixed-capacity LRU map.
struct Shard {
    map: rustc_hash::FxHashMap<(VertexId, VertexId), u32>,
    slots: Vec<Slot>,
    /// Most-recently-used slot (NIL when empty).
    head: u32,
    /// Least-recently-used slot (NIL when empty).
    tail: u32,
    capacity: usize,
    stats: ShardMetrics,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: rustc_hash::FxHashMap::default(),
            slots: Vec::with_capacity(capacity.min(1024)),
            head: NIL,
            tail: NIL,
            capacity,
            stats: ShardMetrics::default(),
        }
    }

    /// Unlinks slot `i` from the LRU list (it must be linked).
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    /// Links slot `i` at the most-recently-used end.
    fn link_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[i as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        match old_head {
            NIL => self.tail = i,
            h => self.slots[h as usize].prev = i,
        }
        self.head = i;
    }

    fn touch(&mut self, i: u32) {
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
    }

    fn get(&mut self, key: (VertexId, VertexId), version: u64) -> Option<Dist> {
        match self.map.get(&key).copied() {
            Some(i) if self.slots[i as usize].version == version => {
                self.stats.hits.inc();
                self.touch(i);
                Some(self.slots[i as usize].dist)
            }
            Some(_) => {
                // Cached, but computed against another snapshot: a miss by
                // contract (a hit must never cross a publication boundary).
                self.stats.misses.inc();
                self.stats.stale_misses.inc();
                None
            }
            None => {
                self.stats.misses.inc();
                None
            }
        }
    }

    fn insert(&mut self, key: (VertexId, VertexId), version: u64, dist: Dist) {
        if let Some(&i) = self.map.get(&key) {
            let slot = &mut self.slots[i as usize];
            // A straggler still pinned to an older snapshot must not
            // clobber a fresher entry — the next current-version reader
            // would pay a stale miss for it (and on hot pairs right after a
            // publication the two pins would ping-pong the entry).
            if slot.version > version {
                return;
            }
            // Lazy overwrite: the pair is already cached; replace in place.
            self.stats.inserts.inc();
            if slot.version < version {
                self.stats.stale_evictions.inc();
            }
            slot.version = version;
            slot.dist = dist;
            self.touch(i);
            return;
        }
        self.stats.inserts.inc();
        let i = if self.slots.len() < self.capacity {
            self.slots.push(Slot {
                key,
                version,
                dist,
                prev: NIL,
                next: NIL,
            });
            (self.slots.len() - 1) as u32
        } else {
            // Full: recycle the least-recently-used slot.
            let i = self.tail;
            debug_assert_ne!(i, NIL, "full shard with empty LRU list");
            self.unlink(i);
            let evicted_key = self.slots[i as usize].key;
            self.map.remove(&evicted_key);
            self.stats.evictions.inc();
            let slot = &mut self.slots[i as usize];
            slot.key = key;
            slot.version = version;
            slot.dist = dist;
            i
        };
        self.link_front(i);
        self.map.insert(key, i);
    }
}

/// A sharded, snapshot-versioned, fixed-capacity LRU cache of
/// `d(source, target)` answers. See the [module docs](self) for the design.
///
/// All methods take `&self`; any number of serving threads share one cache.
pub struct DistanceCache {
    shards: Vec<Mutex<Shard>>,
    /// Newest publisher version this cache has heard of (telemetry only —
    /// see the module docs).
    epoch: AtomicU64,
    capacity: usize,
}

impl DistanceCache {
    /// Creates a cache with `config.capacity` total entries spread over
    /// `config.shards` independently locked LRU shards.
    ///
    /// # Panics
    ///
    /// Panics if the per-shard capacity (`capacity / shards`, rounded up)
    /// does not fit the internal 32-bit slot index.
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        let per_shard = (config.capacity.max(1)).div_ceil(shards);
        // Slot indices are u32 with u32::MAX as the list sentinel; a larger
        // shard would corrupt the LRU links silently, so refuse it loudly.
        assert!(
            per_shard < u32::MAX as usize,
            "cache shard capacity {per_shard} exceeds the 32-bit slot index \
             (raise `shards` or lower `capacity`)"
        );
        DistanceCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            epoch: AtomicU64::new(0),
            capacity: per_shard * shards,
        }
    }

    #[inline]
    fn shard(&self, key: (VertexId, VertexId)) -> &Mutex<Shard> {
        let mut h = rustc_hash::FxHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks up `d(s, t)` as computed against publisher version `version`.
    ///
    /// Returns `Some` only when the cached entry was inserted at exactly
    /// that version — an entry from any other snapshot is reported as a
    /// (stale) miss, so a hit can never cross a publication boundary.
    pub fn get(&self, s: VertexId, t: VertexId, version: u64) -> Option<Dist> {
        self.shard((s, t))
            .lock()
            .expect("cache shard poisoned")
            .get((s, t), version)
    }

    /// Caches `d(s, t) = dist` as computed against publisher version
    /// `version`, overwriting any same-or-older entry for the pair (stale
    /// entries are reclaimed here, lazily) and evicting the shard's LRU
    /// entry when full. An insert from a reader pinned to an *older*
    /// version than the cached entry's is dropped — stragglers never
    /// clobber fresher answers.
    pub fn insert(&self, s: VertexId, t: VertexId, version: u64, dist: Dist) {
        self.shard((s, t))
            .lock()
            .expect("cache shard poisoned")
            .insert((s, t), version, dist);
    }

    /// Folds a publication into the cache's epoch (monotonic `max`, so
    /// out-of-order delivery from racing publishers is harmless). Wired to
    /// [`SnapshotPublisher::on_publish`](htsp_graph::SnapshotPublisher::on_publish)
    /// by the `RoadNetworkServer`.
    pub fn bump_epoch(&self, version: u64) {
        self.epoch.fetch_max(version, Ordering::AcqRel);
    }

    /// The newest publisher version the cache has heard of.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Total entry capacity (rounded up to a multiple of the shard count).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of independently locked shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Entries currently cached (fresh and stale alike).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Telemetry folded over all shards.
    pub fn stats(&self) -> CacheStats {
        self.per_shard_stats()
            .into_iter()
            .fold(CacheStats::default(), CacheStats::plus)
    }

    /// Telemetry per shard (index = shard), for spotting skew hot-spots.
    pub fn per_shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").stats.snapshot())
            .collect()
    }

    /// Adopts every shard's counters into `hub` as labeled
    /// `htsp_cache_*_total{shard="i"}` series. The handles are shared, not
    /// copied: the registry and [`DistanceCache::stats`] read the same
    /// atomics, so there is one source of truth for cache telemetry.
    pub fn register_metrics(&self, hub: &TelemetryHub) {
        for (i, shard) in self.shards.iter().enumerate() {
            let m = shard.lock().expect("cache shard poisoned").stats.clone();
            let shard_label = i.to_string();
            let labels: &[(&str, &str)] = &[("shard", &shard_label)];
            hub.register_counter("htsp_cache_hits_total", labels, &m.hits);
            hub.register_counter("htsp_cache_misses_total", labels, &m.misses);
            hub.register_counter("htsp_cache_stale_misses_total", labels, &m.stale_misses);
            hub.register_counter("htsp_cache_inserts_total", labels, &m.inserts);
            hub.register_counter("htsp_cache_evictions_total", labels, &m.evictions);
            hub.register_counter(
                "htsp_cache_stale_evictions_total",
                labels,
                &m.stale_evictions,
            );
        }
    }
}

impl std::fmt::Debug for DistanceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistanceCache")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("epoch", &self.epoch())
            .field("stats", &self.stats())
            .finish()
    }
}

/// A [`QuerySession`] wrapper that consults a [`DistanceCache`] before (and
/// feeds it after) every search of the wrapped session.
///
/// The wrapper is pinned to the snapshot `version` of the session it wraps:
/// lookups and inserts both carry that version, so a cached answer is
/// exactly what the wrapped session would have computed — serving through a
/// `CachedSession` never changes an answer, only its cost. Batch workloads
/// are split pair-wise: cached pairs are answered from the cache and only
/// the *missing* targets of a one-to-many fan reach the session's shared
/// search.
pub struct CachedSession<'a> {
    inner: Box<dyn QuerySession + 'a>,
    cache: &'a DistanceCache,
    version: u64,
}

impl<'a> CachedSession<'a> {
    /// Wraps `inner` (pinned to publisher version `version`) around `cache`.
    pub fn new(inner: Box<dyn QuerySession + 'a>, cache: &'a DistanceCache, version: u64) -> Self {
        CachedSession {
            inner,
            cache,
            version,
        }
    }
}

impl QuerySession for CachedSession<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Dist {
        if let Some(d) = self.cache.get(s, t, self.version) {
            return d;
        }
        let d = self.inner.distance(s, t);
        self.cache.insert(s, t, self.version, d);
        d
    }

    fn one_to_many(&mut self, source: VertexId, targets: &[VertexId]) -> Vec<Dist> {
        // Answer cached pairs up front; run one shared search over the rest.
        let mut out = vec![Dist::ZERO; targets.len()];
        let mut missing = Vec::new();
        let mut missing_at = Vec::new();
        for (i, &t) in targets.iter().enumerate() {
            match self.cache.get(source, t, self.version) {
                Some(d) => out[i] = d,
                None => {
                    missing.push(t);
                    missing_at.push(i);
                }
            }
        }
        if !missing.is_empty() {
            let ds = self.inner.one_to_many(source, &missing);
            for ((&t, &i), &d) in missing.iter().zip(&missing_at).zip(&ds) {
                self.cache.insert(source, t, self.version, d);
                out[i] = d;
            }
        }
        out
    }

    fn matrix(&mut self, sources: &[VertexId], targets: &[VertexId]) -> Vec<Vec<Dist>> {
        sources
            .iter()
            .map(|&s| self.one_to_many(s, targets))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::FallbackSession;
    use htsp_graph::{Graph, GraphBuilder, QueryView};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn hit_miss_and_versioning() {
        let cache = DistanceCache::new(CacheConfig {
            capacity: 64,
            shards: 4,
        });
        assert_eq!(cache.get(v(1), v(2), 0), None);
        cache.insert(v(1), v(2), 0, Dist(5));
        assert_eq!(cache.get(v(1), v(2), 0), Some(Dist(5)));
        // Same pair, different reader version: stale miss, not a hit.
        assert_eq!(cache.get(v(1), v(2), 1), None);
        // Direction matters: (2, 1) is a different key.
        assert_eq!(cache.get(v(2), v(1), 0), None);
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.stale_misses, 1);
        assert_eq!(s.inserts, 1);
        assert_eq!(s.hit_rate(), 0.25);
        assert_eq!(s.lookups(), 4);
    }

    #[test]
    fn stale_entries_are_lazily_overwritten() {
        let cache = DistanceCache::new(CacheConfig {
            capacity: 8,
            shards: 1,
        });
        cache.insert(v(1), v(2), 0, Dist(5));
        cache.bump_epoch(1);
        assert_eq!(cache.epoch(), 1);
        cache.insert(v(1), v(2), 1, Dist(9));
        assert_eq!(cache.len(), 1, "overwrite must not grow the cache");
        assert_eq!(cache.get(v(1), v(2), 1), Some(Dist(9)));
        assert_eq!(cache.get(v(1), v(2), 0), None, "old version gone");
        assert_eq!(cache.stats().stale_evictions, 1);
        // Epoch folds monotonically: an out-of-order event cannot regress it.
        cache.bump_epoch(0);
        assert_eq!(cache.epoch(), 1);
    }

    #[test]
    fn straggler_inserts_never_clobber_fresher_entries() {
        let cache = DistanceCache::new(CacheConfig {
            capacity: 8,
            shards: 1,
        });
        cache.insert(v(1), v(2), 5, Dist(50));
        // A reader still pinned to version 4 recomputes the pair on its old
        // snapshot; its insert must be dropped.
        cache.insert(v(1), v(2), 4, Dist(40));
        assert_eq!(cache.get(v(1), v(2), 5), Some(Dist(50)));
        let s = cache.stats();
        assert_eq!(s.inserts, 1, "the straggler insert must not count");
        assert_eq!(s.stale_evictions, 0);
        // The same-version overwrite path still works.
        cache.insert(v(1), v(2), 5, Dist(51));
        assert_eq!(cache.get(v(1), v(2), 5), Some(Dist(51)));
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let cache = DistanceCache::new(CacheConfig {
            capacity: 3,
            shards: 1,
        });
        cache.insert(v(0), v(1), 0, Dist(1));
        cache.insert(v(0), v(2), 0, Dist(2));
        cache.insert(v(0), v(3), 0, Dist(3));
        // Touch (0,1) so (0,2) becomes the LRU entry.
        assert_eq!(cache.get(v(0), v(1), 0), Some(Dist(1)));
        cache.insert(v(0), v(4), 0, Dist(4));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get(v(0), v(2), 0), None, "LRU entry must be gone");
        assert_eq!(cache.get(v(0), v(1), 0), Some(Dist(1)));
        assert_eq!(cache.get(v(0), v(3), 0), Some(Dist(3)));
        assert_eq!(cache.get(v(0), v(4), 0), Some(Dist(4)));
    }

    #[test]
    fn capacity_rounds_up_to_shards_and_shards_isolate() {
        let cache = DistanceCache::new(CacheConfig {
            capacity: 10,
            shards: 4,
        });
        assert_eq!(cache.num_shards(), 4);
        assert_eq!(cache.capacity(), 12);
        // Many inserts across shards never exceed capacity.
        for i in 0..100u32 {
            cache.insert(v(i), v(i + 1), 0, Dist(i));
        }
        assert!(cache.len() <= cache.capacity());
        assert_eq!(cache.per_shard_stats().len(), 4);
        assert_eq!(
            cache
                .per_shard_stats()
                .into_iter()
                .fold(CacheStats::default(), CacheStats::plus),
            cache.stats()
        );
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        let cache = DistanceCache::new(CacheConfig {
            capacity: 256,
            shards: 8,
        });
        std::thread::scope(|scope| {
            for w in 0..4u32 {
                let cache = &cache;
                scope.spawn(move || {
                    // 7 × 11 = 77 distinct keys, well under capacity, so
                    // repeats must hit.
                    for i in 0..500u32 {
                        let (s, t) = (v(i % 7), v((i * 3 + w) % 11));
                        if cache.get(s, t, 2).is_none() {
                            cache.insert(s, t, 2, Dist(s.0 + t.0));
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 2000);
        assert!(stats.hits > 0);
        // Every cached answer is version-consistent.
        for i in 0..7 {
            for j in 0..11 {
                if let Some(d) = cache.get(v(i), v(j), 2) {
                    assert_eq!(d, Dist(i + j));
                }
            }
        }
    }

    /// A view that counts how many distance computations reach it.
    struct Counting {
        graph: Graph,
        calls: AtomicU64,
    }

    impl QueryView for Counting {
        fn algorithm(&self) -> &'static str {
            "counting"
        }
        fn stage(&self) -> usize {
            0
        }
        fn distance(&self, s: VertexId, t: VertexId) -> Dist {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Dist(s.0 * 100 + t.0)
        }
        fn session(&self) -> Box<dyn QuerySession + '_> {
            Box::new(FallbackSession::new(self))
        }
        fn graph(&self) -> &Graph {
            &self.graph
        }
    }

    fn counting_view() -> Counting {
        let mut b = GraphBuilder::new(8);
        b.add_edge(v(0), v(1), 1);
        Counting {
            graph: b.build(),
            calls: AtomicU64::new(0),
        }
    }

    #[test]
    fn cached_session_short_circuits_repeats_without_changing_answers() {
        let view = counting_view();
        let cache = DistanceCache::new(CacheConfig {
            capacity: 64,
            shards: 2,
        });
        let mut session = CachedSession::new(view.session(), &cache, 7);
        assert_eq!(session.distance(v(1), v(2)), Dist(102));
        assert_eq!(session.distance(v(1), v(2)), Dist(102));
        assert_eq!(session.distance(v(1), v(2)), Dist(102));
        assert_eq!(view.calls.load(Ordering::Relaxed), 1, "repeats must hit");
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn cached_session_fans_only_the_missing_targets() {
        let view = counting_view();
        let cache = DistanceCache::new(CacheConfig {
            capacity: 64,
            shards: 2,
        });
        let mut session = CachedSession::new(view.session(), &cache, 1);
        // Pre-warm two of four targets.
        session.distance(v(5), v(1));
        session.distance(v(5), v(3));
        let before = view.calls.load(Ordering::Relaxed);
        let ds = session.one_to_many(v(5), &[v(0), v(1), v(2), v(3)]);
        assert_eq!(ds, vec![Dist(500), Dist(501), Dist(502), Dist(503)]);
        assert_eq!(
            view.calls.load(Ordering::Relaxed) - before,
            2,
            "only the two cold targets may reach the view"
        );
        // Matrix goes through the same pair-wise path.
        let m = session.matrix(&[v(5)], &[v(0), v(1), v(2), v(3)]);
        assert_eq!(m[0], vec![Dist(500), Dist(501), Dist(502), Dist(503)]);
        assert_eq!(view.calls.load(Ordering::Relaxed) - before, 2);
    }

    #[test]
    fn stats_since_subtracts() {
        let a = CacheStats {
            hits: 10,
            misses: 6,
            stale_misses: 2,
            inserts: 6,
            evictions: 1,
            stale_evictions: 1,
        };
        let b = CacheStats {
            hits: 4,
            misses: 2,
            stale_misses: 1,
            inserts: 2,
            evictions: 0,
            stale_evictions: 1,
        };
        let d = a.since(b);
        assert_eq!(d.hits, 6);
        assert_eq!(d.misses, 4);
        assert_eq!(d.stale_misses, 1);
        assert_eq!(d.inserts, 4);
        assert_eq!(d.evictions, 1);
        assert_eq!(d.stale_evictions, 0);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
