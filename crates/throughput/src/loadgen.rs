//! Open-loop load generation: Poisson arrivals, request mixes, and the
//! SLO-checked driver that measures a [`DistanceService`] the way real
//! traffic would.
//!
//! # Closed-loop vs open-loop
//!
//! The concurrent engine ([`QueryEngine`](crate::QueryEngine)) is
//! **closed-loop**: each worker submits its next query only after the
//! previous answer returns, so offered load self-throttles to whatever the
//! server sustains and queueing delay is invisible. Real traffic is
//! **open-loop**: requests arrive on their own schedule whether or not the
//! server keeps up, so a server running just past saturation accumulates an
//! unbounded queue and its tail latency diverges. This module generates
//! that schedule deterministically:
//!
//! * [`ArrivalProcess`] — Poisson (exponential inter-arrival gaps) or
//!   constant-rate arrivals, drawn from a seeded PRNG;
//! * [`RequestMix`] — a weighted mix of [`RequestClass`]es, each mapping to
//!   a [`QueryBatch`] shape (point-to-point bundles, one-to-many fans,
//!   distance matrices, or Zipf-skewed hot pairs via
//!   [`HotPairStream`]);
//! * [`OpenLoopStream`] — one client's deterministic stream of
//!   [`ScheduledRequest`]s: same `(seed, client)` ⇒ identical schedule and
//!   identical batches;
//! * [`run_open_loop`] — the driver: `clients` generator threads submit on
//!   schedule via [`DistanceService::try_submit_at`], time-stamping each
//!   request at *generation* (the scheduled arrival instant, not the submit
//!   call), so queueing delay — and generator lateness — is charged to the
//!   measured latency. The resulting [`LoadReport`] carries per-class
//!   latency histograms, goodput/shed/expired counters, and the
//!   [`SloVerdict`] against the profile's [`SloTarget`];
//! * [`find_knee`] — binary search for the highest offered rate that still
//!   passes a caller-supplied predicate (e.g. "p95 under the SLO with
//!   nothing shed"), the *knee* of the latency-throughput curve.
//!
//! Submitting with a generation timestamp in the past is exactly what makes
//! the measurement honest under overload: if the generator falls behind (or
//! the admission queue is full and the request is shed), the lateness is
//! either charged to the latency histogram or counted as lost goodput —
//! never silently forgiven, which is the classic closed-loop
//! *coordinated-omission* bug.

use crate::admission::SubmitOutcome;
use crate::engine::HotPairStream;
use crate::service::{BatchResult, BatchTicket, DistanceService, QueryBatch};
use crate::slo::{LatencyHistogram, SloTarget, SloVerdict};
use htsp_graph::Query;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

/// Golden-ratio multiplier used to decorrelate per-client PRNG seeds (the
/// same constant [`HotPairStream`] uses per worker).
const SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// The arrival schedule of an open-loop client: when requests are *offered*,
/// independent of how fast the server answers them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate` requests/second: inter-arrival gaps are
    /// exponential with mean `1/rate`, the memoryless model of independent
    /// clients (and the arrival model of the paper's M/G/1 bound).
    Poisson {
        /// Mean offered rate in requests per second.
        rate: f64,
    },
    /// Constant-rate arrivals: one request every `1/rate` seconds exactly.
    /// Useful as the bursty-free control for the Poisson runs.
    Constant {
        /// Offered rate in requests per second.
        rate: f64,
    },
}

impl ArrivalProcess {
    /// The mean offered rate in requests per second.
    pub fn rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } | ArrivalProcess::Constant { rate } => rate,
        }
    }

    /// The same process scaled to `rate` requests per second.
    pub fn at_rate(&self, rate: f64) -> Self {
        match *self {
            ArrivalProcess::Poisson { .. } => ArrivalProcess::Poisson { rate },
            ArrivalProcess::Constant { .. } => ArrivalProcess::Constant { rate },
        }
    }

    /// Short label for reports (`"poisson"` / `"constant"`).
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Constant { .. } => "constant",
        }
    }

    /// Draws the gap to the next arrival.
    fn next_gap<R: Rng>(&self, rng: &mut R) -> Duration {
        match *self {
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0, "Poisson rate must be positive");
                // Inverse-CDF of the exponential distribution; u ∈ [0, 1)
                // so 1 - u ∈ (0, 1] and the log is finite.
                let u: f64 = rng.gen();
                Duration::from_secs_f64(-(1.0 - u).ln() / rate)
            }
            ArrivalProcess::Constant { rate } => {
                assert!(rate > 0.0, "constant rate must be positive");
                Duration::from_secs_f64(1.0 / rate)
            }
        }
    }
}

/// The shape of one generated request, mapping to a [`QueryBatch`] variant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RequestClass {
    /// A bundle of `bundle` independent `(s, t)` pairs drawn uniformly from
    /// the query pool ([`QueryBatch::PointToPoint`]).
    PointToPoint {
        /// Pairs per batch.
        bundle: usize,
    },
    /// One origin, `fanout` destinations ([`QueryBatch::OneToMany`]).
    OneToMany {
        /// Destinations per batch.
        fanout: usize,
    },
    /// A `side × side` distance matrix ([`QueryBatch::Matrix`]).
    Matrix {
        /// Rows and columns of the matrix.
        side: usize,
    },
    /// Single Zipf-skewed hot pairs drawn by a deterministic
    /// [`HotPairStream`] over the first `universe`
    /// pool entries — the cache-friendly workload.
    HotPairs {
        /// Number of distinct hot pairs.
        universe: usize,
        /// Zipf skew exponent `s` (larger ⇒ more skewed).
        zipf_s: f64,
    },
}

impl RequestClass {
    /// Short label for per-class reports.
    pub fn label(&self) -> &'static str {
        match self {
            RequestClass::PointToPoint { .. } => "point-to-point",
            RequestClass::OneToMany { .. } => "one-to-many",
            RequestClass::Matrix { .. } => "matrix",
            RequestClass::HotPairs { .. } => "hot-pairs",
        }
    }

    /// Number of `(s, t)` distances one batch of this class asks for.
    pub fn pairs_per_batch(&self) -> usize {
        match *self {
            RequestClass::PointToPoint { bundle } => bundle.max(1),
            RequestClass::OneToMany { fanout } => fanout.max(1),
            RequestClass::Matrix { side } => side.max(1) * side.max(1),
            RequestClass::HotPairs { .. } => 1,
        }
    }
}

/// A weighted mix of [`RequestClass`]es: each generated request samples a
/// class proportionally to its weight.
#[derive(Clone, Debug)]
pub struct RequestMix {
    entries: Vec<(RequestClass, f64)>,
    total_weight: f64,
}

impl RequestMix {
    /// A mix over `(class, weight)` entries. Weights must be positive; they
    /// need not sum to 1.
    pub fn new(entries: Vec<(RequestClass, f64)>) -> Self {
        assert!(
            !entries.is_empty(),
            "request mix must have at least one class"
        );
        assert!(
            entries.iter().all(|(_, w)| w.is_finite() && *w > 0.0),
            "request-mix weights must be positive and finite"
        );
        let total_weight = entries.iter().map(|(_, w)| w).sum();
        RequestMix {
            entries,
            total_weight,
        }
    }

    /// The simplest mix: every request is a point-to-point bundle of
    /// `bundle` pairs.
    pub fn point_to_point(bundle: usize) -> Self {
        RequestMix::new(vec![(RequestClass::PointToPoint { bundle }, 1.0)])
    }

    /// The classes in this mix, in entry order.
    pub fn classes(&self) -> Vec<RequestClass> {
        self.entries.iter().map(|(c, _)| *c).collect()
    }

    /// Samples an entry index proportionally to weight.
    fn sample_index<R: Rng>(&self, rng: &mut R) -> usize {
        let mut x: f64 = rng.gen::<f64>() * self.total_weight;
        for (i, (_, w)) in self.entries.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        self.entries.len() - 1
    }
}

/// One request on an open-loop schedule: due `offset` after the stream
/// start, carrying a ready-to-submit [`QueryBatch`].
#[derive(Clone, Debug)]
pub struct ScheduledRequest {
    /// Arrival offset from the stream's origin (cumulative over the stream).
    pub offset: Duration,
    /// Index of the mix entry this request was sampled from.
    pub class_index: usize,
    /// The sampled request class.
    pub class: RequestClass,
    /// The generated batch.
    pub batch: QueryBatch,
}

/// One client's deterministic open-loop request stream.
///
/// The stream owns a seeded PRNG (decorrelated per `client` with the same
/// golden-ratio mix [`HotPairStream`] uses), so the
/// same `(seed, client)` always yields the identical arrival schedule *and*
/// the identical sequence of batches — runs are replayable and two clients
/// never mirror each other.
#[derive(Debug)]
pub struct OpenLoopStream {
    arrivals: ArrivalProcess,
    mix: RequestMix,
    pool: Vec<Query>,
    rng: ChaCha8Rng,
    /// One deterministic hot-pair stream per `HotPairs` mix entry
    /// (`None` for the other classes), parallel to `mix.entries`.
    hot: Vec<Option<HotPairStream>>,
    elapsed: Duration,
}

impl OpenLoopStream {
    /// A stream for `client` drawing batches from `pool`.
    pub fn new(
        arrivals: ArrivalProcess,
        mix: RequestMix,
        pool: &[Query],
        seed: u64,
        client: usize,
    ) -> Self {
        assert!(!pool.is_empty(), "open-loop query pool must be non-empty");
        let hot = mix
            .entries
            .iter()
            .enumerate()
            .map(|(i, (class, _))| match *class {
                RequestClass::HotPairs { universe, zipf_s } => Some(HotPairStream::new(
                    universe.clamp(1, pool.len()),
                    zipf_s,
                    seed.wrapping_add(1 + i as u64),
                    client,
                )),
                _ => None,
            })
            .collect();
        OpenLoopStream {
            arrivals,
            mix,
            pool: pool.to_vec(),
            rng: ChaCha8Rng::seed_from_u64(seed ^ (client as u64).wrapping_mul(SEED_MIX)),
            hot,
            elapsed: Duration::ZERO,
        }
    }

    /// Generates the next request; offsets grow monotonically.
    pub fn next_request(&mut self) -> ScheduledRequest {
        self.elapsed += self.arrivals.next_gap(&mut self.rng);
        let class_index = self.mix.sample_index(&mut self.rng);
        let class = self.mix.entries[class_index].0;
        let batch = self.make_batch(class_index, class);
        ScheduledRequest {
            offset: self.elapsed,
            class_index,
            class,
            batch,
        }
    }

    /// Number of entries in the underlying mix (parallel to
    /// [`ScheduledRequest::class_index`]).
    pub fn num_classes(&self) -> usize {
        self.mix.entries.len()
    }

    fn pick(&mut self) -> Query {
        self.pool[self.rng.gen_range(0..self.pool.len())]
    }

    fn make_batch(&mut self, class_index: usize, class: RequestClass) -> QueryBatch {
        match class {
            RequestClass::PointToPoint { bundle } => {
                QueryBatch::PointToPoint((0..bundle.max(1)).map(|_| self.pick()).collect())
            }
            RequestClass::OneToMany { fanout } => {
                let source = self.pick().source;
                let targets = (0..fanout.max(1)).map(|_| self.pick().target).collect();
                QueryBatch::OneToMany { source, targets }
            }
            RequestClass::Matrix { side } => {
                let side = side.max(1);
                let sources = (0..side).map(|_| self.pick().source).collect();
                let targets = (0..side).map(|_| self.pick().target).collect();
                QueryBatch::Matrix { sources, targets }
            }
            RequestClass::HotPairs { .. } => {
                let stream = self.hot[class_index]
                    .as_mut()
                    .expect("hot stream exists for HotPairs entries");
                QueryBatch::PointToPoint(vec![stream.next_query(&self.pool)])
            }
        }
    }
}

/// How an open-loop generator waits for the next scheduled arrival.
///
/// Plain `thread::sleep` granularity (≈1 ms on most schedulers, worse with
/// timer coalescing) silently caps what one generator can offer: at
/// 50k req/s the inter-arrival gap is 20 µs, so a sleeping generator
/// oversleeps nearly every deadline and degrades into a closed loop that
/// under-offers the configured rate. The spin variants trade CPU for
/// schedule fidelity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pacer {
    /// `thread::sleep` until due — cheap and coarse; adequate below roughly
    /// 1k req/s per client thread.
    Sleep,
    /// Busy-wait on `Instant::now()` until due — exact, burns a core.
    Spin,
    /// Sleep until `spin_window` before the deadline, then spin the rest:
    /// sub-sleep-granularity fidelity at a bounded spin cost per arrival.
    Hybrid {
        /// How long before the deadline to switch from sleeping to
        /// spinning (must cover the platform's sleep overshoot).
        spin_window: Duration,
    },
}

impl Default for Pacer {
    /// Hybrid with a 200 µs spin window: exact enough for 50k+ req/s
    /// aggregate offers while spending ≪1% of a core per 1k req/s.
    fn default() -> Self {
        Pacer::Hybrid {
            spin_window: Duration::from_micros(200),
        }
    }
}

impl Pacer {
    /// Blocks until `due`; returns immediately if the deadline has passed.
    pub fn pace_until(self, due: Instant) {
        match self {
            Pacer::Sleep => {
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
            Pacer::Spin => {
                while Instant::now() < due {
                    std::hint::spin_loop();
                }
            }
            Pacer::Hybrid { spin_window } => {
                let now = Instant::now();
                if due > now && due - now > spin_window {
                    std::thread::sleep(due - now - spin_window);
                }
                while Instant::now() < due {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// Everything [`run_open_loop`] needs: the schedule, the mix, the fleet of
/// generator clients, the horizon, and the SLO to judge the run against.
#[derive(Clone, Debug)]
pub struct LoadProfile {
    /// The *aggregate* arrival process; each of the `clients` generators
    /// runs it at `rate / clients` so the merged stream offers `rate`.
    pub arrivals: ArrivalProcess,
    /// The request mix every client samples from.
    pub mix: RequestMix,
    /// Number of generator threads (clamped to at least 1).
    pub clients: usize,
    /// Generation horizon: requests with offsets past this are not offered.
    pub duration: Duration,
    /// Base seed; client `c` derives its stream from `(seed, c)`.
    pub seed: u64,
    /// The latency SLO the run is judged against.
    pub slo: SloTarget,
    /// How generator threads wait out inter-arrival gaps.
    pub pacer: Pacer,
}

impl LoadProfile {
    /// A profile offering `rate` req/s of Poisson point-to-point singletons
    /// for `duration`, judged against `slo`.
    pub fn poisson(rate: f64, duration: Duration, slo: SloTarget) -> Self {
        LoadProfile {
            arrivals: ArrivalProcess::Poisson { rate },
            mix: RequestMix::point_to_point(1),
            clients: 4,
            duration,
            seed: 1,
            slo,
            pacer: Pacer::default(),
        }
    }

    /// Replaces the request mix.
    pub fn with_mix(mut self, mix: RequestMix) -> Self {
        self.mix = mix;
        self
    }

    /// Replaces the generator-thread count.
    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Replaces the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The profile re-targeted to offer `rate` requests/second aggregate.
    pub fn at_rate(mut self, rate: f64) -> Self {
        self.arrivals = self.arrivals.at_rate(rate);
        self
    }

    /// Replaces the inter-arrival pacer.
    pub fn with_pacer(mut self, pacer: Pacer) -> Self {
        self.pacer = pacer;
        self
    }
}

/// Per-[`RequestClass`] slice of a [`LoadReport`].
#[derive(Clone, Debug)]
pub struct ClassReport {
    /// The class (one entry per mix entry, in mix order).
    pub class: RequestClass,
    /// Submit-to-answer latency of answered requests of this class.
    pub latency: LatencyHistogram,
    /// Requests offered (generated within the horizon).
    pub offered: u64,
    /// Requests answered.
    pub answered: u64,
    /// Requests shed at submit by the admission policy.
    pub shed: u64,
    /// Requests expired (at submit or unexecuted in the queue).
    pub expired: u64,
}

/// The outcome of one [`run_open_loop`] measurement.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Aggregate offered rate the profile asked for (req/s).
    pub offered_rate: f64,
    /// Requests generated within the horizon.
    pub offered: u64,
    /// Requests answered (each exactly once).
    pub answered: u64,
    /// `(s, t)` distances inside the answered batches.
    pub answered_pairs: u64,
    /// Requests shed at submit.
    pub shed: u64,
    /// Requests expired at submit or dropped unexecuted in the queue.
    pub expired: u64,
    /// Accepted requests abandoned by a service shutdown mid-run
    /// (zero unless the service was shut down underneath the driver).
    pub abandoned: u64,
    /// Merged submit-to-answer latency over all answered requests,
    /// measured from the *scheduled* arrival instant.
    pub latency: LatencyHistogram,
    /// Per-mix-entry breakdown.
    pub per_class: Vec<ClassReport>,
    /// The SLO verdict of `latency` against the profile's target.
    pub verdict: SloVerdict,
    /// Generation horizon of the run.
    pub horizon: Duration,
    /// Wall time from first arrival to last resolved ticket.
    pub elapsed: Duration,
    /// Deepest the service queue got during the run (lifetime max of the
    /// service, so use a fresh service per measurement).
    pub max_queue_depth: usize,
}

impl LoadReport {
    /// Answered requests per second of wall time.
    pub fn goodput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.answered as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Fraction of offered requests that were not answered.
    pub fn loss_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            1.0 - self.answered as f64 / self.offered as f64
        }
    }
}

/// Drives `profile` against `service` and reports what happened.
///
/// Spawns `profile.clients` generator threads. Each walks its own
/// [`OpenLoopStream`] at `rate / clients`, sleeps until each request is
/// due, and submits it with [`DistanceService::try_submit_at`] passing the
/// *scheduled* arrival instant — so time lost sleeping too long, queueing,
/// or re-pinning is charged to the measured latency, not forgiven. Tickets
/// are collected and resolved after the horizon (answers are timestamped by
/// the workers at completion, so late collection does not distort
/// latencies).
///
/// The service is left running; pair with
/// [`DistanceService::shutdown`](crate::DistanceService::shutdown) or reuse
/// it for the next measurement (note [`LoadReport::max_queue_depth`] is a
/// lifetime max).
pub fn run_open_loop(
    service: &DistanceService,
    profile: &LoadProfile,
    pool: &[Query],
) -> LoadReport {
    run_open_loop_with_telemetry(service, profile, pool, None)
}

/// Like [`run_open_loop`], but additionally folds the run's per-class
/// outcome into `hub` when one is given: each mix class contributes a
/// `htsp_loadgen_latency_seconds{class=...}` histogram and
/// `htsp_loadgen_{offered,answered,shed,expired}_total{class=...}`
/// counters (plus an unlabeled `htsp_loadgen_abandoned_total`), so the
/// load generator's view of the run sits in the same snapshot as the
/// service's admission counters. Counters accumulate across runs on the
/// same hub.
pub fn run_open_loop_with_telemetry(
    service: &DistanceService,
    profile: &LoadProfile,
    pool: &[Query],
    hub: Option<&crate::telemetry::TelemetryHub>,
) -> LoadReport {
    let report = run_open_loop_inner(service, profile, pool);
    if let Some(hub) = hub {
        for c in &report.per_class {
            let labels: &[(&str, &str)] = &[("class", c.class.label())];
            hub.labeled_histogram("htsp_loadgen_latency_seconds", labels)
                .merge_from(&c.latency);
            hub.labeled_counter("htsp_loadgen_offered_total", labels)
                .add(c.offered);
            hub.labeled_counter("htsp_loadgen_answered_total", labels)
                .add(c.answered);
            hub.labeled_counter("htsp_loadgen_shed_total", labels)
                .add(c.shed);
            hub.labeled_counter("htsp_loadgen_expired_total", labels)
                .add(c.expired);
        }
        hub.counter("htsp_loadgen_abandoned_total")
            .add(report.abandoned);
    }
    report
}

fn run_open_loop_inner(
    service: &DistanceService,
    profile: &LoadProfile,
    pool: &[Query],
) -> LoadReport {
    let clients = profile.clients.max(1);
    let per_client = profile
        .arrivals
        .at_rate(profile.arrivals.rate() / clients as f64);
    let num_classes = profile.mix.entries.len();
    let start = Instant::now();

    struct ClientOutcome {
        offered: Vec<u64>,
        answered: Vec<u64>,
        shed: Vec<u64>,
        expired: Vec<u64>,
        abandoned: u64,
        answered_pairs: u64,
        latency: Vec<LatencyHistogram>,
        last_resolved: Instant,
    }

    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut stream = OpenLoopStream::new(
                        per_client,
                        profile.mix.clone(),
                        pool,
                        profile.seed,
                        client,
                    );
                    let mut out = ClientOutcome {
                        offered: vec![0; num_classes],
                        answered: vec![0; num_classes],
                        shed: vec![0; num_classes],
                        expired: vec![0; num_classes],
                        abandoned: 0,
                        answered_pairs: 0,
                        latency: vec![LatencyHistogram::new(); num_classes],
                        last_resolved: start,
                    };
                    let mut pending: Vec<(usize, Instant, BatchTicket)> = Vec::new();
                    loop {
                        let req = stream.next_request();
                        if req.offset > profile.duration {
                            break;
                        }
                        let due = start + req.offset;
                        profile.pacer.pace_until(due);
                        out.offered[req.class_index] += 1;
                        // Timestamp at the *scheduled* arrival, not the
                        // submit call: generator lag counts as latency.
                        match service.try_submit_at(req.batch, due) {
                            SubmitOutcome::Accepted(ticket) => {
                                pending.push((req.class_index, due, ticket));
                            }
                            SubmitOutcome::Shed => out.shed[req.class_index] += 1,
                            SubmitOutcome::Expired => out.expired[req.class_index] += 1,
                        }
                    }
                    for (class_index, generated_at, ticket) in pending {
                        match ticket.wait_result() {
                            BatchResult::Answered(answer) => {
                                out.answered[class_index] += 1;
                                out.answered_pairs += answer.distances.len() as u64;
                                out.latency[class_index].record(
                                    answer.answered_at.saturating_duration_since(generated_at),
                                );
                                out.last_resolved = out.last_resolved.max(answer.answered_at);
                            }
                            BatchResult::Expired => out.expired[class_index] += 1,
                            BatchResult::Abandoned => out.abandoned += 1,
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut per_class: Vec<ClassReport> = profile
        .mix
        .classes()
        .into_iter()
        .map(|class| ClassReport {
            class,
            latency: LatencyHistogram::new(),
            offered: 0,
            answered: 0,
            shed: 0,
            expired: 0,
        })
        .collect();
    let mut latency = LatencyHistogram::new();
    let mut abandoned = 0;
    let mut answered_pairs = 0;
    let mut last_resolved = start;
    for out in &outcomes {
        for (i, report) in per_class.iter_mut().enumerate() {
            report.offered += out.offered[i];
            report.answered += out.answered[i];
            report.shed += out.shed[i];
            report.expired += out.expired[i];
            report.latency.merge(&out.latency[i]);
            latency.merge(&out.latency[i]);
        }
        abandoned += out.abandoned;
        answered_pairs += out.answered_pairs;
        last_resolved = last_resolved.max(out.last_resolved);
    }
    let verdict = profile.slo.evaluate(&latency);
    LoadReport {
        offered_rate: profile.arrivals.rate(),
        offered: per_class.iter().map(|c| c.offered).sum(),
        answered: per_class.iter().map(|c| c.answered).sum(),
        answered_pairs,
        shed: per_class.iter().map(|c| c.shed).sum(),
        expired: per_class.iter().map(|c| c.expired).sum(),
        abandoned,
        latency,
        per_class,
        verdict,
        horizon: profile.duration,
        elapsed: last_resolved.saturating_duration_since(start),
        max_queue_depth: service.stats().max_queue_depth,
    }
}

/// Binary search for the knee: the highest offered rate in `[lo, hi]`
/// (req/s) whose measurement still `passes`.
///
/// The caller's closure runs one measurement at the probed rate (typically
/// [`run_open_loop`] against a *fresh* service) and says whether it met the
/// SLO. `lo` is assumed to pass and `hi` to fail — the search halves the
/// bracket `iters` times and returns the last passing rate (or `lo` if
/// every probe failed). Wall time is `iters` measurements.
pub fn find_knee<F>(lo: f64, hi: f64, iters: usize, mut passes: F) -> f64
where
    F: FnMut(f64) -> bool,
{
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    let (mut lo, mut hi) = (lo, hi);
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        if passes(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::VertexId;

    fn pool(n: usize) -> Vec<Query> {
        (0..n as u32)
            .map(|i| Query::new(VertexId(i), VertexId(n as u32 - 1 - i)))
            .collect()
    }

    #[test]
    fn same_seed_same_schedule_and_mix() {
        let mix = RequestMix::new(vec![
            (RequestClass::PointToPoint { bundle: 4 }, 3.0),
            (RequestClass::OneToMany { fanout: 8 }, 1.0),
            (
                RequestClass::HotPairs {
                    universe: 16,
                    zipf_s: 1.1,
                },
                1.0,
            ),
        ]);
        let p = pool(64);
        let arrivals = ArrivalProcess::Poisson { rate: 500.0 };
        let mut a = OpenLoopStream::new(arrivals, mix.clone(), &p, 42, 3);
        let mut b = OpenLoopStream::new(arrivals, mix.clone(), &p, 42, 3);
        let mut c = OpenLoopStream::new(arrivals, mix, &p, 42, 4);
        let mut diverged = false;
        for _ in 0..200 {
            let (ra, rb, rc) = (a.next_request(), b.next_request(), c.next_request());
            assert_eq!(ra.offset, rb.offset, "same (seed, client) must replay");
            assert_eq!(ra.class_index, rb.class_index);
            assert_eq!(format!("{:?}", ra.batch), format!("{:?}", rb.batch));
            if ra.offset != rc.offset || ra.class_index != rc.class_index {
                diverged = true;
            }
        }
        assert!(diverged, "different clients must be decorrelated");
    }

    #[test]
    fn poisson_empirical_rate_tracks_lambda() {
        let p = pool(8);
        let rate = 1000.0;
        let mut s = OpenLoopStream::new(
            ArrivalProcess::Poisson { rate },
            RequestMix::point_to_point(1),
            &p,
            7,
            0,
        );
        let n = 20_000;
        let mut last = Duration::ZERO;
        for _ in 0..n {
            last = s.next_request().offset;
        }
        let empirical = n as f64 / last.as_secs_f64();
        let err = (empirical - rate).abs() / rate;
        // 20k exponential gaps: the sample mean is within a few percent of
        // 1/λ with overwhelming probability (std-err ≈ 0.7%).
        assert!(err < 0.05, "empirical rate {empirical:.1} vs λ {rate}");
    }

    #[test]
    fn constant_rate_is_exact() {
        let p = pool(4);
        let mut s = OpenLoopStream::new(
            ArrivalProcess::Constant { rate: 100.0 },
            RequestMix::point_to_point(2),
            &p,
            1,
            0,
        );
        for i in 1..=50u32 {
            let r = s.next_request();
            assert_eq!(r.offset, Duration::from_millis(10) * i);
            assert_eq!(r.batch.num_pairs(), 2);
        }
    }

    #[test]
    fn mix_weights_are_respected() {
        let mix = RequestMix::new(vec![
            (RequestClass::PointToPoint { bundle: 1 }, 9.0),
            (RequestClass::Matrix { side: 2 }, 1.0),
        ]);
        let p = pool(16);
        let mut s = OpenLoopStream::new(ArrivalProcess::Constant { rate: 1.0 }, mix, &p, 11, 0);
        let mut counts = [0u32; 2];
        for _ in 0..2000 {
            counts[s.next_request().class_index] += 1;
        }
        let frac = counts[0] as f64 / 2000.0;
        assert!((frac - 0.9).abs() < 0.05, "90/10 mix came out {frac:.3}");
    }

    #[test]
    fn knee_search_converges() {
        // Pass exactly below 420 req/s: the knee estimate must approach it
        // from below.
        let knee = find_knee(100.0, 1000.0, 20, |rate| rate < 420.0);
        assert!(knee <= 420.0 && knee > 415.0, "knee {knee:.2}");
    }

    /// Drives `pacer` through `n` arrivals at `rate` req/s and returns the
    /// empirically achieved rate.
    fn paced_rate(pacer: Pacer, rate: f64, n: u32) -> f64 {
        let gap = Duration::from_secs_f64(1.0 / rate);
        let start = Instant::now();
        for i in 1..=n {
            pacer.pace_until(start + gap * i);
        }
        n as f64 / start.elapsed().as_secs_f64()
    }

    #[test]
    fn hybrid_pacer_sustains_50k_per_second() {
        // 20 µs inter-arrival gaps are far below sleep granularity; the
        // hybrid pacer must still track the schedule. Warm up once, then
        // measure 2500 arrivals (50 ms of schedule). Tolerance is generous
        // for loaded CI machines: at least half the configured rate, and
        // never faster than the schedule allows.
        let pacer = Pacer::default();
        paced_rate(pacer, 50_000.0, 500);
        let achieved = paced_rate(pacer, 50_000.0, 2_500);
        assert!(
            achieved >= 25_000.0,
            "hybrid pacer achieved only {achieved:.0} req/s of 50k"
        );
        assert!(
            achieved <= 51_000.0,
            "pacer ran ahead of its schedule: {achieved:.0} req/s"
        );
    }

    #[test]
    fn spin_pacer_is_exact_and_sleep_pacer_never_runs_early() {
        let achieved = paced_rate(Pacer::Spin, 50_000.0, 1_000);
        assert!(achieved >= 25_000.0, "spin pacer achieved {achieved:.0}");
        // Sleep can overshoot arbitrarily but must never return early.
        let start = Instant::now();
        let due = start + Duration::from_millis(5);
        Pacer::Sleep.pace_until(due);
        assert!(Instant::now() >= due);
        // A past deadline returns immediately for every pacer.
        for pacer in [Pacer::Sleep, Pacer::Spin, Pacer::default()] {
            let t = Instant::now();
            pacer.pace_until(t - Duration::from_millis(1));
            assert!(t.elapsed() < Duration::from_millis(50));
        }
    }
}
