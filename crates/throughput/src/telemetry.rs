//! The unified telemetry subsystem: one [`TelemetryHub`] per deployment
//! holding the metrics registry and the pipeline span recorder, exportable
//! as Prometheus text exposition and as Chrome trace-event JSON.
//!
//! # Why one hub
//!
//! Before this module, runtime accounting was a patchwork of ad-hoc structs
//! (`ServiceStats` counters inside the service, `CacheStats` inside each
//! cache shard's mutex, `FleetTelemetry` inside the router, lag vectors with
//! their own sort-based percentile code). Each answered one question and
//! none could attribute a single request's latency across pipeline stages.
//! The hub centralises both concerns:
//!
//! * **Metrics registry** — named [`Counter`]s, [`Gauge`]s (with a
//!   high-water mark folded by `fetch_max`, the single code path for every
//!   lifetime-maximum statistic), and labeled [`Histogram`]s backed by
//!   [`LatencyHistogram`] — the repo's one
//!   quantile implementation. Components resolve handles once at
//!   construction and update lock-free atomics on the hot path; the
//!   existing stats structs (`ServiceStats`, `CacheStats`, `FeedStats`,
//!   `FleetReport`) are *views over the registry*, not separate state.
//! * **Span recorder** — a bounded ring buffer of completed spans and
//!   instant events, each attributed to a
//!   [`TraceId`] minted at the pipeline entrance:
//!   one per edge update at [`UpdateFeed::submit`](crate::UpdateFeed) and
//!   one per query batch at
//!   [`DistanceService::try_submit`](crate::DistanceService::try_submit).
//!   The id rides along through coalescing, every maintainer stage,
//!   publication, and ticket visibility (updates), or through
//!   admit/queue/execute/answer (queries), so a flat export reconstructs
//!   any single request end-to-end.
//!
//! # Metric naming scheme
//!
//! All metrics are prefixed `htsp_` and grouped by pipeline section:
//!
//! | prefix | section |
//! |---|---|
//! | `htsp_ingest_*` | update feed: submissions, batches, coalesce wait |
//! | `htsp_stage_seconds{stage=...}` | per-maintainer-stage repair time |
//! | `htsp_publish_*` | snapshot publications, COW clone effort, version |
//! | `htsp_admission_*` | query service: submit/accept/shed/expire/answer, queue depth |
//! | `htsp_query_*_seconds` | query queueing and execution latency |
//! | `htsp_cache_*` | distance-cache lookups, inserts, evictions |
//! | `htsp_fleet_*{shard=...}` | router fan-out, per-shard visibility lag |
//! | `htsp_loadgen_*{class=...}` | open-loop driver per-class outcomes |
//!
//! Histograms record nanoseconds internally and export seconds, following
//! Prometheus base-unit convention (`*_seconds`).
//!
//! # Span vocabulary
//!
//! Updates (category `update`): `submit` (instant) → `coalesce` (submit to
//! batch drain) → one span per maintainer stage (named after the stage) →
//! `publish` (repair start to first containing publication) → `visible`
//! (submit to first containing publication). Queries (category `query`):
//! `submit` (instant) → `queue` (accept to worker pop) → `execute` (worker
//! answer time), with terminal instants `shed` / `expired` / `abandoned`
//! on the rejection paths. Fleet routing (category `fleet`) adds `route`
//! spans per routed batch.
//!
//! # Exports
//!
//! [`TelemetryHub::snapshot`] renders both formats in one consistent cut:
//!
//! * **Prometheus text exposition** ([`TelemetryHub::export_prometheus`]) —
//!   `# TYPE` headers plus one sample line per series; histograms emit
//!   cumulative `_bucket{le=...}` series over the non-empty log buckets,
//!   `_sum`, and `_count`. [`validate_prometheus`] is the line-format
//!   checker CI runs against the export.
//! * **Chrome trace-event JSON** ([`TelemetryHub::export_chrome_trace`]) —
//!   an object with a `traceEvents` array of complete (`"ph":"X"`) and
//!   instant (`"ph":"i"`) events, timestamps in microseconds since the hub
//!   epoch, each carrying its trace id in `args.trace`. Load the file
//!   directly into `chrome://tracing` or <https://ui.perfetto.dev>; sort or
//!   filter by `trace` to reconstruct one request. [`validate_json`] is the
//!   dependency-free syntax checker CI runs against the export.
//!
//! A [`Reporter`] thread can snapshot the hub periodically
//! ([`TelemetryHub::start_reporter`]) for long-running deployments.
//!
//! # Overhead
//!
//! Metrics are always on (relaxed atomics; a shared histogram mutex per
//! series held for a few instructions). Span recording is gated by one
//! relaxed [`AtomicBool`] ([`TelemetryHub::set_tracing`]); the budget test
//! in this module asserts the fully-enabled hub costs ≤5% closed-loop QPS
//! against the same pipeline with tracing off.

use crate::slo::LatencyHistogram;
use htsp_graph::obs::{SpanSink, TraceId};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default bound of the span ring buffer (events; oldest evicted first).
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// A monotonically increasing event counter (handle; cloning shares the
/// underlying atomic).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh detached counter (attach it to a hub with
    /// [`TelemetryHub::register_counter`]).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable value with a lifetime high-water mark.
///
/// [`Gauge::set`] is the **single** `fetch_max` path for every
/// lifetime-maximum statistic in the repo (queue depths, ingest depths):
/// the current value is stored and the high-water mark folded atomically in
/// one place, so concurrent setters can never under-report the maximum.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
    high: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh detached gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the current value and folds it into the high-water mark.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Lifetime high-water mark of [`set`](Self::set) values.
    pub fn max(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }
}

/// A shared latency histogram handle over the repo's single quantile
/// implementation ([`LatencyHistogram`]).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<Mutex<LatencyHistogram>>);

impl Histogram {
    /// A fresh detached histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        self.lock().record(latency);
    }

    /// Records one sample in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.lock().record_ns(ns);
    }

    /// Records one sample in seconds.
    pub fn record_secs(&self, secs: f64) {
        self.lock().record_secs(secs);
    }

    /// Folds an already-aggregated histogram in (for per-thread or
    /// per-run aggregation).
    pub fn merge_from(&self, other: &LatencyHistogram) {
        self.lock().merge(other);
    }

    /// A point-in-time copy of the underlying histogram.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.lock().clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LatencyHistogram> {
        self.0.lock().expect("histogram poisoned")
    }
}

/// One registered metric.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    /// Renders the high-water mark of a [`Gauge`] as its own gauge series.
    GaugeMax(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) | Metric::GaugeMax(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
struct RegEntry {
    name: String,
    /// Rendered label set, `{k="v",...}` or empty.
    labels: String,
    metric: Metric,
}

/// One recorded span or instant event (ring-buffer entry).
#[derive(Clone, Copy, Debug)]
struct SpanRec {
    trace: u64,
    cat: &'static str,
    name: &'static str,
    /// Nanoseconds since the hub epoch.
    start_ns: u64,
    /// Zero for instant events.
    dur_ns: u64,
    tid: u64,
    instant: bool,
}

/// Per-process small-integer thread ids for the trace export (Chrome's
/// `tid` field); assigned on each thread's first recorded event.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static CHROME_TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u64 {
    CHROME_TID.with(|t| *t)
}

/// The unified metrics registry + span recorder (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct TelemetryHub {
    tracing: AtomicBool,
    registry: Mutex<BTreeMap<String, RegEntry>>,
    spans: Mutex<VecDeque<SpanRec>>,
    span_capacity: usize,
    epoch: Instant,
    spans_opened: AtomicU64,
    spans_closed: AtomicU64,
    spans_dropped: AtomicU64,
    events_recorded: AtomicU64,
}

impl Default for TelemetryHub {
    fn default() -> Self {
        TelemetryHub::new()
    }
}

impl TelemetryHub {
    /// A hub with span tracing **enabled** and the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY, true)
    }

    /// A hub with span tracing **disabled** (metrics still record); flip it
    /// on later with [`set_tracing`](Self::set_tracing).
    pub fn disabled() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY, false)
    }

    /// A hub with an explicit span ring capacity.
    pub fn with_capacity(span_capacity: usize, tracing: bool) -> Self {
        TelemetryHub {
            tracing: AtomicBool::new(tracing),
            registry: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(VecDeque::new()),
            span_capacity: span_capacity.max(1),
            epoch: Instant::now(),
            spans_opened: AtomicU64::new(0),
            spans_closed: AtomicU64::new(0),
            spans_dropped: AtomicU64::new(0),
            events_recorded: AtomicU64::new(0),
        }
    }

    /// The instant all exported timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Enables or disables span recording (metrics are unaffected). The
    /// open/close balance counters only advance while tracing is on, so
    /// toggle at quiescent points when asserting balance.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// `true` while span recording is on.
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    // ---- registry -------------------------------------------------------

    fn render_labels(labels: &[(&str, &str)]) -> String {
        if labels.is_empty() {
            return String::new();
        }
        let mut sorted: Vec<_> = labels.to_vec();
        sorted.sort();
        let body: Vec<String> = sorted
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let labels = Self::render_labels(labels);
        let key = format!("{name}{labels}");
        let mut reg = self.registry.lock().expect("registry poisoned");
        reg.entry(key)
            .or_insert_with(|| RegEntry {
                name: name.to_string(),
                labels,
                metric: make(),
            })
            .metric
            .clone()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        self.labeled_counter(name, &[])
    }

    /// The counter registered under `name{labels}` (created on first use).
    ///
    /// # Panics
    ///
    /// Panics if the series is already registered as a different metric
    /// type.
    pub fn labeled_counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("{name} already registered as {}", other.type_name()),
        }
    }

    /// The gauge registered under `name` (created on first use); its
    /// high-water mark is exported alongside as `name_max`.
    ///
    /// # Panics
    ///
    /// Panics if the series is already registered as a different metric
    /// type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let g = match self.get_or_insert(name, &[], || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("{name} already registered as {}", other.type_name()),
        };
        self.get_or_insert(&format!("{name}_max"), &[], || Metric::GaugeMax(g.clone()));
        g
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.labeled_histogram(name, &[])
    }

    /// The histogram registered under `name{labels}` (created on first
    /// use).
    ///
    /// # Panics
    ///
    /// Panics if the series is already registered as a different metric
    /// type.
    pub fn labeled_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_insert(name, labels, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("{name} already registered as {}", other.type_name()),
        }
    }

    /// Adopts an existing detached counter under `name{labels}`, replacing
    /// any previous registration of that series. This is how components
    /// that predate their hub wiring (e.g. a cache built before the server)
    /// surface their already-live atomics as registry series.
    pub fn register_counter(&self, name: &str, labels: &[(&str, &str)], counter: &Counter) {
        self.adopt(name, labels, Metric::Counter(counter.clone()));
    }

    /// Adopts an existing detached gauge under `name` (and its high-water
    /// mark under `name_max`).
    pub fn register_gauge(&self, name: &str, labels: &[(&str, &str)], gauge: &Gauge) {
        self.adopt(name, labels, Metric::Gauge(gauge.clone()));
        self.adopt(
            &format!("{name}_max"),
            labels,
            Metric::GaugeMax(gauge.clone()),
        );
    }

    /// Adopts an existing detached histogram under `name{labels}`.
    pub fn register_histogram(&self, name: &str, labels: &[(&str, &str)], histogram: &Histogram) {
        self.adopt(name, labels, Metric::Histogram(histogram.clone()));
    }

    fn adopt(&self, name: &str, labels: &[(&str, &str)], metric: Metric) {
        let labels = Self::render_labels(labels);
        let key = format!("{name}{labels}");
        let mut reg = self.registry.lock().expect("registry poisoned");
        reg.insert(
            key,
            RegEntry {
                name: name.to_string(),
                labels,
                metric,
            },
        );
    }

    /// The current value of the counter series `key` (full key including
    /// rendered labels), if registered.
    pub fn counter_value(&self, key: &str) -> Option<u64> {
        let reg = self.registry.lock().expect("registry poisoned");
        match reg.get(key).map(|e| &e.metric) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Point-in-time copies of every registered histogram series as
    /// `(full series key, histogram)` pairs in key order.
    pub fn histogram_values(&self) -> Vec<(String, LatencyHistogram)> {
        let reg = self.registry.lock().expect("registry poisoned");
        reg.iter()
            .filter_map(|(k, e)| match &e.metric {
                Metric::Histogram(h) => Some((k.clone(), h.snapshot())),
                _ => None,
            })
            .collect()
    }

    // ---- spans ----------------------------------------------------------

    fn push_rec(&self, rec: SpanRec) {
        let mut ring = self.spans.lock().expect("span ring poisoned");
        if ring.len() >= self.span_capacity {
            ring.pop_front();
            self.spans_dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(rec);
    }

    fn rec_of(
        &self,
        trace: TraceId,
        cat: &'static str,
        name: &'static str,
        start: Instant,
        end: Instant,
        instant: bool,
    ) -> SpanRec {
        let start_ns = start.saturating_duration_since(self.epoch).as_nanos() as u64;
        let dur_ns = end.saturating_duration_since(start).as_nanos() as u64;
        SpanRec {
            trace: trace.0,
            cat,
            name,
            start_ns,
            dur_ns,
            tid: current_tid(),
            instant,
        }
    }

    /// Records a completed span (counted as opened **and** closed — a
    /// retroactively recorded interval is balanced by construction). No-op
    /// while tracing is off.
    pub fn record_span(
        &self,
        trace: TraceId,
        cat: &'static str,
        name: &'static str,
        start: Instant,
        end: Instant,
    ) {
        if !self.tracing_enabled() {
            return;
        }
        self.spans_opened.fetch_add(1, Ordering::Relaxed);
        self.spans_closed.fetch_add(1, Ordering::Relaxed);
        self.push_rec(self.rec_of(trace, cat, name, start, end, false));
    }

    /// Records an instant event. No-op while tracing is off.
    pub fn record_event(&self, trace: TraceId, cat: &'static str, name: &'static str, at: Instant) {
        if !self.tracing_enabled() {
            return;
        }
        self.events_recorded.fetch_add(1, Ordering::Relaxed);
        self.push_rec(self.rec_of(trace, cat, name, at, at, true));
    }

    /// Opens a scoped span, counted open immediately; it closes (exactly
    /// once) when the guard is [`end`](SpanGuard::end)ed or dropped.
    /// Returns a disarmed guard while tracing is off.
    pub fn begin_span<'a>(
        &'a self,
        trace: TraceId,
        cat: &'static str,
        name: &'static str,
    ) -> SpanGuard<'a> {
        let armed = self.tracing_enabled();
        if armed {
            self.spans_opened.fetch_add(1, Ordering::Relaxed);
        }
        SpanGuard {
            hub: self,
            trace,
            cat,
            name,
            start: Instant::now(),
            armed,
        }
    }

    /// Spans opened so far (scoped + retroactive), while tracing was on.
    pub fn spans_opened(&self) -> u64 {
        self.spans_opened.load(Ordering::Relaxed)
    }

    /// Spans closed so far; equals [`spans_opened`](Self::spans_opened)
    /// whenever no scoped span guard is live.
    pub fn spans_closed(&self) -> u64 {
        self.spans_closed.load(Ordering::Relaxed)
    }

    /// Ring-buffer evictions (oldest events discarded at capacity).
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped.load(Ordering::Relaxed)
    }

    // ---- exports --------------------------------------------------------

    /// Renders every registered series as Prometheus text exposition
    /// (validated by [`validate_prometheus`]).
    pub fn export_prometheus(&self) -> String {
        let reg = self.registry.lock().expect("registry poisoned");
        let mut out = String::new();
        let mut last_type_header = String::new();
        for entry in reg.values() {
            let header = format!("# TYPE {} {}\n", entry.name, entry.metric.type_name());
            if header != last_type_header {
                out.push_str(&header);
                last_type_header = header;
            }
            let series = format!("{}{}", entry.name, entry.labels);
            match &entry.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{series} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{series} {}\n", g.get()));
                }
                Metric::GaugeMax(g) => {
                    out.push_str(&format!("{series} {}\n", g.max()));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cum = 0u64;
                    for (upper_ns, count) in snap.nonzero_buckets() {
                        cum += count;
                        out.push_str(&format!(
                            "{}_bucket{} {cum}\n",
                            entry.name,
                            with_le(&entry.labels, &format_secs(upper_ns as f64 / 1e9)),
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        entry.name,
                        with_le(&entry.labels, "+Inf"),
                        snap.count(),
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        entry.name,
                        entry.labels,
                        format_secs(snap.sum_ns() as f64 / 1e9),
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        entry.name,
                        entry.labels,
                        snap.count(),
                    ));
                }
            }
        }
        out
    }

    /// Renders the span ring as Chrome trace-event JSON: an object with a
    /// `traceEvents` array of complete (`X`) and instant (`i`) events,
    /// microsecond timestamps relative to the hub epoch, and each event's
    /// trace id under `args.trace`. Loadable in `chrome://tracing` and
    /// Perfetto; validated by [`validate_json`].
    pub fn export_chrome_trace(&self) -> String {
        let ring = self.spans.lock().expect("span ring poisoned");
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, rec) in ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ts = rec.start_ns as f64 / 1e3;
            if rec.instant {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{},\"args\":{{\"trace\":{}}}}}",
                    escape_json(rec.name),
                    escape_json(rec.cat),
                    rec.tid,
                    rec.trace,
                ));
            } else {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"trace\":{}}}}}",
                    escape_json(rec.name),
                    escape_json(rec.cat),
                    rec.dur_ns as f64 / 1e3,
                    rec.tid,
                    rec.trace,
                ));
            }
        }
        out.push_str("]}");
        out
    }

    /// One consistent cut of both export formats plus the span balance
    /// counters.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let prometheus = self.export_prometheus();
        let chrome_trace = self.export_chrome_trace();
        TelemetrySnapshot {
            prometheus,
            chrome_trace,
            spans_opened: self.spans_opened(),
            spans_closed: self.spans_closed(),
            spans_dropped: self.spans_dropped(),
            span_events: self.spans.lock().expect("span ring poisoned").len(),
        }
    }

    /// Spawns the periodic snapshot reporter: every `interval`, `report` is
    /// called with a fresh [`TelemetrySnapshot`] until the returned handle
    /// is stopped or dropped.
    pub fn start_reporter<F>(self: &Arc<Self>, interval: Duration, report: F) -> Reporter
    where
        F: FnMut(TelemetrySnapshot) + Send + 'static,
    {
        let hub = Arc::clone(self);
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_state = Arc::clone(&state);
        let mut report = report;
        let handle = std::thread::Builder::new()
            .name("htsp-telemetry".to_string())
            .spawn(move || {
                let (stop, cv) = &*thread_state;
                let mut stopped = stop.lock().expect("reporter state poisoned");
                loop {
                    let (guard, timeout) = cv
                        .wait_timeout(stopped, interval)
                        .expect("reporter state poisoned");
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    if timeout.timed_out() {
                        report(hub.snapshot());
                    }
                }
            })
            .expect("spawn telemetry reporter");
        Reporter {
            state,
            handle: Some(handle),
        }
    }
}

impl SpanSink for TelemetryHub {
    fn span(
        &self,
        trace: TraceId,
        cat: &'static str,
        name: &'static str,
        start: Instant,
        end: Instant,
    ) {
        self.record_span(trace, cat, name, start, end);
    }

    fn event(&self, trace: TraceId, cat: &'static str, name: &'static str, at: Instant) {
        self.record_event(trace, cat, name, at);
    }

    fn is_recording(&self) -> bool {
        self.tracing_enabled()
    }
}

/// A scoped span opened by [`TelemetryHub::begin_span`]; closes exactly
/// once, on [`end`](Self::end) or drop (whichever comes first).
#[derive(Debug)]
pub struct SpanGuard<'a> {
    hub: &'a TelemetryHub,
    trace: TraceId,
    cat: &'static str,
    name: &'static str,
    start: Instant,
    armed: bool,
}

impl SpanGuard<'_> {
    /// Closes the span now.
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if !self.armed {
            return;
        }
        self.armed = false;
        self.hub.spans_closed.fetch_add(1, Ordering::Relaxed);
        self.hub.push_rec(self.hub.rec_of(
            self.trace,
            self.cat,
            self.name,
            self.start,
            Instant::now(),
            false,
        ));
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Handle of the periodic reporter thread; stops it on
/// [`stop`](Self::stop) or drop.
#[derive(Debug)]
pub struct Reporter {
    state: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Reporter {
    /// Stops the reporter and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            let (stop, cv) = &*self.state;
            *stop.lock().expect("reporter state poisoned") = true;
            cv.notify_all();
            let _ = handle.join();
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One consistent export of a [`TelemetryHub`]: both formats plus the span
/// balance counters.
#[derive(Clone, Debug)]
pub struct TelemetrySnapshot {
    /// Prometheus text exposition of every registered series.
    pub prometheus: String,
    /// Chrome trace-event JSON of the span ring.
    pub chrome_trace: String,
    /// Spans opened while tracing was on.
    pub spans_opened: u64,
    /// Spans closed while tracing was on.
    pub spans_closed: u64,
    /// Events evicted from the bounded ring.
    pub spans_dropped: u64,
    /// Events currently held in the ring.
    pub span_events: usize,
}

impl TelemetrySnapshot {
    /// `true` when every opened span has closed (no live span guards).
    pub fn spans_balanced(&self) -> bool {
        self.spans_opened == self.spans_closed
    }
}

/// Interns `name` into a `&'static str` (each unique string is leaked
/// exactly once). For span names that are computed at runtime — e.g.
/// maintainer stage names — where the set of distinct values is small and
/// closed; do **not** intern unbounded user input.
pub fn intern(name: &str) -> &'static str {
    static INTERNED: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());
    let mut map = INTERNED.lock().expect("intern table poisoned");
    if let Some(&s) = map.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    map.insert(name.to_string(), leaked);
    leaked
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Merges an `le` label into an already-rendered label set.
fn with_le(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
    }
}

/// Formats a seconds value with enough precision for nanosecond bounds
/// while keeping exact integers readable.
fn format_secs(secs: f64) -> String {
    if secs == secs.trunc() && secs.abs() < 1e15 {
        format!("{secs:.1}")
    } else {
        format!("{secs:.9}")
    }
}

// ---- validators ---------------------------------------------------------

fn is_metric_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_metric_name_char(c: char) -> bool {
    is_metric_name_start(c) || c.is_ascii_digit()
}

fn is_label_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_label_name_char(c: char) -> bool {
    is_label_name_start(c) || c.is_ascii_digit()
}

/// Checks `text` against the Prometheus text exposition line format:
/// `# HELP` / `# TYPE` comments with valid metric names, and sample lines
/// `name{labels} value [timestamp]` with valid name/label syntax and a
/// parseable value. Returns the number of sample lines, or the first
/// offending line with a reason.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let err = |why: &str| Err(format!("line {}: {why}: {line:?}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            let (kw, tail) = match rest.split_once(' ') {
                Some(x) => x,
                None => continue, // bare comment
            };
            if kw != "HELP" && kw != "TYPE" {
                continue; // arbitrary comment, allowed
            }
            let mut parts = tail.splitn(2, ' ');
            let name = parts.next().unwrap_or("");
            if name.is_empty()
                || !name.chars().next().is_some_and(is_metric_name_start)
                || !name.chars().all(is_metric_name_char)
            {
                return err("invalid metric name in comment");
            }
            if kw == "TYPE" {
                let ty = parts.next().unwrap_or("").trim();
                if !matches!(
                    ty,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return err("invalid TYPE");
                }
            }
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        if i >= chars.len() || !is_metric_name_start(chars[i]) {
            return err("sample must start with a metric name");
        }
        while i < chars.len() && is_metric_name_char(chars[i]) {
            i += 1;
        }
        if i < chars.len() && chars[i] == '{' {
            i += 1;
            loop {
                if i < chars.len() && chars[i] == '}' {
                    i += 1;
                    break;
                }
                if i >= chars.len() || !is_label_name_start(chars[i]) {
                    return err("invalid label name");
                }
                while i < chars.len() && is_label_name_char(chars[i]) {
                    i += 1;
                }
                if i >= chars.len() || chars[i] != '=' {
                    return err("label missing '='");
                }
                i += 1;
                if i >= chars.len() || chars[i] != '"' {
                    return err("label value must be quoted");
                }
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    if chars[i] == '\\' {
                        i += 1;
                        if i >= chars.len() || !matches!(chars[i], '\\' | '"' | 'n') {
                            return err("invalid escape in label value");
                        }
                    }
                    i += 1;
                }
                if i >= chars.len() {
                    return err("unterminated label value");
                }
                i += 1; // closing quote
                if i < chars.len() && chars[i] == ',' {
                    i += 1;
                }
            }
        }
        if i >= chars.len() || chars[i] != ' ' {
            return err("sample missing value separator");
        }
        i += 1;
        let rest: String = chars[i..].iter().collect();
        let mut fields = rest.split(' ');
        let value = fields.next().unwrap_or("");
        let value_ok = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
        if !value_ok {
            return err("unparseable sample value");
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return err("unparseable timestamp");
            }
        }
        if fields.next().is_some() {
            return err("trailing garbage after sample");
        }
        samples += 1;
    }
    Ok(samples)
}

/// A dependency-free JSON syntax checker (objects, arrays, strings with
/// escapes, numbers, literals; nesting capped at 128). Returns `Ok(())`
/// when `text` is exactly one valid JSON value, or the byte offset and
/// reason of the first error — what CI runs against the Chrome trace
/// export.
pub fn validate_json(text: &str) -> Result<(), String> {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn err<T>(&self, why: &str) -> Result<T, String> {
            Err(format!("offset {}: {why}", self.i))
        }
        fn ws(&mut self) {
            while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            }
        }
        fn value(&mut self, depth: usize) -> Result<(), String> {
            if depth > 128 {
                return self.err("nesting too deep");
            }
            self.ws();
            match self.b.get(self.i) {
                None => self.err("unexpected end of input"),
                Some(b'{') => {
                    self.i += 1;
                    self.ws();
                    if self.b.get(self.i) == Some(&b'}') {
                        self.i += 1;
                        return Ok(());
                    }
                    loop {
                        self.ws();
                        if self.b.get(self.i) != Some(&b'"') {
                            return self.err("expected object key");
                        }
                        self.string()?;
                        self.ws();
                        if self.b.get(self.i) != Some(&b':') {
                            return self.err("expected ':'");
                        }
                        self.i += 1;
                        self.value(depth + 1)?;
                        self.ws();
                        match self.b.get(self.i) {
                            Some(b',') => self.i += 1,
                            Some(b'}') => {
                                self.i += 1;
                                return Ok(());
                            }
                            _ => return self.err("expected ',' or '}'"),
                        }
                    }
                }
                Some(b'[') => {
                    self.i += 1;
                    self.ws();
                    if self.b.get(self.i) == Some(&b']') {
                        self.i += 1;
                        return Ok(());
                    }
                    loop {
                        self.value(depth + 1)?;
                        self.ws();
                        match self.b.get(self.i) {
                            Some(b',') => self.i += 1,
                            Some(b']') => {
                                self.i += 1;
                                return Ok(());
                            }
                            _ => return self.err("expected ',' or ']'"),
                        }
                    }
                }
                Some(b'"') => self.string(),
                Some(b't') => self.literal("true"),
                Some(b'f') => self.literal("false"),
                Some(b'n') => self.literal("null"),
                Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
                Some(_) => self.err("unexpected character"),
            }
        }
        fn literal(&mut self, lit: &str) -> Result<(), String> {
            if self.b[self.i..].starts_with(lit.as_bytes()) {
                self.i += lit.len();
                Ok(())
            } else {
                self.err("invalid literal")
            }
        }
        fn string(&mut self) -> Result<(), String> {
            self.i += 1; // opening quote
            while let Some(&c) = self.b.get(self.i) {
                match c {
                    b'"' => {
                        self.i += 1;
                        return Ok(());
                    }
                    b'\\' => {
                        self.i += 1;
                        match self.b.get(self.i) {
                            Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                                self.i += 1
                            }
                            Some(b'u') => {
                                self.i += 1;
                                for _ in 0..4 {
                                    if !self.b.get(self.i).is_some_and(u8::is_ascii_hexdigit) {
                                        return self.err("invalid \\u escape");
                                    }
                                    self.i += 1;
                                }
                            }
                            _ => return self.err("invalid escape"),
                        }
                    }
                    c if c < 0x20 => return self.err("unescaped control character"),
                    _ => self.i += 1,
                }
            }
            self.err("unterminated string")
        }
        fn number(&mut self) -> Result<(), String> {
            let start = self.i;
            if self.b.get(self.i) == Some(&b'-') {
                self.i += 1;
            }
            while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
                self.i += 1;
            }
            if self.b.get(self.i) == Some(&b'.') {
                self.i += 1;
                while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
                    self.i += 1;
                }
            }
            if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
                self.i += 1;
                if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                    self.i += 1;
                }
                while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
                    self.i += 1;
                }
            }
            let text = std::str::from_utf8(&self.b[start..self.i]).unwrap_or("");
            if text.parse::<f64>().is_ok() {
                Ok(())
            } else {
                self.err("invalid number")
            }
        }
    }
    let mut p = P {
        b: text.as_bytes(),
        i: 0,
    };
    p.value(0)?;
    p.ws();
    if p.i != p.b.len() {
        return p.err("trailing garbage after JSON value");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let hub = TelemetryHub::new();
        let c = hub.counter("htsp_test_total");
        c.inc();
        c.add(4);
        assert_eq!(hub.counter_value("htsp_test_total"), Some(5));
        // Same name returns the same underlying atomic.
        hub.counter("htsp_test_total").inc();
        assert_eq!(c.get(), 6);

        let g = hub.gauge("htsp_test_depth");
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        assert_eq!(g.max(), 7);

        let h = hub.labeled_histogram("htsp_test_seconds", &[("stage", "x")]);
        h.record(Duration::from_millis(5));
        h.record_secs(0.010);
        let values = hub.histogram_values();
        let (key, snap) = values
            .iter()
            .find(|(k, _)| k.starts_with("htsp_test_seconds"))
            .expect("histogram registered");
        assert_eq!(key, "htsp_test_seconds{stage=\"x\"}");
        assert_eq!(snap.count(), 2);
    }

    #[test]
    fn gauge_high_water_survives_racing_setters() {
        let hub = Arc::new(TelemetryHub::new());
        let g = hub.gauge("htsp_race_depth");
        std::thread::scope(|s| {
            for t in 0..8 {
                let g = g.clone();
                s.spawn(move || {
                    for i in 0..5000u64 {
                        g.set(t * 5000 + i);
                    }
                });
            }
        });
        assert_eq!(g.max(), 8 * 5000 - 1, "fetch_max lost the true maximum");
    }

    #[test]
    fn prometheus_export_passes_own_validator_and_rejects_garbage() {
        let hub = TelemetryHub::new();
        hub.counter("htsp_a_total").add(3);
        hub.gauge("htsp_b_depth").set(9);
        let h = hub.labeled_histogram("htsp_c_seconds", &[("stage", "s\"1\"")]);
        h.record(Duration::from_micros(250));
        h.record(Duration::from_millis(30));
        let text = hub.export_prometheus();
        let samples = validate_prometheus(&text).expect("own export must validate");
        // counter + gauge + gauge_max + (2 buckets + Inf + sum + count).
        assert_eq!(samples, 8, "unexpected sample count in:\n{text}");
        assert!(text.contains("# TYPE htsp_a_total counter"));
        assert!(text.contains("# TYPE htsp_c_seconds histogram"));
        assert!(text.contains("htsp_b_depth_max 9"));
        assert!(text.contains("le=\"+Inf\"} 2"));

        assert!(validate_prometheus("0bad_name 1").is_err());
        assert!(validate_prometheus("name{l=unquoted} 1").is_err());
        assert!(validate_prometheus("name 1 2 3").is_err());
        assert!(validate_prometheus("name notanumber").is_err());
        assert!(validate_prometheus("# TYPE x flavor").is_err());
    }

    #[test]
    fn chrome_trace_export_is_valid_json_with_trace_args() {
        let hub = TelemetryHub::new();
        let t = TraceId::next();
        let start = Instant::now();
        hub.record_span(
            t,
            "query",
            "execute",
            start,
            start + Duration::from_micros(42),
        );
        hub.record_event(t, "query", "shed", start);
        let json = hub.export_chrome_trace();
        validate_json(&json).expect("trace export must be valid JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains(&format!("\"trace\":{}", t.0)));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "\"a\\n\\u00e9\"",
            "{\"a\":[1,2,{\"b\":true}],\"c\":null}",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a':1}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn span_ring_is_bounded_and_counts_drops() {
        let hub = TelemetryHub::with_capacity(8, true);
        let t0 = Instant::now();
        for _ in 0..20 {
            hub.record_span(TraceId::next(), "c", "n", t0, t0);
        }
        let snap = hub.snapshot();
        assert_eq!(snap.span_events, 8);
        assert_eq!(snap.spans_dropped, 12);
        assert!(snap.spans_balanced());
    }

    #[test]
    fn scoped_spans_close_exactly_once_via_end_or_drop() {
        let hub = TelemetryHub::new();
        let t = TraceId::next();
        hub.begin_span(t, "c", "explicit").end();
        {
            let _g = hub.begin_span(t, "c", "dropped");
        }
        assert_eq!(hub.spans_opened(), 2);
        assert_eq!(hub.spans_closed(), 2);
        // Disabled hub records nothing and stays balanced.
        let off = TelemetryHub::disabled();
        off.begin_span(t, "c", "ignored").end();
        off.record_span(t, "c", "ignored", Instant::now(), Instant::now());
        assert_eq!(off.spans_opened(), 0);
        assert_eq!(off.snapshot().span_events, 0);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let mk = |seed: u64, n: u64| {
            let mut h = LatencyHistogram::new();
            for i in 0..n {
                h.record_ns((seed * 1_000_003 + i * 7919) % 10_000_000 + 1);
            }
            h
        };
        let (a, b, c) = (mk(1, 400), mk(2, 300), mk(3, 500));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");
        // b ⊕ a == a ⊕ b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        // And identical to recording everything into one histogram.
        let mut all = LatencyHistogram::new();
        for h in [&a, &b, &c] {
            all.merge(h);
        }
        assert_eq!(left, all);
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(left.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn reporter_fires_and_stops() {
        let hub = Arc::new(TelemetryHub::new());
        hub.counter("htsp_tick_total").inc();
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let reporter = hub.start_reporter(Duration::from_millis(5), move |snap| {
            assert!(snap.prometheus.contains("htsp_tick_total"));
            seen2.fetch_add(1, Ordering::Relaxed);
        });
        let deadline = Instant::now() + Duration::from_secs(2);
        while seen.load(Ordering::Relaxed) < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        reporter.stop();
        let ticks = seen.load(Ordering::Relaxed);
        assert!(ticks >= 2, "reporter ticked only {ticks} times");
    }

    #[test]
    fn labeled_series_sort_and_escape() {
        let hub = TelemetryHub::new();
        hub.labeled_counter("htsp_l_total", &[("b", "2"), ("a", "1")])
            .inc();
        let text = hub.export_prometheus();
        assert!(text.contains("htsp_l_total{a=\"1\",b=\"2\"} 1"));
        validate_prometheus(&text).expect("labeled export validates");
    }
}
