//! The front-end router of the sharded serving tier: ingest routing over the
//! shard fleet, the boundary-overlay query path, and fleet-consistent
//! snapshots.
//!
//! # Ingest routing
//!
//! [`FleetRouter::submit`] enqueues one [`EdgeUpdate`] (global edge ids) and
//! returns a composite [`FleetTicket`]. A router maintenance thread coalesces
//! pending updates under the fleet's [`CoalescePolicy`] and, per batch:
//!
//! 1. **fans out** every intra-partition update to the one shard server
//!    owning it (translated to that shard's local edge id) and forces the
//!    shard's batch boundary, so all touched shards repair their small
//!    indexes *in parallel* on their own maintenance threads;
//! 2. **maintains the overlay** on the router thread meanwhile: the
//!    [`OverlayMaintainer`] applies the batch to the partitioned view,
//!    repairs each affected partition's boundary-first hierarchy, and maps
//!    the resulting shortcut changes (plus inter-partition edge changes) onto
//!    overlay edge weights;
//! 3. **waits** for every touched shard's publication, then publishes a new
//!    [fleet epoch](FleetSession) — an immutable, mutually consistent set of
//!    shard views + overlay graph + global graph that query sessions pin.
//!
//! [`FleetTicket::wait_visible`] means *visible on every touched shard*: the
//! owning shard's first publication for intra updates, plus the epoch
//! publication when the update is boundary-incident (inter-partition updates
//! live only in the overlay, so they wait on the epoch alone).
//!
//! # Query path
//!
//! A [`FleetSession`] pins one epoch. Point-to-point queries classify as
//! *local* (both endpoints in one shard) or *cross-shard*. Local queries go
//! straight to the owning shard's session — but a globally shortest path may
//! leave the shard and come back, so the session always also evaluates the
//! boundary detour and takes the minimum. Cross-shard queries concatenate
//! source-side boundary distances (the shard session's truncated one-to-many),
//! one seeded multi-source Dijkstra over the overlay graph (which preserves
//! global boundary-to-boundary distances), and target-side boundary
//! distances. One-to-many and matrix queries fan per-shard answers out of the
//! same three ingredients, sharing the source-side fan and the overlay pass
//! across all targets.

use crate::cache::{CachedSession, DistanceCache};
use crate::feed::CoalescePolicy;
use crate::feed::{UpdateFeed, UpdateTicket};
use crate::telemetry::{Counter, Gauge, Histogram, TelemetryHub};
use htsp_graph::{
    Dist, EdgeUpdate, Graph, QuerySession, QueryView, SnapshotPublisher, TraceId, UpdateBatch,
    VertexId, INF,
};
use htsp_psp::OverlayMaintainer;
use htsp_search::{dijkstra_multi_source_ws, DijkstraWorkspace};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Immutable fleet topology fixed at build time: who owns which vertex, the
/// id translations, and the boundary alignment between shards and overlay.
pub(crate) struct FleetTopology {
    /// Global vertex → owning shard.
    pub shard_of: Vec<u32>,
    /// Global vertex → its local id inside the owning shard.
    pub local_id: Vec<VertexId>,
    /// Per shard: local ids of its boundary vertices.
    pub boundary_local: Vec<Vec<VertexId>>,
    /// Per shard: overlay-local ids of the same boundary vertices, aligned
    /// index-by-index with `boundary_local`.
    pub boundary_overlay: Vec<Vec<VertexId>>,
    /// Per shard: `(vertices, edges, boundary vertices)`.
    pub shard_sizes: Vec<(usize, usize, usize)>,
    /// Number of overlay vertices (`|B|`).
    pub overlay_vertices: usize,
    /// Number of overlay edges (inter edges + partition shortcuts).
    pub overlay_edges: usize,
    /// Partition load-balance factor (largest shard over ideal share).
    pub balance: f64,
    /// Fraction of vertices that are boundary vertices.
    pub boundary_fraction: f64,
}

impl FleetTopology {
    pub(crate) fn build(core: &OverlayMaintainer) -> Self {
        let p = &core.partitioned;
        let n = p.graph.num_vertices();
        let mut shard_of = vec![0u32; n];
        let mut local_id = vec![VertexId(0); n];
        for (i, sub) in p.subgraphs.iter().enumerate() {
            for (li, &g) in sub.global_of.iter().enumerate() {
                shard_of[g.index()] = i as u32;
                local_id[g.index()] = VertexId::from_index(li);
            }
        }
        let mut boundary_local = Vec::with_capacity(p.subgraphs.len());
        let mut boundary_overlay = Vec::with_capacity(p.subgraphs.len());
        let mut shard_sizes = Vec::with_capacity(p.subgraphs.len());
        for sub in &p.subgraphs {
            let bl = sub.boundary_local.clone();
            let bo: Vec<VertexId> = bl
                .iter()
                .map(|&b| {
                    core.overlay
                        .to_local(sub.to_global(b))
                        .expect("boundary vertex must be an overlay vertex")
                })
                .collect();
            shard_sizes.push((sub.graph.num_vertices(), sub.graph.num_edges(), bl.len()));
            boundary_local.push(bl);
            boundary_overlay.push(bo);
        }
        FleetTopology {
            shard_of,
            local_id,
            boundary_local,
            boundary_overlay,
            shard_sizes,
            overlay_vertices: core.overlay.num_vertices(),
            overlay_edges: core.overlay.graph.num_edges(),
            balance: p.partition.balance(),
            boundary_fraction: p.partition.boundary_fraction(),
        }
    }

    #[inline]
    pub(crate) fn shard(&self, v: VertexId) -> usize {
        self.shard_of[v.index()] as usize
    }

    pub(crate) fn num_shards(&self) -> usize {
        self.shard_sizes.len()
    }
}

/// Per-shard telemetry counters, written by sessions and the router thread.
/// The handles are [`TelemetryHub`] metric types so the fleet's hub and the
/// [`FleetReport`](crate::fleet::FleetReport) read the same atomics — one
/// source of truth for router-tier telemetry.
pub(crate) struct ShardTelemetry {
    pub local_queries: Counter,
    pub cross_queries: Counter,
    pub updates_routed: Counter,
    pub batches: Counter,
    /// Submit-to-visible lag of every update routed to this shard.
    pub lags: Histogram,
    pub cow_chunks: Counter,
    pub cow_bytes: Counter,
}

/// Fleet-wide telemetry shared by router, sessions, and the report.
pub(crate) struct FleetTelemetry {
    pub shards: Vec<ShardTelemetry>,
    pub boundary_updates: Counter,
    pub fleet_batches: Counter,
    /// Updates rejected by [`FleetRouter::try_submit`] at a full ingest
    /// queue.
    pub ingest_shed: Counter,
    /// Ingest queue depth; every `set` maintains the high-water mark, so
    /// the report's max is the same `fetch_max` path as the gauge's.
    pub ingest_depth: Gauge,
    pub started: Instant,
}

impl FleetTelemetry {
    fn new(k: usize) -> Self {
        FleetTelemetry {
            shards: (0..k)
                .map(|_| ShardTelemetry {
                    local_queries: Counter::new(),
                    cross_queries: Counter::new(),
                    updates_routed: Counter::new(),
                    batches: Counter::new(),
                    lags: Histogram::new(),
                    cow_chunks: Counter::new(),
                    cow_bytes: Counter::new(),
                })
                .collect(),
            boundary_updates: Counter::new(),
            fleet_batches: Counter::new(),
            ingest_shed: Counter::new(),
            ingest_depth: Gauge::new(),
            started: Instant::now(),
        }
    }

    /// Adopts every handle into `hub` as `htsp_fleet_*` series (per-shard
    /// series labeled `shard="i"`).
    fn register(&self, hub: &TelemetryHub) {
        for (i, s) in self.shards.iter().enumerate() {
            let shard = i.to_string();
            let labels: &[(&str, &str)] = &[("shard", &shard)];
            hub.register_counter("htsp_fleet_local_queries_total", labels, &s.local_queries);
            hub.register_counter("htsp_fleet_cross_queries_total", labels, &s.cross_queries);
            hub.register_counter("htsp_fleet_updates_routed_total", labels, &s.updates_routed);
            hub.register_counter("htsp_fleet_shard_batches_total", labels, &s.batches);
            hub.register_counter("htsp_fleet_cow_chunks_total", labels, &s.cow_chunks);
            hub.register_counter("htsp_fleet_cow_bytes_total", labels, &s.cow_bytes);
            hub.register_histogram("htsp_fleet_visibility_lag_seconds", labels, &s.lags);
        }
        let no_labels: &[(&str, &str)] = &[];
        hub.register_counter(
            "htsp_fleet_boundary_updates_total",
            no_labels,
            &self.boundary_updates,
        );
        hub.register_counter("htsp_fleet_epochs_total", no_labels, &self.fleet_batches);
        hub.register_counter("htsp_fleet_ingest_shed_total", no_labels, &self.ingest_shed);
        hub.register_gauge("htsp_fleet_ingest_depth", no_labels, &self.ingest_depth);
    }
}

/// One published fleet snapshot: shard views, overlay graph, and global
/// graph captured at the same fleet version, so any combination of them
/// answers exactly on one well-defined set of edge weights.
pub(crate) struct FleetEpoch {
    pub version: u64,
    pub global: Arc<Graph>,
    pub overlay: Arc<Graph>,
    pub shard_views: Vec<Arc<dyn QueryView>>,
    pub shard_versions: Vec<u64>,
}

/// Where a routed update currently is.
enum RoutedState {
    Pending,
    Routed {
        /// `(shard, per-update shard ticket)` for intra-partition updates;
        /// `None` for inter-partition updates and barriers.
        shard: Option<(usize, Arc<UpdateTicket>)>,
        /// The update is boundary-incident (touches the overlay), so
        /// visibility additionally waits on the epoch publication.
        boundary: bool,
    },
    Failed(&'static str),
}

struct FleetTicketCell {
    routed: Mutex<RoutedState>,
    routed_cv: Condvar,
    epoch: Mutex<Option<u64>>,
    epoch_cv: Condvar,
}

impl FleetTicketCell {
    fn new() -> Arc<Self> {
        Arc::new(FleetTicketCell {
            routed: Mutex::new(RoutedState::Pending),
            routed_cv: Condvar::new(),
            epoch: Mutex::new(None),
            epoch_cv: Condvar::new(),
        })
    }

    fn resolve_routed(&self, shard: Option<(usize, Arc<UpdateTicket>)>, boundary: bool) {
        *self.routed.lock().expect("ticket poisoned") = RoutedState::Routed { shard, boundary };
        self.routed_cv.notify_all();
    }

    fn resolve_epoch(&self, version: u64) {
        *self.epoch.lock().expect("ticket poisoned") = Some(version);
        self.epoch_cv.notify_all();
    }

    fn fail(&self, why: &'static str) {
        *self.routed.lock().expect("ticket poisoned") = RoutedState::Failed(why);
        self.routed_cv.notify_all();
        // Epoch waiters must not hang either; resolve with a sentinel after
        // flagging the failure (wait_visible checks the routed state first).
        self.resolve_epoch(u64::MAX);
    }
}

/// Where and when a fleet-submitted update became visible.
#[derive(Clone, Copy, Debug)]
pub struct FleetVisibility {
    /// Submit-to-visible latency across every touched component.
    pub latency: Duration,
    /// Publisher version of the owning shard's first snapshot containing
    /// the update (`None` for inter-partition updates and barriers, which
    /// no shard owns).
    pub shard_version: Option<u64>,
    /// Fleet epoch at which the overlay reflected the update (`None` for
    /// non-boundary updates, which never wait on the epoch).
    pub fleet_version: Option<u64>,
}

/// A composite acknowledgement for one update submitted to the fleet.
///
/// `wait_visible()` means *visible on every touched shard*: the owning
/// shard's publication for intra-partition updates, plus the fleet epoch
/// (overlay) publication when the update is boundary-incident.
pub struct FleetTicket {
    cell: Arc<FleetTicketCell>,
    submitted_at: Instant,
}

impl FleetTicket {
    /// Blocks until every component touched by this update published a
    /// snapshot containing it, and reports the submit-to-visible latency.
    ///
    /// # Panics
    ///
    /// Panics if the fleet shut down before the update was applied.
    pub fn wait_visible(&self) -> FleetVisibility {
        let (shard, boundary) = self.wait_routed();
        let mut shard_version = None;
        if let Some((_, ticket)) = &shard {
            shard_version = Some(ticket.wait_visible().version);
        }
        let mut fleet_version = None;
        if boundary || shard.is_none() {
            fleet_version = Some(self.wait_epoch());
        }
        FleetVisibility {
            latency: self.submitted_at.elapsed(),
            shard_version,
            fleet_version,
        }
    }

    /// Blocks until the fleet epoch covering this update's batch published
    /// (every touched shard fully repaired, overlay maintained) and returns
    /// that fleet version.
    pub fn wait_applied(&self) -> u64 {
        // The routed state is checked first so a shutdown failure panics
        // instead of hanging on the epoch sentinel.
        let _ = self.wait_routed();
        self.wait_epoch()
    }

    /// When the update was submitted to the fleet.
    pub fn submitted_at(&self) -> Instant {
        self.submitted_at
    }

    fn wait_routed(&self) -> (Option<(usize, Arc<UpdateTicket>)>, bool) {
        let mut routed = self.cell.routed.lock().expect("ticket poisoned");
        loop {
            match &*routed {
                RoutedState::Routed { shard, boundary } => return (shard.clone(), *boundary),
                RoutedState::Failed(why) => panic!("fleet ticket failed: {why}"),
                RoutedState::Pending => {
                    routed = self.cell.routed_cv.wait(routed).expect("ticket poisoned")
                }
            }
        }
    }

    fn wait_epoch(&self) -> u64 {
        let mut epoch = self.cell.epoch.lock().expect("ticket poisoned");
        loop {
            match *epoch {
                Some(v) => return v,
                None => epoch = self.cell.epoch_cv.wait(epoch).expect("ticket poisoned"),
            }
        }
    }
}

impl std::fmt::Debug for FleetTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetTicket")
            .field("submitted_at", &self.submitted_at)
            .finish()
    }
}

struct RouterEntry {
    /// `None` marks a barrier from [`FleetRouter::flush`].
    update: Option<EdgeUpdate>,
    cell: Arc<FleetTicketCell>,
    submitted_at: Instant,
}

struct RouterState {
    pending: Vec<RouterEntry>,
    /// Pending entries that are updates (barriers don't count against the
    /// ingest bound); kept as a counter so admission is O(1).
    pending_updates: usize,
    oldest: Option<Instant>,
    barrier: bool,
    shutdown: bool,
}

struct RouterShared {
    state: Mutex<RouterState>,
    wake: Condvar,
    /// Signalled when the router drains `pending`, releasing submitters
    /// blocked on the ingest bound.
    space: Condvar,
    /// Maximum pending updates before `submit` blocks / `try_submit` sheds.
    ingest_bound: usize,
    epoch: Mutex<Arc<FleetEpoch>>,
    epoch_cv: Condvar,
}

/// Everything the router maintenance thread needs besides the overlay core.
pub(crate) struct RouterCtx {
    pub feeds: Vec<UpdateFeed>,
    pub publishers: Vec<Arc<SnapshotPublisher>>,
    pub policy: CoalescePolicy,
    pub ingest_bound: usize,
    /// The fleet's telemetry hub: fleet metrics register here and the
    /// router thread records its batch-stage spans into it.
    pub hub: Arc<TelemetryHub>,
}

/// The ingest/query front-end of a
/// [`ShardedFleet`](crate::fleet::ShardedFleet). See the [module docs](self).
pub struct FleetRouter {
    shared: Arc<RouterShared>,
    topo: Arc<FleetTopology>,
    telemetry: Arc<FleetTelemetry>,
    caches: Arc<Vec<Option<Arc<DistanceCache>>>>,
    handle: Option<std::thread::JoinHandle<OverlayMaintainer>>,
}

impl FleetRouter {
    /// Spawns the router maintenance thread over an initial epoch. Crate
    /// internal: [`ShardedFleet::start`](crate::fleet::ShardedFleet::start)
    /// is the public constructor.
    pub(crate) fn spawn(
        core: OverlayMaintainer,
        ctx: RouterCtx,
        caches: Vec<Option<Arc<DistanceCache>>>,
    ) -> Self {
        let topo = Arc::new(FleetTopology::build(&core));
        let telemetry = Arc::new(FleetTelemetry::new(topo.num_shards()));
        telemetry.register(&ctx.hub);
        let initial = Arc::new(FleetEpoch {
            version: 0,
            global: Arc::new(core.partitioned.graph.clone()),
            overlay: Arc::new(core.overlay.graph.clone()),
            shard_views: ctx.publishers.iter().map(|p| p.snapshot()).collect(),
            shard_versions: ctx.publishers.iter().map(|p| p.version()).collect(),
        });
        let shared = Arc::new(RouterShared {
            state: Mutex::new(RouterState {
                pending: Vec::new(),
                pending_updates: 0,
                oldest: None,
                barrier: false,
                shutdown: false,
            }),
            wake: Condvar::new(),
            space: Condvar::new(),
            ingest_bound: ctx.ingest_bound.max(1),
            epoch: Mutex::new(initial),
            epoch_cv: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let thread_telemetry = Arc::clone(&telemetry);
        let handle = std::thread::Builder::new()
            .name("htsp-fleet-router".into())
            .spawn(move || run_router(core, thread_shared, ctx, thread_telemetry))
            .expect("spawn fleet router thread");
        FleetRouter {
            shared,
            topo,
            telemetry,
            caches: Arc::new(caches),
            handle: Some(handle),
        }
    }

    /// Enqueues one edge-weight update (global edge ids); the composite
    /// ticket resolves per touched component.
    ///
    /// The ingest queue is bounded (see
    /// [`FleetConfig::ingest_bound`](crate::config::FleetConfig::ingest_bound)):
    /// when `pending` is at the bound this call **blocks** until the router
    /// drains a batch — backpressure, so a runaway producer cannot queue
    /// updates without limit. Use [`FleetRouter::try_submit`] to shed
    /// instead of blocking.
    pub fn submit(&self, update: EdgeUpdate) -> FleetTicket {
        let cell = FleetTicketCell::new();
        let submitted_at = Instant::now();
        {
            let mut state = self.shared.state.lock().expect("router poisoned");
            while !state.shutdown && state.pending_updates >= self.shared.ingest_bound {
                state = self.shared.space.wait(state).expect("router poisoned");
            }
            if state.shutdown {
                cell.fail("fleet is shut down");
            } else {
                self.push_update(&mut state, update, &cell, submitted_at);
            }
        }
        self.shared.wake.notify_all();
        FleetTicket { cell, submitted_at }
    }

    /// Non-blocking admission: like [`FleetRouter::submit`], but an ingest
    /// queue at its bound sheds the update (returns `None`, counted in the
    /// fleet report) instead of blocking the producer.
    pub fn try_submit(&self, update: EdgeUpdate) -> Option<FleetTicket> {
        let cell = FleetTicketCell::new();
        let submitted_at = Instant::now();
        {
            let mut state = self.shared.state.lock().expect("router poisoned");
            if !state.shutdown && state.pending_updates >= self.shared.ingest_bound {
                self.telemetry.ingest_shed.inc();
                return None;
            }
            if state.shutdown {
                cell.fail("fleet is shut down");
            } else {
                self.push_update(&mut state, update, &cell, submitted_at);
            }
        }
        self.shared.wake.notify_all();
        Some(FleetTicket { cell, submitted_at })
    }

    fn push_update(
        &self,
        state: &mut RouterState,
        update: EdgeUpdate,
        cell: &Arc<FleetTicketCell>,
        submitted_at: Instant,
    ) {
        state.oldest.get_or_insert(submitted_at);
        state.pending_updates += 1;
        // The gauge's `set` is the single high-water-mark path; the report's
        // `max_ingest_depth` reads it back.
        self.telemetry
            .ingest_depth
            .set(state.pending_updates as u64);
        state.pending.push(RouterEntry {
            update: Some(update),
            cell: Arc::clone(cell),
            submitted_at,
        });
    }

    /// Current depth of the ingest queue (pending updates, barriers
    /// excluded).
    pub fn ingest_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("router poisoned")
            .pending_updates
    }

    /// The configured ingest bound.
    pub fn ingest_bound(&self) -> usize {
        self.shared.ingest_bound
    }

    /// Submits every update of an iterator; tickets come back in order.
    pub fn submit_all(&self, updates: impl IntoIterator<Item = EdgeUpdate>) -> Vec<FleetTicket> {
        updates.into_iter().map(|u| self.submit(u)).collect()
    }

    /// Forces a fleet batch boundary now; the ticket resolves at the epoch
    /// that covers everything pending at the flush.
    pub fn flush(&self) -> FleetTicket {
        let cell = FleetTicketCell::new();
        let submitted_at = Instant::now();
        {
            let mut state = self.shared.state.lock().expect("router poisoned");
            if state.shutdown {
                cell.fail("fleet is shut down");
            } else {
                state.barrier = true;
                state.pending.push(RouterEntry {
                    update: None,
                    cell: Arc::clone(&cell),
                    submitted_at,
                });
            }
        }
        self.shared.wake.notify_all();
        FleetTicket { cell, submitted_at }
    }

    /// Blocks until everything submitted so far is repaired on every touched
    /// shard and reflected in the published epoch.
    pub fn wait_idle(&self) {
        self.flush().wait_applied();
    }

    /// The currently published fleet version.
    pub fn fleet_version(&self) -> u64 {
        self.shared.epoch.lock().expect("router poisoned").version
    }

    /// Opens a query session pinned to the current fleet epoch.
    pub fn session(&self) -> FleetSession {
        self.query_handle().session()
    }

    /// A cheap, clonable, `'static` handle to the fleet's query side
    /// (epoch, topology, caches), detached from the router's lifetime
    /// management — what a fleet-backed
    /// [`DistanceService`](crate::DistanceService) pins its worker
    /// sessions through.
    pub fn query_handle(&self) -> FleetQueryHandle {
        FleetQueryHandle {
            shared: Arc::clone(&self.shared),
            topo: Arc::clone(&self.topo),
            telemetry: Arc::clone(&self.telemetry),
            caches: Arc::clone(&self.caches),
        }
    }

    /// One-shot convenience: opens a session and answers `d(s, t)`.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        self.session().distance(s, t)
    }

    pub(crate) fn topology(&self) -> &Arc<FleetTopology> {
        &self.topo
    }

    pub(crate) fn telemetry(&self) -> &Arc<FleetTelemetry> {
        &self.telemetry
    }

    /// Stops the router thread, draining pending updates first. Returns the
    /// overlay core for reuse; `None` if the thread panicked (pending
    /// tickets are failed loudly in that case).
    pub(crate) fn shutdown(&mut self) -> Option<OverlayMaintainer> {
        let handle = self.handle.take()?;
        {
            let mut state = self.shared.state.lock().expect("router poisoned");
            state.shutdown = true;
        }
        self.shared.wake.notify_all();
        // Submitters blocked on the ingest bound must observe the shutdown.
        self.shared.space.notify_all();
        match handle.join() {
            Ok(core) => Some(core),
            Err(_) => {
                let drained = {
                    let mut state = self.shared.state.lock().expect("router poisoned");
                    std::mem::take(&mut state.pending)
                };
                for e in drained {
                    e.cell.fail("fleet router thread panicked");
                }
                None
            }
        }
    }
}

impl Drop for FleetRouter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for FleetRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetRouter")
            .field("shards", &self.topo.num_shards())
            .field("fleet_version", &self.fleet_version())
            .finish()
    }
}

/// The router maintenance loop: coalesce → fan out → maintain overlay →
/// wait for shard visibility → publish the next fleet epoch.
fn run_router(
    mut core: OverlayMaintainer,
    shared: Arc<RouterShared>,
    ctx: RouterCtx,
    telemetry: Arc<FleetTelemetry>,
) -> OverlayMaintainer {
    let k = ctx.feeds.len();
    let mut fleet_version = 0u64;
    loop {
        // Coalesce, mirroring the shard-level UpdateFeed policy loop.
        let drained: Vec<RouterEntry> = {
            let mut state = shared.state.lock().expect("router poisoned");
            loop {
                let deadline = state.oldest.map(|t| t + ctx.policy.max_delay);
                let flush_now = state.barrier
                    || (state.shutdown && !state.pending.is_empty())
                    || state.pending_updates >= ctx.policy.max_batch
                    || deadline.is_some_and(|d| Instant::now() >= d);
                if flush_now {
                    state.barrier = false;
                    state.oldest = None;
                    state.pending_updates = 0;
                    break std::mem::take(&mut state.pending);
                }
                if state.shutdown {
                    return core;
                }
                state = match deadline {
                    Some(d) => {
                        let timeout = d.saturating_duration_since(Instant::now());
                        shared
                            .wake
                            .wait_timeout(state, timeout)
                            .expect("router poisoned")
                            .0
                    }
                    None => shared.wake.wait(state).expect("router poisoned"),
                };
            }
        };
        // The ingest queue was just drained: release submitters blocked on
        // the bound.
        shared.space.notify_all();
        telemetry.ingest_depth.set(0);
        let batch_started = Instant::now();

        // Classify every update, translate intra updates to shard-local edge
        // ids, and resolve each ticket's routed component.
        let mut shard_updates: Vec<Vec<EdgeUpdate>> = vec![Vec::new(); k];
        let mut shard_entries: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut updates = Vec::new();
        for (idx, entry) in drained.iter().enumerate() {
            let Some(u) = entry.update else {
                // Barrier: no shard owns it; it resolves at the epoch.
                entry.cell.resolve_routed(None, false);
                continue;
            };
            updates.push(u);
            let p = &core.partitioned;
            let (a, b) = p.graph.edge_endpoints(u.edge);
            if p.partition.same_partition(a, b) {
                let i = p.partition.partition_of(a);
                let le = p.subgraphs[i]
                    .local_edge(u.edge)
                    .expect("intra-partition edge must have a local id");
                shard_updates[i].push(EdgeUpdate::new(le, u.old_weight, u.new_weight));
                shard_entries[i].push(idx);
                if p.partition.is_boundary(a) || p.partition.is_boundary(b) {
                    telemetry.boundary_updates.inc();
                }
            } else {
                // Inter-partition edge: no shard owns it; the overlay does.
                entry.cell.resolve_routed(None, true);
                telemetry.boundary_updates.inc();
            }
        }

        // Fan out to the touched shards first so their maintenance threads
        // repair in parallel with the overlay work below.
        let mut flush_tickets: Vec<Option<UpdateTicket>> = (0..k).map(|_| None).collect();
        for i in 0..k {
            if shard_updates[i].is_empty() {
                continue;
            }
            let p = &core.partitioned;
            let tickets = ctx.feeds[i].submit_all(shard_updates[i].drain(..));
            for (ticket, &idx) in tickets.into_iter().zip(&shard_entries[i]) {
                let u = drained[idx].update.expect("routed entry has an update");
                let (a, b) = p.graph.edge_endpoints(u.edge);
                let boundary = p.partition.is_boundary(a) || p.partition.is_boundary(b);
                drained[idx]
                    .cell
                    .resolve_routed(Some((i, Arc::new(ticket))), boundary);
            }
            flush_tickets[i] = Some(ctx.feeds[i].flush());
            telemetry.shards[i]
                .updates_routed
                .add(shard_entries[i].len() as u64);
        }

        // Overlay maintenance on this thread while the shards repair.
        let batch = UpdateBatch::from_updates(updates);
        if !batch.is_empty() {
            let overlay_started = Instant::now();
            core.apply(&batch);
            ctx.hub.record_span(
                TraceId::NONE,
                "fleet",
                "overlay_apply",
                overlay_started,
                Instant::now(),
            );
        }

        // Wait for each touched shard's first publication and record the
        // submit-to-visible lag of every update routed there.
        for i in 0..k {
            if let Some(ticket) = &flush_tickets[i] {
                ticket.wait_visible();
                let now = Instant::now();
                for &idx in &shard_entries[i] {
                    telemetry.shards[i]
                        .lags
                        .record(now.duration_since(drained[idx].submitted_at));
                }
            }
        }
        // Then for the full staged repair, so the epoch captures final-stage
        // views (all weight-consistent with the batch).
        for (i, ticket) in flush_tickets.iter().enumerate() {
            if let Some(ticket) = ticket {
                let outcome = ticket.wait_applied();
                telemetry.shards[i]
                    .cow_chunks
                    .add(outcome.cow.chunks_cloned);
                telemetry.shards[i].cow_bytes.add(outcome.cow.bytes_cloned);
                telemetry.shards[i].batches.inc();
            }
        }

        // Publish the next fleet epoch: a mutually consistent capture.
        fleet_version += 1;
        telemetry.fleet_batches.inc();
        let epoch = Arc::new(FleetEpoch {
            version: fleet_version,
            global: Arc::new(core.partitioned.graph.clone()),
            overlay: Arc::new(core.overlay.graph.clone()),
            shard_views: ctx.publishers.iter().map(|p| p.snapshot()).collect(),
            shard_versions: ctx.publishers.iter().map(|p| p.version()).collect(),
        });
        {
            let mut slot = shared.epoch.lock().expect("router poisoned");
            *slot = epoch;
        }
        shared.epoch_cv.notify_all();
        ctx.hub.record_span(
            TraceId::NONE,
            "fleet",
            "epoch",
            batch_started,
            Instant::now(),
        );
        for entry in &drained {
            entry.cell.resolve_epoch(fleet_version);
        }
    }
}

/// A clonable, `'static` handle to the query side of a fleet: opens
/// [`FleetSession`]s pinned to the current epoch without borrowing the
/// [`FleetRouter`]. This is what a fleet-backed
/// [`DistanceService`](crate::DistanceService) hands its worker threads;
/// obtained from [`FleetRouter::query_handle`] /
/// [`ShardedFleet::query_handle`](crate::ShardedFleet::query_handle).
#[derive(Clone)]
pub struct FleetQueryHandle {
    shared: Arc<RouterShared>,
    topo: Arc<FleetTopology>,
    telemetry: Arc<FleetTelemetry>,
    caches: Arc<Vec<Option<Arc<DistanceCache>>>>,
}

impl FleetQueryHandle {
    /// The currently published fleet version.
    pub fn fleet_version(&self) -> u64 {
        self.shared.epoch.lock().expect("router poisoned").version
    }

    /// Opens a query session pinned to the current fleet epoch.
    pub fn session(&self) -> FleetSession {
        let epoch = Arc::clone(&*self.shared.epoch.lock().expect("router poisoned"));
        let n = epoch.overlay.num_vertices();
        FleetSession {
            topo: Arc::clone(&self.topo),
            epoch,
            caches: Arc::clone(&self.caches),
            telemetry: Arc::clone(&self.telemetry),
            ws: DijkstraWorkspace::new(n),
        }
    }
}

impl std::fmt::Debug for FleetQueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetQueryHandle")
            .field("shards", &self.topo.num_shards())
            .field("fleet_version", &self.fleet_version())
            .finish()
    }
}

/// A query session pinned to one fleet epoch: a consistent set of shard
/// views, overlay graph, and global graph. Implements [`QuerySession`] over
/// *global* vertex ids; see the [module docs](self) for the local vs
/// cross-shard query path.
pub struct FleetSession {
    topo: Arc<FleetTopology>,
    epoch: Arc<FleetEpoch>,
    caches: Arc<Vec<Option<Arc<DistanceCache>>>>,
    telemetry: Arc<FleetTelemetry>,
    ws: DijkstraWorkspace,
}

impl FleetSession {
    /// The fleet version this session is pinned to.
    pub fn fleet_version(&self) -> u64 {
        self.epoch.version
    }

    /// The global graph this session's answers are exact on (the served
    /// snapshot — what a verification Dijkstra should run against).
    pub fn graph(&self) -> &Graph {
        &self.epoch.global
    }

    /// Opens the (possibly cache-wrapped) session of one shard's pinned view.
    fn shard_session(&self, i: usize) -> Box<dyn QuerySession + '_> {
        let inner = self.epoch.shard_views[i].session();
        match self.caches[i].as_deref() {
            Some(cache) => Box::new(CachedSession::new(
                inner,
                cache,
                self.epoch.shard_versions[i],
            )),
            None => inner,
        }
    }

    /// Seeds the overlay with the source side's boundary distances and runs
    /// one multi-source Dijkstra; afterwards `ws.distance(overlay_v)` holds
    /// `min_b (d_src(s, b) + d_overlay(b, overlay_v))`.
    fn run_overlay(&mut self, src_shard: usize, ds: &[Dist]) {
        let seeds: Vec<(VertexId, Dist)> = self.topo.boundary_overlay[src_shard]
            .iter()
            .copied()
            .zip(ds.iter().copied())
            .collect();
        dijkstra_multi_source_ws(&self.epoch.overlay, &seeds, &mut self.ws);
    }

    /// Folds the target side's boundary distances over the overlay pass.
    fn fold_target(&self, tgt_shard: usize, dt: &[Dist]) -> Dist {
        let mut best = INF;
        for (&ob, &d) in self.topo.boundary_overlay[tgt_shard].iter().zip(dt) {
            best = best.min(self.ws.distance(ob).saturating_add(d));
        }
        best
    }

    fn count(&self, si: usize, ti: usize, pairs: u64) {
        if si == ti {
            self.telemetry.shards[si].local_queries.add(pairs);
        } else {
            self.telemetry.shards[si].cross_queries.add(pairs);
            self.telemetry.shards[ti].cross_queries.add(pairs);
        }
    }
}

impl QuerySession for FleetSession {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return Dist::ZERO;
        }
        let (si, ti) = (self.topo.shard(s), self.topo.shard(t));
        let (ls, lt) = (self.topo.local_id[s.index()], self.topo.local_id[t.index()]);
        self.count(si, ti, 1);
        if si == ti {
            // Local query — but the globally shortest path may leave the
            // shard and return, so the boundary detour is evaluated too.
            let (mut best, ds, dt) = {
                let mut sess = self.shard_session(si);
                let best = sess.distance(ls, lt);
                let bl = &self.topo.boundary_local[si];
                if bl.is_empty() {
                    return best;
                }
                (best, sess.one_to_many(ls, bl), sess.one_to_many(lt, bl))
            };
            self.run_overlay(si, &ds);
            best = best.min(self.fold_target(si, &dt));
            best
        } else {
            let ds = self
                .shard_session(si)
                .one_to_many(ls, &self.topo.boundary_local[si]);
            let dt = self
                .shard_session(ti)
                .one_to_many(lt, &self.topo.boundary_local[ti]);
            self.run_overlay(si, &ds);
            self.fold_target(ti, &dt)
        }
    }

    fn one_to_many(&mut self, source: VertexId, targets: &[VertexId]) -> Vec<Dist> {
        let si = self.topo.shard(source);
        let ls = self.topo.local_id[source.index()];
        // Source side once: boundary fan + local answers for same-shard
        // targets, all through one shard session.
        let local_targets: Vec<VertexId> = targets
            .iter()
            .filter(|&&t| self.topo.shard(t) == si)
            .map(|&t| self.topo.local_id[t.index()])
            .collect();
        let (ds, local_answers) = {
            let mut sess = self.shard_session(si);
            let ds = sess.one_to_many(ls, &self.topo.boundary_local[si]);
            let local = sess.one_to_many(ls, &local_targets);
            (ds, local)
        };
        let mut local_iter = local_answers.into_iter();
        self.run_overlay(si, &ds);
        let mut out = Vec::with_capacity(targets.len());
        for &t in targets {
            let ti = self.topo.shard(t);
            let lt = self.topo.local_id[t.index()];
            self.count(si, ti, 1);
            let mut best = if ti == si {
                if t == source {
                    let _ = local_iter.next();
                    out.push(Dist::ZERO);
                    continue;
                }
                local_iter.next().expect("local answer per local target")
            } else {
                INF
            };
            if !self.topo.boundary_local[ti].is_empty() {
                let dt = self
                    .shard_session(ti)
                    .one_to_many(lt, &self.topo.boundary_local[ti]);
                best = best.min(self.fold_target(ti, &dt));
            }
            out.push(best);
        }
        out
    }
}
