//! System-model parameters (Table II of the paper) and serving-side
//! configuration (the result cache and the sharded fleet).

use crate::feed::CoalescePolicy;
use crate::registry::{AlgorithmKind, BuildParams};

/// Parameters of the batch-update system model (§II).
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Update volume `|U|`: number of edge updates per batch.
    pub update_volume: usize,
    /// Update interval `δt` in seconds.
    pub update_interval: f64,
    /// QoS constraint `R*_q`: maximum average query response time in seconds.
    pub max_response_time: f64,
    /// Number of queries sampled when measuring per-stage query latency.
    pub query_sample: usize,
}

impl Default for SystemConfig {
    /// The paper's defaults (bold in Table II): `|U| = 1000`, `δt = 120 s`,
    /// `R*_q = 1 s`.
    fn default() -> Self {
        SystemConfig {
            update_volume: 1000,
            update_interval: 120.0,
            max_response_time: 1.0,
            query_sample: 200,
        }
    }
}

impl SystemConfig {
    /// Table II sweep values for the update volume `|U|`.
    pub const UPDATE_VOLUMES: [usize; 4] = [500, 1000, 3000, 5000];
    /// Table II sweep values for the update interval `δt` (seconds).
    pub const UPDATE_INTERVALS: [f64; 4] = [60.0, 120.0, 300.0, 600.0];
    /// Table II sweep values for the QoS response time `R*_q` (seconds).
    pub const RESPONSE_TIMES: [f64; 4] = [0.5, 1.0, 1.5, 2.0];

    /// A laptop-scale variant of the defaults used by the experiment harness
    /// (smaller batches so each experiment finishes quickly).
    pub fn laptop(update_volume: usize) -> Self {
        SystemConfig {
            update_volume,
            ..SystemConfig::default()
        }
    }
}

/// Configuration of the snapshot-versioned
/// [`DistanceCache`](crate::DistanceCache).
///
/// The cache is **off by default** at the server level
/// ([`ServerBuilder`](crate::ServerBuilder) starts one only when
/// `result_cache(config)` is called): a result cache only pays for its
/// lookups under skewed traffic on search-based views — see the
/// [`cache`](crate::cache) module docs for the helps-vs-hurts analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total entries across all shards (each shard holds
    /// `ceil(capacity / shards)`, so the effective total rounds up to a
    /// multiple of `shards`).
    pub capacity: usize,
    /// Number of independently locked LRU shards (contention knob; one
    /// mutex each).
    pub shards: usize,
}

impl Default for CacheConfig {
    /// A serving-friendly laptop default: 64Ki entries over 16 shards
    /// (~1.5 MiB of slots).
    fn default() -> Self {
        CacheConfig {
            capacity: 64 * 1024,
            shards: 16,
        }
    }
}

impl CacheConfig {
    /// A cache with `capacity` total entries and the default shard count.
    pub fn with_capacity(capacity: usize) -> Self {
        CacheConfig {
            capacity,
            ..CacheConfig::default()
        }
    }
}

/// Configuration of a [`ShardedFleet`](crate::fleet::ShardedFleet): the
/// partition-sharded serving tier of one road network.
///
/// Shard servers always run a **manual** coalesce policy — batching is the
/// router's job, so one fleet batch maps to exactly one batch on every
/// touched shard and the published fleet epochs stay mutually consistent.
/// The `coalesce` field therefore governs the *router's* batching.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of shards (partitions of the served graph); clamped to at
    /// least 1.
    pub num_shards: usize,
    /// Seed of the region-growing partitioner.
    pub seed: u64,
    /// The index every shard server runs on its induced subgraph.
    pub algorithm: AlgorithmKind,
    /// Construction parameters handed to each shard's index build (scaled
    /// per shard with [`BuildParams::for_shard`]).
    pub build_params: BuildParams,
    /// The *fleet-level* coalesce policy applied by the front-end router.
    pub coalesce: CoalescePolicy,
    /// Per-shard result cache; `None` disables caching fleet-wide.
    pub cache: Option<CacheConfig>,
    /// Bound of the router's ingest queue (pending updates):
    /// [`FleetRouter::submit`](crate::FleetRouter::submit) blocks at the
    /// bound (backpressure),
    /// [`FleetRouter::try_submit`](crate::FleetRouter::try_submit) sheds.
    /// Clamped to at least 1.
    pub ingest_bound: usize,
}

impl Default for FleetConfig {
    /// Four shards of the default DCH index under the paper-default
    /// coalesce policy, no result cache.
    fn default() -> Self {
        FleetConfig {
            num_shards: 4,
            seed: 1,
            algorithm: AlgorithmKind::Dch,
            build_params: BuildParams::default(),
            coalesce: CoalescePolicy::default(),
            cache: None,
            ingest_bound: FleetConfig::DEFAULT_INGEST_BOUND,
        }
    }
}

impl FleetConfig {
    /// A fleet of `num_shards` servers all running `algorithm`.
    pub fn new(num_shards: usize, algorithm: AlgorithmKind) -> Self {
        FleetConfig {
            num_shards,
            algorithm,
            ..FleetConfig::default()
        }
    }

    /// Replaces the router's coalesce policy.
    pub fn with_coalesce(mut self, policy: CoalescePolicy) -> Self {
        self.coalesce = policy;
        self
    }

    /// Enables the per-shard result cache.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Default router ingest bound: deep enough that steady-state ingest
    /// never blocks, shallow enough that a stalled router surfaces as
    /// backpressure instead of unbounded memory growth.
    pub const DEFAULT_INGEST_BOUND: usize = 1 << 16;

    /// Replaces the router's ingest-queue bound.
    pub fn with_ingest_bound(mut self, bound: usize) -> Self {
        self.ingest_bound = bound;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_config_defaults() {
        let c = CacheConfig::default();
        assert_eq!(c.capacity, 65536);
        assert_eq!(c.shards, 16);
        assert_eq!(CacheConfig::with_capacity(100).capacity, 100);
        assert_eq!(CacheConfig::with_capacity(100).shards, 16);
    }

    #[test]
    fn defaults_match_table_ii() {
        let c = SystemConfig::default();
        assert_eq!(c.update_volume, 1000);
        assert_eq!(c.update_interval, 120.0);
        assert_eq!(c.max_response_time, 1.0);
        assert!(SystemConfig::UPDATE_VOLUMES.contains(&c.update_volume));
    }
}
