//! The batched distance-serving front-end: clients submit [`QueryBatch`]
//! requests, worker threads answer them through per-thread
//! [`QuerySession`]s pinned to the currently published snapshot.
//!
//! This is the serving architecture the paper's system model implies but
//! never spells out. A [`DistanceService`] owns `N` worker threads and a
//! FIFO queue of batches. Each worker
//!
//! 1. pops a batch from the queue,
//! 2. **pins a session**: takes the newest snapshot from the shared
//!    [`SnapshotPublisher`] and opens one [`QuerySession`] on it (one
//!    scratch checkout, held for the whole pin),
//! 3. drains batches through that session for as long as the publisher
//!    version is unchanged, and
//! 4. **re-pins** — drops the session and takes a fresh snapshot — as soon
//!    as the maintenance thread publishes a newer stage, so freshly
//!    repaired (faster) machinery is picked up within one batch.
//!
//! Workers never block on maintenance and never observe a half-repaired
//! index: those guarantees come from the snapshot contract of
//! [`htsp_graph::index_api`]. What the service adds is the *batch* shape of
//! real traffic — point-to-point bundles, one-to-many fans (one origin,
//! many candidate destinations), and full distance matrices — answered by
//! machinery that shares work across a batch instead of re-entering the
//! index per pair.
//!
//! # Admission control
//!
//! The queue is governed by an [`AdmissionPolicy`] (see the
//! [`admission`](crate::admission) module docs for the policy matrix).
//! [`DistanceService::try_submit_at`] is the policy-aware entry point: it
//! timestamps the request at *generation* (so an open-loop load generator
//! charges queueing delay even when its submitting thread lags) and returns
//! a [`SubmitOutcome`] — accepted with a ticket, shed at a full queue, or
//! expired past its deadline. Workers discard queued jobs whose
//! [`Deadline`](AdmissionPolicy::Deadline) passed before execution, and
//! every admission/execution path is counted in [`ServiceStats`].
//!
//! The service can front either a single server's [`SnapshotPublisher`] or
//! a whole [`ShardedFleet`](crate::ShardedFleet) (via
//! [`DistanceService::for_fleet`]), so the same queue, policies, and
//! telemetry apply at the fleet level.
//!
//! The maintenance side stays outside the service: whoever owns the
//! [`IndexMaintainer`](htsp_graph::IndexMaintainer) keeps calling
//! `apply_batch` with the same publisher the service was started with.

use crate::admission::{AdmissionPolicy, ServiceStats, ShutdownReport, SubmitOutcome};
use crate::cache::{CachedSession, DistanceCache};
use crate::router::FleetQueryHandle;
use crate::telemetry::{Counter, Gauge, Histogram, TelemetryHub};
use htsp_graph::{Dist, Query, QuerySession, SnapshotPublisher, TraceId, VertexId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One client request: a bundle of distance queries answered together by a
/// single session (and therefore by a single snapshot).
#[derive(Clone, Debug)]
pub enum QueryBatch {
    /// Independent `(s, t)` pairs, answered in order.
    PointToPoint(Vec<Query>),
    /// One origin, many destinations (e.g. "nearest k depots"): answered
    /// with the view's one-to-many machinery — a single truncated forward
    /// search on Dijkstra-like views, a shared forward upward search on CH
    /// views.
    OneToMany {
        /// The common source vertex.
        source: VertexId,
        /// The destination vertices.
        targets: Vec<VertexId>,
    },
    /// A full `sources × targets` distance matrix (dispatch / assignment
    /// workloads).
    Matrix {
        /// Row vertices.
        sources: Vec<VertexId>,
        /// Column vertices.
        targets: Vec<VertexId>,
    },
}

impl QueryBatch {
    /// Number of `(s, t)` distances this batch asks for.
    pub fn num_pairs(&self) -> usize {
        match self {
            QueryBatch::PointToPoint(qs) => qs.len(),
            QueryBatch::OneToMany { targets, .. } => targets.len(),
            QueryBatch::Matrix { sources, targets } => sources.len() * targets.len(),
        }
    }
}

/// The answer to one [`QueryBatch`], tagged with the snapshot that served it.
#[derive(Clone, Debug)]
pub struct BatchAnswer {
    /// The distances, flattened in request order. For
    /// [`QueryBatch::Matrix`] the layout is row-major:
    /// `distances[i * targets.len() + j] = d(sources[i], targets[j])`.
    pub distances: Vec<Dist>,
    /// Publisher version of the snapshot that answered (fleet version when
    /// the service fronts a [`ShardedFleet`](crate::ShardedFleet)).
    pub snapshot_version: u64,
    /// Query stage of the snapshot that answered.
    pub stage: usize,
    /// Algorithm name of the snapshot that answered.
    pub algorithm: &'static str,
    /// When the worker finished computing this answer; an open-loop load
    /// generator subtracts the generation timestamp from this for the
    /// submit-to-answer latency.
    pub answered_at: Instant,
}

/// How one *accepted* batch resolved. Every accepted ticket resolves exactly
/// once — answered, expired in the queue, or abandoned by a shutdown.
#[derive(Clone, Debug)]
pub enum BatchResult {
    /// The batch was executed; here is its answer.
    Answered(BatchAnswer),
    /// The batch's [`AdmissionPolicy::Deadline`] passed while it waited in
    /// the queue; a worker discarded it without executing it.
    Expired,
    /// The service shut down under a shedding policy while the batch was
    /// still queued; it was discarded without being executed.
    Abandoned,
}

impl BatchResult {
    /// The answer, when the batch was answered.
    pub fn answered(self) -> Option<BatchAnswer> {
        match self {
            BatchResult::Answered(a) => Some(a),
            _ => None,
        }
    }

    fn expect_answer(self) -> BatchAnswer {
        match self {
            BatchResult::Answered(a) => a,
            BatchResult::Expired => panic!("batch expired in the queue before execution"),
            BatchResult::Abandoned => panic!("batch abandoned by service shutdown"),
        }
    }
}

/// A pending [`BatchResult`]; returned by [`DistanceService::submit`] (and,
/// wrapped in a [`SubmitOutcome`], by [`DistanceService::try_submit`]).
///
/// A batch is **resolved exactly once** by the service; the ticket caches
/// the result on first receipt, so every subsequent wait variant — from any
/// thread, the ticket is `Sync` and can be shared by reference — yields the
/// *same* result. Polls before the result lands return `None` and leave the
/// ticket usable.
///
/// The `wait`/`try_wait`/`wait_timeout` family yields the [`BatchAnswer`]
/// directly and panics when the batch was discarded unexecuted; under a
/// [`Deadline`](AdmissionPolicy::Deadline) policy (or when shutting down a
/// shedding service with a non-empty queue) use the `*_result` variants,
/// which surface [`BatchResult::Expired`] / [`BatchResult::Abandoned`].
pub struct BatchTicket {
    rx: Mutex<mpsc::Receiver<BatchResult>>,
    result: Mutex<Option<BatchResult>>,
}

impl BatchTicket {
    fn new(rx: mpsc::Receiver<BatchResult>) -> Self {
        BatchTicket {
            rx: Mutex::new(rx),
            result: Mutex::new(None),
        }
    }

    fn cached(&self) -> Option<BatchResult> {
        self.result.lock().expect("ticket result poisoned").clone()
    }

    fn store(&self, result: BatchResult) -> BatchResult {
        *self.result.lock().expect("ticket result poisoned") = Some(result.clone());
        result
    }

    /// Blocks until the batch resolves (returns immediately once the result
    /// was ever received).
    ///
    /// # Panics
    ///
    /// Panics if the service dropped the batch without resolving it.
    pub fn wait_result(&self) -> BatchResult {
        if let Some(result) = self.cached() {
            return result;
        }
        let rx = self.rx.lock().expect("ticket receiver poisoned");
        if let Some(result) = self.cached() {
            return result;
        }
        match rx.recv() {
            Ok(result) => self.store(result),
            Err(_) => panic!("distance service dropped the batch"),
        }
    }

    /// Blocks until the batch is answered.
    ///
    /// # Panics
    ///
    /// Panics if the batch was discarded unexecuted (deadline expiry or a
    /// shedding shutdown) — use [`BatchTicket::wait_result`] when the
    /// service runs a policy that can discard accepted batches.
    pub fn wait(self) -> BatchAnswer {
        self.wait_result().expect_answer()
    }

    /// Non-blocking poll: the result if it is (or ever was) in, `None`
    /// otherwise — the ticket stays usable either way, so callers can poll
    /// in a loop, and an already-resolved ticket keeps returning the same
    /// result. Genuinely non-blocking even when the ticket is shared: if
    /// another thread currently holds the receiver (a `wait_timeout` in
    /// progress), the result is simply not cached yet and this returns
    /// `None` instead of waiting for that thread.
    ///
    /// # Panics
    ///
    /// Panics if the service dropped the batch without resolving it.
    pub fn try_wait_result(&self) -> Option<BatchResult> {
        if let Some(result) = self.cached() {
            return Some(result);
        }
        let rx = match self.rx.try_lock() {
            Ok(rx) => rx,
            Err(std::sync::TryLockError::WouldBlock) => return None,
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("ticket receiver poisoned"),
        };
        if let Some(result) = self.cached() {
            return Some(result);
        }
        match rx.try_recv() {
            Ok(result) => Some(self.store(result)),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                panic!("distance service dropped the batch")
            }
        }
    }

    /// Non-blocking poll for the answer; see [`BatchTicket::try_wait_result`].
    ///
    /// # Panics
    ///
    /// Panics if the service dropped the batch, or if the batch was
    /// discarded unexecuted.
    pub fn try_wait(&self) -> Option<BatchAnswer> {
        self.try_wait_result().map(BatchResult::expect_answer)
    }

    /// Blocks for at most `timeout`; `None` means the batch was still
    /// unresolved when the timeout expired (the ticket stays usable). Once
    /// resolved, every further call returns that same result.
    ///
    /// Concurrent timed waiters on one shared ticket serialize on the
    /// receiver: a caller may first wait out the receive of the caller in
    /// front of it (worst case ~2× `timeout` with two callers) — the result
    /// whoever receives first caches is returned to everyone.
    ///
    /// # Panics
    ///
    /// Panics if the service dropped the batch without resolving it.
    pub fn wait_result_timeout(&self, timeout: Duration) -> Option<BatchResult> {
        if let Some(result) = self.cached() {
            return Some(result);
        }
        let rx = self.rx.lock().expect("ticket receiver poisoned");
        // Re-check: the lock holder in front of us may have cached it.
        if let Some(result) = self.cached() {
            return Some(result);
        }
        match rx.recv_timeout(timeout) {
            Ok(result) => Some(self.store(result)),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                panic!("distance service dropped the batch")
            }
        }
    }

    /// Timed wait for the answer; see [`BatchTicket::wait_result_timeout`].
    ///
    /// # Panics
    ///
    /// Panics if the service dropped the batch, or if the batch was
    /// discarded unexecuted.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<BatchAnswer> {
        self.wait_result_timeout(timeout)
            .map(BatchResult::expect_answer)
    }
}

impl std::fmt::Debug for BatchTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchTicket")
            .field("resolved", &self.cached().is_some())
            .finish()
    }
}

struct Job {
    batch: QueryBatch,
    reply: mpsc::Sender<BatchResult>,
    /// `generated_at + budget` under a [`AdmissionPolicy::Deadline`];
    /// `None` otherwise.
    deadline: Option<Instant>,
    /// The trace id minted at submission; every span of this batch's trip
    /// through queue and execution carries it.
    trace: TraceId,
    /// When the batch entered the queue (its `query.queue` span start).
    accepted_at: Instant,
}

/// What the workers answer from: a single server's publisher, or a whole
/// sharded fleet's epochs.
enum Backend {
    Single {
        publisher: Arc<SnapshotPublisher>,
        /// Snapshot-versioned result cache consulted before every search
        /// (see [`crate::cache`]); `None` serves every query through the
        /// session.
        cache: Option<Arc<DistanceCache>>,
    },
    Fleet(FleetQueryHandle),
}

/// The service's registered metric handles. [`ServiceStats`] is a read-out
/// of these registry series — the registry is the single source of truth.
struct ServiceMetrics {
    submitted: Counter,
    accepted: Counter,
    shed: Counter,
    expired_at_submit: Counter,
    expired_in_queue: Counter,
    abandoned: Counter,
    answered: Counter,
    answered_pairs: Counter,
    /// Queue depth after every push/pop; its high-water mark (folded by the
    /// gauge's single `fetch_max` path) is `ServiceStats::max_queue_depth`.
    queue_depth: Gauge,
    queue_wait: Histogram,
    execute: Histogram,
}

impl ServiceMetrics {
    fn register(hub: &TelemetryHub) -> Self {
        ServiceMetrics {
            submitted: hub.counter("htsp_admission_submitted_total"),
            accepted: hub.counter("htsp_admission_accepted_total"),
            shed: hub.counter("htsp_admission_shed_total"),
            expired_at_submit: hub.counter("htsp_admission_expired_at_submit_total"),
            expired_in_queue: hub.counter("htsp_admission_expired_in_queue_total"),
            abandoned: hub.counter("htsp_admission_abandoned_total"),
            answered: hub.counter("htsp_admission_answered_total"),
            answered_pairs: hub.counter("htsp_admission_answered_pairs_total"),
            queue_depth: hub.gauge("htsp_admission_queue_depth"),
            queue_wait: hub.histogram("htsp_query_queue_seconds"),
            execute: hub.histogram("htsp_query_execute_seconds"),
        }
    }
}

struct Shared {
    backend: Backend,
    policy: AdmissionPolicy,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    hub: Arc<TelemetryHub>,
    stats: ServiceMetrics,
}

impl Shared {
    /// Blocks until a job is available or shutdown is flagged.
    fn pop_blocking(&self) -> Option<Job> {
        let mut queue = self.queue.lock().expect("service queue poisoned");
        loop {
            if let Some(job) = queue.pop_front() {
                self.stats.queue_depth.set(queue.len() as u64);
                return Some(job);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            queue = self.available.wait(queue).expect("service queue poisoned");
        }
    }

    fn try_pop(&self) -> Option<Job> {
        let mut queue = self.queue.lock().expect("service queue poisoned");
        let job = queue.pop_front();
        if job.is_some() {
            self.stats.queue_depth.set(queue.len() as u64);
        }
        job
    }

    /// Serves one popped job: discards it unexecuted when its deadline has
    /// passed, answers it through `session` otherwise.
    fn serve(
        &self,
        session: &mut dyn QuerySession,
        version: u64,
        stage: usize,
        algorithm: &'static str,
        job: Job,
    ) {
        let popped_at = Instant::now();
        self.stats
            .queue_wait
            .record(popped_at.saturating_duration_since(job.accepted_at));
        self.hub
            .record_span(job.trace, "query", "queue", job.accepted_at, popped_at);
        if job.deadline.is_some_and(|d| popped_at >= d) {
            self.stats.expired_in_queue.inc();
            self.hub
                .record_event(job.trace, "query", "expired", popped_at);
            let _ = job.reply.send(BatchResult::Expired);
            return;
        }
        let pairs = job.batch.num_pairs() as u64;
        let reply = answer(session, version, stage, algorithm, &job.batch);
        self.stats
            .execute
            .record(reply.answered_at.saturating_duration_since(popped_at));
        self.hub
            .record_span(job.trace, "query", "execute", popped_at, reply.answered_at);
        self.stats.answered.inc();
        self.stats.answered_pairs.add(pairs);
        // A closed receiver just means the client lost interest.
        let _ = job.reply.send(BatchResult::Answered(reply));
    }
}

/// Answers `job` through `session`, which is pinned to (`version`, `stage`,
/// `algorithm`) of the snapshot it was opened on.
fn answer(
    session: &mut dyn QuerySession,
    version: u64,
    stage: usize,
    algorithm: &'static str,
    batch: &QueryBatch,
) -> BatchAnswer {
    let distances = match batch {
        QueryBatch::PointToPoint(qs) => qs.iter().map(|q| session.query(q)).collect(),
        QueryBatch::OneToMany { source, targets } => session.one_to_many(*source, targets),
        QueryBatch::Matrix { sources, targets } => session
            .matrix(sources, targets)
            .into_iter()
            .flatten()
            .collect(),
    };
    BatchAnswer {
        distances,
        snapshot_version: version,
        stage,
        algorithm,
        answered_at: Instant::now(),
    }
}

fn worker_loop(shared: &Shared) {
    // A job carried over from the previous pin because the snapshot
    // version advanced mid-drain.
    let mut carried: Option<Job> = None;
    loop {
        let job = match carried.take().or_else(|| shared.pop_blocking()) {
            Some(job) => job,
            None => return, // shutdown with an empty queue
        };
        match &shared.backend {
            Backend::Single { publisher, cache } => {
                // Pin: newest snapshot, one session, scratch checked out
                // once. The (version, view) pair is read atomically so a
                // concurrent publish cannot tag the old view with the new
                // version (which would both mislabel answers and suppress
                // the re-pin below). With a result cache, the session is
                // wrapped so repeated pairs skip the search; the wrapper
                // carries the pinned version, so a cached answer can never
                // cross a publication boundary.
                let pin_start = Instant::now();
                let (pinned_version, view) = publisher.versioned_snapshot();
                let mut session: Box<dyn QuerySession + '_> = match cache {
                    Some(cache) => {
                        Box::new(CachedSession::new(view.session(), cache, pinned_version))
                    }
                    None => view.session(),
                };
                let stage = view.stage();
                let algorithm = view.algorithm();
                shared
                    .hub
                    .record_span(TraceId::NONE, "query", "pin", pin_start, Instant::now());
                let mut job = job;
                loop {
                    shared.serve(&mut *session, pinned_version, stage, algorithm, job);
                    match shared.try_pop() {
                        // Keep draining on the same session while the
                        // snapshot is still the newest one.
                        Some(next) if publisher.version() == pinned_version => job = next,
                        // A newer stage was published: re-pin before
                        // answering.
                        Some(next) => {
                            carried = Some(next);
                            break;
                        }
                        // Queue drained: drop the session (and its snapshot
                        // pin) so the maintainer can reclaim the COW memory,
                        // then park.
                        None => break,
                    }
                }
            }
            Backend::Fleet(handle) => {
                // Same pin/drain/re-pin protocol over fleet epochs: one
                // FleetSession (a mutually consistent set of shard views +
                // overlay) held while the fleet version is unchanged.
                let pin_start = Instant::now();
                let mut session = handle.session();
                let pinned_version = session.fleet_version();
                shared
                    .hub
                    .record_span(TraceId::NONE, "query", "pin", pin_start, Instant::now());
                let mut job = job;
                loop {
                    shared.serve(&mut session, pinned_version, 0, "fleet", job);
                    match shared.try_pop() {
                        Some(next) if handle.fleet_version() == pinned_version => job = next,
                        Some(next) => {
                            carried = Some(next);
                            break;
                        }
                        None => break,
                    }
                }
            }
        }
    }
}

/// A multi-threaded, batch-oriented shortest-distance serving front-end.
///
/// See the [module docs](self) for the worker/pinning architecture and the
/// admission-control section; the queue's overload behaviour is governed by
/// the [`AdmissionPolicy`] the service was started with
/// ([`AdmissionPolicy::Block`] for the plain constructors). Dropping the
/// service shuts it down with the same drain-or-shed rule as
/// [`DistanceService::shutdown`].
pub struct DistanceService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl DistanceService {
    /// Starts `num_workers` serving threads against `publisher`'s snapshots
    /// under the legacy [`AdmissionPolicy::Block`] (unbounded queue).
    pub fn start(publisher: Arc<SnapshotPublisher>, num_workers: usize) -> Self {
        DistanceService::with_cache(publisher, num_workers, None)
    }

    /// Like [`DistanceService::start`], but the workers consult `cache`
    /// before every search (and feed it after), through a
    /// [`CachedSession`] pinned to each worker's snapshot version.
    pub fn with_cache(
        publisher: Arc<SnapshotPublisher>,
        num_workers: usize,
        cache: Option<Arc<DistanceCache>>,
    ) -> Self {
        DistanceService::with_policy(publisher, num_workers, cache, AdmissionPolicy::Block)
    }

    /// The fully general single-server constructor: workers, optional
    /// result cache, and an explicit [`AdmissionPolicy`].
    pub fn with_policy(
        publisher: Arc<SnapshotPublisher>,
        num_workers: usize,
        cache: Option<Arc<DistanceCache>>,
        policy: AdmissionPolicy,
    ) -> Self {
        DistanceService::with_telemetry(
            publisher,
            num_workers,
            cache,
            policy,
            Arc::new(TelemetryHub::new()),
        )
    }

    /// Like [`DistanceService::with_policy`], but admission counters, queue
    /// gauges, latency histograms, and query spans land in `hub` — the hub a
    /// deployment shares across its server, feed, cache, and load generator
    /// so one [`TelemetryHub::snapshot`] covers the whole pipeline.
    pub fn with_telemetry(
        publisher: Arc<SnapshotPublisher>,
        num_workers: usize,
        cache: Option<Arc<DistanceCache>>,
        policy: AdmissionPolicy,
        hub: Arc<TelemetryHub>,
    ) -> Self {
        DistanceService::spawn(
            Backend::Single { publisher, cache },
            num_workers,
            policy,
            hub,
        )
    }

    /// Starts a service whose workers answer batches through
    /// [`FleetSession`](crate::FleetSession)s pinned to the fleet's epochs —
    /// the fleet-level admission point. Obtain the handle from
    /// [`ShardedFleet::query_handle`](crate::ShardedFleet::query_handle).
    pub fn for_fleet(
        handle: FleetQueryHandle,
        num_workers: usize,
        policy: AdmissionPolicy,
    ) -> Self {
        DistanceService::for_fleet_with_telemetry(
            handle,
            num_workers,
            policy,
            Arc::new(TelemetryHub::new()),
        )
    }

    /// [`DistanceService::for_fleet`] with an explicit shared hub (normally
    /// the fleet's own, so service and router metrics land together).
    pub fn for_fleet_with_telemetry(
        handle: FleetQueryHandle,
        num_workers: usize,
        policy: AdmissionPolicy,
        hub: Arc<TelemetryHub>,
    ) -> Self {
        DistanceService::spawn(Backend::Fleet(handle), num_workers, policy, hub)
    }

    fn spawn(
        backend: Backend,
        num_workers: usize,
        policy: AdmissionPolicy,
        hub: Arc<TelemetryHub>,
    ) -> Self {
        let stats = ServiceMetrics::register(&hub);
        let shared = Arc::new(Shared {
            backend,
            policy,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            hub,
            stats,
        });
        let workers = (0..num_workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("htsp-distance-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn distance worker")
            })
            .collect();
        DistanceService { shared, workers }
    }

    /// Enqueues a batch; the returned ticket yields the [`BatchAnswer`].
    ///
    /// # Panics
    ///
    /// Panics if the admission policy rejects the batch (a full
    /// [`Shed`](AdmissionPolicy::Shed) queue, or a deadline that already
    /// passed) — use [`DistanceService::try_submit`] under those policies.
    pub fn submit(&self, batch: QueryBatch) -> BatchTicket {
        match self.try_submit(batch) {
            SubmitOutcome::Accepted(ticket) => ticket,
            outcome => panic!("batch rejected by admission policy: {outcome:?}"),
        }
    }

    /// Policy-aware submission, timestamped now; see
    /// [`DistanceService::try_submit_at`].
    pub fn try_submit(&self, batch: QueryBatch) -> SubmitOutcome {
        self.try_submit_at(batch, Instant::now())
    }

    /// Policy-aware submission of a request *generated* at `generated_at`.
    ///
    /// The generation timestamp is what deadlines are measured from: under
    /// [`AdmissionPolicy::Deadline`] the batch's deadline is
    /// `generated_at + budget`, so a submitting thread that falls behind its
    /// arrival schedule cannot hide queueing delay — a request generated
    /// long ago may be `Expired` on arrival.
    pub fn try_submit_at(&self, batch: QueryBatch, generated_at: Instant) -> SubmitOutcome {
        let stats = &self.shared.stats;
        let hub = &self.shared.hub;
        let trace = TraceId::next();
        stats.submitted.inc();
        hub.record_event(trace, "query", "submit", generated_at);
        let deadline = match self.shared.policy {
            AdmissionPolicy::Deadline { budget } => {
                let deadline = generated_at + budget;
                if Instant::now() >= deadline {
                    stats.expired_at_submit.inc();
                    hub.record_event(trace, "query", "expired", Instant::now());
                    return SubmitOutcome::Expired;
                }
                Some(deadline)
            }
            _ => None,
        };
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("service queue poisoned");
            if let AdmissionPolicy::Shed { max_depth } = self.shared.policy {
                if queue.len() >= max_depth {
                    stats.shed.inc();
                    hub.record_event(trace, "query", "shed", Instant::now());
                    return SubmitOutcome::Shed;
                }
            }
            queue.push_back(Job {
                batch,
                reply: tx,
                deadline,
                trace,
                accepted_at: generated_at,
            });
            // The gauge's `set` both stores the live depth and folds the
            // high-water mark through its single `fetch_max` path, so
            // racing submitters can never under-report the maximum.
            stats.queue_depth.set(queue.len() as u64);
        }
        stats.accepted.inc();
        self.shared.available.notify_one();
        SubmitOutcome::Accepted(BatchTicket::new(rx))
    }

    /// Convenience: submits and waits in one call.
    ///
    /// # Panics
    ///
    /// Panics if the policy rejects the batch or discards it unexecuted.
    pub fn answer(&self, batch: QueryBatch) -> BatchAnswer {
        self.submit(batch).wait()
    }

    /// The admission policy this service runs.
    pub fn policy(&self) -> AdmissionPolicy {
        self.shared.policy
    }

    /// Snapshot of the admission/execution counters and queue depth, read
    /// straight from the telemetry registry (the single source of truth —
    /// the same series the Prometheus export renders).
    pub fn stats(&self) -> ServiceStats {
        let stats = &self.shared.stats;
        ServiceStats {
            submitted: stats.submitted.get(),
            accepted: stats.accepted.get(),
            shed: stats.shed.get(),
            expired_at_submit: stats.expired_at_submit.get(),
            expired_in_queue: stats.expired_in_queue.get(),
            abandoned: stats.abandoned.get(),
            answered: stats.answered.get(),
            answered_pairs: stats.answered_pairs.get(),
            queue_depth: self
                .shared
                .queue
                .lock()
                .expect("service queue poisoned")
                .len(),
            max_queue_depth: stats.queue_depth.max() as usize,
        }
    }

    /// The telemetry hub this service records into.
    pub fn telemetry(&self) -> &Arc<TelemetryHub> {
        &self.shared.hub
    }

    /// The publisher this service serves from (hand it to the maintainer).
    ///
    /// # Panics
    ///
    /// Panics on a fleet-backed service ([`DistanceService::for_fleet`]),
    /// which serves from fleet epochs, not a single publisher.
    pub fn publisher(&self) -> &Arc<SnapshotPublisher> {
        match &self.shared.backend {
            Backend::Single { publisher, .. } => publisher,
            Backend::Fleet(_) => panic!("a fleet-backed service has no single publisher"),
        }
    }

    /// Number of serving threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Flags shutdown, settles the remaining queue deterministically, and
    /// joins the workers.
    ///
    /// The fate of jobs still queued at shutdown follows the admission
    /// policy: under [`AdmissionPolicy::Block`] the workers **drain** them
    /// (every accepted batch is still answered, as before); under a
    /// shedding policy ([`Shed`](AdmissionPolicy::Shed) /
    /// [`Deadline`](AdmissionPolicy::Deadline)) the queue is **shed** —
    /// each leftover job resolves to [`BatchResult::Abandoned`] without
    /// being executed, so shutdown latency is one in-flight batch per
    /// worker instead of the whole backlog. Either way the report says how
    /// many jobs were drained or abandoned.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> ShutdownReport {
        self.shared.shutdown.store(true, Ordering::Release);
        let drain = matches!(self.shared.policy, AdmissionPolicy::Block);
        let (drained, abandoned) = {
            let mut queue = self.shared.queue.lock().expect("service queue poisoned");
            if drain {
                (queue.len(), Vec::new())
            } else {
                let jobs: Vec<Job> = queue.drain(..).collect();
                self.shared.stats.queue_depth.set(0);
                (0, jobs)
            }
        };
        let abandoned_count = abandoned.len();
        let now = Instant::now();
        for job in abandoned {
            self.shared.stats.abandoned.inc();
            self.shared
                .hub
                .record_event(job.trace, "query", "abandoned", now);
            let _ = job.reply.send(BatchResult::Abandoned);
        }
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        ShutdownReport {
            drained,
            abandoned: abandoned_count,
        }
    }
}

impl Drop for DistanceService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for DistanceService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistanceService")
            .field("num_workers", &self.workers.len())
            .field("policy", &self.shared.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_baselines::DchBaseline;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::{IndexMaintainer, QuerySet, UpdateGenerator};
    use htsp_search::dijkstra_distance;

    #[test]
    fn service_answers_all_batch_shapes_exactly() {
        let g = grid(9, 9, WeightRange::new(1, 20), 5);
        let idx = DchBaseline::build(&g);
        let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
        let service = DistanceService::start(Arc::clone(&publisher), 3);

        let qs = QuerySet::random(&g, 30, 7);
        let p2p = service.answer(QueryBatch::PointToPoint(qs.as_slice().to_vec()));
        assert_eq!(p2p.algorithm, "DCH");
        assert_eq!(p2p.distances.len(), 30);
        for (q, &d) in qs.iter().zip(&p2p.distances) {
            assert_eq!(d, dijkstra_distance(&g, q.source, q.target));
        }

        let targets: Vec<VertexId> = (0..20).map(|i| VertexId(i * 4)).collect();
        let fan = service.answer(QueryBatch::OneToMany {
            source: VertexId(40),
            targets: targets.clone(),
        });
        for (i, &t) in targets.iter().enumerate() {
            assert_eq!(fan.distances[i], dijkstra_distance(&g, VertexId(40), t));
        }

        let sources = vec![VertexId(0), VertexId(13), VertexId(80)];
        let m = service.answer(QueryBatch::Matrix {
            sources: sources.clone(),
            targets: targets.clone(),
        });
        assert_eq!(m.distances.len(), sources.len() * targets.len());
        for (i, &s) in sources.iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                assert_eq!(
                    m.distances[i * targets.len() + j],
                    dijkstra_distance(&g, s, t),
                    "matrix({s}, {t}) diverged"
                );
            }
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.accepted, 3);
        assert_eq!(stats.answered, 3);
        assert_eq!(stats.answered_pairs, 30 + 20 + 60);
        assert_eq!(
            stats.shed + stats.expired_at_submit + stats.expired_in_queue,
            0
        );
        let report = service.shutdown();
        assert_eq!(report.drained + report.abandoned, 0);
    }

    #[test]
    fn workers_repin_when_a_new_snapshot_is_published() {
        let mut g = grid(8, 8, WeightRange::new(5, 30), 9);
        let mut idx = DchBaseline::build(&g);
        let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
        let service = DistanceService::start(Arc::clone(&publisher), 2);

        let qs = QuerySet::random(&g, 10, 3);
        let before = service.answer(QueryBatch::PointToPoint(qs.as_slice().to_vec()));
        assert_eq!(before.snapshot_version, 0);

        // Maintenance publishes a new snapshot through the same publisher.
        let mut gen = UpdateGenerator::new(11);
        let batch = gen.generate(&g, 20);
        g.apply_batch(&batch);
        idx.apply_batch(&g, &batch, &publisher);
        assert!(publisher.version() >= 1);

        let after = service.answer(QueryBatch::PointToPoint(qs.as_slice().to_vec()));
        assert_eq!(after.snapshot_version, publisher.version());
        for (q, &d) in qs.iter().zip(&after.distances) {
            assert_eq!(d, dijkstra_distance(&g, q.source, q.target));
        }
        // The pre-update answers were exact on the *old* graph — snapshot
        // isolation end to end.
        drop(service);
    }

    #[test]
    fn tickets_poll_and_time_out_without_being_consumed() {
        let g = grid(5, 5, WeightRange::new(1, 5), 2);
        let idx = DchBaseline::build(&g);
        let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
        let service = DistanceService::start(publisher, 1);
        let ticket = service.submit(QueryBatch::PointToPoint(vec![Query::new(
            VertexId(0),
            VertexId(24),
        )]));
        // Poll until the answer lands; the ticket survives misses.
        let answer = loop {
            if let Some(a) = ticket.try_wait() {
                break a;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(
            answer.distances[0],
            dijkstra_distance(&g, VertexId(0), VertexId(24))
        );
        // An answered ticket caches: every further wait variant returns the
        // same answer instead of blocking or coming back empty.
        let again = service.submit(QueryBatch::PointToPoint(vec![Query::new(
            VertexId(1),
            VertexId(2),
        )]));
        let first = again
            .wait_timeout(Duration::from_secs(5))
            .expect("batch unanswered");
        let second = again
            .wait_timeout(Duration::from_millis(1))
            .expect("answered ticket must keep its answer");
        assert_eq!(first.distances, second.distances);
        assert_eq!(first.snapshot_version, second.snapshot_version);
        assert_eq!(again.try_wait().expect("cached").distances, first.distances);
        assert_eq!(again.wait().distances, first.distances);
        service.shutdown();
    }

    #[test]
    fn cached_workers_answer_repeats_from_the_cache_without_staleness() {
        use crate::config::CacheConfig;
        let mut g = grid(8, 8, WeightRange::new(2, 25), 3);
        let mut idx = DchBaseline::build(&g);
        let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
        let cache = Arc::new(DistanceCache::new(CacheConfig::with_capacity(256)));
        let service =
            DistanceService::with_cache(Arc::clone(&publisher), 1, Some(Arc::clone(&cache)));

        let qs = QuerySet::random(&g, 8, 11);
        let batch = QueryBatch::PointToPoint(qs.as_slice().to_vec());
        let first = service.answer(batch.clone());
        let second = service.answer(batch.clone());
        assert_eq!(first.distances, second.distances);
        assert!(
            cache.stats().hits >= qs.len() as u64,
            "the repeated batch must be served from the cache"
        );

        // A publication invalidates: the same pairs are recomputed on the
        // new snapshot, never served from version-0 entries.
        let mut gen = UpdateGenerator::new(5);
        let update = gen.generate(&g, 15);
        g.apply_batch(&update);
        idx.apply_batch(&g, &update, &publisher);
        cache.bump_epoch(publisher.version());
        let after = service.answer(batch);
        assert_eq!(after.snapshot_version, publisher.version());
        for (q, &d) in qs.iter().zip(&after.distances) {
            assert_eq!(
                d,
                dijkstra_distance(&g, q.source, q.target),
                "stale cached answer crossed the publication"
            );
        }
        assert!(cache.stats().stale_misses > 0);
        service.shutdown();
    }

    #[test]
    fn dropping_the_service_joins_workers() {
        let g = grid(4, 4, WeightRange::new(1, 5), 1);
        let idx = DchBaseline::build(&g);
        let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
        let service = DistanceService::start(publisher, 4);
        let ticket = service.submit(QueryBatch::OneToMany {
            source: VertexId(0),
            targets: vec![VertexId(15)],
        });
        drop(service); // Block policy: the queued batch is still answered
        let answer = ticket.wait();
        assert_eq!(
            answer.distances[0],
            dijkstra_distance(&g, VertexId(0), VertexId(15))
        );
    }

    #[test]
    fn shed_policy_rejects_above_max_depth_and_reports_it() {
        let g = grid(5, 5, WeightRange::new(1, 5), 4);
        let idx = DchBaseline::build(&g);
        let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
        let service = DistanceService::with_policy(
            publisher,
            1,
            None,
            AdmissionPolicy::Shed { max_depth: 0 },
        );
        // Depth bound 0: with the single worker parked on an empty queue,
        // the very first submission already finds the queue at its bound...
        // unless the worker pops it first. Quiesce by checking the outcome
        // kind only; determinism is covered in tests/service_concurrency.rs.
        let q = QueryBatch::PointToPoint(vec![Query::new(VertexId(0), VertexId(24))]);
        let outcome = service.try_submit(q.clone());
        match outcome {
            SubmitOutcome::Accepted(t) => {
                let _ = t.wait_result();
            }
            SubmitOutcome::Shed => {}
            SubmitOutcome::Expired => panic!("no deadline policy in force"),
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.accepted + stats.shed, 1);
        service.shutdown();
    }

    #[test]
    fn deadline_policy_expires_stale_requests_at_submit() {
        let g = grid(5, 5, WeightRange::new(1, 5), 4);
        let idx = DchBaseline::build(&g);
        let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
        let service = DistanceService::with_policy(
            publisher,
            1,
            None,
            AdmissionPolicy::Deadline {
                budget: Duration::from_millis(10),
            },
        );
        let q = QueryBatch::PointToPoint(vec![Query::new(VertexId(0), VertexId(24))]);
        // Generated 50ms ago with a 10ms budget: expired on arrival.
        let stale = Instant::now() - Duration::from_millis(50);
        assert!(matches!(
            service.try_submit_at(q.clone(), stale),
            SubmitOutcome::Expired
        ));
        // A fresh request sails through.
        let fresh = service.try_submit(q).expect_accepted();
        assert!(fresh.wait_result().answered().is_some());
        let stats = service.stats();
        assert_eq!(stats.expired_at_submit, 1);
        assert_eq!(stats.answered, 1);
        service.shutdown();
    }

    #[test]
    fn shedding_shutdown_abandons_the_backlog_and_reports_it() {
        let g = grid(5, 5, WeightRange::new(1, 5), 4);
        let idx = DchBaseline::build(&g);
        let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
        let service = DistanceService::with_policy(
            publisher,
            1,
            None,
            AdmissionPolicy::Shed { max_depth: 1000 },
        );
        let q = QueryBatch::PointToPoint(vec![Query::new(VertexId(0), VertexId(24))]);
        let tickets: Vec<BatchTicket> = (0..200)
            .filter_map(|_| service.try_submit(q.clone()).ticket())
            .collect();
        let report = service.shutdown();
        // Every ticket resolved exactly once: answered before the shutdown
        // took the queue, or abandoned by it — never dropped.
        let mut answered = 0usize;
        let mut abandoned = 0usize;
        for t in &tickets {
            match t.wait_result() {
                BatchResult::Answered(_) => answered += 1,
                BatchResult::Abandoned => abandoned += 1,
                BatchResult::Expired => panic!("no deadline policy in force"),
            }
        }
        assert_eq!(answered + abandoned, tickets.len());
        assert_eq!(report.abandoned, abandoned);
        assert_eq!(report.drained, 0);
    }

    #[test]
    fn spans_stay_balanced_under_concurrent_shed_and_expired_load() {
        use crate::telemetry::{validate_json, validate_prometheus, TelemetryHub};
        let g = grid(8, 8, WeightRange::new(1, 20), 9);
        let idx = DchBaseline::build(&g);
        let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
        let hub = Arc::new(TelemetryHub::new());

        // Concurrent submitters against one worker and a depth bound of 1:
        // many batches shed, the rest are answered — every accepted batch
        // must close its queue and execute spans exactly once.
        let shedding = DistanceService::with_telemetry(
            Arc::clone(&publisher),
            1,
            None,
            AdmissionPolicy::Shed { max_depth: 1 },
            Arc::clone(&hub),
        );
        let qs = QuerySet::random(&g, 32, 7);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let batch = QueryBatch::PointToPoint(qs.as_slice().to_vec());
                        if let SubmitOutcome::Accepted(t) = shedding.try_submit(batch) {
                            let _ = t.wait_result();
                        }
                    }
                });
            }
        });
        let shed_stats = shedding.stats();
        assert!(
            shed_stats.shed > 0,
            "the tight bound must shed under a 4-way burst"
        );
        shedding.shutdown();

        // The expired-at-submit path is deterministic: a request generated
        // well past its deadline budget is refused before it is enqueued.
        let deadline = DistanceService::with_telemetry(
            Arc::clone(&publisher),
            1,
            None,
            AdmissionPolicy::Deadline {
                budget: Duration::from_millis(5),
            },
            Arc::clone(&hub),
        );
        let q = QueryBatch::PointToPoint(vec![Query::new(VertexId(0), VertexId(63))]);
        let stale = Instant::now()
            .checked_sub(Duration::from_millis(50))
            .expect("process uptime exceeds 50ms");
        for _ in 0..8 {
            match deadline.try_submit_at(q.clone(), stale) {
                SubmitOutcome::Expired => {}
                SubmitOutcome::Accepted(t) => {
                    let _ = t.wait_result();
                }
                SubmitOutcome::Shed => panic!("no shed policy in force"),
            }
        }
        // Best-effort exercise of the expired-in-queue path: a burst of
        // fresh requests whose budget may lapse while queued.
        let pending: Vec<BatchTicket> = (0..16)
            .filter_map(|_| deadline.try_submit(q.clone()).ticket())
            .collect();
        for t in pending {
            let _ = t.wait_result();
        }
        assert!(deadline.stats().expired_at_submit > 0);
        deadline.shutdown();

        let snap = hub.snapshot();
        assert!(snap.spans_opened > 0);
        assert!(
            snap.spans_balanced(),
            "{} spans opened vs {} closed",
            snap.spans_opened,
            snap.spans_closed
        );
        validate_prometheus(&snap.prometheus).expect("valid exposition");
        validate_json(&snap.chrome_trace).expect("valid trace JSON");
    }

    #[test]
    fn telemetry_overhead_stays_within_the_five_percent_qps_budget() {
        use crate::telemetry::TelemetryHub;
        let g = grid(16, 16, WeightRange::new(1, 40), 2);
        let idx = DchBaseline::build(&g);
        let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
        let pool: Vec<Query> = QuerySet::random(&g, 64, 3).as_slice().to_vec();

        let qps = |hub: Arc<TelemetryHub>| -> f64 {
            let service = DistanceService::with_telemetry(
                Arc::clone(&publisher),
                1,
                None,
                AdmissionPolicy::Block,
                hub,
            );
            for chunk in pool.chunks(8).take(4) {
                service.answer(QueryBatch::PointToPoint(chunk.to_vec()));
            }
            let iters = 300usize;
            let start = Instant::now();
            for i in 0..iters {
                let off = (i * 8) % 56;
                let chunk = &pool[off..off + 8];
                service.answer(QueryBatch::PointToPoint(chunk.to_vec()));
            }
            let elapsed = start.elapsed().as_secs_f64();
            service.shutdown();
            (iters * 8) as f64 / elapsed
        };

        // Best-of-3 per side, with whole-comparison retries: shared CI
        // machines jitter far more than the budget being measured, so one
        // clean round is enough to show the instrumented path keeps pace.
        let mut ok = false;
        for _ in 0..5 {
            let disabled = (0..3)
                .map(|_| qps(Arc::new(TelemetryHub::disabled())))
                .fold(0.0f64, f64::max);
            let enabled = (0..3)
                .map(|_| qps(Arc::new(TelemetryHub::new())))
                .fold(0.0f64, f64::max);
            if enabled >= 0.95 * disabled {
                ok = true;
                break;
            }
        }
        assert!(
            ok,
            "telemetry overhead exceeded the 5% closed-loop QPS budget"
        );
    }
}
