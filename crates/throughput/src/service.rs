//! The batched distance-serving front-end: clients submit [`QueryBatch`]
//! requests, worker threads answer them through per-thread
//! [`QuerySession`]s pinned to the currently published snapshot.
//!
//! This is the serving architecture the paper's system model implies but
//! never spells out. A [`DistanceService`] owns `N` worker threads and a
//! FIFO queue of batches. Each worker
//!
//! 1. pops a batch from the queue,
//! 2. **pins a session**: takes the newest snapshot from the shared
//!    [`SnapshotPublisher`] and opens one [`QuerySession`] on it (one
//!    scratch checkout, held for the whole pin),
//! 3. drains batches through that session for as long as the publisher
//!    version is unchanged, and
//! 4. **re-pins** — drops the session and takes a fresh snapshot — as soon
//!    as the maintenance thread publishes a newer stage, so freshly
//!    repaired (faster) machinery is picked up within one batch.
//!
//! Workers never block on maintenance and never observe a half-repaired
//! index: those guarantees come from the snapshot contract of
//! [`htsp_graph::index_api`]. What the service adds is the *batch* shape of
//! real traffic — point-to-point bundles, one-to-many fans (one origin,
//! many candidate destinations), and full distance matrices — answered by
//! machinery that shares work across a batch instead of re-entering the
//! index per pair.
//!
//! The maintenance side stays outside the service: whoever owns the
//! [`IndexMaintainer`](htsp_graph::IndexMaintainer) keeps calling
//! `apply_batch` with the same publisher the service was started with.

use crate::cache::{CachedSession, DistanceCache};
use htsp_graph::{Dist, Query, QuerySession, SnapshotPublisher, VertexId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One client request: a bundle of distance queries answered together by a
/// single session (and therefore by a single snapshot).
#[derive(Clone, Debug)]
pub enum QueryBatch {
    /// Independent `(s, t)` pairs, answered in order.
    PointToPoint(Vec<Query>),
    /// One origin, many destinations (e.g. "nearest k depots"): answered
    /// with the view's one-to-many machinery — a single truncated forward
    /// search on Dijkstra-like views, a shared forward upward search on CH
    /// views.
    OneToMany {
        /// The common source vertex.
        source: VertexId,
        /// The destination vertices.
        targets: Vec<VertexId>,
    },
    /// A full `sources × targets` distance matrix (dispatch / assignment
    /// workloads).
    Matrix {
        /// Row vertices.
        sources: Vec<VertexId>,
        /// Column vertices.
        targets: Vec<VertexId>,
    },
}

impl QueryBatch {
    /// Number of `(s, t)` distances this batch asks for.
    pub fn num_pairs(&self) -> usize {
        match self {
            QueryBatch::PointToPoint(qs) => qs.len(),
            QueryBatch::OneToMany { targets, .. } => targets.len(),
            QueryBatch::Matrix { sources, targets } => sources.len() * targets.len(),
        }
    }
}

/// The answer to one [`QueryBatch`], tagged with the snapshot that served it.
#[derive(Clone, Debug)]
pub struct BatchAnswer {
    /// The distances, flattened in request order. For
    /// [`QueryBatch::Matrix`] the layout is row-major:
    /// `distances[i * targets.len() + j] = d(sources[i], targets[j])`.
    pub distances: Vec<Dist>,
    /// Publisher version of the snapshot that answered.
    pub snapshot_version: u64,
    /// Query stage of the snapshot that answered.
    pub stage: usize,
    /// Algorithm name of the snapshot that answered.
    pub algorithm: &'static str,
}

/// A pending [`BatchAnswer`]; returned by [`DistanceService::submit`].
///
/// A batch is **answered exactly once** by the service; the ticket caches
/// the answer on first receipt, so every subsequent wait variant — from any
/// thread, the ticket is `Sync` and can be shared by reference — yields the
/// *same* [`BatchAnswer`]. Polls before the answer lands return `None` and
/// leave the ticket usable.
pub struct BatchTicket {
    rx: Mutex<mpsc::Receiver<BatchAnswer>>,
    answer: Mutex<Option<BatchAnswer>>,
}

impl BatchTicket {
    fn new(rx: mpsc::Receiver<BatchAnswer>) -> Self {
        BatchTicket {
            rx: Mutex::new(rx),
            answer: Mutex::new(None),
        }
    }

    fn cached(&self) -> Option<BatchAnswer> {
        self.answer.lock().expect("ticket answer poisoned").clone()
    }

    fn store(&self, answer: BatchAnswer) -> BatchAnswer {
        *self.answer.lock().expect("ticket answer poisoned") = Some(answer.clone());
        answer
    }

    /// Blocks until the batch is answered (returns immediately once the
    /// answer was ever received).
    ///
    /// # Panics
    ///
    /// Panics if the service shut down before answering (dropped mid-batch).
    pub fn wait(self) -> BatchAnswer {
        if let Some(answer) = self.cached() {
            return answer;
        }
        self.rx
            .into_inner()
            .expect("ticket receiver poisoned")
            .recv()
            .expect("distance service dropped the batch")
    }

    /// Non-blocking poll: the answer if it is (or ever was) in, `None`
    /// otherwise — the ticket stays usable either way, so callers can poll
    /// in a loop, and an already-answered ticket keeps returning the same
    /// answer. Genuinely non-blocking even when the ticket is shared: if
    /// another thread currently holds the receiver (a `wait_timeout` in
    /// progress), the answer is simply not cached yet and this returns
    /// `None` instead of waiting for that thread.
    ///
    /// # Panics
    ///
    /// Panics if the service shut down before answering (dropped mid-batch).
    pub fn try_wait(&self) -> Option<BatchAnswer> {
        if let Some(answer) = self.cached() {
            return Some(answer);
        }
        let rx = match self.rx.try_lock() {
            Ok(rx) => rx,
            Err(std::sync::TryLockError::WouldBlock) => return None,
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("ticket receiver poisoned"),
        };
        if let Some(answer) = self.cached() {
            return Some(answer);
        }
        match rx.try_recv() {
            Ok(answer) => Some(self.store(answer)),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                panic!("distance service dropped the batch")
            }
        }
    }

    /// Blocks for at most `timeout`; `None` means the batch was still
    /// unanswered when the timeout expired (the ticket stays usable). Once
    /// answered, every further call returns that same answer.
    ///
    /// Concurrent `wait_timeout` callers on one shared ticket serialize on
    /// the receiver: a caller may first wait out the receive of the caller
    /// in front of it (worst case ~2× `timeout` with two callers) — the
    /// answer whoever receives first caches is returned to everyone.
    ///
    /// # Panics
    ///
    /// Panics if the service shut down before answering (dropped mid-batch).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<BatchAnswer> {
        if let Some(answer) = self.cached() {
            return Some(answer);
        }
        let rx = self.rx.lock().expect("ticket receiver poisoned");
        // Re-check: the lock holder in front of us may have cached it.
        if let Some(answer) = self.cached() {
            return Some(answer);
        }
        match rx.recv_timeout(timeout) {
            Ok(answer) => Some(self.store(answer)),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                panic!("distance service dropped the batch")
            }
        }
    }
}

struct Job {
    batch: QueryBatch,
    reply: mpsc::Sender<BatchAnswer>,
}

struct Shared {
    publisher: Arc<SnapshotPublisher>,
    /// Snapshot-versioned result cache consulted before every search (see
    /// [`crate::cache`]); `None` serves every query through the session.
    cache: Option<Arc<DistanceCache>>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Blocks until a job is available or shutdown is flagged.
    fn pop_blocking(&self) -> Option<Job> {
        let mut queue = self.queue.lock().expect("service queue poisoned");
        loop {
            if let Some(job) = queue.pop_front() {
                return Some(job);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            queue = self.available.wait(queue).expect("service queue poisoned");
        }
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue
            .lock()
            .expect("service queue poisoned")
            .pop_front()
    }
}

/// Answers `job` through `session`, which is pinned to (`version`, `stage`,
/// `algorithm`) of the snapshot it was opened on.
fn answer(
    session: &mut dyn QuerySession,
    version: u64,
    stage: usize,
    algorithm: &'static str,
    batch: &QueryBatch,
) -> BatchAnswer {
    let distances = match batch {
        QueryBatch::PointToPoint(qs) => qs.iter().map(|q| session.query(q)).collect(),
        QueryBatch::OneToMany { source, targets } => session.one_to_many(*source, targets),
        QueryBatch::Matrix { sources, targets } => session
            .matrix(sources, targets)
            .into_iter()
            .flatten()
            .collect(),
    };
    BatchAnswer {
        distances,
        snapshot_version: version,
        stage,
        algorithm,
    }
}

fn worker_loop(shared: &Shared) {
    // A job carried over from the previous pin because the publisher
    // version advanced mid-drain.
    let mut carried: Option<Job> = None;
    loop {
        let job = match carried.take().or_else(|| shared.pop_blocking()) {
            Some(job) => job,
            None => return, // shutdown with an empty queue
        };
        // Pin: newest snapshot, one session, scratch checked out once. The
        // (version, view) pair is read atomically so a concurrent publish
        // cannot tag the old view with the new version (which would both
        // mislabel answers and suppress the re-pin below). With a result
        // cache, the session is wrapped so repeated pairs skip the search;
        // the wrapper carries the pinned version, so a cached answer can
        // never cross a publication boundary.
        let (pinned_version, view) = shared.publisher.versioned_snapshot();
        let mut session: Box<dyn QuerySession + '_> = match &shared.cache {
            Some(cache) => Box::new(CachedSession::new(view.session(), cache, pinned_version)),
            None => view.session(),
        };
        let stage = view.stage();
        let algorithm = view.algorithm();

        let mut job = job;
        loop {
            let reply = answer(&mut *session, pinned_version, stage, algorithm, &job.batch);
            // A closed receiver just means the client lost interest.
            let _ = job.reply.send(reply);
            match shared.try_pop() {
                // Keep draining on the same session while the snapshot is
                // still the newest one.
                Some(next) if shared.publisher.version() == pinned_version => job = next,
                // A newer stage was published: re-pin before answering.
                Some(next) => {
                    carried = Some(next);
                    break;
                }
                // Queue drained: drop the session (and its snapshot pin) so
                // the maintainer can reclaim the COW memory, then park.
                None => break,
            }
        }
    }
}

/// A multi-threaded, batch-oriented shortest-distance serving front-end.
///
/// See the [module docs](self) for the worker/pinning architecture. Dropping
/// the service shuts it down: queued batches are still answered, then the
/// workers exit and are joined.
pub struct DistanceService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl DistanceService {
    /// Starts `num_workers` serving threads against `publisher`'s snapshots.
    pub fn start(publisher: Arc<SnapshotPublisher>, num_workers: usize) -> Self {
        DistanceService::with_cache(publisher, num_workers, None)
    }

    /// Like [`DistanceService::start`], but the workers consult `cache`
    /// before every search (and feed it after), through a
    /// [`CachedSession`] pinned to each worker's snapshot version.
    pub fn with_cache(
        publisher: Arc<SnapshotPublisher>,
        num_workers: usize,
        cache: Option<Arc<DistanceCache>>,
    ) -> Self {
        let shared = Arc::new(Shared {
            publisher,
            cache,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..num_workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("htsp-distance-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn distance worker")
            })
            .collect();
        DistanceService { shared, workers }
    }

    /// Enqueues a batch; the returned ticket yields the [`BatchAnswer`].
    pub fn submit(&self, batch: QueryBatch) -> BatchTicket {
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("service queue poisoned");
            queue.push_back(Job { batch, reply: tx });
        }
        self.shared.available.notify_one();
        BatchTicket::new(rx)
    }

    /// Convenience: submits and waits in one call.
    pub fn answer(&self, batch: QueryBatch) -> BatchAnswer {
        self.submit(batch).wait()
    }

    /// The publisher this service serves from (hand it to the maintainer).
    pub fn publisher(&self) -> &Arc<SnapshotPublisher> {
        &self.shared.publisher
    }

    /// Number of serving threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Flags shutdown, drains the queue, and joins the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for DistanceService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for DistanceService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistanceService")
            .field("num_workers", &self.workers.len())
            .field("publisher_version", &self.shared.publisher.version())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_baselines::DchBaseline;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::{IndexMaintainer, QuerySet, UpdateGenerator};
    use htsp_search::dijkstra_distance;

    #[test]
    fn service_answers_all_batch_shapes_exactly() {
        let g = grid(9, 9, WeightRange::new(1, 20), 5);
        let idx = DchBaseline::build(&g);
        let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
        let service = DistanceService::start(Arc::clone(&publisher), 3);

        let qs = QuerySet::random(&g, 30, 7);
        let p2p = service.answer(QueryBatch::PointToPoint(qs.as_slice().to_vec()));
        assert_eq!(p2p.algorithm, "DCH");
        assert_eq!(p2p.distances.len(), 30);
        for (q, &d) in qs.iter().zip(&p2p.distances) {
            assert_eq!(d, dijkstra_distance(&g, q.source, q.target));
        }

        let targets: Vec<VertexId> = (0..20).map(|i| VertexId(i * 4)).collect();
        let fan = service.answer(QueryBatch::OneToMany {
            source: VertexId(40),
            targets: targets.clone(),
        });
        for (i, &t) in targets.iter().enumerate() {
            assert_eq!(fan.distances[i], dijkstra_distance(&g, VertexId(40), t));
        }

        let sources = vec![VertexId(0), VertexId(13), VertexId(80)];
        let m = service.answer(QueryBatch::Matrix {
            sources: sources.clone(),
            targets: targets.clone(),
        });
        assert_eq!(m.distances.len(), sources.len() * targets.len());
        for (i, &s) in sources.iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                assert_eq!(
                    m.distances[i * targets.len() + j],
                    dijkstra_distance(&g, s, t),
                    "matrix({s}, {t}) diverged"
                );
            }
        }
        service.shutdown();
    }

    #[test]
    fn workers_repin_when_a_new_snapshot_is_published() {
        let mut g = grid(8, 8, WeightRange::new(5, 30), 9);
        let mut idx = DchBaseline::build(&g);
        let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
        let service = DistanceService::start(Arc::clone(&publisher), 2);

        let qs = QuerySet::random(&g, 10, 3);
        let before = service.answer(QueryBatch::PointToPoint(qs.as_slice().to_vec()));
        assert_eq!(before.snapshot_version, 0);

        // Maintenance publishes a new snapshot through the same publisher.
        let mut gen = UpdateGenerator::new(11);
        let batch = gen.generate(&g, 20);
        g.apply_batch(&batch);
        idx.apply_batch(&g, &batch, &publisher);
        assert!(publisher.version() >= 1);

        let after = service.answer(QueryBatch::PointToPoint(qs.as_slice().to_vec()));
        assert_eq!(after.snapshot_version, publisher.version());
        for (q, &d) in qs.iter().zip(&after.distances) {
            assert_eq!(d, dijkstra_distance(&g, q.source, q.target));
        }
        // The pre-update answers were exact on the *old* graph — snapshot
        // isolation end to end.
        drop(service);
    }

    #[test]
    fn tickets_poll_and_time_out_without_being_consumed() {
        let g = grid(5, 5, WeightRange::new(1, 5), 2);
        let idx = DchBaseline::build(&g);
        let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
        let service = DistanceService::start(publisher, 1);
        let ticket = service.submit(QueryBatch::PointToPoint(vec![Query::new(
            VertexId(0),
            VertexId(24),
        )]));
        // Poll until the answer lands; the ticket survives misses.
        let answer = loop {
            if let Some(a) = ticket.try_wait() {
                break a;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(
            answer.distances[0],
            dijkstra_distance(&g, VertexId(0), VertexId(24))
        );
        // An answered ticket caches: every further wait variant returns the
        // same answer instead of blocking or coming back empty.
        let again = service.submit(QueryBatch::PointToPoint(vec![Query::new(
            VertexId(1),
            VertexId(2),
        )]));
        let first = again
            .wait_timeout(Duration::from_secs(5))
            .expect("batch unanswered");
        let second = again
            .wait_timeout(Duration::from_millis(1))
            .expect("answered ticket must keep its answer");
        assert_eq!(first.distances, second.distances);
        assert_eq!(first.snapshot_version, second.snapshot_version);
        assert_eq!(again.try_wait().expect("cached").distances, first.distances);
        assert_eq!(again.wait().distances, first.distances);
        service.shutdown();
    }

    #[test]
    fn cached_workers_answer_repeats_from_the_cache_without_staleness() {
        use crate::config::CacheConfig;
        let mut g = grid(8, 8, WeightRange::new(2, 25), 3);
        let mut idx = DchBaseline::build(&g);
        let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
        let cache = Arc::new(DistanceCache::new(CacheConfig::with_capacity(256)));
        let service =
            DistanceService::with_cache(Arc::clone(&publisher), 1, Some(Arc::clone(&cache)));

        let qs = QuerySet::random(&g, 8, 11);
        let batch = QueryBatch::PointToPoint(qs.as_slice().to_vec());
        let first = service.answer(batch.clone());
        let second = service.answer(batch.clone());
        assert_eq!(first.distances, second.distances);
        assert!(
            cache.stats().hits >= qs.len() as u64,
            "the repeated batch must be served from the cache"
        );

        // A publication invalidates: the same pairs are recomputed on the
        // new snapshot, never served from version-0 entries.
        let mut gen = UpdateGenerator::new(5);
        let update = gen.generate(&g, 15);
        g.apply_batch(&update);
        idx.apply_batch(&g, &update, &publisher);
        cache.bump_epoch(publisher.version());
        let after = service.answer(batch);
        assert_eq!(after.snapshot_version, publisher.version());
        for (q, &d) in qs.iter().zip(&after.distances) {
            assert_eq!(
                d,
                dijkstra_distance(&g, q.source, q.target),
                "stale cached answer crossed the publication"
            );
        }
        assert!(cache.stats().stale_misses > 0);
        service.shutdown();
    }

    #[test]
    fn dropping_the_service_joins_workers() {
        let g = grid(4, 4, WeightRange::new(1, 5), 1);
        let idx = DchBaseline::build(&g);
        let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
        let service = DistanceService::start(publisher, 4);
        let ticket = service.submit(QueryBatch::OneToMany {
            source: VertexId(0),
            targets: vec![VertexId(15)],
        });
        drop(service); // shuts down; the queued batch is still answered
        let answer = ticket.wait();
        assert_eq!(
            answer.distances[0],
            dijkstra_distance(&g, VertexId(0), VertexId(15))
        );
    }
}
