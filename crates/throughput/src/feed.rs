//! The write half of the server facade: asynchronous update ingestion with
//! read-your-writes visibility tickets.
//!
//! Applications do not hand the index pre-formed [`UpdateBatch`]es — they see
//! a *stream* of edge-weight changes (every probe vehicle, every incident
//! report) and want each change acknowledged once queries can observe it.
//! [`UpdateFeed::submit`] enqueues one [`EdgeUpdate`] and returns an
//! [`UpdateTicket`]; a maintenance thread coalesces pending updates into
//! [`UpdateBatch`]es under a [`CoalescePolicy`] (flush at `max_batch`
//! updates, or once the oldest pending update is `max_delay` old — the Δt of
//! Lemma 1), applies each batch stage-by-stage through the owning
//! [`IndexMaintainer`], and resolves the tickets.
//!
//! A ticket exposes the two moments a writer cares about:
//!
//! * [`UpdateTicket::wait_visible`] — blocks until the *first* snapshot
//!   containing the update is published (U-Stage 1 installs the new weights,
//!   so the first staged publication of the batch already answers on them)
//!   and reports the submit-to-visible latency. This is read-your-writes:
//!   after it returns, [`SnapshotPublisher::snapshot`] reflects the update.
//!   It rides on [`SnapshotPublisher::wait_for_version`], not polling.
//! * [`UpdateTicket::wait_applied`] — blocks until the whole staged repair
//!   finished and yields the [`UpdateOutcome`]: publish versions, the
//!   [`UpdateTimeline`], and the [`CowStats`] snapshot-isolation price.
//!
//! The feed never blocks queries: readers keep draining published snapshots
//! while the maintenance thread repairs, exactly as before — the feed only
//! moves the *submission* side off the caller's thread.

use crate::telemetry::{Counter, Gauge, Histogram, TelemetryHub};
use htsp_graph::cow::CowStats;
use htsp_graph::{
    EdgeUpdate, Graph, IndexMaintainer, PublishEvent, SnapshotPublisher, TraceId, UpdateBatch,
    UpdateTimeline,
};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// When the maintenance thread turns pending updates into a batch.
///
/// The `max_delay` knob *is* the update interval Δt of the paper's system
/// model: with a saturated feed the maintainer receives one batch per
/// `max_delay`, which is the `δt` that enters
/// [`lemma1_bound`](crate::lemma1_bound) — a larger Δt amortises repair cost
/// over more updates (higher sustained QPS head-room) at the price of staler
/// answers, exactly the trade-off Lemma 1 formalises. `max_batch` bounds the
/// update volume `|U|` per batch regardless of timing.
#[derive(Clone, Copy, Debug)]
pub struct CoalescePolicy {
    /// Flush as soon as this many updates are pending.
    pub max_batch: usize,
    /// Flush once the oldest pending update has waited this long (Δt).
    pub max_delay: Duration,
}

impl CoalescePolicy {
    /// Flush on whichever of `max_batch` / `max_delay` trips first.
    pub fn new(max_batch: usize, max_delay: Duration) -> Self {
        CoalescePolicy {
            max_batch: max_batch.max(1),
            max_delay,
        }
    }

    /// Purely size-triggered coalescing (the delay never trips).
    pub fn by_size(max_batch: usize) -> Self {
        CoalescePolicy::new(max_batch, Duration::from_secs(u64::MAX / 4))
    }

    /// Manual batching: nothing auto-flushes; batches form only at explicit
    /// [`UpdateFeed::flush`] boundaries. The policy the measurement
    /// harnesses use so every round is exactly one batch.
    pub fn manual() -> Self {
        CoalescePolicy::by_size(usize::MAX)
    }

    /// Purely delay-triggered coalescing: one batch per Δt, like the paper's
    /// periodic update interval.
    pub fn by_delay(max_delay: Duration) -> Self {
        CoalescePolicy::new(usize::MAX, max_delay)
    }

    /// The paper's Table II defaults: `|U| = 1000` per batch, `δt = 120 s`.
    pub fn paper_default() -> Self {
        CoalescePolicy::new(1000, Duration::from_secs(120))
    }
}

impl Default for CoalescePolicy {
    /// A serving-friendly laptop default: small batches, tight Δt.
    fn default() -> Self {
        CoalescePolicy::new(256, Duration::from_millis(100))
    }
}

/// Where one submitted update currently is in the ingest pipeline.
#[derive(Clone)]
enum TicketPhase {
    /// Queued in the feed, not yet part of a batch.
    Pending,
    /// Part of batch `seq`; the batch's first publication will be
    /// `first_version`. The repair is running.
    Flushed { first_version: u64, seq: u64 },
    /// The batch's staged repair completed.
    Resolved(Arc<UpdateOutcome>),
    /// The feed shut down (or its maintenance thread panicked) before the
    /// batch completed.
    Failed(&'static str),
}

struct TicketCell {
    phase: Mutex<TicketPhase>,
    advanced: Condvar,
}

impl TicketCell {
    fn new() -> Arc<Self> {
        Arc::new(TicketCell {
            phase: Mutex::new(TicketPhase::Pending),
            advanced: Condvar::new(),
        })
    }

    fn advance(&self, phase: TicketPhase) {
        *self.phase.lock().expect("ticket poisoned") = phase;
        self.advanced.notify_all();
    }
}

/// The result of one coalesced batch, shared by every ticket in the batch.
#[derive(Clone, Debug)]
pub struct UpdateOutcome {
    /// Sequence number of the coalesced batch (1-based, per feed); also the
    /// [`PublishEvent::batch`](htsp_graph::PublishEvent::batch) tag of every
    /// publication the repair produced.
    pub batch_seq: u64,
    /// Number of edge updates coalesced into the batch.
    pub batch_len: usize,
    /// Publisher version of the batch's *first* staged publication — the
    /// version at which the update became visible to queries.
    pub first_version: u64,
    /// Publisher version after the final stage published.
    pub final_version: u64,
    /// Instant the maintainer started the repair.
    pub apply_start: Instant,
    /// The staged repair timeline (`t_u` = `timeline.total()`).
    pub timeline: UpdateTimeline,
    /// Copy-on-write chunks/bytes cloned across all stages of this repair.
    pub cow: CowStats,
}

/// Where and when a submitted update became visible to queries.
#[derive(Clone, Copy, Debug)]
pub struct Visibility {
    /// The publisher version whose snapshot first contained the update.
    pub version: u64,
    /// Sequence number of the coalesced batch the update rode in.
    pub batch_seq: u64,
    /// Submit-to-visible latency: coalescing delay + U-Stage 1 repair time.
    pub latency: Duration,
}

/// A pending acknowledgement for one submitted [`EdgeUpdate`].
///
/// Obtained from [`UpdateFeed::submit`]; see the [module docs](self) for the
/// `wait_visible` / `wait_applied` contract. Dropping a ticket is fine — the
/// update is applied regardless.
pub struct UpdateTicket {
    cell: Arc<TicketCell>,
    publisher: Arc<SnapshotPublisher>,
    submitted_at: Instant,
}

impl UpdateTicket {
    /// Blocks until the first snapshot containing this update is published
    /// and returns where/when it became visible.
    ///
    /// After this returns, [`SnapshotPublisher::snapshot`] (and therefore
    /// every newly opened session) answers on a graph that includes the
    /// update — read-your-writes.
    ///
    /// # Panics
    ///
    /// Panics if the feed shut down before the update's batch was applied.
    pub fn wait_visible(&self) -> Visibility {
        let (first_version, seq) = self.wait_flushed();
        self.publisher.wait_for_version(first_version);
        Visibility {
            version: first_version,
            batch_seq: seq,
            latency: self.submitted_at.elapsed(),
        }
    }

    /// Blocks until the whole staged repair of this update's batch finished
    /// and returns the shared [`UpdateOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if the feed shut down before the update's batch was applied.
    pub fn wait_applied(&self) -> Arc<UpdateOutcome> {
        let mut phase = self.cell.phase.lock().expect("ticket poisoned");
        loop {
            match &*phase {
                TicketPhase::Resolved(outcome) => return Arc::clone(outcome),
                TicketPhase::Failed(why) => panic!("update ticket failed: {why}"),
                _ => phase = self.cell.advanced.wait(phase).expect("ticket poisoned"),
            }
        }
    }

    /// Non-blocking probe: the outcome if the batch already completed.
    pub fn try_outcome(&self) -> Option<Arc<UpdateOutcome>> {
        match &*self.cell.phase.lock().expect("ticket poisoned") {
            TicketPhase::Resolved(outcome) => Some(Arc::clone(outcome)),
            _ => None,
        }
    }

    /// When the update was submitted.
    pub fn submitted_at(&self) -> Instant {
        self.submitted_at
    }

    /// Blocks until the update was coalesced into a batch and the repair
    /// started; returns `(first_version, batch_seq)`.
    fn wait_flushed(&self) -> (u64, u64) {
        let mut phase = self.cell.phase.lock().expect("ticket poisoned");
        loop {
            match &*phase {
                TicketPhase::Flushed { first_version, seq } => return (*first_version, *seq),
                TicketPhase::Resolved(outcome) => {
                    return (outcome.first_version, outcome.batch_seq)
                }
                TicketPhase::Failed(why) => panic!("update ticket failed: {why}"),
                TicketPhase::Pending => {
                    phase = self.cell.advanced.wait(phase).expect("ticket poisoned")
                }
            }
        }
    }
}

impl std::fmt::Debug for UpdateTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdateTicket")
            .field("submitted_at", &self.submitted_at)
            .finish()
    }
}

/// Cumulative ingest counters of one feed.
#[derive(Clone, Copy, Debug, Default)]
pub struct FeedStats {
    /// Updates submitted so far.
    pub submitted: u64,
    /// Coalesced batches applied so far (including forced empty ones).
    pub batches_applied: u64,
    /// Updates carried by those batches.
    pub updates_applied: u64,
}

struct PendingEntry {
    /// `None` marks a barrier entry from [`UpdateFeed::flush`]: it forces a
    /// batch boundary but contributes no edge update.
    update: Option<EdgeUpdate>,
    cell: Arc<TicketCell>,
    submitted_at: Instant,
    /// Trace id minted at submission (barrier entries carry
    /// [`TraceId::NONE`]); every span of this update's trip through
    /// coalescing, repair, and publication carries it.
    trace: TraceId,
}

/// The feed's registered metric handles; [`FeedStats`] reads from these.
struct FeedMetrics {
    submitted: Counter,
    batches_applied: Counter,
    updates_applied: Counter,
    publishes: Counter,
    cow_chunks: Counter,
    cow_bytes: Counter,
    version: Gauge,
    coalesce_wait: Histogram,
    apply: Histogram,
}

impl FeedMetrics {
    fn register(hub: &TelemetryHub) -> Self {
        FeedMetrics {
            submitted: hub.counter("htsp_ingest_submitted_total"),
            batches_applied: hub.counter("htsp_ingest_batches_total"),
            updates_applied: hub.counter("htsp_ingest_updates_applied_total"),
            publishes: hub.counter("htsp_publish_total"),
            cow_chunks: hub.counter("htsp_publish_cow_chunks_total"),
            cow_bytes: hub.counter("htsp_publish_cow_bytes_total"),
            version: hub.gauge("htsp_publish_version"),
            coalesce_wait: hub.histogram("htsp_ingest_coalesce_seconds"),
            apply: hub.histogram("htsp_ingest_apply_seconds"),
        }
    }
}

/// A job executed on the maintenance thread between batches, with exclusive
/// access to the maintainer.
type IndexJob = Box<dyn FnOnce(&mut dyn IndexMaintainer) + Send>;

struct FeedState {
    pending: Vec<PendingEntry>,
    /// Submission instant of the oldest pending *real* update.
    oldest: Option<Instant>,
    /// A barrier entry is pending: flush now, even if the batch is empty.
    barrier: bool,
    shutdown: bool,
    jobs: VecDeque<IndexJob>,
    /// The maintenance thread is between draining and resolving a batch.
    applying: bool,
}

struct FeedShared {
    publisher: Arc<SnapshotPublisher>,
    graph: Arc<RwLock<Graph>>,
    state: Mutex<FeedState>,
    /// Wakes the maintenance thread (new work / shutdown).
    wake: Condvar,
    /// Wakes `flush()` waiters (queue drained and batch resolved).
    drained: Condvar,
    hub: Arc<TelemetryHub>,
    metrics: FeedMetrics,
}

/// The ingestion handle of a [`RoadNetworkServer`](crate::RoadNetworkServer):
/// clonable, thread-safe, submit-only.
#[derive(Clone)]
pub struct UpdateFeed {
    shared: Arc<FeedShared>,
}

impl UpdateFeed {
    /// Enqueues one edge-weight update; the returned ticket resolves when
    /// the update's coalesced batch is (first visible, then fully) applied.
    pub fn submit(&self, update: EdgeUpdate) -> UpdateTicket {
        let cell = TicketCell::new();
        let submitted_at = Instant::now();
        let trace = TraceId::next();
        {
            let mut state = self.shared.state.lock().expect("feed poisoned");
            if state.shutdown {
                cell.advance(TicketPhase::Failed("feed is shut down"));
            } else {
                self.shared.metrics.submitted.inc();
                self.shared
                    .hub
                    .record_event(trace, "update", "submit", submitted_at);
                state.oldest.get_or_insert(submitted_at);
                state.pending.push(PendingEntry {
                    update: Some(update),
                    cell: Arc::clone(&cell),
                    submitted_at,
                    trace,
                });
            }
        }
        self.shared.wake.notify_all();
        UpdateTicket {
            cell,
            publisher: Arc::clone(&self.shared.publisher),
            submitted_at,
        }
    }

    /// Submits every update of an iterator; tickets come back in order.
    pub fn submit_all(&self, updates: impl IntoIterator<Item = EdgeUpdate>) -> Vec<UpdateTicket> {
        updates.into_iter().map(|u| self.submit(u)).collect()
    }

    /// Forces a batch boundary *now*: everything pending is coalesced and
    /// applied immediately, without waiting for the [`CoalescePolicy`] to
    /// trip. The returned ticket resolves when that batch's repair
    /// completes.
    ///
    /// Unlike the policy-triggered path, a forced flush applies even an
    /// *empty* batch (the maintainer republishes its final stage), which is
    /// what the measurement harnesses use to replay serving-only rounds.
    pub fn flush(&self) -> UpdateTicket {
        let cell = TicketCell::new();
        let submitted_at = Instant::now();
        {
            let mut state = self.shared.state.lock().expect("feed poisoned");
            if state.shutdown {
                cell.advance(TicketPhase::Failed("feed is shut down"));
            } else {
                state.barrier = true;
                state.pending.push(PendingEntry {
                    update: None,
                    cell: Arc::clone(&cell),
                    submitted_at,
                    trace: TraceId::NONE,
                });
            }
        }
        self.shared.wake.notify_all();
        UpdateTicket {
            cell,
            publisher: Arc::clone(&self.shared.publisher),
            submitted_at,
        }
    }

    /// Blocks until the feed has nothing pending and no batch mid-repair.
    pub fn wait_idle(&self) {
        let mut state = self.shared.state.lock().expect("feed poisoned");
        while !state.pending.is_empty() || state.applying || !state.jobs.is_empty() {
            state = self.shared.drained.wait(state).expect("feed poisoned");
        }
    }

    /// Number of updates waiting to be coalesced.
    pub fn pending_len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("feed poisoned")
            .pending
            .iter()
            .filter(|e| e.update.is_some())
            .count()
    }

    /// Cumulative ingest counters, read from the telemetry registry (the
    /// same series the Prometheus export renders).
    pub fn stats(&self) -> FeedStats {
        FeedStats {
            submitted: self.shared.metrics.submitted.get(),
            batches_applied: self.shared.metrics.batches_applied.get(),
            updates_applied: self.shared.metrics.updates_applied.get(),
        }
    }

    /// The telemetry hub this feed records into.
    pub fn telemetry(&self) -> &Arc<TelemetryHub> {
        &self.shared.hub
    }

    /// Enqueues a job that runs on the maintenance thread with exclusive
    /// access to the maintainer (between batches, never mid-repair).
    pub(crate) fn enqueue_job(&self, job: IndexJob) {
        {
            let mut state = self.shared.state.lock().expect("feed poisoned");
            assert!(!state.shutdown, "feed is shut down");
            state.jobs.push_back(job);
        }
        self.shared.wake.notify_all();
    }

    /// Flags shutdown and wakes the maintenance thread. Pending updates are
    /// still coalesced and applied before the thread exits.
    pub(crate) fn begin_shutdown(&self) {
        self.shared.state.lock().expect("feed poisoned").shutdown = true;
        self.shared.wake.notify_all();
    }

    pub(crate) fn new(
        publisher: Arc<SnapshotPublisher>,
        graph: Arc<RwLock<Graph>>,
        hub: Arc<TelemetryHub>,
    ) -> Self {
        let metrics = FeedMetrics::register(&hub);
        UpdateFeed {
            shared: Arc::new(FeedShared {
                publisher,
                graph,
                state: Mutex::new(FeedState {
                    pending: Vec::new(),
                    oldest: None,
                    barrier: false,
                    shutdown: false,
                    jobs: VecDeque::new(),
                    applying: false,
                }),
                wake: Condvar::new(),
                drained: Condvar::new(),
                hub,
                metrics,
            }),
        }
    }

    /// The maintenance loop: coalesce → apply → resolve, until shutdown.
    /// Runs on the server's maintenance thread and owns the maintainer.
    pub(crate) fn run_maintenance(
        &self,
        mut maintainer: Box<dyn IndexMaintainer>,
        policy: CoalescePolicy,
    ) -> Box<dyn IndexMaintainer> {
        let shared = &*self.shared;
        let mut batch_seq = 0u64;
        // Capture each publication so per-update publish/visible spans can
        // be attributed after the repair returns: publish hooks run
        // synchronously on this thread inside `apply_batch`, so once it
        // returns, every publication of the batch has been captured. The
        // same hook drives the publish counters/gauge, so publications are
        // counted exactly once no matter how many feeds or services share
        // the hub.
        let captured: Arc<Mutex<Vec<PublishEvent>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let captured = Arc::clone(&captured);
            let hub = Arc::clone(&shared.hub);
            let publishes = shared.metrics.publishes.clone();
            let cow_chunks = shared.metrics.cow_chunks.clone();
            let cow_bytes = shared.metrics.cow_bytes.clone();
            let version = shared.metrics.version.clone();
            shared.publisher.on_publish(move |ev: &PublishEvent| {
                publishes.inc();
                cow_chunks.add(ev.cow.chunks_cloned);
                cow_bytes.add(ev.cow.bytes_cloned);
                version.set(ev.version);
                hub.record_event(TraceId::NONE, "update", "publish", ev.at);
                captured.lock().expect("publish capture poisoned").push(*ev);
            });
        }
        loop {
            // Phase 1 under the state lock: run jobs, decide whether to
            // flush, or sleep until something changes.
            let drained: Vec<PendingEntry> = {
                let mut state = shared.state.lock().expect("feed poisoned");
                loop {
                    if let Some(job) = state.jobs.pop_front() {
                        // Jobs get the maintainer outside the lock so
                        // submitters are never blocked on index work.
                        drop(state);
                        job(maintainer.as_mut());
                        shared.drained.notify_all();
                        state = shared.state.lock().expect("feed poisoned");
                        continue;
                    }
                    let pending_updates =
                        state.pending.iter().filter(|e| e.update.is_some()).count();
                    let deadline = state.oldest.map(|t| t + policy.max_delay);
                    let flush_now = state.barrier
                        || (state.shutdown && !state.pending.is_empty())
                        || pending_updates >= policy.max_batch
                        || deadline.is_some_and(|d| Instant::now() >= d);
                    if flush_now {
                        state.applying = true;
                        // A barrier (or shutdown) is an explicit batch
                        // boundary: everything pending goes into one batch.
                        // Policy-triggered flushes respect `max_batch` as a
                        // hard cap on |U|; the overflow stays queued (and
                        // immediately re-trips the size trigger).
                        let flush_all = state.barrier || state.shutdown;
                        state.barrier = false;
                        let drained = if flush_all || state.pending.len() <= policy.max_batch {
                            state.oldest = None;
                            std::mem::take(&mut state.pending)
                        } else {
                            let rest = state.pending.split_off(policy.max_batch);
                            let head = std::mem::replace(&mut state.pending, rest);
                            state.oldest = state.pending.first().map(|e| e.submitted_at);
                            head
                        };
                        break drained;
                    }
                    if state.shutdown {
                        // Nothing pending and no jobs: exit.
                        return maintainer;
                    }
                    state = match deadline {
                        Some(d) => {
                            let now = Instant::now();
                            let timeout = d.saturating_duration_since(now);
                            shared
                                .wake
                                .wait_timeout(state, timeout)
                                .expect("feed poisoned")
                                .0
                        }
                        None => shared.wake.wait(state).expect("feed poisoned"),
                    };
                }
            };

            // Phase 2, lock released: build and apply the batch. Submitters
            // keep enqueuing into the next batch meanwhile.
            batch_seq += 1;
            let drained_at = Instant::now();
            for entry in &drained {
                if entry.trace.is_real() {
                    shared
                        .metrics
                        .coalesce_wait
                        .record(drained_at.saturating_duration_since(entry.submitted_at));
                    shared.hub.record_span(
                        entry.trace,
                        "update",
                        "coalesce",
                        entry.submitted_at,
                        drained_at,
                    );
                }
            }
            let batch =
                UpdateBatch::from_updates(drained.iter().filter_map(|e| e.update).collect());
            let version_before = shared.publisher.version();
            let first_version = version_before + 1;
            for entry in &drained {
                entry.cell.advance(TicketPhase::Flushed {
                    first_version,
                    seq: batch_seq,
                });
            }
            // Install the new weights in the server's graph (brief write
            // lock), then repair under a read lock so `with_graph` readers
            // are only ever blocked by the weight installation itself.
            {
                let mut graph = shared.graph.write().expect("server graph poisoned");
                graph.apply_batch(&batch);
            }
            shared.publisher.set_batch_tag(batch_seq);
            let graph = shared.graph.read().expect("server graph poisoned");
            let apply_start = Instant::now();
            let timeline = maintainer.apply_batch(&graph, &batch, &shared.publisher);
            drop(graph);
            self.record_batch_telemetry(&drained, &timeline, apply_start, first_version, &captured);
            let outcome = Arc::new(UpdateOutcome {
                batch_seq,
                batch_len: batch.len(),
                first_version,
                final_version: shared.publisher.version(),
                apply_start,
                timeline,
                cow: shared.publisher.cow_since(version_before),
            });
            // Stats before ticket resolution: a caller waking from
            // `wait_applied` must already see this batch counted.
            shared.metrics.batches_applied.inc();
            shared.metrics.updates_applied.add(batch.len() as u64);
            {
                let mut state = shared.state.lock().expect("feed poisoned");
                state.applying = false;
            }
            for entry in &drained {
                entry
                    .cell
                    .advance(TicketPhase::Resolved(Arc::clone(&outcome)));
            }
            shared.drained.notify_all();
        }
    }

    /// Records the per-batch repair telemetry: the apply-time histogram,
    /// one `htsp_stage_seconds{stage=...}` sample and one stage span per
    /// maintainer stage (stage spans are batch-scoped; they carry the trace
    /// of the batch's *first* update as the representative, so that update
    /// is reconstructable end-to-end by trace id), plus the per-update
    /// publish/visible spans against the first publication containing the
    /// batch.
    fn record_batch_telemetry(
        &self,
        drained: &[PendingEntry],
        timeline: &UpdateTimeline,
        apply_start: Instant,
        first_version: u64,
        captured: &Mutex<Vec<PublishEvent>>,
    ) {
        let shared = &*self.shared;
        shared.metrics.apply.record(timeline.total());
        let rep = drained
            .iter()
            .find(|e| e.trace.is_real())
            .map(|e| e.trace)
            .unwrap_or(TraceId::NONE);
        let mut cursor = apply_start;
        for stage in &timeline.stages {
            let end = cursor + stage.duration;
            shared
                .hub
                .labeled_histogram("htsp_stage_seconds", &[("stage", &stage.name)])
                .record(stage.duration);
            shared.hub.record_span(
                rep,
                "update",
                crate::telemetry::intern(&stage.name),
                cursor,
                end,
            );
            cursor = end;
        }
        let publications: Vec<PublishEvent> = captured
            .lock()
            .expect("publish capture poisoned")
            .drain(..)
            .collect();
        let visible_at = publications
            .iter()
            .find(|e| e.version >= first_version)
            .map(|e| e.at);
        if let Some(vis) = visible_at {
            for entry in drained {
                if entry.trace.is_real() {
                    shared
                        .hub
                        .record_span(entry.trace, "update", "publish", apply_start, vis);
                    shared.hub.record_span(
                        entry.trace,
                        "update",
                        "visible",
                        entry.submitted_at,
                        vis,
                    );
                }
            }
        }
    }

    /// Fails every ticket still unresolved (called if the maintenance
    /// thread is gone for good).
    pub(crate) fn poison_pending(&self, why: &'static str) {
        let drained = {
            let mut state = self.shared.state.lock().expect("feed poisoned");
            state.shutdown = true;
            std::mem::take(&mut state.pending)
        };
        for entry in drained {
            entry.cell.advance(TicketPhase::Failed(why));
        }
        self.shared.drained.notify_all();
    }
}

impl std::fmt::Debug for UpdateFeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.state.lock().expect("feed poisoned");
        f.debug_struct("UpdateFeed")
            .field("pending", &state.pending.len())
            .field("stats", &self.stats())
            .finish()
    }
}
