//! The partition-sharded serving tier: a fleet of
//! [`RoadNetworkServer`]s over the partitions of
//! one road network, fronted by a [`FleetRouter`].
//!
//! [`ShardedFleet::start`] partitions the graph with region growing, builds
//! one server per shard on the shard's induced subgraph (each with its own
//! maintenance thread and optional result cache), builds the boundary
//! [`OverlayGraph`](htsp_psp::OverlayGraph) index, and spawns the router.
//! The router owns ingest batching (shard servers run a *manual* coalesce
//! policy), overlay maintenance, and the publication of mutually consistent
//! fleet epochs — see the [`router`](crate::router) module docs for the
//! full ingest and query data paths.
//!
//! Everything is simulated in-process: "shards" are threads, not machines,
//! which keeps the visibility semantics of a real deployment (per-shard
//! publication, fleet-wide epochs) while staying deterministic enough for
//! exactness tests.

use crate::cache::CacheStats;
use crate::config::FleetConfig;
use crate::feed::CoalescePolicy;
use crate::router::{FleetRouter, FleetSession, FleetTicket, RouterCtx};
use crate::server::RoadNetworkServer;
use crate::slo::LatencyHistogram;
use crate::telemetry::TelemetryHub;
use htsp_graph::cow::CowStats;
use htsp_graph::dimacs::{load_dimacs_streaming_file, DimacsError};
use htsp_graph::{Dist, EdgeUpdate, Graph, VertexId};
use htsp_partition::partition_region_growing;
use htsp_psp::OverlayMaintainer;
use std::path::Path;
use std::sync::Arc;

/// A fleet of shard servers plus the front-end router over the boundary
/// overlay. See the [module docs](self).
pub struct ShardedFleet {
    // Declared before `servers` so the router thread (which writes to the
    // shard feeds) stops before any shard server shuts down.
    router: FleetRouter,
    servers: Vec<RoadNetworkServer>,
    config: FleetConfig,
    hub: Arc<TelemetryHub>,
}

impl ShardedFleet {
    /// Partitions `graph` into `config.num_shards` shards, builds one
    /// server per shard plus the boundary overlay, and spawns the router.
    ///
    /// The shard count is clamped to the number of vertices.
    pub fn start(graph: &Graph, config: FleetConfig) -> ShardedFleet {
        ShardedFleet::start_with_telemetry(graph, config, Arc::new(TelemetryHub::new()))
    }

    /// Like [`ShardedFleet::start`], but registers the router tier's
    /// `htsp_fleet_*` metrics and batch-stage spans on `hub` — pass the
    /// deployment-wide hub so one snapshot covers routing next to the
    /// serving and ingest metrics. Each shard *server* keeps its own
    /// private hub (shards model separate machines); the fleet hub holds
    /// the per-shard routing series instead.
    pub fn start_with_telemetry(
        graph: &Graph,
        config: FleetConfig,
        hub: Arc<TelemetryHub>,
    ) -> ShardedFleet {
        let k = config.num_shards.clamp(1, graph.num_vertices().max(1));
        let partition = partition_region_growing(graph, k, config.seed);
        // One pool drives the whole fleet build: the overlay's per-partition
        // hierarchies, then the shard indexes (one task per shard). Each
        // shard's index depends only on its own subgraph, so concurrent
        // construction yields exactly the indexes the sequential loop built.
        let pool = htsp_graph::WorkerPool::new(config.build_params.threads());
        let t = std::time::Instant::now();
        let core = OverlayMaintainer::build_pooled(graph.clone(), partition, &pool);
        let maintainers = pool.run("fleet_shard_build", core.partitioned.subgraphs.len(), |i| {
            let sub = &core.partitioned.subgraphs[i];
            let params = config.build_params.for_shard(sub.graph.num_vertices());
            config.algorithm.build(&sub.graph, &params)
        });
        crate::server::register_build_telemetry(
            &hub,
            config.algorithm.name(),
            &pool,
            t.elapsed().as_micros() as u64,
        );
        let mut servers = Vec::with_capacity(k);
        for (maintainer, sub) in maintainers.into_iter().zip(&core.partitioned.subgraphs) {
            let mut builder = RoadNetworkServer::builder()
                .maintainer(maintainer)
                .coalesce(CoalescePolicy::manual());
            if let Some(cache) = config.cache {
                builder = builder.result_cache(cache);
            }
            servers.push(builder.start(&sub.graph));
        }
        let ctx = RouterCtx {
            feeds: servers.iter().map(|s| s.feed().clone()).collect(),
            publishers: servers.iter().map(|s| s.publisher().clone()).collect(),
            policy: config.coalesce,
            ingest_bound: config.ingest_bound,
            hub: Arc::clone(&hub),
        };
        let caches = servers.iter().map(|s| s.cache().cloned()).collect();
        let router = FleetRouter::spawn(core, ctx, caches);
        ShardedFleet {
            router,
            servers,
            config,
            hub,
        }
    }

    /// The fleet's telemetry hub (router-tier metrics and spans).
    pub fn telemetry(&self) -> &Arc<TelemetryHub> {
        &self.hub
    }

    /// Reads a DIMACS `.gr` network from `path` and starts a fleet over it.
    ///
    /// Ingest goes through the streaming loader: the file is tokenized into
    /// flat CSR storage directly (no adjacency-list intermediate), which is
    /// what keeps 10M+-edge networks loadable; the partitioner's mutable
    /// [`Graph`] is then materialized once from the CSR arrays.
    pub fn from_dimacs<P: AsRef<Path>>(
        path: P,
        config: FleetConfig,
    ) -> Result<ShardedFleet, DimacsError> {
        let csr = load_dimacs_streaming_file(path)?;
        let graph = csr.to_graph();
        Ok(ShardedFleet::start(&graph, config))
    }

    /// The front-end router (ingest + sessions).
    pub fn router(&self) -> &FleetRouter {
        &self.router
    }

    /// Number of shards actually running.
    pub fn num_shards(&self) -> usize {
        self.servers.len()
    }

    /// The configuration the fleet was started with.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Human-readable fleet label, e.g. `fleet(4x dch)`.
    pub fn algorithm(&self) -> String {
        format!(
            "fleet({}x {})",
            self.servers.len(),
            self.servers.first().map_or("?", |s| s.algorithm())
        )
    }

    /// Submits one edge-weight update (global edge ids) to the fleet;
    /// blocks while the router's ingest queue is at its bound
    /// ([`FleetConfig::ingest_bound`]).
    pub fn submit(&self, update: EdgeUpdate) -> FleetTicket {
        self.router.submit(update)
    }

    /// Non-blocking submission: `None` when the ingest queue is at its
    /// bound (the update is shed and counted in the report).
    pub fn try_submit(&self, update: EdgeUpdate) -> Option<FleetTicket> {
        self.router.try_submit(update)
    }

    /// A clonable handle to the fleet's query side; see
    /// [`FleetRouter::query_handle`].
    pub fn query_handle(&self) -> crate::router::FleetQueryHandle {
        self.router.query_handle()
    }

    /// Starts a [`DistanceService`](crate::DistanceService) whose workers
    /// answer [`QueryBatch`](crate::QueryBatch)es through sessions pinned to
    /// this fleet's epochs, under `policy` — the fleet-level admission
    /// point. The caller owns the returned service; it must be shut down
    /// (or dropped) before the fleet.
    pub fn start_query_service(
        &self,
        num_workers: usize,
        policy: crate::admission::AdmissionPolicy,
    ) -> crate::service::DistanceService {
        crate::service::DistanceService::for_fleet_with_telemetry(
            self.query_handle(),
            num_workers,
            policy,
            Arc::clone(&self.hub),
        )
    }

    /// Forces a fleet batch boundary now.
    pub fn flush(&self) -> FleetTicket {
        self.router.flush()
    }

    /// Blocks until everything submitted so far is visible fleet-wide.
    pub fn wait_idle(&self) {
        self.router.wait_idle();
    }

    /// Opens a query session pinned to the current fleet epoch.
    pub fn session(&self) -> FleetSession {
        self.router.session()
    }

    /// One-shot convenience: `d(s, t)` on the current epoch.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        self.router.distance(s, t)
    }

    /// The currently published fleet version (0 = initial build).
    pub fn epoch_version(&self) -> u64 {
        self.router.fleet_version()
    }

    /// Sum of the shard indexes' sizes in bytes.
    pub fn index_size_bytes(&self) -> usize {
        self.servers
            .iter()
            .map(|s| s.with_index(|i| i.index_size_bytes()))
            .sum()
    }

    /// Snapshots the fleet-wide telemetry into a [`FleetReport`].
    pub fn report(&self) -> FleetReport {
        let topo = self.router.topology();
        let tel = self.router.telemetry();
        let elapsed = tel.started.elapsed().as_secs_f64();
        let shards = self
            .servers
            .iter()
            .enumerate()
            .map(|(i, server)| {
                let st = &tel.shards[i];
                let (vertices, edges, boundary) = topo.shard_sizes[i];
                ShardReport {
                    shard: i,
                    vertices,
                    edges,
                    boundary,
                    local_queries: st.local_queries.get(),
                    cross_queries: st.cross_queries.get(),
                    updates_routed: st.updates_routed.get(),
                    batches: st.batches.get(),
                    visibility_lags: st.lags.snapshot(),
                    cow: CowStats {
                        chunks_cloned: st.cow_chunks.get(),
                        bytes_cloned: st.cow_bytes.get(),
                    },
                    cache: server.cache().map(|c| c.stats()),
                }
            })
            .collect();
        FleetReport {
            algorithm: self.algorithm(),
            num_shards: self.servers.len(),
            fleet_version: self.router.fleet_version(),
            fleet_batches: tel.fleet_batches.get(),
            boundary_updates: tel.boundary_updates.get(),
            overlay_vertices: topo.overlay_vertices,
            overlay_edges: topo.overlay_edges,
            balance: topo.balance,
            boundary_fraction: topo.boundary_fraction,
            ingest_depth: self.router.ingest_depth(),
            ingest_bound: self.router.ingest_bound(),
            max_ingest_depth: tel.ingest_depth.max(),
            updates_shed: tel.ingest_shed.get(),
            elapsed,
            shards,
        }
    }

    /// Stops the router (draining pending updates) and every shard server.
    pub fn shutdown(mut self) {
        self.router.shutdown();
        for server in self.servers.drain(..) {
            server.shutdown();
        }
    }
}

impl std::fmt::Debug for ShardedFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFleet")
            .field("algorithm", &self.algorithm())
            .field("epoch_version", &self.epoch_version())
            .finish()
    }
}

/// Telemetry of one shard server inside a [`FleetReport`].
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard id (= partition id).
    pub shard: usize,
    /// Vertices of the shard's induced subgraph.
    pub vertices: usize,
    /// Edges of the shard's induced subgraph.
    pub edges: usize,
    /// Boundary vertices of the shard.
    pub boundary: usize,
    /// Point-to-point pairs answered with both endpoints in this shard.
    pub local_queries: u64,
    /// Point-to-point pairs answered with exactly one endpoint here.
    pub cross_queries: u64,
    /// Edge updates the router fanned out to this shard.
    pub updates_routed: u64,
    /// Update batches this shard repaired.
    pub batches: u64,
    /// Submit-to-visible lag of every update routed here.
    pub visibility_lags: LatencyHistogram,
    /// Copy-on-write chunks/bytes the shard's repairs cloned.
    pub cow: CowStats,
    /// Result-cache counters, when the fleet runs a cache.
    pub cache: Option<CacheStats>,
}

impl ShardReport {
    /// Total query pairs that touched this shard.
    pub fn queries(&self) -> u64 {
        self.local_queries + self.cross_queries
    }

    /// The `q`-th percentile (0..=1) of this shard's visibility lags, in
    /// seconds; 0.0 when no update was routed here.
    pub fn lag_percentile(&self, q: f64) -> f64 {
        self.visibility_lags.quantile_secs(q)
    }
}

/// Aggregated telemetry of a [`ShardedFleet`].
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Fleet label, e.g. `fleet(4x dch)`.
    pub algorithm: String,
    /// Number of shards.
    pub num_shards: usize,
    /// Published fleet version at report time.
    pub fleet_version: u64,
    /// Fleet batches processed by the router.
    pub fleet_batches: u64,
    /// Updates that were boundary-incident (touched the overlay).
    pub boundary_updates: u64,
    /// Overlay graph size: boundary vertices.
    pub overlay_vertices: usize,
    /// Overlay graph size: inter edges + partition shortcuts.
    pub overlay_edges: usize,
    /// Partition load-balance factor (1.0 = perfect).
    pub balance: f64,
    /// Fraction of vertices on a partition boundary.
    pub boundary_fraction: f64,
    /// Ingest-queue depth (pending updates) at report time.
    pub ingest_depth: usize,
    /// Configured bound of the ingest queue.
    pub ingest_bound: usize,
    /// High-water mark of the ingest-queue depth.
    pub max_ingest_depth: u64,
    /// Updates shed by [`ShardedFleet::try_submit`] at a full ingest queue.
    pub updates_shed: u64,
    /// Seconds since the fleet started.
    pub elapsed: f64,
    /// Per-shard telemetry.
    pub shards: Vec<ShardReport>,
}

impl FleetReport {
    /// Total query pairs across all shards (cross-shard pairs count once
    /// per touched shard).
    pub fn total_queries(&self) -> u64 {
        self.shards.iter().map(|s| s.queries()).sum()
    }

    /// Fleet-wide query pairs per second since start.
    pub fn fleet_qps(&self) -> f64 {
        if self.elapsed <= 0.0 {
            return 0.0;
        }
        self.total_queries() as f64 / self.elapsed
    }

    /// Total updates routed to shards.
    pub fn total_updates(&self) -> u64 {
        self.shards.iter().map(|s| s.updates_routed).sum()
    }

    /// The `q`-th percentile (0..=1) of submit-to-visible lag across every
    /// update routed to any shard, in seconds.
    pub fn lag_percentile(&self, q: f64) -> f64 {
        let mut merged = LatencyHistogram::new();
        for s in &self.shards {
            merged.merge(&s.visibility_lags);
        }
        merged.quantile_secs(q)
    }

    /// Result-cache counters summed over all shards
    /// (via [`CacheStats::merge`]); `None` when no shard runs a cache.
    pub fn cache_total(&self) -> Option<CacheStats> {
        let stats: Vec<CacheStats> = self.shards.iter().filter_map(|s| s.cache).collect();
        if stats.is_empty() {
            None
        } else {
            Some(CacheStats::merge(stats))
        }
    }
}
