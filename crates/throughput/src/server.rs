//! The server facade: one object that owns the whole serving stack of the
//! paper's system model — graph, index maintenance, snapshot publication,
//! and the batched query front-end.
//!
//! ```text
//!            submit(EdgeUpdate) ──► UpdateFeed ──┐ coalesce (CoalescePolicy)
//!                                                ▼
//!                               maintenance thread: apply_batch
//!                                    │ staged publications
//!                                    ▼
//!                             SnapshotPublisher ──► QueryView snapshots
//!                                    │                    ▲
//!                                    ▼                    │ sessions
//!                        ticket.wait_visible()      DistanceService /
//!                        (read-your-writes)         caller threads
//! ```
//!
//! A [`RoadNetworkServer`] is built from the [`AlgorithmKind`] registry (or
//! a custom [`IndexMaintainer`]) via [`RoadNetworkServer::builder`]. Once
//! started, queries and updates run *concurrently*: readers drain published
//! snapshots and are never blocked by maintenance; writers submit into the
//! [`UpdateFeed`] and use their [`UpdateTicket`]s for read-your-writes
//! acknowledgements. The measurement harnesses (`ThroughputHarness`,
//! `QueryEngine`) are thin drivers over this same facade.

use crate::admission::AdmissionPolicy;
use crate::cache::DistanceCache;
use crate::config::CacheConfig;
use crate::feed::{CoalescePolicy, UpdateFeed, UpdateTicket};
use crate::registry::{AlgorithmKind, BuildParams};
use crate::service::{BatchTicket, DistanceService, QueryBatch};
use crate::telemetry::{Gauge, TelemetryHub};
use htsp_graph::{
    Dist, EdgeUpdate, Graph, IndexMaintainer, IndexSnapshot, QueryView, SnapshotError,
    SnapshotPublisher, VertexId,
};
use std::path::Path;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// Prometheus metric name of the per-component memory-footprint gauges
/// (`htsp_storage_bytes{component="..."}`), registered by every server at
/// start and refreshable via
/// [`RoadNetworkServer::refresh_storage_gauges`].
pub const STORAGE_BYTES_METRIC: &str = "htsp_storage_bytes";

/// Builder for [`RoadNetworkServer`]; obtained from
/// [`RoadNetworkServer::builder`].
pub struct ServerBuilder {
    algorithm: AlgorithmKind,
    params: BuildParams,
    maintainer: Option<Box<dyn IndexMaintainer>>,
    policy: CoalescePolicy,
    query_workers: usize,
    cache: Option<CacheConfig>,
    admission: AdmissionPolicy,
    telemetry: Option<Arc<TelemetryHub>>,
}

impl Default for ServerBuilder {
    fn default() -> Self {
        ServerBuilder {
            algorithm: AlgorithmKind::PostMhl,
            params: BuildParams::default(),
            maintainer: None,
            policy: CoalescePolicy::default(),
            query_workers: 0,
            cache: None,
            admission: AdmissionPolicy::Block,
            telemetry: None,
        }
    }
}

impl ServerBuilder {
    /// Selects the index algorithm from the registry (default:
    /// [`AlgorithmKind::PostMhl`], the paper's headline contribution).
    pub fn algorithm(mut self, kind: AlgorithmKind) -> Self {
        self.algorithm = kind;
        self
    }

    /// Sets the registry construction parameters.
    pub fn build_params(mut self, params: BuildParams) -> Self {
        self.params = params;
        self
    }

    /// Uses an already-built maintainer instead of the registry (custom
    /// index machinery, or a registry build whose internals the caller
    /// inspected before hosting it).
    pub fn maintainer(mut self, maintainer: Box<dyn IndexMaintainer>) -> Self {
        self.maintainer = Some(maintainer);
        self
    }

    /// Sets the update-coalescing policy (batch size / Δt).
    pub fn coalesce(mut self, policy: CoalescePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of [`DistanceService`] worker threads answering
    /// [`QueryBatch`]es (0 — the default — starts no service; callers query
    /// snapshots directly).
    pub fn query_workers(mut self, n: usize) -> Self {
        self.query_workers = n;
        self
    }

    /// Sets the [`AdmissionPolicy`] of the [`DistanceService`] queue
    /// (default: [`AdmissionPolicy::Block`], the legacy unbounded queue).
    /// Only meaningful together with [`ServerBuilder::query_workers`].
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Enables the snapshot-versioned [`DistanceCache`]: the server's
    /// serving paths ([`RoadNetworkServer::distance`] and the
    /// [`DistanceService`] workers) consult it before running a search, and
    /// every snapshot publication invalidates it by epoch (see the
    /// [`cache`](crate::cache) module docs).
    ///
    /// **Off by default** — caching only pays under skewed (hot-pair)
    /// traffic on search-based views.
    pub fn result_cache(mut self, config: CacheConfig) -> Self {
        self.cache = Some(config);
        self
    }

    /// Records the server's ingest, maintenance, publish, admission, and
    /// cache telemetry into `hub` instead of a private hub — pass one hub to
    /// every component of a deployment so a single
    /// [`TelemetryHub::snapshot`] covers the whole pipeline.
    pub fn telemetry(mut self, hub: Arc<TelemetryHub>) -> Self {
        self.telemetry = Some(hub);
        self
    }

    /// Restores a server from an index snapshot file written by
    /// [`RoadNetworkServer::save_snapshot`]: the graph, algorithm, and build
    /// parameters all come from the file, and algorithms with a serialized
    /// index state skip construction entirely (the warm-restart fast path).
    /// Any corruption — bad magic, version skew, checksum mismatch,
    /// truncation, malformed sections — surfaces as a typed
    /// [`SnapshotError`]; this never panics on untrusted input.
    pub fn start_from_snapshot(
        self,
        path: impl AsRef<Path>,
    ) -> Result<RoadNetworkServer, SnapshotError> {
        let snap = IndexSnapshot::read_from(path)?;
        let kind = AlgorithmKind::from_name(&snap.algorithm).ok_or_else(|| {
            SnapshotError::Malformed(format!("unknown algorithm '{}'", snap.algorithm))
        })?;
        let params = BuildParams::from_snapshot_bytes(&snap.params)?;
        let maintainer = kind.restore(&snap.graph, &params, snap.state.as_deref())?;
        let server = self
            .algorithm(kind)
            .build_params(params)
            .maintainer(maintainer)
            .start(&snap.graph);
        // Re-measure through the maintenance thread so `htsp_storage_bytes`
        // (including components a restored index materializes lazily) is
        // correct immediately after a warm restart, not only after the next
        // explicit refresh.
        server.refresh_storage_gauges();
        Ok(server)
    }

    /// Builds the index over `graph` (the expensive step, unless a
    /// maintainer was supplied), spawns the maintenance thread and the
    /// optional query workers, and returns the running server.
    pub fn start(self, graph: &Graph) -> RoadNetworkServer {
        let hub = self
            .telemetry
            .unwrap_or_else(|| Arc::new(TelemetryHub::new()));
        let maintainer = match self.maintainer {
            Some(m) => m,
            None => {
                // Registry build: run construction on a worker pool sized by
                // the build params and publish the `htsp_build_*` telemetry
                // family (per-stage wall time and task counts, thread count,
                // total build time).
                let pool = htsp_graph::WorkerPool::new(self.params.threads());
                let t = std::time::Instant::now();
                let maintainer = self.algorithm.build_pooled(graph, &self.params, &pool);
                let total_micros = t.elapsed().as_micros() as u64;
                register_build_telemetry(&hub, self.algorithm.name(), &pool, total_micros);
                maintainer
            }
        };
        let algorithm = maintainer.name();
        let num_query_stages = maintainer.num_query_stages();
        let publisher = Arc::new(SnapshotPublisher::new(maintainer.current_view()));
        // Per-component memory accounting: one labeled gauge per index
        // component plus the graph itself, refreshed on demand.
        let mut storage_gauges = Vec::new();
        let mut storage_parts = maintainer.storage_bytes();
        storage_parts.push(("graph", graph.heap_bytes()));
        for (component, bytes) in storage_parts {
            let gauge = Gauge::new();
            gauge.set(bytes as u64);
            hub.register_gauge(STORAGE_BYTES_METRIC, &[("component", component)], &gauge);
            storage_gauges.push((component, gauge));
        }
        // The result cache, when enabled, hears about every publication
        // through the publisher's hook: each event folds into the cache's
        // epoch (monotonically, so racing publishers are harmless), which
        // is how a batch publish becomes the cache-invalidation boundary.
        let cache = self.cache.map(|config| {
            let cache = Arc::new(DistanceCache::new(config));
            cache.register_metrics(&hub);
            let epoch_cache = Arc::clone(&cache);
            publisher.on_publish(move |event| epoch_cache.bump_epoch(event.version));
            cache
        });
        let shared_graph = Arc::new(RwLock::new(graph.clone()));
        let feed = UpdateFeed::new(
            Arc::clone(&publisher),
            Arc::clone(&shared_graph),
            Arc::clone(&hub),
        );
        let policy = self.policy;
        let maintenance = {
            let feed = feed.clone();
            std::thread::Builder::new()
                .name("htsp-maintenance".to_string())
                .spawn(move || feed.run_maintenance(maintainer, policy))
                .expect("spawn maintenance thread")
        };
        let service = (self.query_workers > 0).then(|| {
            DistanceService::with_telemetry(
                Arc::clone(&publisher),
                self.query_workers,
                cache.clone(),
                self.admission,
                Arc::clone(&hub),
            )
        });
        RoadNetworkServer {
            graph: shared_graph,
            publisher,
            feed,
            maintenance: Some(maintenance),
            service,
            cache,
            algorithm,
            num_query_stages,
            hub,
            params: self.params,
            storage_gauges: Mutex::new(storage_gauges),
        }
    }
}

/// Registers the `htsp_build_*` gauge family for one registry construction:
/// `htsp_build_threads` and `htsp_build_total_micros` per algorithm, plus
/// `htsp_build_stage_micros` / `htsp_build_stage_tasks` for every worker-pool
/// stage the build ran (CH contraction windows, H2H level fills, per-partition
/// fan-outs).
pub(crate) fn register_build_telemetry(
    hub: &TelemetryHub,
    algorithm: &str,
    pool: &htsp_graph::WorkerPool,
    total_micros: u64,
) {
    let set = |name: &str, labels: &[(&str, &str)], value: u64| {
        let gauge = Gauge::new();
        gauge.set(value);
        hub.register_gauge(name, labels, &gauge);
    };
    set(
        "htsp_build_threads",
        &[("algorithm", algorithm)],
        pool.threads() as u64,
    );
    set(
        "htsp_build_total_micros",
        &[("algorithm", algorithm)],
        total_micros,
    );
    for stage in pool.stage_stats() {
        let labels = [("algorithm", algorithm), ("stage", stage.stage.as_str())];
        set("htsp_build_stage_micros", &labels, stage.micros);
        set("htsp_build_stage_tasks", &labels, stage.tasks as u64);
    }
}

/// A running dynamic road-network distance server; see the
/// [module docs](self) for the architecture.
///
/// Dropping the server shuts it down (pending updates are still applied and
/// queued query batches answered); [`RoadNetworkServer::shutdown`] does the
/// same but hands the index machinery back for reuse.
pub struct RoadNetworkServer {
    graph: Arc<RwLock<Graph>>,
    publisher: Arc<SnapshotPublisher>,
    feed: UpdateFeed,
    maintenance: Option<JoinHandle<Box<dyn IndexMaintainer>>>,
    service: Option<DistanceService>,
    cache: Option<Arc<DistanceCache>>,
    algorithm: &'static str,
    num_query_stages: usize,
    hub: Arc<TelemetryHub>,
    params: BuildParams,
    storage_gauges: Mutex<Vec<(&'static str, Gauge)>>,
}

impl RoadNetworkServer {
    /// Starts building a server.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// Shorthand: hosts an already-built maintainer over `graph` with
    /// manual batching ([`CoalescePolicy::manual`]) and no query workers —
    /// the configuration the measurement harnesses drive, where every round
    /// is exactly one explicitly flushed batch.
    pub fn host(graph: &Graph, maintainer: Box<dyn IndexMaintainer>) -> RoadNetworkServer {
        RoadNetworkServer::builder()
            .maintainer(maintainer)
            .coalesce(CoalescePolicy::manual())
            .start(graph)
    }

    /// The algorithm name of the hosted index (e.g. `"PostMHL"`).
    pub fn algorithm(&self) -> &'static str {
        self.algorithm
    }

    /// Number of query stages the hosted index exposes.
    pub fn num_query_stages(&self) -> usize {
        self.num_query_stages
    }

    /// The ingestion handle: submit edge-weight updates, get visibility
    /// tickets. Clone it freely into producer threads.
    pub fn feed(&self) -> &UpdateFeed {
        &self.feed
    }

    /// Convenience: [`UpdateFeed::submit`].
    pub fn submit(&self, update: EdgeUpdate) -> UpdateTicket {
        self.feed.submit(update)
    }

    /// The snapshot publisher queries read from (hand it to custom serving
    /// threads; the harnesses drain its publication log).
    pub fn publisher(&self) -> &Arc<SnapshotPublisher> {
        &self.publisher
    }

    /// An owned handle to the newest published snapshot.
    pub fn snapshot(&self) -> Arc<dyn QueryView> {
        self.publisher.snapshot()
    }

    /// Convenience single query on the newest snapshot, consulting the
    /// result cache first when one is enabled. Serving threads should open
    /// a session on [`RoadNetworkServer::snapshot`] (or use the
    /// [`DistanceService`]) instead.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        let (version, view) = self.publisher.versioned_snapshot();
        if let Some(cache) = &self.cache {
            if let Some(d) = cache.get(s, t, version) {
                return d;
            }
            let d = view.distance(s, t);
            cache.insert(s, t, version, d);
            return d;
        }
        view.distance(s, t)
    }

    /// The snapshot-versioned result cache, when the server was started
    /// with [`ServerBuilder::result_cache`]. Serving loops outside the
    /// built-in [`DistanceService`] (e.g. the
    /// [`QueryEngine`](crate::QueryEngine) workers) wrap their sessions in a
    /// [`CachedSession`](crate::CachedSession) around this handle.
    pub fn cache(&self) -> Option<&Arc<DistanceCache>> {
        self.cache.as_ref()
    }

    /// The telemetry hub every component of this server records into
    /// (snapshot it for the Prometheus / Chrome-trace exports).
    pub fn telemetry(&self) -> &Arc<TelemetryHub> {
        &self.hub
    }

    /// The batched query front-end, when the server was started with
    /// [`ServerBuilder::query_workers`] > 0.
    pub fn query_service(&self) -> Option<&DistanceService> {
        self.service.as_ref()
    }

    /// Submits a [`QueryBatch`] to the query front-end.
    ///
    /// # Panics
    ///
    /// Panics if the server was built with `query_workers(0)`.
    pub fn submit_queries(&self, batch: QueryBatch) -> BatchTicket {
        self.service
            .as_ref()
            .expect("server started without query workers")
            .submit(batch)
    }

    /// Runs `f` against the server's current graph (brief read lock; the
    /// graph only changes while a coalesced batch installs its weights).
    pub fn with_graph<R>(&self, f: impl FnOnce(&Graph) -> R) -> R {
        f(&self.graph.read().expect("server graph poisoned"))
    }

    /// Runs `f` on the maintenance thread with exclusive access to the
    /// index maintainer and returns its result.
    ///
    /// The job runs between batches, never mid-repair, so it may block for
    /// as long as the repair in front of it takes. This is the
    /// introspection escape hatch the measurement harnesses use
    /// (per-stage views, index size); serving paths never need it.
    pub fn with_index<R, F>(&self, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut dyn IndexMaintainer) -> R + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        self.feed.enqueue_job(Box::new(move |maintainer| {
            let _ = tx.send(f(maintainer));
        }));
        rx.recv().expect("maintenance thread dropped the job")
    }

    /// Writes a versioned, checksummed index snapshot to `path`: the
    /// current graph, the build parameters, and — for algorithms with a
    /// native serialized form — the repaired index state, so a later
    /// [`ServerBuilder::start_from_snapshot`] republishes without
    /// rebuilding. Runs between batches (same rule as
    /// [`RoadNetworkServer::with_index`]), so the captured state is always a
    /// fully repaired index, never a mid-repair one.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let graph = self.with_graph(|g| g.clone());
        let state = self.with_index(|m| m.snapshot_state());
        IndexSnapshot {
            algorithm: self.algorithm.to_string(),
            params: self.params.to_snapshot_bytes(),
            graph,
            state,
        }
        .write_to(path)
    }

    /// Re-measures the per-component memory footprint (index components via
    /// [`IndexMaintainer::storage_bytes`] plus the graph) and updates the
    /// `htsp_storage_bytes{component=...}` gauges. Components that appear
    /// for the first time (an index stage grew a new table) are registered
    /// on the fly. Returns the measured `(component, bytes)` pairs.
    pub fn refresh_storage_gauges(&self) -> Vec<(&'static str, usize)> {
        let mut parts = self.with_index(|m| m.storage_bytes());
        parts.push(("graph", self.with_graph(|g| g.heap_bytes())));
        let mut gauges = self.storage_gauges.lock().expect("storage gauges poisoned");
        for &(component, bytes) in &parts {
            match gauges.iter().find(|(c, _)| *c == component) {
                Some((_, gauge)) => gauge.set(bytes as u64),
                None => {
                    let gauge = Gauge::new();
                    gauge.set(bytes as u64);
                    self.hub.register_gauge(
                        STORAGE_BYTES_METRIC,
                        &[("component", component)],
                        &gauge,
                    );
                    gauges.push((component, gauge));
                }
            }
        }
        parts
    }

    /// Shuts the server down: stops the query workers (queued batches are
    /// answered first), applies any pending updates, joins the maintenance
    /// thread, and returns the index machinery.
    pub fn shutdown(mut self) -> Box<dyn IndexMaintainer> {
        self.shutdown_inner()
            .expect("maintenance thread panicked during shutdown")
    }

    fn shutdown_inner(&mut self) -> Option<Box<dyn IndexMaintainer>> {
        if let Some(service) = self.service.take() {
            service.shutdown();
        }
        let handle = self.maintenance.take()?;
        self.feed.begin_shutdown();
        match handle.join() {
            Ok(maintainer) => Some(maintainer),
            Err(panic) => {
                self.feed.poison_pending("maintenance thread panicked");
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Drop for RoadNetworkServer {
    fn drop(&mut self) {
        if self.maintenance.is_some() && !std::thread::panicking() {
            let _ = self.shutdown_inner();
        } else if let Some(service) = self.service.take() {
            service.shutdown();
        }
    }
}

impl std::fmt::Debug for RoadNetworkServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoadNetworkServer")
            .field("algorithm", &self.algorithm)
            .field("published_version", &self.publisher.version())
            .field("feed", &self.feed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feed::CoalescePolicy;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::{EdgeId, QuerySet, UpdateBatch};
    use htsp_search::dijkstra_distance;
    use std::time::Duration;

    fn drift(g: &Graph, i: usize) -> EdgeUpdate {
        let e = EdgeId::from_index(i % g.num_edges());
        let old = g.edge_weight(e);
        EdgeUpdate::new(e, old, old + 1)
    }

    #[test]
    fn size_triggered_coalescing_flushes_exactly_at_max_batch() {
        let g = grid(8, 8, WeightRange::new(5, 30), 3);
        let server = RoadNetworkServer::builder()
            .algorithm(AlgorithmKind::Dch)
            .coalesce(CoalescePolicy::by_size(4))
            .start(&g);
        // Three updates: under the size trigger, nothing may flush.
        let mut working = g.clone();
        let tickets: Vec<_> = (0..3)
            .map(|i| {
                let u = drift(&working, i * 7);
                working.apply_batch(&UpdateBatch::from_updates(vec![u]));
                server.submit(u)
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        assert!(tickets.iter().all(|t| t.try_outcome().is_none()));
        assert_eq!(server.publisher().version(), 0, "batch flushed early");
        // The fourth trips the size trigger; all four tickets share the
        // outcome of one coalesced batch.
        let u = drift(&working, 91);
        working.apply_batch(&UpdateBatch::from_updates(vec![u]));
        let last = server.submit(u);
        let outcome = last.wait_applied();
        assert_eq!(outcome.batch_len, 4);
        for t in &tickets {
            assert_eq!(t.wait_applied().batch_seq, outcome.batch_seq);
        }
        assert!(server.publisher().version() >= outcome.first_version);
        server.shutdown();
    }

    #[test]
    fn delay_triggered_coalescing_flushes_after_delta_t() {
        let g = grid(8, 8, WeightRange::new(5, 30), 5);
        let server = RoadNetworkServer::builder()
            .algorithm(AlgorithmKind::Dch)
            .coalesce(CoalescePolicy::by_delay(Duration::from_millis(25)))
            .start(&g);
        let ticket = server.submit(drift(&g, 11));
        let visibility = ticket.wait_visible();
        assert!(
            visibility.latency >= Duration::from_millis(25),
            "delay-triggered flush fired before Δt: {:?}",
            visibility.latency
        );
        let outcome = ticket.wait_applied();
        assert_eq!(outcome.batch_len, 1);
        server.shutdown();
    }

    #[test]
    fn policy_flushes_cap_the_batch_size_but_barriers_drain_everything() {
        let g = grid(8, 8, WeightRange::new(5, 30), 17);
        let server = RoadNetworkServer::builder()
            .algorithm(AlgorithmKind::Dch)
            .coalesce(CoalescePolicy::by_size(2))
            .start(&g);
        let mut working = g.clone();
        let tickets: Vec<_> = (0..5)
            .map(|i| {
                let u = drift(&working, i * 13);
                working.apply_batch(&UpdateBatch::from_updates(vec![u]));
                server.submit(u)
            })
            .collect();
        // 5 updates under a cap of 2: the size trigger fires twice (2 + 2);
        // the leftover single update sits below the trigger until the
        // explicit barrier drains it.
        let outcomes: Vec<_> = tickets[..4].iter().map(|t| t.wait_applied()).collect();
        assert_eq!(outcomes[0].batch_len, 2);
        assert_eq!(outcomes[1].batch_seq, outcomes[0].batch_seq);
        assert_eq!(outcomes[2].batch_len, 2);
        assert_ne!(outcomes[2].batch_seq, outcomes[0].batch_seq);
        assert!(
            tickets[4].try_outcome().is_none(),
            "cap overflow flushed early"
        );
        let tail = server.feed().flush();
        assert_eq!(tail.wait_applied().batch_len, 1);
        assert_eq!(tickets[4].wait_applied().batch_len, 1);
        server.shutdown();
    }

    #[test]
    fn an_idle_feed_publishes_nothing() {
        let g = grid(6, 6, WeightRange::new(1, 9), 7);
        let server = RoadNetworkServer::builder()
            .algorithm(AlgorithmKind::Dch)
            .coalesce(CoalescePolicy::by_delay(Duration::from_millis(5)))
            .start(&g);
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(server.publisher().version(), 0);
        assert!(server.publisher().take_log().is_empty());
        assert_eq!(server.feed().stats().batches_applied, 0);
        server.shutdown();
    }

    #[test]
    fn forced_flush_applies_even_an_empty_batch() {
        let g = grid(6, 6, WeightRange::new(1, 9), 9);
        let server = RoadNetworkServer::builder()
            .algorithm(AlgorithmKind::Dch)
            .coalesce(CoalescePolicy::by_size(1_000_000))
            .start(&g);
        let ticket = server.feed().flush();
        let outcome = ticket.wait_applied();
        assert_eq!(outcome.batch_len, 0);
        assert!(
            server.publisher().version() >= 1,
            "an explicit flush must republish"
        );
        server.shutdown();
    }

    #[test]
    fn tickets_give_read_your_writes_and_shutdown_returns_the_index() {
        let g = grid(8, 8, WeightRange::new(5, 30), 11);
        let server = RoadNetworkServer::builder()
            .algorithm(AlgorithmKind::Dch)
            .coalesce(CoalescePolicy::by_size(2))
            .start(&g);
        let mut working = g.clone();
        let u0 = drift(&working, 3);
        working.apply_batch(&UpdateBatch::from_updates(vec![u0]));
        let u1 = drift(&working, 57);
        working.apply_batch(&UpdateBatch::from_updates(vec![u1]));
        let t0 = server.submit(u0);
        let _t1 = server.submit(u1);
        let vis = t0.wait_visible();
        // Read-your-writes: the newest snapshot answers on a graph that
        // contains the submitted weight.
        let view = server.snapshot();
        assert_eq!(view.graph().edge_weight(u0.edge), u0.new_weight);
        let qs = QuerySet::random(&working, 12, 5);
        t0.wait_applied();
        let view = server.snapshot();
        for q in &qs {
            assert_eq!(
                view.distance(q.source, q.target),
                dijkstra_distance(view.graph(), q.source, q.target)
            );
        }
        assert!(vis.version >= 1);
        let maintainer = server.shutdown();
        assert_eq!(maintainer.name(), "DCH");
    }

    #[test]
    fn result_cache_serves_hits_and_publications_bump_its_epoch() {
        let g = grid(8, 8, WeightRange::new(2, 20), 21);
        let server = RoadNetworkServer::builder()
            .algorithm(AlgorithmKind::Dch)
            .coalesce(CoalescePolicy::manual())
            .result_cache(crate::config::CacheConfig::with_capacity(1024))
            .start(&g);
        let cache = Arc::clone(server.cache().expect("cache enabled"));
        let (s, t) = (htsp_graph::VertexId(3), htsp_graph::VertexId(60));
        let expect = dijkstra_distance(&g, s, t);
        assert_eq!(server.distance(s, t), expect); // cold miss, fills
        assert_eq!(server.distance(s, t), expect); // hit
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.epoch(), 0);

        // A publication (even an empty forced flush republishes the final
        // stage) reaches the cache through the publisher hook.
        server.feed().flush().wait_applied();
        assert!(cache.epoch() >= 1, "publication did not bump the epoch");
        // The old entry is now from an older version: a stale miss, then a
        // refill at the new version.
        assert_eq!(server.distance(s, t), expect);
        assert!(cache.stats().stale_misses >= 1);
        assert_eq!(server.distance(s, t), expect);
        assert_eq!(cache.stats().hits, 2);
        server.shutdown();
    }

    #[test]
    fn with_index_runs_between_batches() {
        let g = grid(6, 6, WeightRange::new(1, 9), 13);
        let server = RoadNetworkServer::builder()
            .algorithm(AlgorithmKind::Dch)
            .start(&g);
        let (name, stages) = server.with_index(|m| (m.name(), m.num_query_stages()));
        assert_eq!(name, "DCH");
        assert_eq!(stages, server.num_query_stages());
        server.shutdown();
    }
}
