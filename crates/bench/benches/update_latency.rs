//! Fig. 11(c): batch-update (index maintenance) latency per algorithm.
//!
//! Timed through the staged-snapshot API, so the numbers include the
//! copy-on-write cost of keeping the pre-batch snapshot servable during the
//! repair — the realistic serving-mode price, not bare repair work (see the
//! measurement caveat in `htsp_graph::index_api`).
//!
//! Run with `cargo bench -p htsp-bench --bench update_latency`.

use htsp_baselines::{DchBaseline, Dh2hBaseline};
use htsp_bench::micro;
use htsp_core::{Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp_graph::gen::{grid_with_diagonals, WeightRange};
use htsp_graph::{IndexMaintainer, SnapshotPublisher, UpdateGenerator};
use htsp_psp::{NChP, PTdP};

fn main() {
    let g = grid_with_diagonals(32, 32, WeightRange::new(1, 100), 0.1, 42);
    let mut group = micro::group("update_latency (batch of 100 edges)");

    macro_rules! bench_alg {
        ($name:expr, $build:expr) => {{
            group.bench_with_setup(
                $name,
                || {
                    let idx = $build;
                    let mut gen = UpdateGenerator::new(3);
                    let batch = gen.generate(&g, 100);
                    let mut updated = g.clone();
                    updated.apply_batch(&batch);
                    // An outstanding snapshot, as in serving mode: the repair
                    // pays the copy-on-write cost it would pay in production.
                    let publisher = SnapshotPublisher::new(idx.current_view());
                    (idx, updated, batch, publisher)
                },
                |(mut idx, updated, batch, publisher)| {
                    idx.apply_batch(&updated, &batch, &publisher)
                },
            );
        }};
    }

    bench_alg!("DCH", DchBaseline::build(&g));
    bench_alg!("DH2H", Dh2hBaseline::build(&g));
    bench_alg!("N-CH-P", NChP::build(&g, 8, 1));
    bench_alg!("P-TD-P", PTdP::build(&g, 8, 1));
    bench_alg!(
        "PMHL",
        Pmhl::build(
            &g,
            PmhlConfig {
                num_partitions: 8,
                num_threads: 4,
                seed: 1
            }
        )
    );
    bench_alg!("PostMHL", PostMhl::build(&g, PostMhlConfig::default()));
}
