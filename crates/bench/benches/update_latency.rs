//! Fig. 11(c): batch-update (index maintenance) latency per algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use htsp_baselines::{DchBaseline, Dh2hBaseline};
use htsp_core::{Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp_graph::gen::{grid_with_diagonals, WeightRange};
use htsp_graph::{DynamicSpIndex, UpdateGenerator};
use htsp_psp::{NChP, PTdP};

fn bench_updates(c: &mut Criterion) {
    let g = grid_with_diagonals(32, 32, WeightRange::new(1, 100), 0.1, 42);
    let mut group = c.benchmark_group("update_latency");
    group.sample_size(10);

    macro_rules! bench_alg {
        ($name:expr, $build:expr) => {{
            group.bench_function($name, |b| {
                b.iter_batched(
                    || {
                        let idx = $build;
                        let mut gen = UpdateGenerator::new(3);
                        let batch = gen.generate(&g, 100);
                        let mut updated = g.clone();
                        updated.apply_batch(&batch);
                        (idx, updated, batch)
                    },
                    |(mut idx, updated, batch)| idx.apply_batch(&updated, &batch),
                    criterion::BatchSize::LargeInput,
                )
            });
        }};
    }

    bench_alg!("DCH", DchBaseline::build(&g));
    bench_alg!("DH2H", Dh2hBaseline::build(&g));
    bench_alg!("N-CH-P", NChP::build(&g, 8, 1));
    bench_alg!("P-TD-P", PTdP::build(&g, 8, 1));
    bench_alg!(
        "PMHL",
        Pmhl::build(
            &g,
            PmhlConfig {
                num_partitions: 8,
                num_threads: 4,
                seed: 1
            }
        )
    );
    bench_alg!("PostMHL", PostMhl::build(&g, PostMhlConfig::default()));
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
