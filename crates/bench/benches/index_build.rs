//! Fig. 11(a): index construction time per algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htsp_baselines::{DchBaseline, Dh2hBaseline};
use htsp_core::{Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp_graph::gen::{grid_with_diagonals, WeightRange};
use htsp_psp::{NChP, PTdP};

fn bench_build(c: &mut Criterion) {
    let g = grid_with_diagonals(40, 40, WeightRange::new(1, 100), 0.1, 42);
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("DCH", g.num_vertices()), &g, |b, g| {
        b.iter(|| DchBaseline::build(g))
    });
    group.bench_with_input(BenchmarkId::new("DH2H", g.num_vertices()), &g, |b, g| {
        b.iter(|| Dh2hBaseline::build(g))
    });
    group.bench_with_input(BenchmarkId::new("N-CH-P", g.num_vertices()), &g, |b, g| {
        b.iter(|| NChP::build(g, 8, 1))
    });
    group.bench_with_input(BenchmarkId::new("P-TD-P", g.num_vertices()), &g, |b, g| {
        b.iter(|| PTdP::build(g, 8, 1))
    });
    group.bench_with_input(BenchmarkId::new("PMHL", g.num_vertices()), &g, |b, g| {
        b.iter(|| {
            Pmhl::build(
                g,
                PmhlConfig {
                    num_partitions: 8,
                    num_threads: 4,
                    seed: 1,
                },
            )
        })
    });
    group.bench_with_input(BenchmarkId::new("PostMHL", g.num_vertices()), &g, |b, g| {
        b.iter(|| PostMhl::build(g, PostMhlConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
