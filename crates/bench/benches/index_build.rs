//! Fig. 11(a): index construction time per algorithm.
//!
//! Run with `cargo bench -p htsp-bench --bench index_build`.

use htsp_baselines::{DchBaseline, Dh2hBaseline};
use htsp_bench::micro;
use htsp_core::{Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp_graph::gen::{grid_with_diagonals, WeightRange};
use htsp_psp::{NChP, PTdP};

fn main() {
    let g = grid_with_diagonals(40, 40, WeightRange::new(1, 100), 0.1, 42);
    let mut group = micro::group(&format!("index_build (|V| = {})", g.num_vertices()));
    group.bench("DCH", || DchBaseline::build(&g));
    group.bench("DH2H", || Dh2hBaseline::build(&g));
    group.bench("N-CH-P", || NChP::build(&g, 8, 1));
    group.bench("P-TD-P", || PTdP::build(&g, 8, 1));
    group.bench("PMHL", || {
        Pmhl::build(
            &g,
            PmhlConfig {
                num_partitions: 8,
                num_threads: 4,
                seed: 1,
            },
        )
    });
    group.bench("PostMHL", || PostMhl::build(&g, PostMhlConfig::default()));
}
