//! Ablation benches called out in DESIGN.md:
//!
//! * A1 — cross-boundary strategy vs. post-boundary concatenation for
//!   cross-partition queries (validates the §IV-A claim that the concatenation
//!   factor dominates).
//! * A2 — multi-stage scheme: CH-stage query vs. H2H-stage query on the same
//!   MHL (the gap is what the intermediate stages buy during maintenance).
//! * A3 — TD-partitioning vs. region-growing partitioning: final-stage query
//!   latency of PostMHL vs. PMHL (Theorem 1: PostMHL reaches the H2H optimum).
//!
//! Run with `cargo bench -p htsp-bench --bench ablations`.

use htsp_bench::micro;
use htsp_core::{Mhl, Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp_graph::gen::{grid_with_diagonals, WeightRange};
use htsp_graph::{IndexMaintainer, QuerySet};

fn ablation_cross_boundary() {
    let g = grid_with_diagonals(32, 32, WeightRange::new(1, 100), 0.1, 42);
    let queries = QuerySet::random(&g, 256, 9);
    let pmhl = Pmhl::build(
        &g,
        PmhlConfig {
            num_partitions: 8,
            num_threads: 4,
            seed: 1,
        },
    );
    let mut group = micro::group("ablation_cross_boundary");
    // Stage 3 = post-boundary (concatenation for cross-partition queries).
    let post_boundary = pmhl.view_at_stage(3);
    let mut i = 0usize;
    group.bench("post_boundary_concatenation", || {
        let q = &queries.as_slice()[i % queries.len()];
        i += 1;
        post_boundary.distance(q.source, q.target)
    });
    // Stage 4 = cross-boundary (flat 2-hop join).
    let cross_boundary = pmhl.view_at_stage(4);
    let mut i = 0usize;
    group.bench("cross_boundary_2hop", || {
        let q = &queries.as_slice()[i % queries.len()];
        i += 1;
        cross_boundary.distance(q.source, q.target)
    });
}

fn ablation_multistage() {
    let g = grid_with_diagonals(32, 32, WeightRange::new(1, 100), 0.1, 42);
    let queries = QuerySet::random(&g, 256, 11);
    let mhl = Mhl::build(&g);
    let mut group = micro::group("ablation_multistage");
    for (name, stage) in [
        ("bidijkstra_stage", 0usize),
        ("ch_stage", 1),
        ("h2h_stage", 2),
    ] {
        let view = mhl.view_at_stage(stage);
        let mut i = 0usize;
        group.bench(name, || {
            let q = &queries.as_slice()[i % queries.len()];
            i += 1;
            view.distance(q.source, q.target)
        });
    }
}

fn ablation_td_partitioning() {
    let g = grid_with_diagonals(32, 32, WeightRange::new(1, 100), 0.1, 42);
    let queries = QuerySet::random(&g, 256, 13);
    let pmhl = Pmhl::build(
        &g,
        PmhlConfig {
            num_partitions: 8,
            num_threads: 4,
            seed: 1,
        },
    );
    let postmhl = PostMhl::build(&g, PostMhlConfig::default());
    let mut group = micro::group("ablation_td_partitioning");
    let pmhl_view = pmhl.current_view();
    let mut i = 0usize;
    group.bench("pmhl_region_growing_final_stage", || {
        let q = &queries.as_slice()[i % queries.len()];
        i += 1;
        pmhl_view.distance(q.source, q.target)
    });
    let postmhl_view = postmhl.current_view();
    let mut i = 0usize;
    group.bench("postmhl_td_partitioning_final_stage", || {
        let q = &queries.as_slice()[i % queries.len()];
        i += 1;
        postmhl_view.distance(q.source, q.target)
    });
}

fn main() {
    ablation_cross_boundary();
    ablation_multistage();
    ablation_td_partitioning();
}
