//! Ablation benches called out in DESIGN.md:
//!
//! * A1 — cross-boundary strategy vs. post-boundary concatenation for
//!   cross-partition queries (validates the §IV-A claim that the concatenation
//!   factor dominates).
//! * A2 — multi-stage scheme: CH-stage query vs. H2H-stage query on the same
//!   MHL (the gap is what the intermediate stages buy during maintenance).
//! * A3 — TD-partitioning vs. region-growing partitioning: final-stage query
//!   latency of PostMHL vs. PMHL (Theorem 1: PostMHL reaches the H2H optimum).

use criterion::{criterion_group, criterion_main, Criterion};
use htsp_core::{Mhl, Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp_graph::gen::{grid_with_diagonals, WeightRange};
use htsp_graph::{DynamicSpIndex, QuerySet};

fn ablation_cross_boundary(c: &mut Criterion) {
    let g = grid_with_diagonals(32, 32, WeightRange::new(1, 100), 0.1, 42);
    let queries = QuerySet::random(&g, 256, 9);
    let mut pmhl = Pmhl::build(
        &g,
        PmhlConfig {
            num_partitions: 8,
            num_threads: 4,
            seed: 1,
        },
    );
    let mut group = c.benchmark_group("ablation_cross_boundary");
    group.sample_size(10);
    // Stage 3 = post-boundary (concatenation for cross-partition queries).
    group.bench_function("post_boundary_concatenation", |b| {
        let mut it = queries.as_slice().iter().cycle();
        b.iter(|| {
            let q = it.next().unwrap();
            pmhl.distance_at_stage(&g, 3, q.source, q.target)
        })
    });
    // Stage 4 = cross-boundary (flat 2-hop join).
    group.bench_function("cross_boundary_2hop", |b| {
        let mut it = queries.as_slice().iter().cycle();
        b.iter(|| {
            let q = it.next().unwrap();
            pmhl.distance_at_stage(&g, 4, q.source, q.target)
        })
    });
    group.finish();
}

fn ablation_multistage(c: &mut Criterion) {
    let g = grid_with_diagonals(32, 32, WeightRange::new(1, 100), 0.1, 42);
    let queries = QuerySet::random(&g, 256, 11);
    let mut mhl = Mhl::build(&g);
    let mut group = c.benchmark_group("ablation_multistage");
    group.sample_size(10);
    for (name, stage) in [("bidijkstra_stage", 0usize), ("ch_stage", 1), ("h2h_stage", 2)] {
        group.bench_function(name, |b| {
            let mut it = queries.as_slice().iter().cycle();
            b.iter(|| {
                let q = it.next().unwrap();
                mhl.distance_at_stage(&g, stage, q.source, q.target)
            })
        });
    }
    group.finish();
}

fn ablation_td_partitioning(c: &mut Criterion) {
    let g = grid_with_diagonals(32, 32, WeightRange::new(1, 100), 0.1, 42);
    let queries = QuerySet::random(&g, 256, 13);
    let mut pmhl = Pmhl::build(
        &g,
        PmhlConfig {
            num_partitions: 8,
            num_threads: 4,
            seed: 1,
        },
    );
    let mut postmhl = PostMhl::build(&g, PostMhlConfig::default());
    let mut group = c.benchmark_group("ablation_td_partitioning");
    group.sample_size(10);
    group.bench_function("pmhl_region_growing_final_stage", |b| {
        let mut it = queries.as_slice().iter().cycle();
        b.iter(|| {
            let q = it.next().unwrap();
            pmhl.distance(&g, q.source, q.target)
        })
    });
    group.bench_function("postmhl_td_partitioning_final_stage", |b| {
        let mut it = queries.as_slice().iter().cycle();
        b.iter(|| {
            let q = it.next().unwrap();
            postmhl.distance(&g, q.source, q.target)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_cross_boundary,
    ablation_multistage,
    ablation_td_partitioning
);
criterion_main!(benches);
