//! Fig. 11(b): query latency per algorithm (fully updated index).
//!
//! Run with `cargo bench -p htsp-bench --bench query_latency`.

use htsp_baselines::{BiDijkstraBaseline, DchBaseline, Dh2hBaseline};
use htsp_bench::micro;
use htsp_core::{Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp_graph::gen::{grid_with_diagonals, WeightRange};
use htsp_graph::{IndexMaintainer, QuerySet};
use htsp_psp::{NChP, PTdP};

fn main() {
    let g = grid_with_diagonals(40, 40, WeightRange::new(1, 100), 0.1, 42);
    let queries = QuerySet::random(&g, 256, 7);
    let mut group = micro::group("query_latency");

    // The snapshot is taken once, outside the timed loop: the bench measures
    // query latency, not per-call view construction.
    macro_rules! bench_alg {
        ($name:expr, $idx:expr) => {{
            let idx = $idx;
            let view = idx.current_view();
            let mut i = 0usize;
            group.bench($name, || {
                let q = &queries.as_slice()[i % queries.len()];
                i += 1;
                view.distance(q.source, q.target)
            });
        }};
    }

    bench_alg!("BiDijkstra", BiDijkstraBaseline::new(&g));
    bench_alg!("DCH", DchBaseline::build(&g));
    bench_alg!("DH2H", Dh2hBaseline::build(&g));
    bench_alg!("N-CH-P", NChP::build(&g, 8, 1));
    bench_alg!("P-TD-P", PTdP::build(&g, 8, 1));
    bench_alg!(
        "PMHL",
        Pmhl::build(
            &g,
            PmhlConfig {
                num_partitions: 8,
                num_threads: 4,
                seed: 1
            }
        )
    );
    bench_alg!("PostMHL", PostMhl::build(&g, PostMhlConfig::default()));
}
