//! Fig. 11(b): query latency per algorithm (fully updated index).

use criterion::{criterion_group, criterion_main, Criterion};
use htsp_baselines::{BiDijkstraBaseline, DchBaseline, Dh2hBaseline};
use htsp_core::{Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp_graph::gen::{grid_with_diagonals, WeightRange};
use htsp_graph::{DynamicSpIndex, QuerySet};
use htsp_psp::{NChP, PTdP};

fn bench_queries(c: &mut Criterion) {
    let g = grid_with_diagonals(40, 40, WeightRange::new(1, 100), 0.1, 42);
    let queries = QuerySet::random(&g, 256, 7);
    let mut group = c.benchmark_group("query_latency");
    group.sample_size(10);

    macro_rules! bench_alg {
        ($name:expr, $idx:expr) => {{
            let mut idx = $idx;
            group.bench_function($name, |b| {
                let mut it = queries.as_slice().iter().cycle();
                b.iter(|| {
                    let q = it.next().unwrap();
                    idx.distance(&g, q.source, q.target)
                })
            });
        }};
    }

    bench_alg!("BiDijkstra", BiDijkstraBaseline::new(g.num_vertices()));
    bench_alg!("DCH", DchBaseline::build(&g));
    bench_alg!("DH2H", Dh2hBaseline::build(&g));
    bench_alg!("N-CH-P", NChP::build(&g, 8, 1));
    bench_alg!("P-TD-P", PTdP::build(&g, 8, 1));
    bench_alg!(
        "PMHL",
        Pmhl::build(
            &g,
            PmhlConfig {
                num_partitions: 8,
                num_threads: 4,
                seed: 1
            }
        )
    );
    bench_alg!("PostMHL", PostMhl::build(&g, PostMhlConfig::default()));
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
