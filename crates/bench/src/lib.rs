//! # htsp-bench
//!
//! Experiment harness regenerating the tables and figures of the paper's
//! evaluation section (§VII) at laptop scale.
//!
//! The `htsp-experiments` binary (see `src/bin/experiments.rs`) exposes one
//! subcommand per experiment (Exp. 1 – Exp. 8 plus the dataset table), and the
//! benches under `benches/` (plain `harness = false` programs built on
//! [`micro`]) cover the micro-level measurements (index construction, query
//! latency per algorithm, update latency per algorithm, and the ablations
//! listed in DESIGN.md).
//!
//! This library crate holds the shared plumbing: dataset presets, named
//! slices of the [`AlgorithmKind`] registry (which lives in
//! `htsp-throughput`), table formatting, and the [`micro`] timing loop.

#![warn(missing_docs)]

pub mod json;
pub mod micro;

use htsp_graph::{gen, Graph, IndexMaintainer};
use htsp_throughput::{
    AlgorithmKind, BuildParams, CoalescePolicy, RoadNetworkServer, SystemConfig, ThroughputHarness,
    ThroughputResult,
};

/// Which algorithms to instantiate for an experiment. Each set names a slice
/// of the [`AlgorithmKind`] registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmSet {
    /// Every algorithm of the paper's comparison (Fig. 11/12).
    All,
    /// Only the paper's contributions (PMHL + PostMHL).
    OursOnly,
    /// Everything except the slowest baselines (used on larger presets).
    Fast,
}

impl AlgorithmSet {
    /// The registry kinds this set names.
    pub fn kinds(self) -> &'static [AlgorithmKind] {
        match self {
            AlgorithmSet::All => &AlgorithmKind::ALL,
            AlgorithmSet::OursOnly => &AlgorithmKind::OURS,
            AlgorithmSet::Fast => &AlgorithmKind::FAST,
        }
    }
}

/// The named experiment datasets: laptop-scale stand-ins for Table I.
pub fn datasets() -> Vec<(String, Graph)> {
    gen::Preset::all()
        .iter()
        .map(|p| (p.name().to_string(), p.build(42)))
        .collect()
}

/// A small/medium pair used by most experiments (keeps runtimes short).
pub fn default_experiment_graphs() -> Vec<(String, Graph)> {
    vec![
        (
            gen::Preset::Tiny.name().to_string(),
            gen::Preset::Tiny.build(42),
        ),
        (
            gen::Preset::Small.name().to_string(),
            gen::Preset::Small.build(42),
        ),
    ]
}

/// Builds the requested algorithm instances over `graph` through the
/// [`AlgorithmKind`] registry.
///
/// `k` is the partition count for the partitioned indexes and `threads` the
/// maintenance thread count.
pub fn build_algorithms(
    graph: &Graph,
    set: AlgorithmSet,
    k: usize,
    threads: usize,
) -> Vec<Box<dyn IndexMaintainer>> {
    let params = BuildParams::new(k, threads);
    set.kinds()
        .iter()
        .map(|kind| kind.build(graph, &params))
        .collect()
}

/// Hosts one registry algorithm over `graph` in a measurement-friendly
/// [`RoadNetworkServer`]: manual flushing only (the harnesses force their
/// own batch boundaries), no query workers.
pub fn host_algorithm(
    graph: &Graph,
    kind: AlgorithmKind,
    k: usize,
    threads: usize,
) -> RoadNetworkServer {
    RoadNetworkServer::builder()
        .algorithm(kind)
        .build_params(BuildParams::new(k, threads))
        .coalesce(CoalescePolicy::manual())
        .start(graph)
}

/// Runs the throughput harness for every algorithm in `set` (each hosted in
/// its own [`RoadNetworkServer`]) and returns the per-algorithm results.
pub fn run_throughput_comparison(
    graph: &Graph,
    set: AlgorithmSet,
    config: SystemConfig,
    k: usize,
    threads: usize,
    num_batches: usize,
) -> Vec<ThroughputResult> {
    let harness = ThroughputHarness::new(config, 7, num_batches);
    set.kinds()
        .iter()
        .map(|&kind| {
            let server = host_algorithm(graph, kind, k, threads);
            let result = harness.run(&server);
            server.shutdown();
            result
        })
        .collect()
}

/// Formats one result row of the throughput comparison tables.
pub fn format_result_row(name: &str, r: &ThroughputResult) -> String {
    format!(
        "{:<12} | t_u = {:>9.4} s | t_q = {:>10.3} µs | |L| = {:>8.2} MB | λ*_q = {:>12.1} q/s",
        name,
        r.avg_update_time,
        r.avg_query_time * 1e6,
        r.index_size_bytes as f64 / (1024.0 * 1024.0),
        r.throughput(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_presets_are_available() {
        let d = datasets();
        assert_eq!(d.len(), 4);
        for (name, g) in &d {
            assert!(!name.is_empty());
            assert!(g.num_vertices() >= 1000);
        }
    }

    #[test]
    fn algorithm_registry_builds_ours() {
        let g = gen::grid(8, 8, gen::WeightRange::new(1, 20), 3);
        let algs = build_algorithms(&g, AlgorithmSet::OursOnly, 4, 2);
        assert_eq!(algs.len(), 2);
        let names: Vec<_> = algs.iter().map(|a| a.name()).collect();
        assert!(names.contains(&"PMHL"));
        assert!(names.contains(&"PostMHL"));
        assert_eq!(AlgorithmSet::All.kinds().len(), 9);
    }
}
