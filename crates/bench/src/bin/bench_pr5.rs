//! `bench-pr5` — emits `BENCH_pr5.json`: the snapshot-versioned
//! [`DistanceCache`](htsp_throughput::DistanceCache) measured under Zipf
//! hot-pair traffic, swept over **skew × cache capacity × update rate**.
//!
//! Each run drives the real serving stack: a `RoadNetworkServer` (manual
//! coalescing, one flushed batch per engine round) measured by the
//! `QueryEngine` in [`WorkloadKind::HotPairs`] mode — every worker draws
//! from a deterministic Zipf stream over a universe of hot
//! origin–destination pairs, exactly the skew real navigation traffic
//! shows. The same workload runs **cached and uncached** (the cache is the
//! only difference; the index machinery is reused across runs via
//! `shutdown()`), so the cached-vs-uncached QPS ratio isolates what the
//! cache buys:
//!
//! * **skew sweep** — hit rate must grow with the Zipf exponent `s` at a
//!   capacity below the universe (more skew → more of the mass fits);
//! * **capacity sweep** — hit rate grows with capacity until the universe
//!   fits, after which it saturates (compulsory + invalidation misses);
//! * **update-rate sweep** — every publication invalidates by epoch, so a
//!   higher `|U|`-per-round ingest stream costs hit rate and shows up in
//!   the submit-to-visible lag alongside.
//!
//! The `summary` section asserts the two acceptance directions: cached QPS
//! ≥ uncached QPS on the skewed workload for the search-based algorithms
//! (BiDijkstra / DCH / N-CH-P — for label-based PostMHL a ~100 ns lookup
//! competes with the probe itself, so it is reported but not asserted), and
//! hit rate strictly increasing with skew.
//!
//! Usage: `cargo run --release -p htsp-bench --bin bench-pr5 [--smoke] [output.json]`
//!
//! `--smoke` shrinks the sweep so CI proves the cache path end to end in
//! seconds (and writes to /tmp by default). The nonzero-hit-rate assertion
//! is enforced even in smoke mode: every push exercises a cache hit.

use htsp_bench::json::Json;
use htsp_throughput::{
    AlgorithmKind, BuildParams, CacheConfig, CoalescePolicy, EngineReport, QueryEngine,
    RoadNetworkServer, WorkloadKind,
};
use std::time::Duration;

struct BenchConfig {
    smoke: bool,
    side: usize,
    workers: usize,
    batches: usize,
    pause: Duration,
    /// Hot-pair universe (= engine query-pool size).
    universe: usize,
    /// Fixed knobs of the sweeps not currently being swept.
    fixed_skew: f64,
    fixed_capacity: usize,
    fixed_volume: usize,
}

struct Run {
    zipf_s: f64,
    capacity: usize,
    update_volume: usize,
    cached: bool,
    report: EngineReport,
}

impl Run {
    fn hit_rate(&self) -> f64 {
        self.report.cache.map(|c| c.hit_rate()).unwrap_or(0.0)
    }

    fn lag_p50_s(&self) -> f64 {
        self.report.visibility_lags.quantile_secs(0.5)
    }
}

/// One engine run against a freshly started server hosting `maintainer`;
/// the maintainer (and the drifted graph) are handed back for the next run.
#[allow(clippy::too_many_arguments)]
fn run_once(
    cfg: &BenchConfig,
    kind: AlgorithmKind,
    maintainer: Box<dyn htsp_graph::IndexMaintainer>,
    graph: htsp_graph::Graph,
    zipf_s: f64,
    capacity: Option<usize>,
    update_volume: usize,
) -> (Run, Box<dyn htsp_graph::IndexMaintainer>, htsp_graph::Graph) {
    let mut builder = RoadNetworkServer::builder()
        .maintainer(maintainer)
        .coalesce(CoalescePolicy::manual());
    if let Some(capacity) = capacity {
        builder = builder.result_cache(CacheConfig::with_capacity(capacity));
    }
    let server = builder.start(&graph);
    let engine = QueryEngine::builder()
        .workers(cfg.workers)
        .batches(cfg.batches)
        .update_volume(update_volume)
        .pause_between_batches(cfg.pause)
        .query_pool(cfg.universe)
        .workload(WorkloadKind::HotPairs {
            zipf_s,
            universe: cfg.universe,
        })
        .seed(4242)
        .build();
    let report = engine.run(&server);
    let graph = server.with_graph(|g| g.clone());
    let maintainer = server.shutdown();
    let run = Run {
        zipf_s,
        capacity: capacity.unwrap_or(0),
        update_volume,
        cached: capacity.is_some(),
        report,
    };
    eprintln!(
        "bench-pr5:   {kind} s = {zipf_s:>3.1}, cap = {:>6}, |U| = {update_volume:>3}: \
         {:>9.0} pairs/s | hit rate {:>5.1}% | visible p50 {:>6.2} ms",
        capacity
            .map(|c| c.to_string())
            .unwrap_or_else(|| "off".into()),
        run.report.measured_qps,
        run.report
            .cache
            .map(|c| c.hit_rate() * 100.0)
            .unwrap_or(0.0),
        run.lag_p50_s() * 1e3,
    );
    (run, maintainer, graph)
}

fn run_json(r: &Run) -> Json {
    let cache = r.report.cache;
    Json::Obj(vec![
        ("zipf_s", Json::Num(r.zipf_s)),
        ("cache_capacity", Json::Int(r.capacity as u64)),
        ("update_volume", Json::Int(r.update_volume as u64)),
        ("cached", Json::Str(r.cached.to_string())),
        ("pairs_per_s", Json::Num(r.report.measured_qps)),
        ("total_pairs", Json::Int(r.report.total_queries)),
        ("hit_rate", Json::Num(r.hit_rate())),
        ("cache_hits", Json::Int(cache.map(|c| c.hits).unwrap_or(0))),
        (
            "cache_stale_misses",
            Json::Int(cache.map(|c| c.stale_misses).unwrap_or(0)),
        ),
        (
            "cache_evictions",
            Json::Int(cache.map(|c| c.evictions).unwrap_or(0)),
        ),
        ("submit_to_visible_p50_s", Json::Num(r.lag_p50_s())),
        ("wall_s", Json::Num(r.report.wall_time)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| {
            if smoke {
                "/tmp/BENCH_pr5_smoke.json".to_string()
            } else {
                "BENCH_pr5.json".to_string()
            }
        });
    let cfg = if smoke {
        BenchConfig {
            smoke: true,
            side: 12,
            workers: 2,
            batches: 2,
            pause: Duration::from_millis(25),
            universe: 512,
            fixed_skew: 1.2,
            fixed_capacity: 64,
            fixed_volume: 4,
        }
    } else {
        BenchConfig {
            smoke: false,
            side: 32,
            workers: 3,
            batches: 3,
            pause: Duration::from_millis(40),
            universe: 2048,
            fixed_skew: 1.1,
            fixed_capacity: 256,
            fixed_volume: 4,
        }
    };

    let road = htsp_graph::gen::grid_with_diagonals(
        cfg.side,
        cfg.side,
        htsp_graph::gen::WeightRange::new(1, 100),
        0.1,
        42,
    );
    eprintln!(
        "bench-pr5: {0}x{0} grid, |V| = {1}, |E| = {2}{3}",
        cfg.side,
        road.num_vertices(),
        road.num_edges(),
        if cfg.smoke { " (smoke)" } else { "" }
    );

    // The asserted set is search-based (where a hit skips real work);
    // PostMHL rides along as the label-lookup contrast in the full sweep.
    let (asserted, contrast): (Vec<AlgorithmKind>, Vec<AlgorithmKind>) = if cfg.smoke {
        (vec![AlgorithmKind::Dch], vec![])
    } else {
        (
            vec![
                AlgorithmKind::BiDijkstra,
                AlgorithmKind::Dch,
                AlgorithmKind::NChP,
            ],
            vec![AlgorithmKind::PostMhl],
        )
    };
    let skews: Vec<f64> = if cfg.smoke {
        vec![0.0, 1.2]
    } else {
        vec![0.0, 0.6, 1.1, 1.6]
    };
    let capacities: Vec<usize> = if cfg.smoke {
        vec![64]
    } else {
        vec![64, 512, 4096]
    };
    let volumes: Vec<usize> = if cfg.smoke { vec![4] } else { vec![0, 8, 64] };

    let mut algo_rows = Vec::new();
    let mut summary_rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for kind in asserted.iter().chain(contrast.iter()).copied() {
        eprintln!("bench-pr5: building {kind} index...");
        let mut maintainer = kind.build(&road, &BuildParams::default());
        let mut graph = road.clone();
        let mut runs: Vec<Run> = Vec::new();

        // 1. Skew sweep, cached + uncached at the fixed capacity.
        for &s in &skews {
            for capacity in [None, Some(cfg.fixed_capacity)] {
                let (run, m, g) =
                    run_once(&cfg, kind, maintainer, graph, s, capacity, cfg.fixed_volume);
                maintainer = m;
                graph = g;
                runs.push(run);
            }
        }
        // 2. Capacity sweep at the fixed skew (cached; skew sweep already
        //    produced the capacity = fixed point).
        for &capacity in &capacities {
            if capacity == cfg.fixed_capacity {
                continue;
            }
            let (run, m, g) = run_once(
                &cfg,
                kind,
                maintainer,
                graph,
                cfg.fixed_skew,
                Some(capacity),
                cfg.fixed_volume,
            );
            maintainer = m;
            graph = g;
            runs.push(run);
        }
        // 3. Update-rate sweep at the fixed skew and capacity.
        for &volume in &volumes {
            if volume == cfg.fixed_volume {
                continue;
            }
            let (run, m, g) = run_once(
                &cfg,
                kind,
                maintainer,
                graph,
                cfg.fixed_skew,
                Some(cfg.fixed_capacity),
                volume,
            );
            maintainer = m;
            graph = g;
            runs.push(run);
        }
        drop(maintainer);

        // Direction checks. (a) Nonzero hit rate under skew — enforced even
        // in smoke mode, so CI proves the cache path on every push.
        let max_skew = skews.last().copied().unwrap_or(cfg.fixed_skew);
        let hit_at = |s: f64| {
            runs.iter()
                .find(|r| r.cached && r.zipf_s == s && r.update_volume == cfg.fixed_volume)
                .map(|r| r.hit_rate())
                .unwrap_or(0.0)
        };
        if hit_at(max_skew) <= 0.0 {
            failures.push(format!(
                "{kind}: zero hit rate under skew s = {max_skew} — the cache path was not exercised"
            ));
        }
        // (b) Hit rate increases with skew across the sweep.
        let skew_rates: Vec<f64> = skews.iter().map(|&s| hit_at(s)).collect();
        let monotone = skew_rates.windows(2).all(|w| w[1] > w[0]);
        if !monotone {
            failures.push(format!(
                "{kind}: hit rate not increasing with skew: {skew_rates:?}"
            ));
        }
        // (c) Cached QPS >= uncached QPS on the skewed workload (asserted
        // for the search-based set only).
        let qps_of = |s: f64, cached: bool| {
            runs.iter()
                .find(|r| {
                    r.cached == cached && r.zipf_s == s && r.update_volume == cfg.fixed_volume
                })
                .map(|r| r.report.measured_qps)
                .unwrap_or(0.0)
        };
        let cached_wins = qps_of(max_skew, true) >= qps_of(max_skew, false);
        if !cached_wins && asserted.contains(&kind) {
            failures.push(format!(
                "{kind}: cached QPS {:.0} < uncached QPS {:.0} at s = {max_skew}",
                qps_of(max_skew, true),
                qps_of(max_skew, false)
            ));
        }
        summary_rows.push(Json::Obj(vec![
            ("algorithm", Json::Str(kind.name().to_string())),
            ("asserted", Json::Str(asserted.contains(&kind).to_string())),
            (
                "cached_qps_ge_uncached_at_max_skew",
                Json::Str(cached_wins.to_string()),
            ),
            (
                "hit_rate_increases_with_skew",
                Json::Str(monotone.to_string()),
            ),
            (
                "speedup_at_max_skew",
                Json::Num(if qps_of(max_skew, false) > 0.0 {
                    qps_of(max_skew, true) / qps_of(max_skew, false)
                } else {
                    0.0
                }),
            ),
        ]));
        algo_rows.push(Json::Obj(vec![
            ("algorithm", Json::Str(kind.name().to_string())),
            ("runs", Json::Arr(runs.iter().map(run_json).collect())),
        ]));
    }

    let doc = Json::Obj(vec![
        ("bench", Json::Str("pr5".to_string())),
        (
            "description",
            Json::Str(
                "Snapshot-versioned DistanceCache under Zipf hot-pair traffic: the \
                 QueryEngine's HotPairs workload measured cached vs uncached over skew x \
                 cache capacity x update rate, on the RoadNetworkServer facade (manual \
                 coalescing, one flushed update batch per engine round; every publication \
                 invalidates the cache by epoch)"
                    .to_string(),
            ),
        ),
        (
            "graph",
            Json::Obj(vec![
                (
                    "kind",
                    Json::Str(format!("grid_with_diagonals {0}x{0}", cfg.side)),
                ),
                ("vertices", Json::Int(road.num_vertices() as u64)),
                ("edges", Json::Int(road.num_edges() as u64)),
            ]),
        ),
        (
            "load",
            Json::Obj(vec![
                (
                    "workload",
                    Json::Str("hot-pairs (Zipf over universe)".into()),
                ),
                ("universe", Json::Int(cfg.universe as u64)),
                ("query_workers", Json::Int(cfg.workers as u64)),
                ("engine_batches", Json::Int(cfg.batches as u64)),
                ("pause_ms", Json::Int(cfg.pause.as_millis() as u64)),
                ("fixed_skew", Json::Num(cfg.fixed_skew)),
                ("fixed_capacity", Json::Int(cfg.fixed_capacity as u64)),
                ("fixed_update_volume", Json::Int(cfg.fixed_volume as u64)),
            ]),
        ),
        ("algorithms", Json::Arr(algo_rows)),
        ("summary", Json::Arr(summary_rows)),
    ]);

    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_pr5.json");
    eprintln!("bench-pr5: wrote {out_path}");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench-pr5: FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
