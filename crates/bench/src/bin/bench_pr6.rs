//! `bench-pr6` — emits `BENCH_pr6.json`: the partition-sharded serving tier
//! ([`ShardedFleet`]) measured against the single-`RoadNetworkServer`
//! baseline under a **paced ingest stream**, swept over shard count ×
//! update rate.
//!
//! Every run replays the *same* pre-generated update stream at a fixed
//! submission rate (one update every `1/rate` seconds) and records each
//! update's submit-to-visible lag through its ticket:
//!
//! * **baseline** — one server repairs the whole graph per coalesced batch,
//!   so every update pays the full-graph repair time;
//! * **fleet** — the router fans each intra-partition update out to the one
//!   shard owning it; non-boundary updates become visible as soon as their
//!   (much smaller) shard repairs, while all touched shards repair in
//!   parallel and the overlay is maintained on the router thread alongside.
//!
//! The headline comparison is the **p50 lag of non-boundary updates** at
//! equal total update rate: a ≥4-shard fleet must beat the single server
//! (asserted in full mode; reported in smoke mode, where CI timing is too
//! noisy to gate on). Exactness is always asserted, in both modes: sampled
//! point-to-point queries — local and cross-shard — must match a global
//! Dijkstra run on the fleet session's own epoch graph *and* the single
//! server's answer on the same final weights.
//!
//! Query throughput rides along via the engine's sharded mode
//! (`QueryEngine::run_sharded`), and the JSON carries per-shard
//! visibility-lag percentiles (p50/p90/p99) next to the fleet QPS.
//!
//! Usage: `cargo run --release -p htsp-bench --bin bench-pr6 [--smoke] [output.json]`

use htsp_bench::json::Json;
use htsp_graph::{gen, EdgeUpdate, Graph, QuerySession, QuerySet, UpdateGenerator};
use htsp_partition::{partition_region_growing, PartitionResult};
use htsp_search::dijkstra_distance;
use htsp_throughput::{
    AlgorithmKind, CoalescePolicy, FleetConfig, LatencyHistogram, QueryEngine, RoadNetworkServer,
    ShardedFleet, WorkloadKind,
};
use std::time::{Duration, Instant};

struct BenchConfig {
    smoke: bool,
    side: usize,
    shard_counts: Vec<usize>,
    /// Paced submission rates in updates per second.
    rates: Vec<f64>,
    /// Updates per paced stream.
    stream_len: usize,
    /// The coalesce policy used by the baseline feed AND the fleet router,
    /// so both systems batch identically.
    coalesce: CoalescePolicy,
    /// Sampled point-to-point pairs for the exactness gate.
    verify_pairs: usize,
    /// Partition seed (shared by fleet and classification).
    seed: u64,
}

/// Pre-generates a deterministic update stream against a drifting mirror of
/// the initial graph, so every system replays identical `(old, new)` pairs.
fn make_stream(graph: &Graph, len: usize, seed: u64) -> Vec<EdgeUpdate> {
    let mut mirror = graph.clone();
    let mut gen = UpdateGenerator::new(seed);
    let mut stream = Vec::with_capacity(len);
    while stream.len() < len {
        let batch = gen.generate(&mirror, 1);
        mirror.apply_batch(&batch);
        stream.extend(batch.iter().copied());
    }
    stream.truncate(len);
    stream
}

/// `true` if the update touches a partition boundary under `partition`
/// (either endpoint is a boundary vertex, or the edge crosses partitions).
fn is_boundary_update(graph: &Graph, partition: &PartitionResult, u: &EdgeUpdate) -> bool {
    let (a, b) = graph.edge_endpoints(u.edge);
    !partition.same_partition(a, b) || partition.is_boundary(a) || partition.is_boundary(b)
}

/// Submits `stream` at `rate` updates/second and drains every ticket's
/// visibility on a companion thread (tickets resolve in submission order,
/// so draining in order measures each lag as it lands). Returns
/// `(all lags, non-boundary lags)` in seconds, per `boundary` flags.
fn pace<T, F, W>(stream_len: usize, rate: f64, boundary: &[bool], submit: F, wait: W) -> PacedLags
where
    F: Fn(usize) -> T,
    W: Fn(T) -> f64 + Send,
    T: Send,
{
    let interval = Duration::from_secs_f64(1.0 / rate);
    let (tx, rx) = std::sync::mpsc::channel::<(T, bool)>();
    std::thread::scope(|scope| {
        let drain = scope.spawn(move || {
            let mut all = LatencyHistogram::new();
            let mut non_boundary = LatencyHistogram::new();
            for (ticket, is_boundary) in rx {
                let lag = wait(ticket);
                all.record_secs(lag);
                if !is_boundary {
                    non_boundary.record_secs(lag);
                }
            }
            PacedLags { all, non_boundary }
        });
        let start = Instant::now();
        for (i, &is_boundary) in boundary.iter().enumerate().take(stream_len) {
            let due = start + interval.mul_f64(i as f64);
            std::thread::sleep(due.saturating_duration_since(Instant::now()));
            tx.send((submit(i), is_boundary)).expect("drainer alive");
        }
        drop(tx);
        drain.join().expect("drainer panicked")
    })
}

struct PacedLags {
    all: LatencyHistogram,
    non_boundary: LatencyHistogram,
}

fn lag_json(lags: &LatencyHistogram) -> Json {
    Json::Obj(vec![
        ("count", Json::Int(lags.count())),
        ("p50_s", Json::Num(lags.quantile_secs(0.50))),
        ("p90_s", Json::Num(lags.quantile_secs(0.90))),
        ("p99_s", Json::Num(lags.quantile_secs(0.99))),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| {
            if smoke {
                "/tmp/BENCH_pr6_smoke.json".to_string()
            } else {
                "BENCH_pr6.json".to_string()
            }
        });
    let cfg = if smoke {
        BenchConfig {
            smoke: true,
            side: 20,
            shard_counts: vec![1, 4],
            rates: vec![200.0],
            stream_len: 80,
            coalesce: CoalescePolicy::new(32, Duration::from_millis(20)),
            verify_pairs: 40,
            seed: 1,
        }
    } else {
        BenchConfig {
            smoke: false,
            side: 64,
            shard_counts: vec![1, 2, 4, 8],
            rates: vec![100.0, 400.0],
            stream_len: 300,
            coalesce: CoalescePolicy::new(32, Duration::from_millis(20)),
            verify_pairs: 80,
            seed: 1,
        }
    };

    let road = gen::grid(cfg.side, cfg.side, gen::WeightRange::new(1, 100), 42);
    eprintln!(
        "bench-pr6: {0}x{0} grid, |V| = {1}, |E| = {2}{3}",
        cfg.side,
        road.num_vertices(),
        road.num_edges(),
        if cfg.smoke { " (smoke)" } else { "" }
    );
    let stream = make_stream(&road, cfg.stream_len, 7);
    // Boundary classification per shard count (the fleet uses the same
    // deterministic partitioner, so this matches the router's view).
    let classify = |k: usize| -> Vec<bool> {
        let partition = partition_region_growing(&road, k, cfg.seed);
        stream
            .iter()
            .map(|u| is_boundary_update(&road, &partition, u))
            .collect()
    };
    let engine = QueryEngine::builder()
        .workers(2)
        .batches(1)
        .update_volume(0)
        .pause_between_batches(Duration::from_millis(50))
        .query_pool(512)
        .workload(WorkloadKind::Batched { batch_size: 16 })
        .seed(4242)
        .build();

    let mut failures: Vec<String> = Vec::new();
    let mut rate_rows = Vec::new();
    let mut summary_rows = Vec::new();
    for &rate in &cfg.rates {
        // --- Baseline: one server, whole-graph repairs. ---
        eprintln!("bench-pr6: rate {rate:>5.0}/s baseline: building dch on the full grid...");
        let server = RoadNetworkServer::builder()
            .algorithm(AlgorithmKind::Dch)
            .coalesce(cfg.coalesce)
            .start(&road);
        // Non-boundary classification for the baseline row uses the 4-shard
        // partition — the acceptance comparison below is fleet(4) vs this.
        let baseline_boundary = classify(4);
        let baseline_lags = pace(
            cfg.stream_len,
            rate,
            &baseline_boundary,
            |i| server.submit(stream[i]),
            |t| t.wait_visible().latency.as_secs_f64(),
        );
        server.feed().wait_idle();
        let baseline_report = engine.run(&server);
        eprintln!(
            "bench-pr6: rate {rate:>5.0}/s baseline: p50 {:.2} ms (non-boundary {:.2} ms), {:.0} pairs/s",
            baseline_lags.all.quantile_secs(0.5) * 1e3,
            baseline_lags.non_boundary.quantile_secs(0.5) * 1e3,
            baseline_report.measured_qps,
        );

        // --- Fleet sweep over shard counts at the same rate. ---
        let mut fleet_rows = Vec::new();
        let mut p50_by_shards: Vec<(usize, f64)> = Vec::new();
        for &k in &cfg.shard_counts {
            eprintln!("bench-pr6: rate {rate:>5.0}/s fleet({k}): building {k} dch shards...");
            let fleet = ShardedFleet::start(
                &road,
                FleetConfig::new(k, AlgorithmKind::Dch).with_coalesce(cfg.coalesce),
            );
            let boundary = classify(k);
            let lags = pace(
                cfg.stream_len,
                rate,
                &boundary,
                |i| fleet.submit(stream[i]),
                |t| t.wait_visible().latency.as_secs_f64(),
            );
            fleet.wait_idle();
            let fleet_report = fleet.report();
            let engine_report = engine.run_sharded(&fleet);

            // Exactness gate: sampled pairs (local and cross-shard) must
            // match global Dijkstra on the epoch graph AND the single
            // server's answer on the same fully-applied stream.
            let mut session = fleet.session();
            let queries = QuerySet::random(session.graph(), cfg.verify_pairs, 99);
            let mut cross_checked = 0usize;
            let partition = partition_region_growing(&road, k, cfg.seed);
            for q in &queries {
                let got = session.distance(q.source, q.target);
                let expect = dijkstra_distance(session.graph(), q.source, q.target);
                if got != expect {
                    failures.push(format!(
                        "fleet({k}) at {rate}/s: d({:?}, {:?}) = {got:?}, Dijkstra says {expect:?}",
                        q.source, q.target
                    ));
                }
                let single = server.distance(q.source, q.target);
                if got != single {
                    failures.push(format!(
                        "fleet({k}) at {rate}/s: d({:?}, {:?}) = {got:?} differs from the \
                         single-server answer {single:?}",
                        q.source, q.target
                    ));
                }
                if partition.partition_of(q.source) != partition.partition_of(q.target) {
                    cross_checked += 1;
                }
            }
            eprintln!(
                "bench-pr6: rate {rate:>5.0}/s fleet({k}): p50 {:.2} ms (non-boundary {:.2} ms), \
                 {:.0} pairs/s, {cross_checked}/{} cross-shard pairs exact",
                lags.all.quantile_secs(0.5) * 1e3,
                lags.non_boundary.quantile_secs(0.5) * 1e3,
                engine_report.measured_qps,
                queries.len(),
            );
            p50_by_shards.push((k, lags.non_boundary.quantile_secs(0.5)));

            let per_shard: Vec<Json> = fleet_report
                .shards
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("shard", Json::Int(s.shard as u64)),
                        ("vertices", Json::Int(s.vertices as u64)),
                        ("boundary", Json::Int(s.boundary as u64)),
                        ("updates_routed", Json::Int(s.updates_routed)),
                        ("batches", Json::Int(s.batches)),
                        ("visibility_lag", lag_json(&s.visibility_lags)),
                    ])
                })
                .collect();
            fleet_rows.push(Json::Obj(vec![
                ("shards", Json::Int(k as u64)),
                ("fleet_qps", Json::Num(engine_report.measured_qps)),
                (
                    "boundary_fraction",
                    Json::Num(fleet_report.boundary_fraction),
                ),
                ("balance", Json::Num(fleet_report.balance)),
                (
                    "overlay_vertices",
                    Json::Int(fleet_report.overlay_vertices as u64),
                ),
                (
                    "overlay_edges",
                    Json::Int(fleet_report.overlay_edges as u64),
                ),
                ("boundary_updates", Json::Int(fleet_report.boundary_updates)),
                ("fleet_batches", Json::Int(fleet_report.fleet_batches)),
                ("lag_all", lag_json(&lags.all)),
                ("lag_non_boundary", lag_json(&lags.non_boundary)),
                ("per_shard", Json::Arr(per_shard)),
                ("cross_shard_pairs_checked", Json::Int(cross_checked as u64)),
            ]));
            fleet.shutdown();
        }

        // Acceptance direction: a >= 4-shard fleet beats the baseline's p50
        // non-boundary lag at equal rate (asserted in full mode only —
        // smoke CI boxes are too noisy to gate on wall-clock).
        let baseline_p50 = baseline_lags.non_boundary.quantile_secs(0.5);
        let fleet4_p50 = p50_by_shards
            .iter()
            .find(|&&(k, _)| k >= 4)
            .map(|&(_, p)| p);
        let improved = fleet4_p50.map(|p| p < baseline_p50).unwrap_or(false);
        if !improved && !cfg.smoke {
            failures.push(format!(
                "rate {rate}/s: fleet(>=4) p50 non-boundary lag {:?} s not below the \
                 single-server baseline {baseline_p50} s",
                fleet4_p50
            ));
        }
        summary_rows.push(Json::Obj(vec![
            ("rate_per_s", Json::Num(rate)),
            ("baseline_p50_non_boundary_s", Json::Num(baseline_p50)),
            (
                "fleet4_p50_non_boundary_s",
                Json::Num(fleet4_p50.unwrap_or(0.0)),
            ),
            ("fleet_beats_baseline", Json::Str(improved.to_string())),
            (
                "speedup",
                Json::Num(match fleet4_p50 {
                    Some(p) if p > 0.0 => baseline_p50 / p,
                    _ => 0.0,
                }),
            ),
        ]));
        rate_rows.push(Json::Obj(vec![
            ("rate_per_s", Json::Num(rate)),
            (
                "baseline",
                Json::Obj(vec![
                    ("algorithm", Json::Str("dch".to_string())),
                    ("qps", Json::Num(baseline_report.measured_qps)),
                    ("lag_all", lag_json(&baseline_lags.all)),
                    ("lag_non_boundary", lag_json(&baseline_lags.non_boundary)),
                ]),
            ),
            ("fleets", Json::Arr(fleet_rows)),
        ]));
        server.shutdown();
    }

    let doc = Json::Obj(vec![
        ("bench", Json::Str("pr6".to_string())),
        (
            "description",
            Json::Str(
                "Partition-sharded serving tier vs single server under a paced ingest \
                 stream: one ShardedFleet per shard count (DCH shards, fleet-level \
                 coalescing, boundary overlay maintained by the router) replays the same \
                 update stream as a single RoadNetworkServer at equal rate; per-update \
                 submit-to-visible lag is measured through the tickets, and sampled \
                 point-to-point answers (local and cross-shard) are asserted equal to \
                 global Dijkstra and to the single-server answers"
                    .to_string(),
            ),
        ),
        (
            "graph",
            Json::Obj(vec![
                ("kind", Json::Str(format!("grid {0}x{0}", cfg.side))),
                ("vertices", Json::Int(road.num_vertices() as u64)),
                ("edges", Json::Int(road.num_edges() as u64)),
            ]),
        ),
        (
            "ingest",
            Json::Obj(vec![
                ("stream_len", Json::Int(cfg.stream_len as u64)),
                (
                    "coalesce_max_batch",
                    Json::Int(cfg.coalesce.max_batch as u64),
                ),
                (
                    "coalesce_max_delay_ms",
                    Json::Int(cfg.coalesce.max_delay.as_millis() as u64),
                ),
                ("verify_pairs", Json::Int(cfg.verify_pairs as u64)),
            ]),
        ),
        ("rates", Json::Arr(rate_rows)),
        ("summary", Json::Arr(summary_rows)),
    ]);

    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_pr6.json");
    eprintln!("bench-pr6: wrote {out_path}");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench-pr6: FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
