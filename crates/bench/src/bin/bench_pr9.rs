//! `bench-pr9` — emits `BENCH_pr9.json`: the large-graph storage &
//! persistence benchmark.
//!
//! Three sections, each with a hard exactness gate:
//!
//! * **streaming ingest** — a ≥1M-edge grid is written to DIMACS `.gr` and
//!   streamed back through [`load_dimacs_streaming_file`] into the flat
//!   [`CsrGraph`] (no adjacency-list intermediate). The section records
//!   ingest throughput and the per-component heap footprint, and asserts
//!   that the per-block u16 weight quantization is **lossless** (every edge
//!   weight identical to the source) while shrinking weight storage at
//!   least 2× against a plain `u64`-per-arc layout.
//! * **warm restart** — for each algorithm with a native snapshot codec
//!   (DCH, TOAIN, DH2H, MHL), a server is cold-built, snapshotted through
//!   [`RoadNetworkServer::save_snapshot`], and restarted through
//!   [`htsp_throughput::ServerBuilder::start_from_snapshot`]; restored
//!   answers must equal
//!   the pre-snapshot answers and a Dijkstra ground truth, and in full
//!   mode at least two algorithms must restart ≥10× faster than they
//!   cold-build.
//! * **serving** — a restored server answers a closed query loop while the
//!   `htsp_storage_bytes{component=...}` gauges report the live memory
//!   split, so QPS and bytes land side by side in the JSON; the Prometheus
//!   export is validated and must carry the storage gauges.
//!
//! `--smoke` streams the bundled `fixtures/smoke.gr` (comments and blank
//! lines interspersed) instead of generating the large grid, also routes it
//! through [`ShardedFleet::from_dimacs`], and keeps every exactness gate
//! while dropping the wall-clock ones (CI boxes are too noisy to gate on
//! timing).
//!
//! Usage: `cargo run --release -p htsp-bench --bin bench-pr9 [--smoke] [output.json]`

use htsp_bench::json::Json;
use htsp_graph::dimacs::{load_dimacs_streaming_file, write_gr_file};
use htsp_graph::{gen, CsrGraph, Graph, QuerySet};
use htsp_search::dijkstra_distance;
use htsp_throughput::{
    validate_prometheus, AlgorithmKind, BuildParams, CoalescePolicy, FleetConfig,
    RoadNetworkServer, ShardedFleet, STORAGE_BYTES_METRIC,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct BenchConfig {
    smoke: bool,
    /// Grid side for the streaming-ingest section (full mode only; smoke
    /// streams the bundled fixture instead).
    ingest_side: usize,
    /// Grid side for the warm-restart and serving sections.
    restart_side: usize,
    /// Algorithms measured in the warm-restart section.
    algorithms: Vec<AlgorithmKind>,
    /// Sampled point-to-point pairs per exactness gate.
    verify_pairs: usize,
    /// Closed-loop query window for the serving section.
    qps_window: Duration,
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("htsp_pr9_{}_{name}", std::process::id()))
}

/// The bundled smoke fixture, resolved relative to the crate so the binary
/// works from any working directory.
fn fixture_path() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/smoke.gr"))
}

/// Asserts the CSR answers queries exactly like the adjacency-list graph
/// it was streamed against, and returns the sampled pair count.
fn assert_csr_exact(csr: &CsrGraph, reference: &Graph, pairs: usize, seed: u64) -> usize {
    assert_eq!(csr.num_vertices(), reference.num_vertices(), "vertex count");
    assert_eq!(csr.num_edges(), reference.num_edges(), "edge count");
    let queries = QuerySet::random(reference, pairs, seed);
    for q in &queries {
        let via_csr = dijkstra_distance(csr, q.source, q.target);
        let via_adj = dijkstra_distance(reference, q.source, q.target);
        assert_eq!(via_csr, via_adj, "CSR answer deviates for {q:?}");
    }
    queries.len()
}

/// Streams a `.gr` file, checks quantization losslessness + compression,
/// and returns the JSON record for the section.
fn ingest_section(path: &PathBuf, reference: &Graph, cfg: &BenchConfig) -> Json {
    let t0 = Instant::now();
    let csr = load_dimacs_streaming_file(path).expect("stream .gr file");
    let ingest = t0.elapsed();

    // Lossless quantization: every edge weight round-trips exactly. The
    // streaming loader assigns edge ids in sorted (u, v) order, so the join
    // against the reference graph goes through endpoints, not ids.
    let mut by_endpoints = std::collections::HashMap::with_capacity(reference.num_edges());
    for (_, u, v, w) in reference.edges() {
        let key = if u.0 < v.0 { (u, v) } else { (v, u) };
        by_endpoints.insert(key, w);
    }
    for idx in 0..csr.num_edges() {
        let e = htsp_graph::EdgeId::from_index(idx);
        let (u, v) = csr.edge_endpoints(e);
        let key = if u.0 < v.0 { (u, v) } else { (v, u) };
        let expect = by_endpoints
            .get(&key)
            .unwrap_or_else(|| panic!("CSR edge {key:?} missing from reference"));
        assert_eq!(csr.edge_weight(e), *expect, "weight drifted for {key:?}");
    }
    let verified = assert_csr_exact(&csr, reference, cfg.verify_pairs, 1009);

    let fp = csr.heap_bytes();
    // A plain layout stores one u64 weight per directed arc.
    let naive_weight_bytes = csr.num_arcs() * std::mem::size_of::<u64>();
    let ratio = naive_weight_bytes as f64 / fp.weight_bytes.max(1) as f64;
    assert!(
        ratio >= 2.0,
        "quantized weight storage must shrink >= 2x vs u64 (got {ratio:.2}x)"
    );
    let edges_per_s = csr.num_edges() as f64 / ingest.as_secs_f64();
    println!(
        "ingest: {} vertices, {} edges in {:.2}s ({:.0} edges/s); weights {:.2}x smaller than u64, {verified} pairs exact",
        csr.num_vertices(),
        csr.num_edges(),
        ingest.as_secs_f64(),
        edges_per_s,
        ratio
    );

    Json::Obj(vec![
        ("file", Json::Str(path.display().to_string())),
        ("vertices", Json::Int(csr.num_vertices() as u64)),
        ("edges", Json::Int(csr.num_edges() as u64)),
        ("ingest_seconds", Json::Num(ingest.as_secs_f64())),
        ("edges_per_second", Json::Num(edges_per_s)),
        (
            "heap_bytes",
            Json::Obj(vec![
                ("topology", Json::Int(fp.topology_bytes as u64)),
                ("weights", Json::Int(fp.weight_bytes as u64)),
                ("overflow", Json::Int(fp.overflow_bytes as u64)),
                ("edge_list", Json::Int(fp.edge_list_bytes as u64)),
                ("total", Json::Int(fp.total() as u64)),
            ]),
        ),
        (
            "naive_u64_weight_bytes",
            Json::Int(naive_weight_bytes as u64),
        ),
        ("weight_compression_ratio", Json::Num(ratio)),
        ("overflow_entries", Json::Int(csr.overflow_len() as u64)),
        ("verified_pairs", Json::Int(verified as u64)),
    ])
}

/// Cold-builds, snapshots, warm-restarts one algorithm; returns the JSON
/// row and whether the restart cleared the 10x bar.
fn restart_row(kind: AlgorithmKind, graph: &Graph, cfg: &BenchConfig) -> (Json, bool) {
    let params = BuildParams::new(4, 1);
    let queries = QuerySet::random(graph, cfg.verify_pairs, 2027);

    let t0 = Instant::now();
    let server = RoadNetworkServer::builder()
        .algorithm(kind)
        .build_params(params)
        .coalesce(CoalescePolicy::manual())
        .start(graph);
    let cold = t0.elapsed();

    let before: Vec<_> = queries
        .iter()
        .map(|q| server.distance(q.source, q.target))
        .collect();
    let path = temp_path(&format!("{}.snap", kind.name()));
    server.save_snapshot(&path).expect("save snapshot");
    let snapshot_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    server.shutdown();

    let t1 = Instant::now();
    let restored = RoadNetworkServer::builder()
        .start_from_snapshot(&path)
        .expect("warm restart");
    let warm = t1.elapsed();

    for (q, &expect) in queries.iter().zip(&before) {
        let got = restored.distance(q.source, q.target);
        assert_eq!(got, expect, "{} drifted across restart", kind.name());
        assert_eq!(
            got,
            dijkstra_distance(graph, q.source, q.target),
            "{} restored answer disagrees with Dijkstra",
            kind.name()
        );
    }
    restored.shutdown();
    let _ = std::fs::remove_file(&path);

    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
    println!(
        "restart {}: cold {:.3}s, warm {:.3}s ({speedup:.1}x), snapshot {snapshot_bytes} bytes",
        kind.name(),
        cold.as_secs_f64(),
        warm.as_secs_f64()
    );
    (
        Json::Obj(vec![
            ("algorithm", Json::Str(kind.name().to_string())),
            ("cold_build_seconds", Json::Num(cold.as_secs_f64())),
            ("warm_restart_seconds", Json::Num(warm.as_secs_f64())),
            ("speedup", Json::Num(speedup)),
            ("snapshot_bytes", Json::Int(snapshot_bytes)),
            ("verified_pairs", Json::Int(queries.len() as u64)),
            ("answers_exact", Json::Int(1)),
        ]),
        speedup >= 10.0,
    )
}

/// Serves a closed query loop on a warm-restarted server and reports QPS
/// next to the live `htsp_storage_bytes` split.
fn serving_section(graph: &Graph, cfg: &BenchConfig) -> Json {
    let server = RoadNetworkServer::builder()
        .algorithm(AlgorithmKind::Dch)
        .build_params(BuildParams::new(4, 1))
        .coalesce(CoalescePolicy::manual())
        .start(graph);
    let path = temp_path("serving.snap");
    server.save_snapshot(&path).expect("save snapshot");
    server.shutdown();
    let server = RoadNetworkServer::builder()
        .start_from_snapshot(&path)
        .expect("warm restart for serving");
    let _ = std::fs::remove_file(&path);

    let queries = QuerySet::random(graph, 256, 3049);
    let t0 = Instant::now();
    let mut answered = 0u64;
    while t0.elapsed() < cfg.qps_window {
        for q in &queries {
            assert!(server.distance(q.source, q.target).is_finite());
        }
        answered += queries.len() as u64;
    }
    let qps = answered as f64 / t0.elapsed().as_secs_f64();

    let parts = server.refresh_storage_gauges();
    assert!(
        parts.iter().any(|&(c, _)| c == "graph"),
        "graph storage gauge missing"
    );
    let prom = server.telemetry().export_prometheus();
    let samples = validate_prometheus(&prom).expect("prometheus export validates");
    assert!(
        prom.contains(&format!("{STORAGE_BYTES_METRIC}{{component=\"graph\"}}")),
        "{STORAGE_BYTES_METRIC} gauges missing from Prometheus export:\n{prom}"
    );
    println!(
        "serving: {qps:.0} qps next to {} storage components ({} prometheus samples)",
        parts.len(),
        samples
    );
    server.shutdown();

    let components: Vec<Json> = parts
        .iter()
        .map(|&(component, bytes)| {
            Json::Obj(vec![
                ("component", Json::Str(component.to_string())),
                ("bytes", Json::Int(bytes as u64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("algorithm", Json::Str("DCH".to_string())),
        ("qps", Json::Num(qps)),
        ("answered", Json::Int(answered)),
        ("storage_bytes", Json::Arr(components)),
        ("prometheus_samples", Json::Int(samples as u64)),
    ])
}

/// Smoke-only: routes the bundled fixture through the fleet's streaming
/// ingest and spot-checks cross-shard answers against Dijkstra.
fn fleet_smoke_section(reference: &Graph) -> Json {
    let fleet = ShardedFleet::from_dimacs(fixture_path(), FleetConfig::new(2, AlgorithmKind::Dch))
        .expect("fleet streaming ingest");
    let queries = QuerySet::random(reference, 24, 4073);
    for q in &queries {
        assert_eq!(
            fleet.distance(q.source, q.target),
            dijkstra_distance(reference, q.source, q.target),
            "fleet answer deviates for {q:?}"
        );
    }
    let shards = fleet.num_shards();
    fleet.shutdown();
    println!("fleet: {shards} shards streamed from fixture, 24 pairs exact");
    Json::Obj(vec![
        ("shards", Json::Int(shards as u64)),
        ("verified_pairs", Json::Int(queries.len() as u64)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| {
            if smoke {
                "/tmp/BENCH_pr9_smoke.json".to_string()
            } else {
                "BENCH_pr9.json".to_string()
            }
        });
    let cfg = if smoke {
        BenchConfig {
            smoke: true,
            ingest_side: 0, // bundled fixture instead
            restart_side: 14,
            algorithms: vec![AlgorithmKind::Dch, AlgorithmKind::Dh2h],
            verify_pairs: 24,
            qps_window: Duration::from_millis(200),
        }
    } else {
        BenchConfig {
            smoke: false,
            // 724^2 = 524,176 vertices; 2*724*723 = 1,046,904 edges >= 1M.
            ingest_side: 724,
            restart_side: 72,
            algorithms: vec![
                AlgorithmKind::Dch,
                AlgorithmKind::Toain,
                AlgorithmKind::Dh2h,
                AlgorithmKind::Mhl,
            ],
            verify_pairs: 48,
            qps_window: Duration::from_millis(500),
        }
    };

    // --- Section 1: streaming ingest into CSR -------------------------
    let (gr_path, reference, cleanup_gr) = if cfg.smoke {
        let path = fixture_path();
        let reference = htsp_graph::dimacs::read_gr_file(&path).expect("read fixture");
        (path, reference, false)
    } else {
        let big = gen::grid(
            cfg.ingest_side,
            cfg.ingest_side,
            gen::WeightRange::new(1, 100),
            42,
        );
        let path = temp_path("large.gr");
        write_gr_file(&big, &path).expect("write large .gr");
        (path, big, true)
    };
    let ingest = ingest_section(&gr_path, &reference, &cfg);
    if cleanup_gr {
        let _ = std::fs::remove_file(&gr_path);
    }
    drop(reference);

    // --- Section 2: snapshot + warm restart ---------------------------
    let road = gen::grid(
        cfg.restart_side,
        cfg.restart_side,
        gen::WeightRange::new(1, 100),
        7,
    );
    let mut rows = Vec::new();
    let mut fast_restarts = 0usize;
    for &kind in &cfg.algorithms {
        let (row, fast) = restart_row(kind, &road, &cfg);
        rows.push(row);
        fast_restarts += usize::from(fast);
    }
    if !cfg.smoke {
        assert!(
            fast_restarts >= 2,
            "warm restart must be >=10x faster than cold build for >=2 algorithms \
             (got {fast_restarts})"
        );
    }

    // --- Section 3: QPS next to storage gauges ------------------------
    let serving = serving_section(&road, &cfg);

    // --- Smoke-only: fleet streaming ingest ---------------------------
    let fleet = if cfg.smoke {
        let fixture_ref = htsp_graph::dimacs::read_gr_file(fixture_path()).expect("read fixture");
        Some(fleet_smoke_section(&fixture_ref))
    } else {
        None
    };

    let mut fields = vec![
        ("bench", Json::Str("pr9-storage-persistence".to_string())),
        (
            "mode",
            Json::Str(if cfg.smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("streaming_ingest", ingest),
        ("warm_restart", Json::Arr(rows)),
        ("fast_restarts_10x", Json::Int(fast_restarts as u64)),
        ("serving", serving),
    ];
    if let Some(fleet) = fleet {
        fields.push(("fleet_smoke", fleet));
    }
    let doc = Json::Obj(fields);
    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_pr9.json");
    println!("wrote {out_path}");
}
